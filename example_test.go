package maxwe_test

import (
	"fmt"
	"log"

	"maxwe"
)

// The one-call API: assemble the paper's default stack and measure its
// lifetime under the uniform address attack.
func ExampleNew() {
	cfg := maxwe.DefaultConfig()
	cfg.Regions = 128
	cfg.LinesPerRegion = 8
	cfg.MeanEndurance = 300

	sys, err := maxwe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.RunLifetime()
	fmt.Printf("failed: %v\n", res.Failed)
	fmt.Printf("lifetime: %.2f of ideal\n", res.NormalizedLifetime)
	// Output:
	// failed: true
	// lifetime: 0.35 of ideal
}

// Trace-driven use: feed the stack write addresses from an external
// source instead of a built-in attack.
func ExampleSystem_Stepper() {
	cfg := maxwe.DefaultConfig()
	cfg.Regions = 32
	cfg.LinesPerRegion = 8
	cfg.MeanEndurance = 100

	sys, err := maxwe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stepper()
	for lla := 0; st.Write(lla); lla = (lla + 1) % st.LogicalLines() {
	}
	fmt.Printf("device failed after %d writes\n", st.Result().UserWrites)
	// Output:
	// device failed after 6917 writes
}

// The Section 4.4 storage model at the paper's geometry.
func ExamplePaperOverhead() {
	o := maxwe.PaperOverhead()
	fmt.Printf("hybrid:      %.2f MB\n", o.TotalBits()/8/(1<<20))
	fmt.Printf("traditional: %.2f MB\n", o.TraditionalBits()/8/(1<<20))
	fmt.Printf("saved:       %.0f%%\n", o.Reduction()*100)
	// Output:
	// hybrid:      0.16 MB
	// traditional: 1.10 MB
	// saved:       86%
}
