#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the nvmd daemon.
#
# Boots nvmd on a random port with a throwaway data directory and the
# result cache enabled, submits the same tiny Figure 7 grid twice through
# the CLI, waits for both jobs to complete, checks the metrics endpoint
# counted them (the second job entirely as memo hits), then SIGTERMs the
# daemon and asserts it drains with exit status 0.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
nvmd_pid=""

cleanup() {
    if [ -n "$nvmd_pid" ] && kill -0 "$nvmd_pid" 2>/dev/null; then
        kill -KILL "$nvmd_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building nvmd"
$GO build -o "$tmp/nvmd" ./cmd/nvmd

echo "serve-smoke: starting daemon"
"$tmp/nvmd" serve -addr 127.0.0.1:0 -data "$tmp/data" -cache \
    -port-file "$tmp/port" 2>"$tmp/serve.log" &
nvmd_pid=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never wrote its port file" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    if ! kill -0 "$nvmd_pid" 2>/dev/null; then
        echo "serve-smoke: daemon exited early" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr="http://$(cat "$tmp/port")"
echo "serve-smoke: daemon at $addr"

echo "serve-smoke: submitting tiny fig7 grid"
cat >"$tmp/spec.json" <<'EOF'
{
  "kind": "fig7",
  "setup": {"regions": 64, "lines_per_region": 8, "mean_endurance": 200},
  "swr_percents": [0, 90],
  "wls": ["tlsr"],
  "parallelism": 2
}
EOF
"$tmp/nvmd" submit -addr "$addr" -spec "$tmp/spec.json" -wait >"$tmp/final.json"
grep -q '"state": "done"' "$tmp/final.json"

echo "serve-smoke: resubmitting the same grid (memo-cache warm path)"
"$tmp/nvmd" submit -addr "$addr" -spec "$tmp/spec.json" -wait >"$tmp/final2.json"
grep -q '"state": "done"' "$tmp/final2.json"

echo "serve-smoke: checking metrics"
"$tmp/nvmd" metrics -addr "$addr" >"$tmp/metrics.txt"
grep -q '^nvmd_jobs_done_total 2$' "$tmp/metrics.txt"
grep -q '^nvmd_cells_completed_total 4$' "$tmp/metrics.txt"
grep -q '^nvmd_cells_memo_hits_total 2$' "$tmp/metrics.txt"
grep -q '^nvmd_cache_hits_total 2$' "$tmp/metrics.txt"

echo "serve-smoke: checking cache stats endpoint"
"$tmp/nvmd" cache -addr "$addr" >"$tmp/cache.json"
grep -q '"enabled": true' "$tmp/cache.json"

echo "serve-smoke: draining daemon (SIGTERM)"
kill -TERM "$nvmd_pid"
rc=0
wait "$nvmd_pid" || rc=$?
nvmd_pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: daemon exited $rc, want 0" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

echo "serve-smoke: OK"
