#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the nvmd federation layer.
#
# Runs the same Figure 7 sweep twice: once on a plain single-node daemon,
# once federated across a coordinator plus two workers with one worker
# SIGKILLed mid-sweep. The killed worker's leases expire, its cells
# re-shard to the survivor, and the merged federated result must come out
# byte-identical to the single-node run. Also checks the coordinator's
# worker listing and cluster metrics, then asserts clean drains.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""

cleanup() {
    for p in $pids; do
        kill -KILL "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "cluster-smoke: building nvmd"
$GO build -o "$tmp/nvmd" ./cmd/nvmd

# Heavy enough that the sweep runs for over a second, so the SIGKILL
# below reliably lands while cells are still in flight.
cat >"$tmp/spec.json" <<'EOF'
{
  "kind": "fig7",
  "setup": {"regions": 256, "lines_per_region": 16, "mean_endurance": 20000},
  "swr_percents": [0, 25, 50, 75, 90],
  "wls": ["tlsr"],
  "parallelism": 2
}
EOF

# wait_port FILE PID LOG: block until the daemon at PID writes FILE.
wait_port() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: daemon never wrote its port file" >&2
            cat "$3" >&2
            exit 1
        fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "cluster-smoke: daemon exited early" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "cluster-smoke: single-node reference run"
"$tmp/nvmd" serve -addr 127.0.0.1:0 -data "$tmp/seq" \
    -port-file "$tmp/seq.port" 2>"$tmp/seq.log" &
seq_pid=$!
pids="$pids $seq_pid"
wait_port "$tmp/seq.port" "$seq_pid" "$tmp/seq.log"
seq_addr="http://$(cat "$tmp/seq.port")"
"$tmp/nvmd" submit -addr "$seq_addr" -spec "$tmp/spec.json" -wait >"$tmp/seq-final.json"
grep -q '"state": "done"' "$tmp/seq-final.json"
"$tmp/nvmd" result -addr "$seq_addr" -id job-000001 >"$tmp/sequential.json"
kill -TERM "$seq_pid"
wait "$seq_pid"

echo "cluster-smoke: starting coordinator + 2 workers"
"$tmp/nvmd" coordinator -addr 127.0.0.1:0 -data "$tmp/fed" \
    -port-file "$tmp/fed.port" \
    -lease-timeout 1s -worker-ttl 3s -lease-wait 100ms 2>"$tmp/fed.log" &
fed_pid=$!
pids="$pids $fed_pid"
wait_port "$tmp/fed.port" "$fed_pid" "$tmp/fed.log"
fed_addr="http://$(cat "$tmp/fed.port")"

"$tmp/nvmd" worker -coordinator "$fed_addr" -slots 2 -name smoke-w1 2>"$tmp/w1.log" &
w1_pid=$!
pids="$pids $w1_pid"
"$tmp/nvmd" worker -coordinator "$fed_addr" -slots 2 -name smoke-w2 2>"$tmp/w2.log" &
w2_pid=$!
pids="$pids $w2_pid"

i=0
while [ "$("$tmp/nvmd" workers -addr "$fed_addr" | grep -c '"name"')" -lt 2 ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: workers never registered" >&2
        cat "$tmp/w1.log" "$tmp/w2.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "cluster-smoke: submitting federated sweep, killing one worker mid-sweep"
"$tmp/nvmd" submit -addr "$fed_addr" -spec "$tmp/spec.json" -federated >"$tmp/fed-submit.json"
grep -q '"id": "job-000001"' "$tmp/fed-submit.json"
sleep 0.3
kill -KILL "$w1_pid"
echo "cluster-smoke: worker smoke-w1 killed (SIGKILL)"

"$tmp/nvmd" wait -addr "$fed_addr" -id job-000001 >"$tmp/fed-final.json"
grep -q '"state": "done"' "$tmp/fed-final.json"
"$tmp/nvmd" result -addr "$fed_addr" -id job-000001 >"$tmp/federated.json"

echo "cluster-smoke: comparing results"
if ! cmp -s "$tmp/sequential.json" "$tmp/federated.json"; then
    echo "cluster-smoke: federated result differs from single-node run" >&2
    diff "$tmp/sequential.json" "$tmp/federated.json" >&2 || true
    exit 1
fi

echo "cluster-smoke: checking cluster observability"
"$tmp/nvmd" metrics -addr "$fed_addr" >"$tmp/fed-metrics.txt"
grep -q '^nvmd_cluster_completed_total 5$' "$tmp/fed-metrics.txt"
"$tmp/nvmd" workers -addr "$fed_addr" >"$tmp/fed-workers.json"
grep -q '"name": "smoke-w2"' "$tmp/fed-workers.json"

echo "cluster-smoke: draining coordinator and surviving worker (SIGTERM)"
kill -TERM "$w2_pid"
rc=0
wait "$w2_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "cluster-smoke: worker exited $rc, want 0" >&2
    cat "$tmp/w2.log" >&2
    exit 1
fi
kill -TERM "$fed_pid"
rc=0
wait "$fed_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "cluster-smoke: coordinator exited $rc, want 0" >&2
    cat "$tmp/fed.log" >&2
    exit 1
fi

echo "cluster-smoke: OK"
