package maxwe

import (
	"math"
	"strings"
	"testing"
)

// smallConfig keeps facade tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Regions = 128
	cfg.LinesPerRegion = 8
	cfg.MeanEndurance = 300
	return cfg
}

func TestDefaultConfigBuilds(t *testing.T) {
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"regions", func(c *Config) { c.Regions = 0 }},
		{"lines", func(c *Config) { c.LinesPerRegion = -1 }},
		{"endurance", func(c *Config) { c.MeanEndurance = 0 }},
		{"variation", func(c *Config) { c.VariationQ = 0.5 }},
		{"sparefrac", func(c *Config) { c.SpareFraction = 0.6 }},
		{"swrfrac", func(c *Config) { c.SWRFraction = 1.5 }},
		{"psi", func(c *Config) { c.Psi = 0 }},
		{"scheme", func(c *Config) { c.Scheme = "bogus" }},
		{"attack", func(c *Config) { c.Attack = "bogus" }},
		{"leveler", func(c *Config) { c.WearLeveling = "bogus" }},
		{"pcd+wl", func(c *Config) { c.Scheme = "pcd"; c.WearLeveling = "tlsr" }},
	}
	for _, m := range mods {
		cfg := smallConfig()
		m.mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: invalid config accepted", m.name)
		}
	}
}

func TestAllSchemesRun(t *testing.T) {
	for _, scheme := range []string{"max-we", "pcd", "ps-random", "ps-worst", "ps-best", "none"} {
		cfg := smallConfig()
		cfg.Scheme = scheme
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res := sys.RunLifetime()
		if !res.Failed || res.UserWrites <= 0 {
			t.Fatalf("%s: run did not complete: %+v", scheme, res)
		}
		if res.NormalizedLifetime <= 0 || res.NormalizedLifetime >= 1 {
			t.Fatalf("%s: normalized lifetime %v out of (0,1)", scheme, res.NormalizedLifetime)
		}
	}
}

func TestAllLevelersRun(t *testing.T) {
	for _, wl := range []string{"", "identity", "start-gap", "tlsr", "pcm-s", "bwl", "wawl",
		"twl", "stress-aware", "partitioned-start-gap"} {
		cfg := smallConfig()
		cfg.WearLeveling = wl
		cfg.Attack = "bpa"
		cfg.MaxUserWrites = 50_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%q: %v", wl, err)
		}
		res := sys.RunLifetime()
		if res.UserWrites <= 0 {
			t.Fatalf("%q: no writes served", wl)
		}
	}
	// The faithful security-refresh levelers need a power-of-two user
	// space: run them over the unprotected scheme (1024 lines).
	for _, wl := range []string{"security-refresh", "tlsr-exact"} {
		cfg := smallConfig()
		cfg.Scheme = "none"
		cfg.WearLeveling = wl
		cfg.Attack = "bpa"
		cfg.MaxUserWrites = 50_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%q: %v", wl, err)
		}
		if res := sys.RunLifetime(); res.UserWrites <= 0 {
			t.Fatalf("%q: no writes served", wl)
		}
	}
}

func TestSecurityRefreshNeedsPowerOfTwo(t *testing.T) {
	cfg := smallConfig() // max-we leaves a non-power-of-two user space
	cfg.WearLeveling = "security-refresh"
	if _, err := New(cfg); err == nil {
		t.Fatal("security-refresh accepted a non-power-of-two user space")
	}
}

func TestPartialUAAFacade(t *testing.T) {
	cfg := smallConfig()
	cfg.Attack = "partial-uaa"
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.RunLifetime(); !res.Failed {
		t.Fatal("partial-uaa run did not complete")
	}
	cfg.AttackCoverage = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero coverage accepted")
	}
}

func TestAllAttacksRun(t *testing.T) {
	for _, atk := range []string{"uaa", "bpa", "repeated", "random", "hotcold"} {
		cfg := smallConfig()
		cfg.Attack = atk
		cfg.MaxUserWrites = 30_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", atk, err)
		}
		if res := sys.RunLifetime(); res.UserWrites <= 0 {
			t.Fatalf("%s: no writes served", atk)
		}
	}
}

func TestHeadlineResult(t *testing.T) {
	// The library's headline reproduction: under UAA, Max-WE with 10%
	// spares multiplies lifetime by roughly the paper's 9.5X over the
	// unprotected device.
	unprot := smallConfig()
	unprot.Scheme = "none"
	sysU, err := New(unprot)
	if err != nil {
		t.Fatal(err)
	}
	base := sysU.RunLifetime().NormalizedLifetime

	sysM, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	protected := sysM.RunLifetime().NormalizedLifetime

	improvement := protected / base
	if improvement < 6 || improvement > 14 {
		t.Fatalf("Max-WE improvement %vX outside the paper's ballpark (9.5X)", improvement)
	}
}

func TestPowerLawProfileOption(t *testing.T) {
	cfg := smallConfig()
	cfg.LinearProfile = false
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.Profile().Ratio(); r > cfg.VariationQ*1.3 {
		t.Fatalf("power-law profile ratio %v far above q", r)
	}
}

func TestAccessors(t *testing.T) {
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Profile() == nil {
		t.Fatal("nil profile")
	}
	if sys.UserLines() <= 0 || sys.UserLines() >= sys.Profile().Lines() {
		t.Fatalf("UserLines = %d with 10%% spares over %d lines",
			sys.UserLines(), sys.Profile().Lines())
	}
	if sys.IdealLifetime() <= 0 {
		t.Fatal("IdealLifetime not positive")
	}
}

func TestMappingOverheadMatchesPaperShape(t *testing.T) {
	o := PaperOverhead()
	if got := o.Reduction(); math.Abs(got-0.85) > 0.01 {
		t.Fatalf("paper overhead reduction = %v", got)
	}
	sys, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	so := sys.MappingOverhead()
	if so.TotalBits() >= so.TraditionalBits() {
		t.Fatal("hybrid mapping not smaller than line-level mapping")
	}
}

func TestAnalyticAgreesWithSimulation(t *testing.T) {
	// The simulated unprotected UAA lifetime must sit near the analytic
	// Equation 5 value for the same q.
	cfg := smallConfig()
	cfg.Scheme = "none"
	cfg.SpareFraction = 0
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := sys.Analytic().UAARatio()
	got := sys.RunLifetime().NormalizedLifetime
	if math.Abs(got-an) > 0.01 {
		t.Fatalf("simulated %v vs analytic %v", got, an)
	}
}

func TestMaxUserWritesTruncates(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxUserWrites = 1000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.RunLifetime()
	if res.Failed || res.UserWrites != 1000 {
		t.Fatalf("truncation not honored: %+v", res)
	}
}

func TestErrorMessagesNamePackage(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheme = "bogus"
	_, err := New(cfg)
	if err == nil || !strings.HasPrefix(err.Error(), "maxwe:") {
		t.Fatalf("error %v does not identify its origin", err)
	}
}

func TestMonitorFacade(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{WindowSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var verdict = VerdictBenign
	for i := 0; i < 64; i++ {
		if v, done := m.Observe(i); done {
			verdict = v
		}
	}
	if verdict != VerdictUAALike {
		t.Fatalf("sequential stream verdict %v, want uaa-like", verdict)
	}
	if _, err := NewMonitor(MonitorConfig{WindowSize: 1}); err == nil {
		t.Fatal("bad monitor config accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		cfg := smallConfig()
		cfg.Attack = "bpa"
		cfg.WearLeveling = "tlsr"
		cfg.Seed = 99
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.RunLifetime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestConfigFingerprintGolden pins the exact fingerprint of the paper's
// default configuration. This string keys nvmsim's memoized seed-sweep
// cells: if it fails, the Config wire format (json tags, field set) or
// the engine schema version changed, and every cached result is either
// orphaned or — if an old key now names a different computation — stale.
// Bump sim.EngineSchemaVersion for behavior changes, then update this
// constant.
func TestConfigFingerprintGolden(t *testing.T) {
	const want = "maxwe-config/v1/158393a7a7943c03640201ba7fb37f89f20fc1745298bd2160b65798a3bd0a57"
	if got := DefaultConfig().Fingerprint(); got != want {
		t.Fatalf("DefaultConfig fingerprint = %q, want %q (cache-key-breaking change?)", got, want)
	}
	tuned := DefaultConfig()
	tuned.Seed++
	if tuned.Fingerprint() == want {
		t.Fatal("different seeds share a fingerprint; the cache would serve seed 1's result for seed 2")
	}
}
