module maxwe

go 1.22
