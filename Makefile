GO ?= go

# BENCH_OUT names the JSON file `make bench` writes and `make
# bench-compare` treats as "current"; override it to regenerate an older
# snapshot (make bench BENCH_OUT=BENCH_PR8.json) or to compare one.
BENCH_OUT ?= BENCH_PR10.json

# BENCH_BASE is the committed snapshot bench-compare diffs against.
BENCH_BASE ?= BENCH_PR9.json

.PHONY: build test race race-concurrent vet lint lint-json lint-schema verify faults bench bench-compare bench-smoke serve-smoke cluster-smoke chaos chaos-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-concurrent focuses the race detector on the packages that
# legitimately spawn goroutines or share state across them (every
# //lint:allow nondeterminism waiver lives there), so a waivered data
# race cannot ride in under a green lint.
race-concurrent:
	$(GO) test -race ./internal/cluster/... ./internal/memo/... ./internal/runner/... ./internal/service/...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/maxwelint ./...

# lint-json emits one JSON object per finding — the machine-readable
# stream CI annotations and editor integrations consume.
lint-json:
	$(GO) run ./cmd/maxwelint -json ./...

# lint-schema regenerates the jsonschema golden files. The resulting
# diff is the reviewable record of a wire-format (fingerprint-breaking)
# change; commit it only deliberately.
lint-schema:
	$(GO) run ./cmd/maxwelint -write-schema

# faults smoke-tests the fault-injection layer and the resilient runner
# under the race detector: the fault/runner/cell test surface plus a short
# seeded fault sweep through the real CLI.
faults:
	$(GO) test -race -run 'Fault|Stepper|Interrupt|Checkpoint|Resume|Cancel|Retry|Scrub|Corrupt' \
		./internal/sim/ ./internal/runner/ ./internal/faultinject/ \
		./internal/experiments/ ./internal/mapping/ ./internal/spare/
	$(GO) run -race ./cmd/nvmsim -regions 128 -lines-per-region 8 -endurance 300 \
		-fault-transient 0.01 -fault-stuckat 0.0005 -fault-metadata 0.0005 -fault-seed 7

# bench regenerates $(BENCH_OUT): every figure/table bench (including
# the cold/warm memo-cache sweep), the sweep supervisor at Parallelism 1
# vs 0, the batched Fig7 cell against its per-write reference, the UAA
# fast path, and the nvmd submit round trip, parsed to JSON (with
# NumCPU/GOMAXPROCS metadata) by cmd/benchjson. A second run repeats the
# runner sweep at GOMAXPROCS 2 and 4 (the -cpu suffixes become
# benchjson's "procs" field) to record multi-core scaling; it appends to
# the same log so one conversion sees both. Separate steps so a bench
# failure stops make instead of vanishing into a pipe.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(Fig|Table|Runner|UAAFast|Service|Federated)' -benchmem \
		. ./internal/sim/ ./internal/service/ > bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkRunnerScaling$$' -benchmem -cpu 2,4 . >> bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench.out
	@rm -f bench.out

# bench-compare fails when the current $(BENCH_OUT) regressed more than
# 20% ns/op against the committed $(BENCH_BASE) snapshot on any
# benchmark both files contain, and prints a per-name diagnostic for
# benchmarks present in only one file. CI runs it non-blocking: shared
# runners are noisy, but the table still lands in the log.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)

# bench-smoke runs every benchmark exactly once and checks the output
# still parses — the CI guard that `make bench` cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem \
		. ./internal/sim/ ./internal/service/ > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null < bench-smoke.out
	@rm -f bench-smoke.out

# chaos drives the full crash-consistency matrix: every diskfault class
# (torn write, failed fsync, pre-rename crash, ENOSPC) injected at every
# durable-write index of a seeded workload, each followed by a restart
# and a byte-identity check — plus the teeth test that a writer renaming
# before fsync fails the same check.
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./internal/service/

# chaos-smoke is the CI subset: first and last crash point per class.
chaos-smoke:
	$(GO) test -short -run 'TestChaos' -count=1 ./internal/service/

# serve-smoke boots a real nvmd daemon on a random port, submits a tiny
# Figure 7 grid through the CLI, polls it to completion, and checks the
# daemon drains cleanly on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# cluster-smoke boots a coordinator plus two workers on random ports,
# runs a federated sweep with one worker SIGKILLed mid-sweep, and asserts
# the merged result is byte-identical to a single-node run.
cluster-smoke:
	./scripts/cluster_smoke.sh

# verify is the tier-1 gate: everything CI runs, one command.
verify: build vet test race race-concurrent lint faults bench-smoke chaos-smoke serve-smoke cluster-smoke
