GO ?= go

.PHONY: build test race vet lint verify faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/maxwelint ./...

# faults smoke-tests the fault-injection layer and the resilient runner
# under the race detector: the fault/runner/cell test surface plus a short
# seeded fault sweep through the real CLI.
faults:
	$(GO) test -race -run 'Fault|Stepper|Interrupt|Checkpoint|Resume|Cancel|Retry|Scrub|Corrupt' \
		./internal/sim/ ./internal/runner/ ./internal/faultinject/ \
		./internal/experiments/ ./internal/mapping/ ./internal/spare/
	$(GO) run -race ./cmd/nvmsim -regions 128 -lines-per-region 8 -endurance 300 \
		-fault-transient 0.01 -fault-stuckat 0.0005 -fault-metadata 0.0005 -fault-seed 7

# verify is the tier-1 gate: everything CI runs, one command.
verify: build vet test race lint faults
