GO ?= go

.PHONY: build test race vet lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/maxwelint ./...

# verify is the tier-1 gate: everything CI runs, one command.
verify: build vet test race lint
