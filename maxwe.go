// Package maxwe is a library reproduction of "An Efficient Spare-Line
// Replacement Scheme to Enhance NVM Security" (Xu et al., DAC 2019).
//
// Non-volatile memories wear out, and their endurance varies strongly
// across the die. The paper shows that a trivially simple adversary — the
// Uniform Address Attack (UAA), which just writes every line in turn —
// collapses device lifetime to a few percent of ideal because the weakest
// lines die first and wear leveling cannot help a perfectly uniform
// workload. Its defense, Max-WE, reserves the weakest regions as spares,
// permanently pairs them with the next-weakest regions (strongest spare
// rescues weakest victim), and keeps a small dynamically allocated spare
// pool for everything else, tracked by a hybrid region/line mapping table
// that is ~85% smaller than a flat line-level table.
//
// The package exposes the whole evaluation stack: endurance modeling,
// the NVMsim-style lifetime simulator, attacks (UAA, birthday-paradox,
// hammer, benign), wear-leveling substrates (Start-Gap, TLSR, PCM-S, BWL,
// WAWL), spare-line schemes (Max-WE, PCD, PS variants), the closed-form
// lifetime model, and the mapping-overhead calculator.
//
// Quick start:
//
//	cfg := maxwe.DefaultConfig()
//	sys, err := maxwe.New(cfg)
//	if err != nil { ... }
//	res := sys.RunLifetime()
//	fmt.Printf("normalized lifetime: %.3f\n", res.NormalizedLifetime)
//
// See examples/ for full programs and bench_test.go for the harness that
// regenerates every table and figure of the paper.
package maxwe

import (
	"context"
	"fmt"

	"maxwe/internal/analytic"
	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/endurance"
	"maxwe/internal/faultinject"
	"maxwe/internal/mapping"
	"maxwe/internal/memo"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// Result is the outcome of a lifetime run. See the field documentation in
// the simulator for the exact semantics of each counter.
type Result = sim.Result

// FaultConfig describes a deterministic fault-injection plan (transient
// write failures, stuck-at line deaths, metadata corruption). The zero
// value disables injection entirely. See internal/faultinject.
type FaultConfig = faultinject.Config

// FaultCounters reports injected faults per class; it appears in
// Result.Faults (all zero when no faults are configured).
type FaultCounters = faultinject.Counters

// RetryPolicy bounds the simulated controller's response to transient
// write failures. The zero value selects DefaultRetryPolicy.
type RetryPolicy = faultinject.RetryPolicy

// DefaultRetryPolicy returns the default transient-fault retry policy
// (4 retries, exponential backoff 1, 2, 4, 8).
func DefaultRetryPolicy() RetryPolicy { return faultinject.DefaultRetryPolicy() }

// AnalyticParams exposes the paper's closed-form linear lifetime model
// (Equations 3-8).
type AnalyticParams = analytic.Params

// Overhead exposes the Section 4.4 mapping-table storage model.
type Overhead = mapping.Overhead

// Monitor exposes the online write-pattern attack detector; feed it the
// logical write stream you feed a Stepper. See internal/detect for the
// verdict semantics.
type Monitor = detect.Monitor

// MonitorConfig tunes a Monitor; the zero value selects the defaults.
type MonitorConfig = detect.Config

// Verdict classifications produced by a Monitor.
const (
	VerdictBenign     = detect.Benign
	VerdictUAALike    = detect.UAALike
	VerdictHammerLike = detect.HammerLike
)

// NewMonitor builds an attack detector.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return detect.NewMonitor(cfg) }

// PaperOverhead returns the 1 GB / 2048-region / 10% / 90% configuration
// whose mapping cost the paper reports as 0.16 MB vs 1.1 MB.
func PaperOverhead() Overhead { return mapping.PaperOverhead() }

// Config describes a complete simulated system. Construct with
// DefaultConfig and override fields as needed.
type Config struct {
	// Regions and LinesPerRegion set the device geometry. The json tags
	// here and below pin today's wire names explicitly; Config is hashed
	// into nvmd job fingerprints, so a silent rename would orphan every
	// stored checkpoint (see the maxwelint jsonschema rule).
	Regions        int `json:"Regions"`
	LinesPerRegion int `json:"LinesPerRegion"`
	// MeanEndurance is the mean per-line write budget. Simulations are
	// reported normalized, so use a scaled-down value (thousands) rather
	// than the physical 1e8.
	MeanEndurance float64 `json:"MeanEndurance"`
	// VariationQ is the max/min endurance ratio q (the paper evaluates
	// q = 50).
	VariationQ float64 `json:"VariationQ"`
	// LinearProfile selects the paper's linear endurance distribution;
	// false samples the Equation 1-2 truncated power-law model instead.
	LinearProfile bool `json:"LinearProfile"`

	// Scheme is the spare-line replacement scheme: "max-we", "pcd",
	// "ps-random", "ps-worst", "ps-best" or "none".
	Scheme string `json:"Scheme"`
	// SpareFraction is the spare share of total capacity (paper: 0.10).
	SpareFraction float64 `json:"SpareFraction"`
	// SWRFraction is the region-level share of the spare capacity
	// (paper: 0.90; Max-WE only).
	SWRFraction float64 `json:"SWRFraction"`

	// WearLeveling selects the substrate: "" (no leveler; required for
	// "pcd"), "identity", "start-gap", "partitioned-start-gap", "tlsr",
	// "pcm-s", "bwl", "wawl", "twl", "stress-aware",
	// "security-refresh" or "tlsr-exact" (the last two need a
	// power-of-two user space).
	WearLeveling string `json:"WearLeveling"`
	// Psi is the wear-leveling remap period in writes.
	Psi int `json:"Psi"`

	// Attack is "uaa", "partial-uaa", "bpa", "repeated", "random" or
	// "hotcold".
	Attack string `json:"Attack"`
	// AttackCoverage is the reachable fraction of the address space for
	// "partial-uaa" (Section 3.2 measures ~0.95 on Linux). Ignored by
	// the other attacks.
	AttackCoverage float64 `json:"AttackCoverage"`

	// MaxUserWrites truncates the run (0 = run to device failure).
	MaxUserWrites int64 `json:"MaxUserWrites"`
	// Seed makes the whole run reproducible.
	Seed uint64 `json:"Seed"`

	// Faults configures deterministic fault injection. The zero value is
	// a strict no-op: the run is bit-identical to one without a fault
	// layer.
	Faults FaultConfig `json:"Faults"`
	// Retry bounds recovery from transient write faults; the zero value
	// selects DefaultRetryPolicy. Ignored unless Faults is enabled.
	Retry RetryPolicy `json:"Retry"`
}

// DefaultConfig returns the paper's evaluation operating point on a
// scaled device: Max-WE with 10% spares and 90% SWRs under UAA, q = 50.
func DefaultConfig() Config {
	return Config{
		Regions:        512,
		LinesPerRegion: 32,
		MeanEndurance:  2000,
		VariationQ:     50,
		LinearProfile:  true,
		Scheme:         "max-we",
		SpareFraction:  0.10,
		SWRFraction:    0.90,
		WearLeveling:   "",
		Psi:            32,
		Attack:         "uaa",
		AttackCoverage: 0.95,
	}
}

// Fingerprint is the content-address of the Result this Config computes:
// the canonical Config JSON (wire names pinned by the jsonschema lint
// rule) hashed under a scope carrying sim.EngineSchemaVersion. Equal
// fingerprints imply byte-identical Results — RunLifetime is
// deterministic in Config alone — which is what lets the memo cache
// serve a hit in place of the computation, across processes and jobs.
func (c Config) Fingerprint() string {
	return memo.Fingerprint(fmt.Sprintf("maxwe-config/v%d", sim.EngineSchemaVersion), c)
}

// System is a fully assembled device + scheme + leveler + attack stack,
// ready to run. A System is single-use: RunLifetime consumes the wear
// state. Build another with New to re-run.
type System struct {
	cfg     Config
	profile *endurance.Profile
	scheme  spare.Scheme
	leveler wearlevel.Leveler
	attack  attack.Attack
	faults  *faultinject.Plan
}

// New validates cfg and assembles a System.
func New(cfg Config) (*System, error) {
	if cfg.Regions <= 0 || cfg.LinesPerRegion <= 0 {
		return nil, fmt.Errorf("maxwe: geometry %dx%d must be positive", cfg.Regions, cfg.LinesPerRegion)
	}
	if cfg.MeanEndurance <= 0 {
		return nil, fmt.Errorf("maxwe: MeanEndurance %v must be positive", cfg.MeanEndurance)
	}
	if cfg.VariationQ < 1 {
		return nil, fmt.Errorf("maxwe: VariationQ %v must be >= 1", cfg.VariationQ)
	}
	if cfg.SpareFraction < 0 || cfg.SpareFraction > 0.5 {
		return nil, fmt.Errorf("maxwe: SpareFraction %v outside [0, 0.5]", cfg.SpareFraction)
	}
	if cfg.SWRFraction < 0 || cfg.SWRFraction > 1 {
		return nil, fmt.Errorf("maxwe: SWRFraction %v outside [0, 1]", cfg.SWRFraction)
	}
	if cfg.Psi <= 0 {
		return nil, fmt.Errorf("maxwe: Psi %d must be positive", cfg.Psi)
	}

	s := &System{cfg: cfg}
	s.profile = buildProfile(cfg)

	var err error
	s.scheme, err = buildScheme(cfg, s.profile)
	if err != nil {
		return nil, err
	}
	s.leveler, err = buildLeveler(cfg, s.profile, s.scheme)
	if err != nil {
		return nil, err
	}
	s.attack, err = buildAttack(cfg)
	if err != nil {
		return nil, err
	}
	s.faults, err = faultinject.NewPlan(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("maxwe: %w", err)
	}
	if cfg.Faults.Enabled() && cfg.Retry != (RetryPolicy{}) {
		if err := cfg.Retry.Validate(); err != nil {
			return nil, fmt.Errorf("maxwe: %w", err)
		}
	}
	return s, nil
}

func buildProfile(cfg Config) *endurance.Profile {
	var p *endurance.Profile
	if cfg.LinearProfile {
		el := 2 * cfg.MeanEndurance / (1 + cfg.VariationQ)
		p = endurance.Linear(cfg.Regions, cfg.LinesPerRegion, el, el*cfg.VariationQ)
	} else {
		m := endurance.DefaultModel()
		m.TruncSigma = m.TruncSigmaForRatio(cfg.VariationQ)
		p = m.Sample(cfg.Regions, cfg.LinesPerRegion, xrand.New(cfg.Seed))
	}
	return p.ScaleToMean(cfg.MeanEndurance).Shuffled(xrand.New(cfg.Seed + 1))
}

func buildScheme(cfg Config, p *endurance.Profile) (spare.Scheme, error) {
	spareLines := int(cfg.SpareFraction * float64(p.Lines()))
	switch cfg.Scheme {
	case "max-we":
		opts := spare.DefaultMaxWEOptions()
		opts.SpareFraction = cfg.SpareFraction
		opts.SWRFraction = cfg.SWRFraction
		return spare.NewMaxWE(p, opts), nil
	case "pcd":
		return spare.NewPCD(p.Lines(), p.Lines()-spareLines), nil
	case "ps-random":
		return spare.NewPS(p, spareLines, spare.PSRandom, xrand.New(cfg.Seed+2)), nil
	case "ps-worst":
		return spare.NewPS(p, spareLines, spare.PSWorst, nil), nil
	case "ps-best":
		return spare.NewPS(p, spareLines, spare.PSBest, nil), nil
	case "none":
		return spare.NewNone(p.Lines()), nil
	default:
		return nil, fmt.Errorf("maxwe: unknown scheme %q", cfg.Scheme)
	}
}

func buildLeveler(cfg Config, p *endurance.Profile, sch spare.Scheme) (wearlevel.Leveler, error) {
	if cfg.WearLeveling == "" {
		return nil, nil
	}
	if cfg.Scheme == "pcd" {
		return nil, fmt.Errorf("maxwe: scheme %q requires WearLeveling == \"\" (its capacity shrinks)", cfg.Scheme)
	}
	slots := sch.UserLines()
	src := xrand.New(cfg.Seed + 3)
	metrics := func() []float64 {
		ms := make([]float64, slots)
		for u := range ms {
			ms[u] = p.RegionMetric(p.RegionOf(sch.BaseLine(u)))
		}
		return ms
	}
	switch cfg.WearLeveling {
	case "identity":
		return wearlevel.NewIdentity(slots), nil
	case "start-gap":
		return wearlevel.NewStartGap(slots, cfg.Psi), nil
	case "tlsr":
		return wearlevel.NewTLSR(slots, cfg.Psi, src), nil
	case "pcm-s":
		return wearlevel.NewPCMS(slots, cfg.Psi, src), nil
	case "bwl":
		return wearlevel.NewBWL(slots, metrics(), cfg.Psi, src), nil
	case "wawl":
		return wearlevel.NewWAWL(slots, metrics(), cfg.Psi, src), nil
	case "twl":
		if slots%2 != 0 {
			return nil, fmt.Errorf("maxwe: twl needs an even user space, got %d slots", slots)
		}
		return wearlevel.NewTWL(slots, metrics(), src), nil
	case "stress-aware":
		return wearlevel.NewStressAware(slots, cfg.Psi), nil
	case "security-refresh":
		if slots < 2 || slots&(slots-1) != 0 {
			return nil, fmt.Errorf("maxwe: security-refresh needs a power-of-two user space, got %d slots (use scheme \"none\" or adjust geometry)", slots)
		}
		return wearlevel.NewSecurityRefresh(slots, cfg.Psi, src), nil
	case "tlsr-exact":
		if slots < 4 || slots&(slots-1) != 0 {
			return nil, fmt.Errorf("maxwe: tlsr-exact needs a power-of-two user space >= 4, got %d slots", slots)
		}
		subSize := 64
		for subSize > slots/2 {
			subSize /= 2
		}
		return wearlevel.NewTwoLevelSecurityRefresh(slots/subSize, subSize, cfg.Psi*8, cfg.Psi, src), nil
	case "partitioned-start-gap":
		const partitions = 8
		if slots%partitions != 0 || slots/partitions < 2 {
			return nil, fmt.Errorf("maxwe: partitioned-start-gap needs the user space divisible into %d partitions of >= 2 slots, got %d", partitions, slots)
		}
		return wearlevel.NewPartitioned(partitions, slots/partitions, src,
			func(_, partSlots int) wearlevel.Leveler {
				return wearlevel.NewStartGap(partSlots, cfg.Psi)
			}), nil
	default:
		return nil, fmt.Errorf("maxwe: unknown wear-leveling scheme %q", cfg.WearLeveling)
	}
}

func buildAttack(cfg Config) (attack.Attack, error) {
	src := xrand.New(cfg.Seed + 4)
	switch cfg.Attack {
	case "uaa":
		return attack.NewUAA(), nil
	case "partial-uaa":
		if cfg.AttackCoverage <= 0 || cfg.AttackCoverage > 1 {
			return nil, fmt.Errorf("maxwe: AttackCoverage %v outside (0, 1]", cfg.AttackCoverage)
		}
		return attack.NewPartialUAA(cfg.AttackCoverage), nil
	case "bpa":
		return attack.DefaultBPA(src), nil
	case "repeated":
		return attack.NewRepeated(0), nil
	case "random":
		return attack.NewRandomUniform(src), nil
	case "hotcold":
		return attack.NewHotCold(cfg.Regions*cfg.LinesPerRegion, 1.1, src), nil
	default:
		return nil, fmt.Errorf("maxwe: unknown attack %q", cfg.Attack)
	}
}

// Profile exposes the device's endurance profile (read-only use).
func (s *System) Profile() *endurance.Profile { return s.profile }

// UserLines returns the user-visible capacity in lines.
func (s *System) UserLines() int { return s.scheme.UserLines() }

// IdealLifetime returns Σ line endurance, the normalization denominator.
func (s *System) IdealLifetime() float64 { return s.profile.Sum() }

// simConfig assembles the simulator configuration shared by every run
// mode, with done wiring cooperative cancellation (nil = uncancelable).
func (s *System) simConfig(done <-chan struct{}) sim.Config {
	return sim.Config{
		Profile:       s.profile,
		Scheme:        s.scheme,
		Leveler:       s.leveler,
		Attack:        s.attack,
		MaxUserWrites: s.cfg.MaxUserWrites,
		Faults:        s.faults,
		Retry:         s.cfg.Retry,
		Done:          done,
	}
}

// RunLifetime drives the configured attack against the system until the
// device fails (or MaxUserWrites is reached) and reports the lifetime.
// It consumes the system's wear state; build a fresh System to re-run.
func (s *System) RunLifetime() Result {
	return s.RunLifetimeCtx(context.Background())
}

// RunLifetimeCtx is RunLifetime with cooperative cancellation: when ctx
// is canceled mid-run, the simulation stops early and returns the partial
// result with Interrupted set (it does not error — partial lifetimes are
// still valid measurements of the writes served so far).
func (s *System) RunLifetimeCtx(ctx context.Context) Result {
	res, err := sim.Run(s.simConfig(ctx.Done()))
	if err != nil {
		// New validated everything sim.Run checks; reaching this is a
		// bug in the facade, not a user error.
		panic(fmt.Errorf("maxwe: sim rejected a validated config: %w", err))
	}
	return res
}

// RunLifetimeWithWear is RunLifetime plus a histogram of per-line wear at
// the end of the run: buckets equal-width bins of consumed-budget
// fraction over [0, 1], worn lines in the last bin. Useful for
// visualizing how evenly a scheme spread the attack.
func (s *System) RunLifetimeWithWear(buckets int) (Result, []int) {
	res, dev, err := sim.RunDetailed(s.simConfig(nil))
	if err != nil {
		// New validated everything sim checks; reaching this is a bug.
		panic(fmt.Errorf("maxwe: sim rejected a validated config: %w", err))
	}
	return res, dev.WearHistogram(buckets)
}

// Stepper converts the system into a trace-driven stack: instead of the
// configured attack generating addresses, the caller feeds logical write
// addresses one at a time (a file trace, a DRAM buffer's write-backs).
// Like RunLifetime, it consumes the system — use one or the other.
func (s *System) Stepper() *Stepper {
	cfg := s.simConfig(nil)
	cfg.Attack = nil // the caller controls the write stream
	st, err := sim.NewStepper(cfg)
	if err != nil {
		// New already validated this configuration.
		panic(fmt.Errorf("maxwe: sim rejected a validated config: %w", err))
	}
	return &Stepper{st: st}
}

// Stepper drives a System one user write at a time.
type Stepper struct {
	st *sim.Stepper
}

// LogicalLines returns the size of the logical space to draw addresses
// from (it can shrink under the "pcd" scheme).
func (s *Stepper) LogicalLines() int { return s.st.LogicalLines() }

// Write performs one user write to logical line lla (non-negative;
// values beyond the logical space fold modulo its size). It returns
// false once the device has failed or Config.MaxUserWrites writes have
// been served.
func (s *Stepper) Write(lla int) bool { return s.st.Write(lla) }

// Failed reports whether the device has failed.
func (s *Stepper) Failed() bool { return s.st.Failed() }

// Result summarizes the lifetime so far; callable at any point.
func (s *Stepper) Result() Result { return s.st.Result() }

// MappingOverhead returns the Section 4.4 storage model for this
// configuration's geometry and spare split.
func (s *System) MappingOverhead() Overhead {
	return Overhead{
		Lines:         s.profile.Lines(),
		Regions:       s.profile.Regions(),
		SpareFraction: s.cfg.SpareFraction,
		SWRFraction:   s.cfg.SWRFraction,
	}
}

// Analytic returns the closed-form linear-model parameters matching this
// configuration, for comparing simulated lifetimes against Equations 3-8.
func (s *System) Analytic() AnalyticParams {
	return analytic.FromPQ(float64(s.profile.Lines()), s.cfg.SpareFraction, s.cfg.VariationQ)
}
