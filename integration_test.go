package maxwe_test

import (
	"math"
	"testing"

	"maxwe"
)

// Integration tests: cross-module checks that the simulated stack
// reproduces the paper's closed-form model (Equations 3-8) and behaves
// consistently across its configuration space.

func integrationConfig() maxwe.Config {
	cfg := maxwe.DefaultConfig()
	cfg.Regions = 256
	cfg.LinesPerRegion = 16
	cfg.MeanEndurance = 1000
	return cfg
}

func runLifetime(t *testing.T, cfg maxwe.Config) maxwe.Result {
	t.Helper()
	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.RunLifetime()
}

// Equation 5: the unprotected UAA lifetime equals 2EL/(EH+EL).
func TestIntegrationEq5(t *testing.T) {
	cfg := integrationConfig()
	cfg.Scheme = "none"
	cfg.SpareFraction = 0
	res := runLifetime(t, cfg)
	want := 2.0 / (1 + cfg.VariationQ)
	if math.Abs(res.NormalizedLifetime-want) > 0.004 {
		t.Fatalf("simulated %v vs Eq5 %v", res.NormalizedLifetime, want)
	}
}

// Equation 8: PS-worst under UAA is governed by the (S+1)-th weakest
// line.
func TestIntegrationEq8(t *testing.T) {
	cfg := integrationConfig()
	cfg.Scheme = "ps-worst"
	res := runLifetime(t, cfg)
	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Analytic().NormalizedPSWorst()
	if math.Abs(res.NormalizedLifetime-want) > 0.03 {
		t.Fatalf("simulated PS-worst %v vs Eq8 %v", res.NormalizedLifetime, want)
	}
}

// Equation 7: PCD under UAA matches the capacity-degradation area.
func TestIntegrationEq7(t *testing.T) {
	cfg := integrationConfig()
	cfg.Scheme = "pcd"
	res := runLifetime(t, cfg)
	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Analytic().NormalizedPCDPS()
	if math.Abs(res.NormalizedLifetime-want) > 0.03 {
		t.Fatalf("simulated PCD %v vs Eq7 %v", res.NormalizedLifetime, want)
	}
}

// Equation 6 is a lower bound for the full Max-WE (which adds the dynamic
// pool on top of the SWR/RWR pairing the equation models).
func TestIntegrationEq6LowerBound(t *testing.T) {
	cfg := integrationConfig()
	res := runLifetime(t, cfg)
	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := sys.Analytic().NormalizedMaxWE()
	if res.NormalizedLifetime < bound*0.9 {
		t.Fatalf("simulated Max-WE %v far below the Eq6 bound %v", res.NormalizedLifetime, bound)
	}
}

// Simulated lifetime under UAA is monotone (within tolerance) in the
// spare budget for every scheme.
func TestIntegrationMonotoneInSpares(t *testing.T) {
	for _, scheme := range []string{"max-we", "ps-worst", "ps-random", "pcd"} {
		prev := -1.0
		for _, pct := range []float64{0.05, 0.10, 0.20, 0.30} {
			cfg := integrationConfig()
			cfg.Scheme = scheme
			cfg.SpareFraction = pct
			got := runLifetime(t, cfg).NormalizedLifetime
			if got < prev*0.98 {
				t.Fatalf("%s: lifetime dropped from %v to %v when spares grew to %v",
					scheme, prev, got, pct)
			}
			prev = got
		}
	}
}

// Under UAA the spare-scheme ranking of Section 5.3.1 holds for every
// seed (the UAA experiments are seed-independent modulo the profile
// shuffle).
func TestIntegrationRankingStableAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 7, 20190602} {
		get := func(scheme string) float64 {
			cfg := integrationConfig()
			cfg.Scheme = scheme
			cfg.Seed = seed
			return runLifetime(t, cfg).NormalizedLifetime
		}
		mw, ps, worst := get("max-we"), get("ps-random"), get("ps-worst")
		if !(mw > ps && ps > worst) {
			t.Fatalf("seed %d: ranking broken: max-we %v, ps %v, ps-worst %v",
				seed, mw, ps, worst)
		}
	}
}

// The wear histogram accounts for every line and shows Max-WE
// concentrating wear-out (the last bucket) rather than spreading failure.
func TestIntegrationWearHistogram(t *testing.T) {
	cfg := integrationConfig()
	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, wear := sys.RunLifetimeWithWear(10)
	if !res.Failed {
		t.Fatal("run did not complete")
	}
	total := 0
	for _, c := range wear {
		total += c
	}
	if total != cfg.Regions*cfg.LinesPerRegion {
		t.Fatalf("histogram covers %d lines, want %d", total, cfg.Regions*cfg.LinesPerRegion)
	}
	if wear[len(wear)-1] == 0 {
		t.Fatal("no worn lines in the last bucket after device failure")
	}
}

// With no endurance variation (q=1) every spare scheme approaches the
// ideal lifetime under UAA — variation is the entire problem.
func TestIntegrationNoVariationIsBenign(t *testing.T) {
	for _, scheme := range []string{"none", "max-we", "ps-random"} {
		cfg := integrationConfig()
		cfg.VariationQ = 1
		cfg.Scheme = scheme
		got := runLifetime(t, cfg).NormalizedLifetime
		// "none" reaches ~1; schemes that reserve spares give up that
		// capacity's share but never drop below 1 - spareFraction - eps.
		floor := 1 - cfg.SpareFraction - 0.05
		if got < floor {
			t.Fatalf("%s at q=1: lifetime %v below %v", scheme, got, floor)
		}
	}
}

// Extreme variation (q=1000) drives the unprotected baseline toward zero
// while Max-WE retains a usable fraction.
func TestIntegrationExtremeVariation(t *testing.T) {
	cfg := integrationConfig()
	cfg.VariationQ = 1000
	cfg.Scheme = "none"
	base := runLifetime(t, cfg).NormalizedLifetime
	if base > 0.01 {
		t.Fatalf("unprotected lifetime %v at q=1000, want < 1%%", base)
	}
	cfg.Scheme = "max-we"
	prot := runLifetime(t, cfg).NormalizedLifetime
	if prot < 20*base {
		t.Fatalf("Max-WE %v not >= 20x baseline %v at q=1000", prot, base)
	}
}

// The facade Stepper and RunLifetime agree exactly for the same
// configuration when driven with the same (sequential) addresses.
func TestIntegrationStepperMatchesRun(t *testing.T) {
	cfg := integrationConfig()
	ran := runLifetime(t, cfg)

	sys, err := maxwe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stepper()
	lla := 0
	for st.Write(lla) {
		lla = (lla + 1) % st.LogicalLines()
	}
	if got := st.Result(); got.UserWrites != ran.UserWrites {
		t.Fatalf("stepper %d writes vs run %d", got.UserWrites, ran.UserWrites)
	}
}

// The ps-best control (weakest lines reserved) isolates half of Max-WE's
// idea and must land between PS-random and full Max-WE under UAA.
func TestIntegrationPSBestBetween(t *testing.T) {
	get := func(scheme string) float64 {
		cfg := integrationConfig()
		cfg.Scheme = scheme
		return runLifetime(t, cfg).NormalizedLifetime
	}
	psRandom, psBest, mw := get("ps-random"), get("ps-best"), get("max-we")
	if !(psBest > psRandom) {
		t.Fatalf("ps-best %v not above ps-random %v", psBest, psRandom)
	}
	if !(mw > psBest*0.95) {
		t.Fatalf("max-we %v not at least ps-best %v", mw, psBest)
	}
}
