// Guard: an online write-pattern monitor in front of the NVM. The paper's
// Max-WE defense is static provisioning; this extension demonstrates the
// complementary dynamic angle — the memory controller can recognize the
// attack signatures (UAA's sequential sweep, BPA's hammering) within one
// observation window and with a negligible false-positive rate on benign
// traffic.
//
// Run with:
//
//	go run ./examples/guard
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/xrand"
)

func main() {
	const space = 1 << 16
	const writes = 50_000

	streams := []struct {
		label string
		atk   attack.Attack
	}{
		{"uniform address attack", attack.NewUAA()},
		{"birthday paradox attack", attack.DefaultBPA(xrand.New(1))},
		{"single-line hammer", attack.NewRepeated(12345)},
		{"benign zipf workload", attack.NewHotCold(space, 1.1, xrand.New(2))},
		{"benign random workload", attack.NewRandomUniform(xrand.New(3))},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stream\tfirst verdict\twrites to detect\tflagged windows")
	for _, s := range streams {
		mon, err := detect.NewMonitor(detect.Config{})
		if err != nil {
			log.Fatal(err)
		}
		detectedAt := -1
		firstVerdict := detect.Benign
		for i := 1; i <= writes; i++ {
			v, done := mon.Observe(s.atk.Next(space))
			if done && v != detect.Benign && detectedAt < 0 {
				detectedAt = i
				firstVerdict = v
			}
		}
		at := "never"
		verdict := "-"
		if detectedAt >= 0 {
			at = fmt.Sprint(detectedAt)
			verdict = firstVerdict.String()
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.0f%%\n",
			s.label, verdict, at, mon.FlaggedRate()*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Both attack families are flagged within their first window; benign")
	fmt.Println("traffic stays clean. A controller could throttle or alarm on the")
	fmt.Println("verdict while Max-WE bounds the damage either way.")
}
