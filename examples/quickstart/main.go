// Quickstart: measure how long an NVM device survives the Uniform Address
// Attack with and without Max-WE protection.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"maxwe"
)

func main() {
	// The unprotected baseline: no spare lines at all. Under UAA the
	// device dies when its weakest line dies — a few percent of the
	// ideal lifetime.
	unprotected := maxwe.DefaultConfig()
	unprotected.Scheme = "none"
	base := run(unprotected)

	// The paper's defense: Max-WE with 10% spares, 90% of them managed
	// as region-level SWRs.
	protected := maxwe.DefaultConfig()
	prot := run(protected)

	fmt.Printf("unprotected lifetime : %.1f%% of ideal\n", base.NormalizedLifetime*100)
	fmt.Printf("Max-WE lifetime      : %.1f%% of ideal\n", prot.NormalizedLifetime*100)
	fmt.Printf("improvement          : %.1fX (the paper reports 9.5X)\n",
		prot.NormalizedLifetime/base.NormalizedLifetime)
}

func run(cfg maxwe.Config) maxwe.Result {
	sys, err := maxwe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sys.RunLifetime()
}
