// Overhead planning: the Section 5.2.2 trade-off between mapping-table
// SRAM cost and lifetime. Sweeping the SWR share of the spare capacity
// shows why the paper settles on 90%: region-level mapping is ~50x
// cheaper per spare line, and the lifetime price of moving spares from
// the dynamic pool to SWRs is small until the pool gets tiny.
//
// Run with:
//
//	go run ./examples/overheadplan
package main

import (
	"fmt"
	"log"

	"maxwe"
)

func main() {
	fmt.Println("SWR share sweep — lifetime under BPA (wawl substrate) vs mapping SRAM")
	fmt.Printf("%7s  %18s  %16s\n", "swr %", "lifetime (BPA)", "mapping table")

	for _, pct := range []int{0, 20, 40, 60, 80, 90, 100} {
		cfg := maxwe.DefaultConfig()
		cfg.Regions = 256
		cfg.LinesPerRegion = 16
		cfg.MeanEndurance = 1000
		cfg.SWRFraction = float64(pct) / 100
		// The paper tunes this split under the birthday-paradox attack
		// with wear leveling active (Section 5.2.2).
		cfg.Attack = "bpa"
		cfg.WearLeveling = "wawl"
		sys, err := maxwe.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.RunLifetime()

		// Report the SRAM cost at the paper's full 1 GB geometry, not
		// the scaled simulation geometry.
		o := maxwe.PaperOverhead()
		o.SWRFraction = float64(pct) / 100
		fmt.Printf("%6d%%  %17.1f%%  %13.3f MB\n",
			pct, res.NormalizedLifetime*100, o.TotalBits()/8/(1<<20))
	}

	fmt.Println()
	fmt.Println("The paper picks 90% SWRs: almost the full-table lifetime at ~15% of")
	fmt.Println("its SRAM cost. 100% SWRs is cheaper still but loses the dynamic pool")
	fmt.Println("that rescues wear-outs outside the weakest regions.")
}
