// Attack study: how different write patterns kill an NVM device, and why
// wear leveling helps some attacks but not others (Section 3.3 of the
// paper).
//
// The study runs four workloads (the uniform address attack, the birthday
// paradox attack, a single-address hammer, and a benign Zipf workload)
// against an unprotected device and against Max-WE, under no wear
// leveling and under the endurance-aware WAWL substrate.
//
// Run with:
//
//	go run ./examples/attackstudy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxwe"
)

func main() {
	// A mid-size device keeps the full study under a minute on one core.
	base := maxwe.DefaultConfig()
	base.Regions = 256
	base.LinesPerRegion = 16
	base.MeanEndurance = 1000

	attacks := []string{"uaa", "bpa", "repeated", "hotcold"}
	stacks := []struct {
		label  string
		scheme string
		wl     string
	}{
		{"unprotected", "none", ""},
		{"unprotected + wawl", "none", "wawl"},
		{"max-we", "max-we", ""},
		{"max-we + wawl", "max-we", "wawl"},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "attack\tstack\tnormalized lifetime\tamplification")
	for _, atk := range attacks {
		for _, st := range stacks {
			cfg := base
			cfg.Attack = atk
			cfg.Scheme = st.scheme
			cfg.WearLeveling = st.wl
			sys, err := maxwe.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res := sys.RunLifetime()
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n",
				atk, st.label, res.NormalizedLifetime, res.WriteAmplification)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("What to look for:")
	fmt.Println(" - Under UAA, wear leveling does not help (it only adds remap writes);")
	fmt.Println("   only spare capacity (max-we) extends lifetime.")
	fmt.Println(" - Under the hammering attacks (bpa, repeated), endurance-aware wear")
	fmt.Println("   leveling recovers a lot of lifetime, and max-we stacks on top of it.")
}
