// Multi-bank: real modules stripe consecutive lines across banks, each
// with its own protection stack. This example shows that interleaving is
// attack-neutral for UAA (a uniform sweep stays uniform per bank) —
// per-bank Max-WE provisioning neither gains nor loses from striping.
//
// Run with:
//
//	go run ./examples/multibank
package main

import (
	"fmt"
	"log"

	"maxwe/internal/bank"
	"maxwe/internal/endurance"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

func main() {
	for _, banks := range []int{1, 2, 4, 8} {
		steppers := make([]*sim.Stepper, banks)
		for i := range steppers {
			// Each bank draws its own endurance profile: independent dies.
			m := endurance.DefaultModel()
			p := m.Sample(128, 8, xrand.New(uint64(100+i))).
				ScaleToMean(500).Shuffled(xrand.New(uint64(200 + i)))
			st, err := sim.NewStepper(sim.Config{
				Profile: p,
				Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
			})
			if err != nil {
				log.Fatal(err)
			}
			steppers[i] = st
		}
		a, err := bank.New(steppers)
		if err != nil {
			log.Fatal(err)
		}
		// Uniform address attack over the interleaved space.
		addr := 0
		for a.Write(addr) {
			addr = (addr + 1) % a.LogicalLines()
		}
		fmt.Printf("%d bank(s): %6d lines interleaved, normalized lifetime %.3f\n",
			banks, a.LogicalLines(), a.NormalizedLifetime())
	}
	fmt.Println()
	fmt.Println("Striping leaves the uniform attack uniform per bank, so the")
	fmt.Println("normalized lifetime is scale-free: per-bank provisioning carries")
	fmt.Println("over to arbitrarily wide modules (the first bank to exhaust its")
	fmt.Println("spares ends the device, so wider arrays track the weakest die).")
}
