// Capacity planning: choose the spare-line provisioning for a target
// lifetime under a worst-case (UAA) adversary — the Section 5.2.1
// parameter study as a decision aid.
//
// Given a target normalized lifetime, the planner sweeps the spare
// percentage, reports the achieved lifetime and the user capacity given
// up, and picks the smallest provisioning that meets the target. It then
// cross-checks the pick against the closed-form lower bound (Equation 6).
//
// Run with:
//
//	go run ./examples/capacityplan            # default target 40%
//	go run ./examples/capacityplan 0.6        # target 60% of ideal
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import "maxwe"

func main() {
	target := 0.40
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil || v <= 0 || v >= 1 {
			log.Fatalf("capacityplan: target must be a fraction in (0,1), got %q", os.Args[1])
		}
		target = v
	}

	fmt.Printf("planning for >= %.0f%% of ideal lifetime under UAA (q=50)\n\n", target*100)
	fmt.Printf("%8s  %20s  %14s  %s\n", "spare %", "achieved lifetime", "user capacity", "meets target")

	best := -1
	for _, pct := range []int{0, 1, 2, 5, 10, 15, 20, 25, 30, 40, 50} {
		cfg := maxwe.DefaultConfig()
		cfg.Regions = 256
		cfg.LinesPerRegion = 16
		cfg.MeanEndurance = 1000
		cfg.SpareFraction = float64(pct) / 100
		sys, err := maxwe.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.RunLifetime()
		meets := res.NormalizedLifetime >= target
		if meets && best < 0 {
			best = pct
		}
		fmt.Printf("%7d%%  %19.1f%%  %13.1f%%  %v\n",
			pct, res.NormalizedLifetime*100,
			float64(sys.UserLines())/float64(sys.Profile().Lines())*100, meets)
	}

	fmt.Println()
	if best < 0 {
		fmt.Println("no provisioning up to 50% meets the target; lower the target or the variation q")
		return
	}
	fmt.Printf("recommendation: %d%% spares\n", best)

	// Sanity-check against the analytic lower bound (Equation 6 ignores
	// the dynamic spare pool, so simulation should be at or above it).
	cfg := maxwe.DefaultConfig()
	cfg.SpareFraction = float64(best) / 100
	sys, err := maxwe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	an := sys.Analytic()
	fmt.Printf("analytic Eq-6 bound at that provisioning: %.1f%% of ideal\n",
		an.NormalizedMaxWE()*100)
}
