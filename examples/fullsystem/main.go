// Full system: a benign workload through the complete memory hierarchy —
// synthetic OLTP-like trace -> DRAM write-back buffer -> Max-WE-protected
// NVM — contrasted with the same hierarchy under UAA. This quantifies
// the paper's Section 3.3.2 point end to end: the buffer (and write
// reduction) protect against normal workloads but not against the
// uniform attack.
//
// Run with:
//
//	go run ./examples/fullsystem
package main

import (
	"fmt"
	"log"

	"maxwe"
	"maxwe/internal/buffer"
	"maxwe/internal/trace"
	"maxwe/internal/xrand"
)

func main() {
	const requests = 2_000_000

	benign := driveTrace(requests, false)
	attackRun := driveTrace(requests, true)

	fmt.Println("full hierarchy: trace -> DRAM buffer -> Max-WE NVM")
	fmt.Printf("%-22s %14s %14s\n", "", "OLTP-like", "UAA sweep")
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "buffer hit rate",
		benign.hitRate*100, attackRun.hitRate*100)
	fmt.Printf("%-22s %14d %14d\n", "NVM write-backs",
		benign.writeBacks, attackRun.writeBacks)
	fmt.Printf("%-22s %13.2f%% %13.2f%%\n", "NVM budget consumed",
		benign.wearFraction*100, attackRun.wearFraction*100)
	fmt.Printf("%-22s %14v %14v\n", "device failed",
		benign.failed, attackRun.failed)

	fmt.Println()
	fmt.Println("The buffer thins the benign workload and wear leveling spreads the")
	fmt.Println("rest, so the device survives. The uniform sweep misses on every")
	fmt.Println("access, pushes its full write stream into the NVM, and kills the")
	fmt.Println("device despite the identical protection stack.")
}

type outcome struct {
	hitRate      float64
	writeBacks   int64
	wearFraction float64
	failed       bool
}

func driveTrace(requests int, uaa bool) outcome {
	cfg := maxwe.DefaultConfig()
	cfg.Regions = 256
	cfg.LinesPerRegion = 16
	cfg.MeanEndurance = 1000
	// A realistic stack wears-levels under the buffer: the buffer thins
	// the traffic, the leveler spreads what remains.
	cfg.WearLeveling = "wawl"
	sys, err := maxwe.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stepper()
	memLines := st.LogicalLines()

	// A 2%-of-memory DRAM buffer, 8-way.
	cache := buffer.New(memLines/50/8, 8)

	var gen *trace.Generator
	if !uaa {
		gen, err = trace.NewGenerator(memLines, trace.OLTPLike(), xrand.New(1))
		if err != nil {
			log.Fatal(err)
		}
	}

	next := 0
	for i := 0; i < requests && !st.Failed(); i++ {
		var line int
		write := true
		if uaa {
			line = next
			next = (next + 1) % memLines
		} else {
			rec := gen.Next()
			line, write = rec.Line, rec.Op == trace.Write
		}
		if !write {
			continue // reads do not wear NVM and only warm the buffer
		}
		if victim, wb := cache.Write(line); wb {
			st.Write(victim)
		}
	}
	// What remains dirty in the buffer eventually reaches the NVM too.
	for _, victim := range cache.Flush() {
		if !st.Write(victim) {
			break
		}
	}

	res := st.Result()
	return outcome{
		hitRate:      cache.HitRate(),
		writeBacks:   cache.WriteBacks(),
		wearFraction: res.NormalizedLifetime, // budget consumed so far
		failed:       res.Failed,
	}
}
