// Command nvmd is the long-running experiment daemon plus its client CLI.
//
//	nvmd serve   -data DIR [-addr HOST:PORT] [-job-workers N] [-queue N] [-port-file PATH] [-cache] [-cache-dir DIR]
//	nvmd submit  -spec FILE|- [client flags] [-wait]
//	nvmd status  -id JOB [client flags] [-partial]
//	nvmd wait    -id JOB [client flags]
//	nvmd cancel  -id JOB [client flags]
//	nvmd result  -id JOB [client flags]
//	nvmd metrics [client flags]
//	nvmd cache   [client flags]
//
// serve runs until SIGINT/SIGTERM, then drains: running jobs are
// interrupted (their checkpoints keep every completed cell) and resume on
// the next start. With -cache the daemon memoizes every cell result in a
// content-addressed cache under <data>/cache (or -cache-dir), shared
// across jobs and restarts. submit reads a JSON JobSpec from a file or
// stdin and prints the assigned job; with -wait it follows the event
// stream and exits non-zero unless the job completes.
//
// Every client subcommand shares the retry knobs alongside -addr:
// -retry-attempts, -retry-base, -retry-max and -request-timeout tune the
// internal/service/client retry policy (transient 5xx/429/transport
// failures are retried with capped exponential backoff; 0 selects each
// knob's documented default).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "wait":
		err = cmdWait(os.Args[2:])
	case "cancel":
		err = cmdCancel(os.Args[2:])
	case "result":
		err = cmdResult(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nvmd: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: nvmd <command> [flags]

commands:
  serve    run the experiment daemon
  submit   submit a job spec (JSON file or - for stdin)
  status   show one job's status
  wait     block until a job finishes
  cancel   cancel a queued or running job
  result   print a done job's result document
  metrics  print the daemon's counters
  cache    print the daemon's result-cache status and counters

run "nvmd <command> -h" for that command's flags.
`)
}

// cmdServe runs the daemon until SIGINT/SIGTERM, then drains the manager
// and shuts the HTTP server down.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	data := fs.String("data", "", "durable job data directory (required)")
	workers := fs.Int("job-workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 1024, "job queue depth")
	portFile := fs.String("port-file", "", "write the bound address here once listening")
	cache := fs.Bool("cache", false, "memoize cell results in a content-addressed cache shared across jobs and restarts")
	cacheDir := fs.String("cache-dir", "", "result cache directory (implies -cache; default <data>/cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("serve: -data is required")
	}
	if *cache && *cacheDir == "" {
		*cacheDir = filepath.Join(*data, "cache")
	}

	mgr, err := service.NewManager(service.Config{
		DataDir:    *data,
		JobWorkers: *workers,
		QueueDepth: *queue,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		return err
	}
	mgr.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		//lint:allow durablewrite "advisory discovery file for scripts; losing it on crash is harmless and the daemon rewrites it every start"
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			_ = ln.Close()
			mgr.Close()
			return fmt.Errorf("serve: write port file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "nvmd: listening on %s (data %s)\n", bound, *data)

	srv := &http.Server{Handler: service.NewHandler(mgr)}
	errc := make(chan error, 1)
	//lint:allow nondeterminism "the HTTP server needs its own goroutine so main can select on signals; job payloads stay deterministic"
	go func() { errc <- srv.Serve(ln) }() //lint:allow ctxprop "never blocks: errc has capacity 1 and exactly one send"

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "nvmd: %v — draining\n", sig)
	case err := <-errc:
		mgr.Close()
		return fmt.Errorf("serve: %w", err)
	}

	// Drain jobs first so their checkpoints are final, then let in-flight
	// HTTP requests (event streams end when the manager drains) finish.
	mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "nvmd: drained")
	return nil
}

// clientFlags registers the shared client flags (-addr plus the retry
// knobs) on fs and returns a constructor for the configured client, to be
// called after fs.Parse.
func clientFlags(fs *flag.FlagSet) func() *client.Client {
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	attempts := fs.Int("retry-attempts", 0, "max attempts per request (0 = default 4; 1 disables retries)")
	base := fs.Duration("retry-base", 0, "initial retry backoff (0 = default 50ms)")
	maxb := fs.Duration("retry-max", 0, "retry backoff cap (0 = default 2s)")
	timeout := fs.Duration("request-timeout", 0, "per-attempt timeout (0 = default 30s; negative disables)")
	return func() *client.Client {
		c := client.New(*addr)
		c.Retry = client.RetryPolicy{
			MaxAttempts:    *attempts,
			BaseBackoff:    *base,
			MaxBackoff:     *maxb,
			RequestTimeout: *timeout,
		}
		return c
	}
}

// cmdSubmit reads a JobSpec and submits it; with -wait it follows the job
// to completion and fails unless the job is done.
func cmdSubmit(args []string) error {
	fs := newFlagSet("submit")
	mkClient := clientFlags(fs)
	spec := fs.String("spec", "", "JSON JobSpec file, or - for stdin (required)")
	wait := fs.Bool("wait", false, "wait for the job to finish")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("submit: -spec is required")
	}
	var raw []byte
	var err error
	if *spec == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*spec)
	}
	if err != nil {
		return fmt.Errorf("submit: read spec: %w", err)
	}
	var js service.JobSpec
	if err := json.Unmarshal(raw, &js); err != nil {
		return fmt.Errorf("submit: parse spec: %w", err)
	}

	c := mkClient()
	ctx := context.Background()
	st, err := c.Submit(ctx, js)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(st)
	}
	fmt.Fprintf(os.Stderr, "nvmd: submitted %s (%d cells), waiting\n", st.ID, st.CellsTotal)
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	if err := printJSON(final); err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("submit: job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// cmdStatus prints one job's status document.
func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	partial := fs.Bool("partial", false, "include checkpointed partial results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("status: -id is required")
	}
	st, err := mkClient().Status(context.Background(), *id, *partial)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdWait blocks until the job finishes and fails unless it is done.
func cmdWait(args []string) error {
	fs := newFlagSet("wait")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("wait: -id is required")
	}
	st, err := mkClient().Wait(context.Background(), *id)
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("wait: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdCancel cancels a job.
func cmdCancel(args []string) error {
	fs := newFlagSet("cancel")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("cancel: -id is required")
	}
	st, err := mkClient().Cancel(context.Background(), *id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdResult prints a done job's result document, byte-exact as stored.
func cmdResult(args []string) error {
	fs := newFlagSet("result")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("result: -id is required")
	}
	raw, err := mkClient().Result(context.Background(), *id)
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(raw); err != nil {
		return fmt.Errorf("result: write: %w", err)
	}
	return nil
}

// cmdMetrics prints the daemon's /metrics exposition.
func cmdMetrics(args []string) error {
	fs := newFlagSet("metrics")
	mkClient := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := mkClient().Metrics(context.Background())
	if err != nil {
		return err
	}
	if _, err := fmt.Print(text); err != nil {
		return fmt.Errorf("metrics: write: %w", err)
	}
	return nil
}

// cmdCache prints the daemon's result-cache status document.
func cmdCache(args []string) error {
	fs := newFlagSet("cache")
	mkClient := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cs, err := mkClient().CacheStats(context.Background())
	if err != nil {
		return err
	}
	return printJSON(cs)
}

// newFlagSet names a subcommand flag set consistently.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("nvmd "+name, flag.ExitOnError)
}

// printJSON writes v as indented JSON on stdout.
func printJSON(v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal output: %w", err)
	}
	if _, err := os.Stdout.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("write output: %w", err)
	}
	return nil
}
