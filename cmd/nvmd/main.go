// Command nvmd is the long-running experiment daemon plus its client CLI.
//
//	nvmd serve       -data DIR [-addr HOST:PORT] [-job-workers N] [-queue N] [-port-file PATH] [-cache] [-cache-dir DIR] [-cache-peer URL]
//	nvmd coordinator (serve flags) [-lease-timeout D] [-worker-ttl D] [-lease-wait D]
//	nvmd worker      -coordinator URL [-slots N] [-cache-dir DIR] [-name LABEL]
//	nvmd submit      -spec FILE|- [client flags] [-wait] [-federated]
//	nvmd status      -id JOB [client flags] [-partial]
//	nvmd wait        -id JOB [client flags]
//	nvmd cancel      -id JOB [client flags]
//	nvmd result      -id JOB [client flags]
//	nvmd metrics     [client flags]
//	nvmd cache       [client flags]
//	nvmd workers     [client flags]
//
// serve runs until SIGINT/SIGTERM, then drains: running jobs are
// interrupted (their checkpoints keep every completed cell) and resume on
// the next start. With -cache the daemon memoizes every cell result in a
// content-addressed cache under <data>/cache (or -cache-dir), shared
// across jobs and restarts; -cache-peer fills local misses from another
// daemon's /v1/cluster/cache/get endpoint before computing. submit reads
// a JSON JobSpec from a file or stdin and prints the assigned job; with
// -wait it follows the event stream and exits non-zero unless the job
// completes.
//
// coordinator is serve plus the cluster layer: the daemon also mounts
// /v1/cluster/* and dispatches the cells of federated jobs (spec field
// "federated": true, or submit -federated) to registered workers instead
// of computing them in-process. worker is the matching half — it joins a
// coordinator, leases cells, computes them with the same engine, and
// reports results; kill it any time, its leases expire and the cells move
// to surviving workers. Because the coordinator commits results through
// the same ordered runner as a local sweep, a federated job's result,
// events and checkpoint are byte-identical to a single-node run at any
// worker count.
//
// Every client subcommand shares the retry knobs alongside -addr:
// -retry-attempts, -retry-base, -retry-max and -request-timeout tune the
// internal/service/client retry policy (transient 5xx/429/transport
// failures are retried with capped exponential backoff; 0 selects each
// knob's documented default).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"maxwe/internal/cluster"
	"maxwe/internal/memo"
	"maxwe/internal/service"
	"maxwe/internal/service/client"
	"maxwe/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "wait":
		err = cmdWait(os.Args[2:])
	case "cancel":
		err = cmdCancel(os.Args[2:])
	case "result":
		err = cmdResult(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "workers":
		err = cmdWorkers(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nvmd: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: nvmd <command> [flags]

commands:
  serve        run the experiment daemon
  coordinator  run the daemon with the cluster layer: federated jobs fan out to workers
  worker       join a coordinator, lease sweep cells and compute them
  submit       submit a job spec (JSON file or - for stdin)
  status       show one job's status
  wait         block until a job finishes
  cancel       cancel a queued or running job
  result       print a done job's result document
  metrics      print the daemon's counters
  cache        print the daemon's result-cache status and counters
  workers      list the coordinator's registered workers

run "nvmd <command> -h" for that command's flags.
`)
}

// cmdServe runs the plain daemon until SIGINT/SIGTERM, then drains the
// manager and shuts the HTTP server down.
func cmdServe(args []string) error {
	return runDaemon("serve", args, false)
}

// cmdCoordinator runs the daemon with the cluster layer mounted:
// federated jobs dispatch their cells to registered workers.
func cmdCoordinator(args []string) error {
	return runDaemon("coordinator", args, true)
}

// runDaemon is the shared body of serve and coordinator. The two modes
// differ only in whether a cluster.Coordinator is constructed and wired
// in as the manager's cell dispatcher (plus the /v1/cluster mux and the
// cluster block on /metrics).
func runDaemon(name string, args []string, coordinator bool) error {
	fs := newFlagSet(name)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	data := fs.String("data", "", "durable job data directory (required)")
	workers := fs.Int("job-workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 1024, "job queue depth")
	portFile := fs.String("port-file", "", "write the bound address here once listening")
	cache := fs.Bool("cache", false, "memoize cell results in a content-addressed cache shared across jobs and restarts")
	cacheDir := fs.String("cache-dir", "", "result cache directory (implies -cache; default <data>/cache)")
	cachePeer := fs.String("cache-peer", "", "peer daemon base URL; local cache misses probe its /v1/cluster/cache/get before computing (requires -cache)")
	var leaseTimeout, workerTTL, leaseWait *time.Duration
	if coordinator {
		leaseTimeout = fs.Duration("lease-timeout", cluster.DefaultLeaseTimeout, "how long a leased cell may run between heartbeats before it is reassigned")
		workerTTL = fs.Duration("worker-ttl", cluster.DefaultWorkerTTL, "how long a silent worker stays registered")
		leaseWait = fs.Duration("lease-wait", cluster.DefaultLeaseWait, "how long an idle lease poll parks before returning empty")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("%s: -data is required", name)
	}
	if *cache && *cacheDir == "" {
		*cacheDir = filepath.Join(*data, "cache")
	}
	if *cachePeer != "" && *cacheDir == "" {
		return fmt.Errorf("%s: -cache-peer requires -cache or -cache-dir", name)
	}

	cfg := service.Config{
		DataDir:    *data,
		JobWorkers: *workers,
		QueueDepth: *queue,
		CacheDir:   *cacheDir,
	}
	if *cachePeer != "" {
		cfg.CachePeer = &cluster.CachePeer{URL: strings.TrimRight(*cachePeer, "/")}
	}
	var coord *cluster.Coordinator
	if coordinator {
		coord = cluster.NewCoordinator(cluster.Config{
			LeaseTimeout: *leaseTimeout,
			WorkerTTL:    *workerTTL,
			LeaseWait:    *leaseWait,
			EngineSchema: sim.EngineSchemaVersion,
		})
		cfg.Dispatcher = coord
	}

	mgr, err := service.NewManager(cfg)
	if err != nil {
		return err
	}
	mgr.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("%s: listen %s: %w", name, *addr, err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		//lint:allow durablewrite "advisory discovery file for scripts; losing it on crash is harmless and the daemon rewrites it every start"
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			_ = ln.Close()
			mgr.Close()
			return fmt.Errorf("%s: write port file: %w", name, err)
		}
	}
	fmt.Fprintf(os.Stderr, "nvmd: %s listening on %s (data %s)\n", name, bound, *data)

	srv := &http.Server{Handler: daemonHandler(mgr, coord)}
	errc := make(chan error, 1)
	//lint:allow nondeterminism "the HTTP server needs its own goroutine so main can select on signals; job payloads stay deterministic"
	go func() { errc <- srv.Serve(ln) }() //lint:allow ctxprop "never blocks: errc has capacity 1 and exactly one send"

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "nvmd: %v — draining\n", sig)
	case err := <-errc:
		mgr.Close()
		return fmt.Errorf("%s: %w", name, err)
	}

	// Drain jobs first so their checkpoints are final, then let in-flight
	// HTTP requests (event streams end when the manager drains) finish.
	mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("%s: shutdown: %w", name, err)
	}
	fmt.Fprintln(os.Stderr, "nvmd: drained")
	return nil
}

// daemonHandler composes the daemon's HTTP surface. Plain daemons serve
// the job API, plus the peer-fill cache endpoint when a cache is open so
// sibling daemons can -cache-peer at them. Coordinators additionally
// mount the full /v1/cluster surface and append the cluster counter
// block to /metrics.
func daemonHandler(mgr *service.Manager, coord *cluster.Coordinator) http.Handler {
	api := service.NewHandler(mgr)
	// A nil *memo.Cache must become a nil interface, not a typed nil,
	// or the handler would call Get on a nil receiver.
	var src cluster.CacheSource
	if c := mgr.Cache(); c != nil {
		src = c
	}
	if coord == nil {
		if src == nil {
			return api
		}
		mux := http.NewServeMux()
		mux.Handle("POST /v1/cluster/cache/get", cluster.CacheHandler(src))
		mux.Handle("/", api)
		return mux
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", cluster.NewHandler(coord, src))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		text, err := mgr.MetricsSnapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
		fmt.Fprint(w, cluster.MetricsText(coord.Stats()))
	})
	mux.Handle("/", api)
	return mux
}

// cmdWorker joins a coordinator and computes leased cells until
// SIGINT/SIGTERM. A worker holds no job state of its own: killing one
// only delays the cells it was computing until their leases expire and a
// surviving worker picks them up.
func cmdWorker(args []string) error {
	fs := newFlagSet("worker")
	coordURL := fs.String("coordinator", "", "coordinator base URL (required)")
	slots := fs.Int("slots", 0, "concurrent cells (0 = one per CPU)")
	cacheDir := fs.String("cache-dir", "", "local memo cache directory; misses peer-fill from the coordinator")
	label := fs.String("name", "", "worker label shown in nvmd workers (default hostname)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return fmt.Errorf("worker: -coordinator is required")
	}
	base := strings.TrimRight(*coordURL, "/")
	if *slots <= 0 {
		*slots = runtime.NumCPU()
	}
	if *label == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*label = host
	}

	var cache *memo.Cache
	if *cacheDir != "" {
		var err error
		cache, err = memo.Open(memo.Options{
			Dir:  *cacheDir,
			Peer: &cluster.CachePeer{URL: base},
		})
		if err != nil {
			return fmt.Errorf("worker: open cache: %w", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "nvmd: worker %q joining %s (slots %d, cache %v)\n", *label, base, *slots, cache != nil)
	err := cluster.RunWorker(ctx, cluster.WorkerOptions{
		Coordinator: base,
		Info: cluster.WorkerInfo{
			Name:         *label,
			Slots:        *slots,
			CacheEnabled: cache != nil,
			EngineSchema: sim.EngineSchemaVersion,
		},
		Compute: func(ctx context.Context, t cluster.Task) (json.RawMessage, error) {
			v, err := service.ComputeCell(ctx, t.Spec, t.Key, cache)
			return json.RawMessage(v), err
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "nvmd: worker: "+format+"\n", args...)
		},
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "nvmd: worker stopped")
		return nil
	}
	return err
}

// clientFlags registers the shared client flags (-addr plus the retry
// knobs) on fs and returns a constructor for the configured client, to be
// called after fs.Parse.
func clientFlags(fs *flag.FlagSet) func() *client.Client {
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	attempts := fs.Int("retry-attempts", 0, "max attempts per request (0 = default 4; 1 disables retries)")
	base := fs.Duration("retry-base", 0, "initial retry backoff (0 = default 50ms)")
	maxb := fs.Duration("retry-max", 0, "retry backoff cap (0 = default 2s)")
	timeout := fs.Duration("request-timeout", 0, "per-attempt timeout (0 = default 30s; negative disables)")
	return func() *client.Client {
		c := client.New(*addr)
		c.Retry = client.RetryPolicy{
			MaxAttempts:    *attempts,
			BaseBackoff:    *base,
			MaxBackoff:     *maxb,
			RequestTimeout: *timeout,
		}
		return c
	}
}

// cmdSubmit reads a JobSpec and submits it; with -wait it follows the job
// to completion and fails unless the job is done.
func cmdSubmit(args []string) error {
	fs := newFlagSet("submit")
	mkClient := clientFlags(fs)
	spec := fs.String("spec", "", "JSON JobSpec file, or - for stdin (required)")
	wait := fs.Bool("wait", false, "wait for the job to finish")
	federated := fs.Bool("federated", false, "mark the job federated: a coordinator fans its cells out to workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("submit: -spec is required")
	}
	var raw []byte
	var err error
	if *spec == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*spec)
	}
	if err != nil {
		return fmt.Errorf("submit: read spec: %w", err)
	}
	var js service.JobSpec
	if err := json.Unmarshal(raw, &js); err != nil {
		return fmt.Errorf("submit: parse spec: %w", err)
	}
	if *federated {
		js.Federated = true
	}

	c := mkClient()
	ctx := context.Background()
	st, err := c.Submit(ctx, js)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(st)
	}
	fmt.Fprintf(os.Stderr, "nvmd: submitted %s (%d cells), waiting\n", st.ID, st.CellsTotal)
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	if err := printJSON(final); err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("submit: job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// cmdStatus prints one job's status document.
func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	partial := fs.Bool("partial", false, "include checkpointed partial results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("status: -id is required")
	}
	st, err := mkClient().Status(context.Background(), *id, *partial)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdWait blocks until the job finishes and fails unless it is done.
func cmdWait(args []string) error {
	fs := newFlagSet("wait")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("wait: -id is required")
	}
	st, err := mkClient().Wait(context.Background(), *id)
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("wait: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdCancel cancels a job.
func cmdCancel(args []string) error {
	fs := newFlagSet("cancel")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("cancel: -id is required")
	}
	st, err := mkClient().Cancel(context.Background(), *id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdResult prints a done job's result document, byte-exact as stored.
func cmdResult(args []string) error {
	fs := newFlagSet("result")
	mkClient := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("result: -id is required")
	}
	raw, err := mkClient().Result(context.Background(), *id)
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(raw); err != nil {
		return fmt.Errorf("result: write: %w", err)
	}
	return nil
}

// cmdMetrics prints the daemon's /metrics exposition.
func cmdMetrics(args []string) error {
	fs := newFlagSet("metrics")
	mkClient := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := mkClient().Metrics(context.Background())
	if err != nil {
		return err
	}
	if _, err := fmt.Print(text); err != nil {
		return fmt.Errorf("metrics: write: %w", err)
	}
	return nil
}

// cmdCache prints the daemon's result-cache status document.
func cmdCache(args []string) error {
	fs := newFlagSet("cache")
	mkClient := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cs, err := mkClient().CacheStats(context.Background())
	if err != nil {
		return err
	}
	return printJSON(cs)
}

// cmdWorkers lists the coordinator's registered workers.
func cmdWorkers(args []string) error {
	fs := newFlagSet("workers")
	mkClient := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := mkClient().Workers(context.Background())
	if err != nil {
		return err
	}
	return printJSON(ws)
}

// newFlagSet names a subcommand flag set consistently.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("nvmd "+name, flag.ExitOnError)
}

// printJSON writes v as indented JSON on stdout.
func printJSON(v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal output: %w", err)
	}
	if _, err := os.Stdout.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("write output: %w", err)
	}
	return nil
}
