// Command nvmd is the long-running experiment daemon plus its client CLI.
//
//	nvmd serve   -data DIR [-addr HOST:PORT] [-job-workers N] [-queue N] [-port-file PATH]
//	nvmd submit  -spec FILE|- [-addr URL] [-wait]
//	nvmd status  -id JOB [-addr URL] [-partial]
//	nvmd wait    -id JOB [-addr URL]
//	nvmd cancel  -id JOB [-addr URL]
//	nvmd result  -id JOB [-addr URL]
//	nvmd metrics [-addr URL]
//
// serve runs until SIGINT/SIGTERM, then drains: running jobs are
// interrupted (their checkpoints keep every completed cell) and resume on
// the next start. submit reads a JSON JobSpec from a file or stdin and
// prints the assigned job; with -wait it follows the event stream and
// exits non-zero unless the job completes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "wait":
		err = cmdWait(os.Args[2:])
	case "cancel":
		err = cmdCancel(os.Args[2:])
	case "result":
		err = cmdResult(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nvmd: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: nvmd <command> [flags]

commands:
  serve    run the experiment daemon
  submit   submit a job spec (JSON file or - for stdin)
  status   show one job's status
  wait     block until a job finishes
  cancel   cancel a queued or running job
  result   print a done job's result document
  metrics  print the daemon's counters

run "nvmd <command> -h" for that command's flags.
`)
}

// cmdServe runs the daemon until SIGINT/SIGTERM, then drains the manager
// and shuts the HTTP server down.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	data := fs.String("data", "", "durable job data directory (required)")
	workers := fs.Int("job-workers", 2, "concurrent jobs")
	queue := fs.Int("queue", 1024, "job queue depth")
	portFile := fs.String("port-file", "", "write the bound address here once listening")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("serve: -data is required")
	}

	mgr, err := service.NewManager(service.Config{
		DataDir:    *data,
		JobWorkers: *workers,
		QueueDepth: *queue,
	})
	if err != nil {
		return err
	}
	mgr.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			_ = ln.Close()
			mgr.Close()
			return fmt.Errorf("serve: write port file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "nvmd: listening on %s (data %s)\n", bound, *data)

	srv := &http.Server{Handler: service.NewHandler(mgr)}
	errc := make(chan error, 1)
	//lint:allow nondeterminism "the HTTP server needs its own goroutine so main can select on signals; job payloads stay deterministic"
	go func() { errc <- srv.Serve(ln) }() //lint:allow ctxprop "never blocks: errc has capacity 1 and exactly one send"

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "nvmd: %v — draining\n", sig)
	case err := <-errc:
		mgr.Close()
		return fmt.Errorf("serve: %w", err)
	}

	// Drain jobs first so their checkpoints are final, then let in-flight
	// HTTP requests (event streams end when the manager drains) finish.
	mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "nvmd: drained")
	return nil
}

// cmdSubmit reads a JobSpec and submits it; with -wait it follows the job
// to completion and fails unless the job is done.
func cmdSubmit(args []string) error {
	fs := newFlagSet("submit")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	spec := fs.String("spec", "", "JSON JobSpec file, or - for stdin (required)")
	wait := fs.Bool("wait", false, "wait for the job to finish")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("submit: -spec is required")
	}
	var raw []byte
	var err error
	if *spec == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*spec)
	}
	if err != nil {
		return fmt.Errorf("submit: read spec: %w", err)
	}
	var js service.JobSpec
	if err := json.Unmarshal(raw, &js); err != nil {
		return fmt.Errorf("submit: parse spec: %w", err)
	}

	c := client.New(*addr)
	ctx := context.Background()
	st, err := c.Submit(ctx, js)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(st)
	}
	fmt.Fprintf(os.Stderr, "nvmd: submitted %s (%d cells), waiting\n", st.ID, st.CellsTotal)
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	if err := printJSON(final); err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("submit: job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// cmdStatus prints one job's status document.
func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	id := fs.String("id", "", "job ID (required)")
	partial := fs.Bool("partial", false, "include checkpointed partial results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("status: -id is required")
	}
	st, err := client.New(*addr).Status(context.Background(), *id, *partial)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdWait blocks until the job finishes and fails unless it is done.
func cmdWait(args []string) error {
	fs := newFlagSet("wait")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("wait: -id is required")
	}
	st, err := client.New(*addr).Wait(context.Background(), *id)
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("wait: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

// cmdCancel cancels a job.
func cmdCancel(args []string) error {
	fs := newFlagSet("cancel")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("cancel: -id is required")
	}
	st, err := client.New(*addr).Cancel(context.Background(), *id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

// cmdResult prints a done job's result document, byte-exact as stored.
func cmdResult(args []string) error {
	fs := newFlagSet("result")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	id := fs.String("id", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("result: -id is required")
	}
	raw, err := client.New(*addr).Result(context.Background(), *id)
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(raw); err != nil {
		return fmt.Errorf("result: write: %w", err)
	}
	return nil
}

// cmdMetrics prints the daemon's /metrics exposition.
func cmdMetrics(args []string) error {
	fs := newFlagSet("metrics")
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := client.New(*addr).Metrics(context.Background())
	if err != nil {
		return err
	}
	if _, err := fmt.Print(text); err != nil {
		return fmt.Errorf("metrics: write: %w", err)
	}
	return nil
}

// newFlagSet names a subcommand flag set consistently.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("nvmd "+name, flag.ExitOnError)
}

// printJSON writes v as indented JSON on stdout.
func printJSON(v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal output: %w", err)
	}
	if _, err := os.Stdout.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("write output: %w", err)
	}
	return nil
}
