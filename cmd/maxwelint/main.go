// Command maxwelint is the repository's static-analysis gate. It walks
// the requested packages (default ./...) and applies the type-aware
// analyzers from internal/lint:
//
//	nondeterminism  no math/rand, wall clock, or environment reads in
//	                simulation packages (internal/xrand only)
//	floatcmp        no == / != between floats outside approved
//	                tolerance helpers
//	panicmsg        panic messages carry the "pkg: " prefix
//	exporteddoc     exported identifiers carry doc comments
//	errdrop         error results are handled or explicitly discarded
//	dettaint        no map-iteration-, clock- or randomness-derived
//	                values flowing into json/gob/xml serialization
//	ctxprop         blocking channel ops and Waits in goroutine-spawning
//	                packages are selectable on a reaching context
//	mutexblocking   no channel ops, HTTP, file I/O or sleeps while a
//	                sync.Mutex/RWMutex is held
//	jsonschema      explicit json tags on every field reachable from the
//	                marshal roots, pinned to a golden schema file
//
// There are no directory-level waivers; findings are silenced only by a
// line-level //lint:allow <rule> "reason" directive whose reason is
// mandatory.
//
// Each finding prints as "file:line: [rule] message" with the file
// relative to the module root; -json prints one JSON object per finding
// instead, and -github appends GitHub Actions ::error annotations so CI
// findings surface inline on the pull-request diff. The exit status is 0
// when the tree is clean, 1 when there are findings, and 2 on usage or
// load errors.
//
// -write-schema regenerates the golden schema files the jsonschema rule
// pins (see `make lint-schema`) instead of linting.
//
// Usage:
//
//	maxwelint [-rules list] [-disable list] [-exempt rule=prefix,...] [-json] [-github] [packages]
//	maxwelint -write-schema
//
// Examples:
//
//	maxwelint ./...
//	maxwelint -rules floatcmp,errdrop ./internal/...
//	maxwelint -json ./... | jq .rule
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"maxwe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the linter and returns the process exit code.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("maxwelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules       = fs.String("rules", "", "comma-separated rules to enable (default: all)")
		disable     = fs.String("disable", "", "comma-separated rules to disable")
		exempts     multiFlag
		list        = fs.Bool("list", false, "list available rules and exit")
		jsonOut     = fs.Bool("json", false, "emit one JSON object per finding (file, line, rule, message)")
		github      = fs.Bool("github", false, "also emit GitHub Actions ::error annotations for inline PR review")
		writeSchema = fs.Bool("write-schema", false, "regenerate the jsonschema golden files and exit")
	)
	fs.Var(&exempts, "exempt", "rule=prefix[,prefix...] paths a rule must not report on (repeatable; ad-hoc investigation only — the committed tree carries none)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: maxwelint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	cfg.Enable = splitList(*rules)
	cfg.Disable = splitList(*disable)
	for _, e := range exempts {
		rule, prefixes, ok := strings.Cut(e, "=")
		if !ok {
			fmt.Fprintf(stderr, "maxwelint: bad -exempt %q, need rule=prefix[,prefix...]\n", e)
			return 2
		}
		cfg.Exempt[rule] = append(cfg.Exempt[rule], splitList(prefixes)...)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "maxwelint: %v\n", err)
		return 2
	}
	if *writeSchema {
		written, err := lint.WriteSchemaGolden(root, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "maxwelint: %v\n", err)
			return 2
		}
		for _, path := range written {
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
		return 0
	}
	diags, err := lint.Run(root, fs.Args(), cfg)
	if err != nil {
		fmt.Fprintf(stderr, "maxwelint: %v\n", err)
		return 2
	}
	printDiagnostics(stdout, diags, *jsonOut, *github)
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "maxwelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire form of one diagnostic, one object per
// line so the stream composes with jq and line-oriented CI tooling.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// printDiagnostics renders the findings in the selected formats. The
// -github annotations always accompany the primary format (text or
// JSON): GitHub scans the whole log for workflow commands, so mixing
// streams is safe and keeps the human-readable listing intact.
func printDiagnostics(stdout *os.File, diags []lint.Diagnostic, asJSON, github bool) {
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if asJSON {
			// Encode cannot fail for this flat struct; a broken pipe ends
			// the process anyway.
			_ = enc.Encode(jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Msg,
			})
		} else {
			fmt.Fprintln(stdout, d)
		}
		if github {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,title=maxwelint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Rule, escapeGitHub(d.Msg))
		}
	}
}

// escapeGitHub encodes the characters GitHub workflow commands treat as
// message terminators.
func escapeGitHub(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// multiFlag collects repeated occurrences of a string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

// Set appends one occurrence of the flag.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
