// Command maxwelint is the repository's static-analysis gate. It walks
// the requested packages (default ./...) and applies the repo-specific
// analyzers from internal/lint:
//
//	nondeterminism  no math/rand, wall clock, or environment reads in
//	                simulation packages (internal/xrand only)
//	floatcmp        no == / != between floats outside approved
//	                tolerance helpers
//	panicmsg        panic messages carry the "pkg: " prefix
//	exporteddoc     exported identifiers carry doc comments
//	errdrop         error results are handled or explicitly discarded
//
// Each finding prints as "file:line: [rule] message" with the file
// relative to the module root. The exit status is 0 when the tree is
// clean, 1 when there are findings, and 2 on usage or load errors.
//
// Usage:
//
//	maxwelint [-rules list] [-disable list] [-exempt rule=prefix,...] [packages]
//
// Examples:
//
//	maxwelint ./...
//	maxwelint -rules floatcmp,errdrop ./internal/...
//	maxwelint -exempt exporteddoc=internal/experiments/ ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"maxwe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the linter and returns the process exit code.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("maxwelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules   = fs.String("rules", "", "comma-separated rules to enable (default: all)")
		disable = fs.String("disable", "", "comma-separated rules to disable")
		exempts multiFlag
		list    = fs.Bool("list", false, "list available rules and exit")
	)
	fs.Var(&exempts, "exempt", "rule=prefix[,prefix...] paths a rule must not report on (repeatable; rule \"*\" applies to all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: maxwelint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	cfg.Enable = splitList(*rules)
	cfg.Disable = splitList(*disable)
	for _, e := range exempts {
		rule, prefixes, ok := strings.Cut(e, "=")
		if !ok {
			fmt.Fprintf(stderr, "maxwelint: bad -exempt %q, need rule=prefix[,prefix...]\n", e)
			return 2
		}
		cfg.Exempt[rule] = append(cfg.Exempt[rule], splitList(prefixes)...)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "maxwelint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(root, fs.Args(), cfg)
	if err != nil {
		fmt.Fprintf(stderr, "maxwelint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "maxwelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// multiFlag collects repeated occurrences of a string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

// Set appends one occurrence of the flag.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
