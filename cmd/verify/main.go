// Command verify is the reproduction gate: it re-derives the paper's
// anchor numbers and orderings from scratch and reports PASS/FAIL for
// each, exiting non-zero if any check fails. It is what a reviewer runs
// first.
//
//	go run ./cmd/verify
package main

import (
	"fmt"
	"math"
	"os"

	"maxwe/internal/analytic"
	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/ecp"
	"maxwe/internal/experiments"
	"maxwe/internal/mapping"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

type check struct {
	name string
	run  func() (detail string, ok bool)
}

func main() {
	s := experiments.DefaultSetup()
	s.Regions = 256
	s.LinesPerRegion = 16
	s.MeanEndurance = 1000

	checks := []check{
		{"Eq 5: analytic UAA ratio at q=50 is 3.9%", func() (string, bool) {
			got := analytic.FromPQ(1e6, 0, 50).UAARatio()
			return fmt.Sprintf("got %.4f", got), math.Abs(got-0.0392) < 0.0005
		}},
		{"§4.3: analytic triple at p=0.1, q=50 is 38.1/22.2/20.8%", func() (string, bool) {
			par := analytic.FromPQ(1e6, 0.1, 50)
			a, b, c := par.NormalizedMaxWE(), par.NormalizedPCDPS(), par.NormalizedPSWorst()
			return fmt.Sprintf("got %.3f/%.3f/%.3f", a, b, c),
				math.Abs(a-0.381) < 0.002 && math.Abs(b-0.222) < 0.002 && math.Abs(c-0.208) < 0.002
		}},
		{"§5.3.2: hybrid table ~0.16 MB vs ~1.1 MB, ~85% smaller", func() (string, bool) {
			o := mapping.PaperOverhead()
			h := mapping.BitsToMB(o.TotalBits())
			f := mapping.BitsToMB(o.TraditionalBits())
			return fmt.Sprintf("got %.3f MB vs %.3f MB (-%.1f%%)", h, f, o.Reduction()*100),
				math.Abs(h-0.16) < 0.01 && math.Abs(f-1.1) < 0.01 && math.Abs(o.Reduction()-0.85) < 0.015
		}},
		{"§2.2.2: ECP-6 capacity overhead is 11.9%", func() (string, bool) {
			got := ecp.Overhead(512, 6)
			return fmt.Sprintf("got %.3f", got), math.Abs(got-0.119) < 0.001
		}},
		{"simulated unprotected UAA lifetime matches Eq 5", func() (string, bool) {
			p := s.Profile()
			res, err := sim.Run(sim.Config{
				Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA(),
			})
			if err != nil {
				return err.Error(), false
			}
			return fmt.Sprintf("got %.4f vs analytic 0.0392", res.NormalizedLifetime),
				math.Abs(res.NormalizedLifetime-0.0392) < 0.01
		}},
		{"§5.3.1: UAA ordering max-we > pcd/ps > ps-worst > none, ~9.5X", func() (string, bool) {
			rows := experiments.TableUAA(s)
			by := map[string]experiments.UAARow{}
			for _, r := range rows {
				by[r.Scheme] = r
			}
			ok := by["max-we"].Normalized > by["pcd/ps"].Normalized &&
				by["pcd/ps"].Normalized > by["ps-worst"].Normalized &&
				by["ps-worst"].Normalized > by["none"].Normalized &&
				by["max-we"].ImprovementX > 6 && by["max-we"].ImprovementX < 13
			return fmt.Sprintf("got improvement %.1fX", by["max-we"].ImprovementX), ok
		}},
		{"Fig 6: lifetime monotone in the spare budget", func() (string, bool) {
			rows := experiments.Fig6(s, []int{0, 10, 20, 30, 40, 50})
			for i := 1; i < len(rows); i++ {
				if rows[i].Normalized < rows[i-1].Normalized {
					return fmt.Sprintf("dropped at %d%%", rows[i].SparePercent), false
				}
			}
			return fmt.Sprintf("0%%: %.3f .. 50%%: %.3f",
				rows[0].Normalized, rows[len(rows)-1].Normalized), true
		}},
		{"Fig 7: wawl > bwl > tlsr under BPA at SWR=0", func() (string, bool) {
			rows := experiments.Fig7(s, []int{0}, experiments.WLNames())
			by := map[string]float64{}
			for _, r := range rows {
				by[r.WL] = r.Normalized
			}
			return fmt.Sprintf("got tlsr %.3f, bwl %.3f, wawl %.3f",
					by["tlsr"], by["bwl"], by["wawl"]),
				by["wawl"] > by["bwl"] && by["bwl"] > by["tlsr"]
		}},
		{"Fig 8: gmean ordering max-we > pcd/ps > ps-worst under BPA", func() (string, bool) {
			_, gmeans := experiments.Fig8(s)
			return fmt.Sprintf("got %.3f/%.3f/%.3f",
					gmeans["max-we"], gmeans["pcd/ps"], gmeans["ps-worst"]),
				gmeans["max-we"] > gmeans["pcd/ps"] && gmeans["pcd/ps"] > gmeans["ps-worst"]
		}},
		{"§5.3.1 ordering holds across endurance distributions", func() (string, bool) {
			for _, ps := range experiments.ProfileSensitivity(s) {
				by := map[string]float64{}
				for _, r := range ps.Rows {
					by[r.Scheme] = r.Normalized
				}
				if !(by["max-we"] > by["pcd/ps"] && by["pcd/ps"] > by["none"]) {
					return fmt.Sprintf("broken under %s", ps.ProfileName), false
				}
			}
			return "linear, power-law, lognormal all ordered", true
		}},
		{"detector: UAA and BPA flagged in first window, benign clean", func() (string, bool) {
			flag := func(a attack.Attack) detect.Verdict {
				m, err := detect.NewMonitor(detect.Config{})
				if err != nil {
					return detect.Benign
				}
				for i := 0; i < 1024; i++ {
					if v, done := m.Observe(a.Next(1 << 16)); done {
						return v
					}
				}
				return detect.Benign
			}
			uaa := flag(attack.NewUAA())
			bpa := flag(attack.DefaultBPA(xrand.New(1)))
			benign := flag(attack.NewHotCold(1<<16, 1.1, xrand.New(2)))
			return fmt.Sprintf("uaa=%v bpa=%v zipf=%v", uaa, bpa, benign),
				uaa == detect.UAALike && bpa == detect.HammerLike && benign == detect.Benign
		}},
	}

	failures := 0
	for _, c := range checks {
		detail, ok := c.run()
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s — %s\n", status, c.name, detail)
	}
	if failures > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
}
