// Command nvmsim runs a single NVM lifetime simulation: one device, one
// spare-line scheme, one wear-leveling substrate, one attack. It prints
// the normalized lifetime and the supporting counters.
//
// The run is cancelable: on SIGINT/SIGTERM the simulation stops at the
// next poll point and the partial result is printed, so a long run
// interrupted with Ctrl-C still reports the writes it served.
//
// With -seeds N the same stack is simulated under N consecutive seeds
// (seed, seed+1, ...) and the lifetime spread is reported; -parallel
// spreads those runs across workers with results identical to -parallel 1.
//
// Examples:
//
//	nvmsim                                  # Max-WE under UAA, paper defaults
//	nvmsim -scheme none -attack uaa         # the unprotected 4% baseline
//	nvmsim -scheme max-we -attack bpa -wl wawl
//	nvmsim -scheme ps-worst -spare 0.2 -q 100
//	nvmsim -fault-transient 0.01 -fault-stuckat 0.001   # inject faults
//	nvmsim -scheme max-we -attack bpa -seeds 16 -parallel 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"maxwe"
	"maxwe/internal/memo"
	"maxwe/internal/perfmodel"
	"maxwe/internal/report"
	"maxwe/internal/runner"
)

func main() {
	cfg := maxwe.DefaultConfig()
	flag.IntVar(&cfg.Regions, "regions", cfg.Regions, "number of regions")
	flag.IntVar(&cfg.LinesPerRegion, "lines-per-region", cfg.LinesPerRegion, "lines per region")
	flag.Float64Var(&cfg.MeanEndurance, "endurance", cfg.MeanEndurance, "mean line endurance (scaled writes)")
	flag.Float64Var(&cfg.VariationQ, "q", cfg.VariationQ, "max/min endurance ratio")
	flag.BoolVar(&cfg.LinearProfile, "linear", cfg.LinearProfile, "linear endurance profile (false = Eq 1-2 power law)")
	flag.StringVar(&cfg.Scheme, "scheme", cfg.Scheme, "spare scheme: max-we|pcd|ps-random|ps-worst|ps-best|none")
	flag.Float64Var(&cfg.SpareFraction, "spare", cfg.SpareFraction, "spare fraction of total capacity")
	flag.Float64Var(&cfg.SWRFraction, "swr", cfg.SWRFraction, "SWR fraction of spare capacity (max-we)")
	flag.StringVar(&cfg.WearLeveling, "wl", cfg.WearLeveling, "wear leveling: \"\"|identity|start-gap|tlsr|pcm-s|bwl|wawl|twl")
	flag.IntVar(&cfg.Psi, "psi", cfg.Psi, "wear-leveling remap period (writes)")
	flag.StringVar(&cfg.Attack, "attack", cfg.Attack, "attack: uaa|bpa|repeated|random|hotcold")
	flag.Int64Var(&cfg.MaxUserWrites, "max-writes", cfg.MaxUserWrites, "truncate the run after this many user writes (0 = to failure)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Float64Var(&cfg.Faults.TransientProb, "fault-transient", 0, "per-write probability of a transient write failure")
	flag.Float64Var(&cfg.Faults.StuckAtProb, "fault-stuckat", 0, "per-write probability of a stuck-at line death")
	flag.Float64Var(&cfg.Faults.MetadataProb, "fault-metadata", 0, "per-write probability of a metadata corruption")
	flag.IntVar(&cfg.Faults.MaxTransientRetries, "fault-retries", 0, "max retries a transient fault demands (0 = default)")
	flag.Uint64Var(&cfg.Faults.Seed, "fault-seed", 0, "fault plan seed (independent of -seed)")
	wearBuckets := flag.Int("wear-buckets", 0, "print a wear histogram with this many buckets (0 = off)")
	seedsFlag := flag.Int("seeds", 1, "simulate this many consecutive seeds (seed, seed+1, ...) and report the spread")
	parallelFlag := flag.Int("parallel", 0, "worker count for -seeds sweeps (0 = one per CPU, 1 = sequential); results are identical at every setting")
	cacheFlag := flag.Bool("cache", false, "memoize -seeds sweep cells in the content-addressed result cache (bit-identical reruns are near-instant)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (implies -cache; default .maxwe-cache)")
	flag.Parse()

	// Ctrl-C cancels the run cooperatively; the partial result is printed
	// below. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *seedsFlag > 1 {
		runSeedSweep(ctx, cfg, *seedsFlag, *parallelFlag, openCache(*cacheFlag, *cacheDir))
		return
	}

	sys, err := maxwe.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmsim:", err)
		os.Exit(2)
	}

	var res maxwe.Result
	var wear []int
	if *wearBuckets > 0 {
		res, wear = sys.RunLifetimeWithWear(*wearBuckets)
	} else {
		res = sys.RunLifetimeCtx(ctx)
	}

	fmt.Printf("device             : %d lines (%d regions x %d), mean endurance %.0f, q=%.0f\n",
		sys.Profile().Lines(), cfg.Regions, cfg.LinesPerRegion, cfg.MeanEndurance, cfg.VariationQ)
	fmt.Printf("stack              : scheme=%s spares=%.0f%% wl=%s attack=%s\n",
		cfg.Scheme, cfg.SpareFraction*100, orNone(cfg.WearLeveling), cfg.Attack)
	fmt.Printf("user writes served : %d\n", res.UserWrites)
	fmt.Printf("device writes      : %d (amplification %.3f)\n", res.DeviceWrites, res.WriteAmplification)
	fmt.Printf("normalized lifetime: %.4f of ideal (%.0f writes)\n", res.NormalizedLifetime, sys.IdealLifetime())
	fmt.Printf("worn lines         : %d, spares used: %d\n", res.WornLines, res.SparesUsed)
	if res.Faults.Any() {
		fmt.Printf("faults injected    : transient=%d (retries=%d, backoff=%d, escalated=%d) stuck-at=%d metadata=%d (repaired=%d)\n",
			res.Faults.TransientFaults, res.Faults.Retries, res.Faults.BackoffUnits,
			res.Faults.Escalations, res.Faults.StuckAtFaults,
			res.Faults.MetadataFaults, res.Faults.MetadataRepairs)
	}
	switch {
	case res.Interrupted:
		fmt.Println("outcome            : interrupted (partial result)")
	case res.Failed:
		fmt.Println("outcome            : device failed (spares exhausted)")
	default:
		fmt.Println("outcome            : run truncated at -max-writes")
	}
	if res.Failed {
		// Project the normalized result onto a physical 1 GB PCM module
		// (4 Mi lines, 1e8 endurance) under a saturating attacker at
		// 1e8 line-writes/s — the paper's wall-clock framing.
		proj, err := perfmodel.Project(res.NormalizedLifetime, 1<<22, 1e8, 1e8)
		if err == nil {
			fmt.Printf("projected          : a real 1 GB module would last %s under this workload\n",
				perfmodel.FormatDuration(proj.Seconds))
		}
	}
	if len(wear) > 0 {
		fmt.Println()
		labels := make([]string, len(wear))
		values := make([]float64, len(wear))
		for i, c := range wear {
			lo := 100 * i / len(wear)
			hi := 100 * (i + 1) / len(wear)
			labels[i] = fmt.Sprintf("%3d-%3d%%", lo, hi)
			values[i] = float64(c)
		}
		fmt.Print(report.BarChart("lines per consumed-budget bucket at end of run",
			labels, values, 40))
	}
}

// runSeedSweep simulates the configured stack under seeds consecutive
// seeds through the sweep supervisor and prints the per-seed lifetimes
// plus their spread. Every run is an independent cell, so the sweep is
// embarrassingly parallel yet produces the same table at every worker
// count.
func runSeedSweep(ctx context.Context, base maxwe.Config, seeds, parallel int, cache *memo.Cache) {
	cells := make([]runner.Cell[maxwe.Result], seeds)
	for i := 0; i < seeds; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		cells[i] = runner.Cell[maxwe.Result]{
			Key:         fmt.Sprintf("seed/%d", cfg.Seed),
			Fingerprint: cfg.Fingerprint(),
			Run: func(c context.Context) (maxwe.Result, error) {
				sys, err := maxwe.New(cfg)
				if err != nil {
					return maxwe.Result{}, err
				}
				res := sys.RunLifetimeCtx(c)
				if res.Interrupted {
					// Leave the cell incomplete rather than recording a
					// truncated lifetime.
					return maxwe.Result{}, c.Err()
				}
				return res, nil
			},
		}
	}
	rep, err := runner.Run(ctx, runner.Config{Parallelism: parallel, Cache: cache}, cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmsim:", err)
		os.Exit(2)
	}

	t := report.NewTable(
		fmt.Sprintf("lifetime across %d seeds (scheme=%s wl=%s attack=%s)",
			seeds, base.Scheme, orNone(base.WearLeveling), base.Attack),
		"seed", "normalized lifetime", "user writes", "worn lines", "spares used")
	var sum, min, max float64
	n := 0
	for i := 0; i < seeds; i++ {
		seed := base.Seed + uint64(i)
		res, ok := rep.Results[fmt.Sprintf("seed/%d", seed)]
		if !ok {
			continue
		}
		t.AddRow(seed, res.NormalizedLifetime, res.UserWrites, res.WornLines, res.SparesUsed)
		if n == 0 || res.NormalizedLifetime < min {
			min = res.NormalizedLifetime
		}
		if n == 0 || res.NormalizedLifetime > max {
			max = res.NormalizedLifetime
		}
		sum += res.NormalizedLifetime
		n++
	}
	_, _ = t.WriteTo(os.Stdout)
	if n > 0 {
		fmt.Printf("normalized lifetime: mean %.4f, min %.4f, max %.4f over %d seeds\n",
			sum/float64(n), min, max, n)
	}
	for key, msg := range rep.Failed {
		fmt.Fprintf(os.Stderr, "nvmsim: %s failed: %s\n", key, msg)
	}
	if rep.Interrupted {
		fmt.Fprintf(os.Stderr, "nvmsim: interrupted after %d/%d seeds (partial spread above)\n",
			n, seeds)
		os.Exit(130)
	}
	if len(rep.Failed) > 0 {
		os.Exit(1)
	}
}

// openCache opens the content-addressed result cache when -cache or
// -cache-dir asked for one; nil disables memoization.
func openCache(enabled bool, dir string) *memo.Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		dir = ".maxwe-cache"
	}
	c, err := memo.Open(memo.Options{Dir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmsim:", err)
		os.Exit(2)
	}
	return c
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
