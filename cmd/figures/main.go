// Command figures regenerates the paper's tables and figures at the full
// default experiment scale (512 regions x 32 lines) and prints them as
// text tables (or CSV with -csv). The committed reference output is
// recorded in EXPERIMENTS.md.
//
// The sweep-shaped artifacts (Figures 7 and 8) run through the resilient
// sweep supervisor: SIGINT/SIGTERM cancels the run cooperatively and the
// partial rows computed so far are still printed, and -checkpoint makes
// the sweeps resumable — a rerun with the same flags picks up exactly
// where the interrupted run stopped, with bit-identical results.
//
// Usage:
//
//	figures            # everything (takes a minute or two on one core)
//	figures -fig 6     # just Figure 6
//	figures -fig 8 -csv
//	figures -quick     # the fast benchmark scale instead of the full one
//	figures -fig 8 -checkpoint /tmp/fig-ckpt   # resumable sweep
//	figures -fig 8 -cache      # memoized: a warm rerun is near-instant
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"maxwe/internal/analytic"
	"maxwe/internal/attack"
	"maxwe/internal/buffer"
	"maxwe/internal/encoding"
	"maxwe/internal/experiments"
	"maxwe/internal/mapping"
	"maxwe/internal/memo"
	"maxwe/internal/report"
	"maxwe/internal/runner"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

var (
	figFlag = flag.String("fig", "all",
		"artifact to regenerate: 1|2|5|6|7|8|uaa|overhead|vuln|ablations|"+
			"ecp|coverage|tlsrcheck|salvage|zoo|profiles|oracle|guard|all")
	csvFlag   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonFlag  = flag.Bool("json", false, "emit JSON instead of aligned tables")
	quickFlag = flag.Bool("quick", false, "use the small benchmark scale (faster, noisier)")
	seedFlag  = flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	outDir    = flag.String("o", "", "write each artifact to <dir>/<id>.txt instead of stdout")
	ckptDir   = flag.String("checkpoint", "",
		"checkpoint directory for the sweep artifacts (7, 8): completed cells persist there and reruns resume")
	cellTimeout = flag.Duration("cell-timeout", 0,
		"per-cell deadline for the sweep artifacts (0 = none)")
	retriesFlag = flag.Int("retries", 0,
		"additional deterministic attempts per failed sweep cell")
	parallelFlag = flag.Int("parallel", 0,
		"worker count for the sweep artifacts (0 = one per CPU, 1 = sequential); results are identical at every setting")
	cacheFlag = flag.Bool("cache", false,
		"memoize sweep cells in the content-addressed result cache: a rerun of any sweep sharing the cache serves unchanged cells instantly, bit-identically")
	cacheDir = flag.String("cache-dir", "",
		"result cache directory (implies -cache; default .maxwe-cache)")
)

// memoCache is the process-wide result cache (nil when -cache is off);
// the sweep artifacts hand it to the runner.
var memoCache *memo.Cache

// runCtx is canceled on SIGINT/SIGTERM; the sweep artifacts poll it and
// the all-artifacts loop stops between artifacts.
var runCtx context.Context = context.Background()

func main() {
	flag.Parse()
	var stop context.CancelFunc
	runCtx, stop = signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	s := experiments.DefaultSetup()
	if *quickFlag {
		s.Regions = 256
		s.LinesPerRegion = 16
		s.MeanEndurance = 1000
	}
	if *seedFlag != 0 {
		s.Seed = *seedFlag
	}

	runners := map[string]func(experiments.Setup){
		"1":         fig1,
		"2":         fig2,
		"5":         fig5,
		"6":         fig6,
		"7":         fig7,
		"8":         fig8,
		"uaa":       tableUAA,
		"overhead":  tableOverhead,
		"vuln":      vulnerabilities,
		"ablations": ablations,
		"ecp":       ecpStudy,
		"coverage":  coverageStudy,
		"tlsrcheck": tlsrCheck,
		"salvage":   salvageStudy,
		"zoo":       wlZoo,
		"profiles":  profileSensitivity,
		"oracle":    oracleStudy,
		"guard":     guardStudy,
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
	}
	if *cacheFlag || *cacheDir != "" {
		dir := *cacheDir
		if dir == "" {
			dir = ".maxwe-cache"
		}
		var err error
		memoCache, err = memo.Open(memo.Options{Dir: dir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
	}
	invoke := func(id string, run func(experiments.Setup)) {
		if *outDir == "" {
			run(s)
			fmt.Println()
			return
		}
		// Redirect stdout to <dir>/<id>.txt for this artifact; the
		// runners all print through os.Stdout.
		f, err := os.Create(fmt.Sprintf("%s/%s.txt", *outDir, sanitize(id)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		old := os.Stdout
		os.Stdout = f
		run(s)
		os.Stdout = old
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s/%s.txt\n", *outDir, sanitize(id))
	}
	if *figFlag == "all" {
		for _, k := range []string{"1", "2", "5", "6", "7", "8", "uaa", "overhead",
			"vuln", "ablations", "ecp", "coverage", "tlsrcheck", "salvage", "zoo",
			"profiles", "oracle", "guard"} {
			if runCtx.Err() != nil {
				fmt.Fprintln(os.Stderr, "figures: interrupted, remaining artifacts skipped")
				os.Exit(130)
			}
			invoke(k, runners[k])
		}
		return
	}
	run, ok := runners[*figFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", *figFlag)
		os.Exit(2)
	}
	invoke(*figFlag, run)
}

// sanitize keeps artifact ids filesystem-safe (they already are; this is
// defense in depth for future ids).
func sanitize(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func emit(t *report.Table) {
	switch {
	case *jsonFlag:
		fmt.Print(t.JSON())
	case *csvFlag:
		fmt.Print(t.CSV())
	default:
		_, _ = t.WriteTo(os.Stdout)
	}
}

func fig1(s experiments.Setup) {
	par := analytic.FromPQ(float64(s.Regions*s.LinesPerRegion), 0, s.VariationQ)
	p := s.Profile()
	res, err := sim.Run(sim.Config{
		Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA(),
	})
	if err != nil {
		panic(fmt.Errorf("main: fig1 simulation: %v", err))
	}
	t := report.NewTable("Figure 1 — ideal vs UAA lifetime (linear model)", "quantity", "value")
	t.AddRow("analytic L_UAA/L_ideal (Eq 5)", par.UAARatio())
	t.AddRow("simulated normalized lifetime under UAA", res.NormalizedLifetime)
	for _, pt := range par.Fig1Series(11) {
		t.AddRow(fmt.Sprintf("endurance at rank %.1f", pt.LineRank), pt.Endurance)
	}
	emit(t)
}

func fig2(s experiments.Setup) {
	s.Psi = 4
	r := experiments.Fig2(s)
	t := report.NewTable("Figure 2 / §3.3.1 — remapping aggravates wear under UAA",
		"configuration", "write amplification", "normalized lifetime")
	t.AddRow("no wear leveling", r.PlainAmplification, r.PlainLifetime)
	t.AddRow("tlsr remapping", r.LeveledAmplification, r.LeveledLifetime)
	emit(t)
}

func fig5(s experiments.Setup) {
	t := report.NewTable("Figure 5 — analytic lifetime surface (normalized to ideal)",
		"p", "q", "max-we", "pcd/ps", "ps-worst")
	for _, pt := range analytic.Fig5Surface(0.1, 0.3, 5, 10, 100, 10) {
		t.AddRow(pt.P, pt.Q, pt.MaxWE, pt.PCDPS, pt.PSWorst)
	}
	emit(t)
}

func fig6(s experiments.Setup) {
	rows := experiments.Fig6(s, []int{0, 1, 10, 20, 30, 40, 50})
	t := report.NewTable("Figure 6 — normalized lifetime under UAA vs spare percentage",
		"spare %", "normalized lifetime")
	for _, r := range rows {
		t.AddRow(r.SparePercent, r.Normalized)
	}
	emit(t)
}

// sweepConfig assembles the runner configuration for one sweep artifact.
// The fingerprint couples the artifact id with the full Setup, so a
// checkpoint from a different artifact, scale or seed is rejected.
func sweepConfig(artifact string, s experiments.Setup) runner.Config {
	cfg := runner.Config{
		CellTimeout: *cellTimeout,
		Retries:     *retriesFlag,
		Parallelism: *parallelFlag,
		Cache:       memoCache,
		Progress: func(ev runner.Event) {
			switch ev.Status {
			case runner.StatusRetry, runner.StatusFailed:
				fmt.Fprintf(os.Stderr, "figures: %s %s (attempt %d): %s\n",
					ev.Key, ev.Status, ev.Attempt, ev.Err)
			case runner.StatusCached:
				fmt.Fprintf(os.Stderr, "figures: %s resumed from checkpoint\n", ev.Key)
			case runner.StatusMemo:
				fmt.Fprintf(os.Stderr, "figures: %s served from result cache\n", ev.Key)
			}
		},
	}
	if *ckptDir != "" {
		cfg.CheckpointPath = filepath.Join(*ckptDir, artifact+".ckpt.json")
		cfg.Fingerprint = artifact + "/" + s.Fingerprint()
	}
	return cfg
}

// reportSweep surfaces a sweep artifact's error or interruption on stderr;
// the caller renders whatever cells completed.
func reportSweep[T any](artifact string, rep runner.Report[T], total int, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	if rep.Interrupted {
		fmt.Fprintf(os.Stderr, "figures: %s interrupted after %d/%d cells (partial table follows)\n",
			artifact, len(rep.Results), total)
	}
}

func fig7(s experiments.Setup) {
	percents := experiments.Fig7DefaultPercents()
	total := len(percents) * len(experiments.WLNames())
	rows, rep, err := experiments.Fig7Sweep(runCtx, sweepConfig("fig7", s), s, percents, experiments.WLNames())
	reportSweep("fig7", rep, total, err)
	t := report.NewTable("Figure 7 — normalized lifetime under BPA vs SWR percentage",
		"wear leveling", "swr %", "normalized lifetime")
	series := map[string][]float64{}
	for _, r := range rows {
		t.AddRow(r.WL, r.SWRPercent, r.Normalized)
		series[r.WL] = append(series[r.WL], r.Normalized)
	}
	emit(t)
	if !*csvFlag && !*jsonFlag && len(rows) == len(percents)*len(experiments.WLNames()) {
		labels := make([]string, len(percents))
		for i, p := range percents {
			labels[i] = fmt.Sprintf("%d%%", p)
		}
		fmt.Println()
		fmt.Print(report.LinePlot("Figure 7 curves (y: normalized lifetime, x: SWR %)",
			labels, series, 12))
	}
}

func fig8(s experiments.Setup) {
	total := len(experiments.WLNames()) * len(experiments.SchemeNames())
	rows, gmeans, rep, err := experiments.Fig8Sweep(runCtx, sweepConfig("fig8", s), s)
	reportSweep("fig8", rep, total, err)
	t := report.NewTable("Figure 8 — spare-scheme comparison under BPA",
		"wear leveling", "scheme", "normalized lifetime")
	for _, r := range rows {
		t.AddRow(r.WL, r.Scheme, r.Normalized)
	}
	for _, scheme := range experiments.SchemeNames() {
		if g, ok := gmeans[scheme]; ok {
			t.AddRow("gmean", scheme, g)
		}
	}
	emit(t)
}

func tableUAA(s experiments.Setup) {
	rows := experiments.TableUAA(s)
	t := report.NewTable("§5.3.1 — lifetime under UAA (10% spares)",
		"scheme", "normalized lifetime", "improvement")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.Normalized, fmt.Sprintf("%.1fX", r.ImprovementX))
	}
	emit(t)
}

func tableOverhead(experiments.Setup) {
	o := mapping.PaperOverhead()
	t := report.NewTable("§5.3.2 — mapping table overhead (1 GB, 2048 regions)",
		"table", "size (MB)")
	t.AddRow("Max-WE hybrid (LMT+RMT+tags)", mapping.BitsToMB(o.TotalBits()))
	t.AddRow("  of which LMT", mapping.BitsToMB(o.LMTBits()))
	t.AddRow("  of which RMT", mapping.BitsToMB(o.RMTBits()))
	t.AddRow("  of which wear-out tags", mapping.BitsToMB(o.TagBits()))
	t.AddRow("traditional line-level", mapping.BitsToMB(o.TraditionalBits()))
	t.AddRow("reduction", fmt.Sprintf("%.1f%%", o.Reduction()*100))
	emit(t)
}

func vulnerabilities(experiments.Setup) {
	const memLines = 4096
	hot := buffer.New(32, 8)
	z := xrand.NewZipf(memLines, 1.2)
	src := xrand.New(3)
	for i := 0; i < 100000; i++ {
		hot.Write(z.Draw(src))
	}
	uaa := buffer.New(32, 8)
	for i := 0; i < 100000; i++ {
		uaa.Write(i % memLines)
	}
	const width = 32
	fnw := encoding.NewFNW(width, 0)
	a, b := encoding.AdversarialPair(width)
	total := 0
	const writes = 10000
	for i := 0; i < writes; i++ {
		if i%2 == 0 {
			total += fnw.Write(b)
		} else {
			total += fnw.Write(a)
		}
	}
	t := report.NewTable("§3.3.2 — buffer and write-reduction vulnerabilities",
		"quantity", "value")
	t.AddRow("DRAM buffer hit rate, Zipf workload", hot.HitRate())
	t.AddRow("DRAM buffer hit rate, UAA", uaa.HitRate())
	t.AddRow("Flip-N-Write bit-cost, random data (32-bit)", encoding.AverageRandomCost(width))
	t.AddRow("Flip-N-Write bit-cost, adversarial pattern", float64(total)/writes)
	t.AddRow("Flip-N-Write worst-case bound", encoding.MaxFNWCost(width))
	emit(t)
}

func ablations(s experiments.Setup) {
	rows := experiments.Ablations(s)
	t := report.NewTable("Ablations — Max-WE design strategies under UAA (10% spares)",
		"variant", "normalized lifetime")
	for _, r := range rows {
		t.AddRow(r.Variant, r.Normalized)
	}
	emit(t)
}

func ecpStudy(s experiments.Setup) {
	rows := experiments.ECPStudy(s, []int{0, 1, 2, 4, 6})
	t := report.NewTable("Extension — ECP salvaging vs spare-line replacement under UAA",
		"ECP k", "capacity overhead", "ECP only", "ECP + Max-WE")
	for _, r := range rows {
		t.AddRow(r.K, fmt.Sprintf("%.1f%%", r.CapacityOverhead*100), r.ECPOnly, r.ECPPlusMaxWE)
	}
	emit(t)
}

func coverageStudy(s experiments.Setup) {
	rows := experiments.CoverageStudy(s, []float64{0.25, 0.5, 0.75, 0.95, 1.0})
	t := report.NewTable("Extension — UAA effectiveness vs reachable memory fraction (§3.2)",
		"coverage", "unprotected", "max-we")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", r.Coverage*100), r.Unprotected, r.MaxWE)
	}
	emit(t)
}

func guardStudy(s experiments.Setup) {
	rows := experiments.GuardStudy(s, 1e8)
	t := report.NewTable("Extension — detect+throttle guard (UAA on Max-WE, projected to a 1 GB module)",
		"configuration", "time to failure (days)", "stretch")
	for _, r := range rows {
		t.AddRow(r.Configuration, r.Days, fmt.Sprintf("%.0fx", r.Stretch))
	}
	emit(t)
}

func oracleStudy(s experiments.Setup) {
	rows := experiments.OracleStudy(s)
	t := report.NewTable("Extension — oblivious UAA vs endurance-aware adversary",
		"scheme", "lifetime under UAA", "lifetime under oracle sweep")
	for _, r := range rows {
		t.AddRow(r.Scheme, r.UAA, r.Oracle)
	}
	emit(t)
}

func profileSensitivity(s experiments.Setup) {
	rows := experiments.ProfileSensitivity(s)
	t := report.NewTable("Extension — §5.3.1 under three endurance distributions (q=50)",
		"distribution", "scheme", "normalized lifetime")
	for _, ps := range rows {
		for _, r := range ps.Rows {
			t.AddRow(ps.ProfileName, r.Scheme, r.Normalized)
		}
	}
	emit(t)
}

func wlZoo(s experiments.Setup) {
	rows := experiments.WLZoo(s)
	t := report.NewTable("Extension — all wear-leveling substrates under BPA (Max-WE, 10% spares)",
		"wear leveling", "normalized lifetime", "amplification")
	for _, r := range rows {
		t.AddRow(r.WL, r.Normalized, r.Amplification)
	}
	emit(t)
}

func salvageStudy(s experiments.Setup) {
	rows := experiments.SalvageStudy(s)
	t := report.NewTable("Extension — salvaging baselines: UAA rounds to 10% capacity loss",
		"policy", "rounds / mean endurance")
	for _, r := range rows {
		t.AddRow(r.Policy, r.RoundsTo90)
	}
	emit(t)
}

func tlsrCheck(s experiments.Setup) {
	r := experiments.TLSRModelCheck(s)
	t := report.NewTable("Extension — behavioural TLSR model vs exact Security Refresh (BPA wear spread)",
		"implementation", "per-line wear CV", "write amplification")
	t.AddRow("behavioural swap model", r.BehavioralSpreadCV, r.BehavioralAmp)
	t.AddRow("two-level security refresh (exact)", r.ExactSpreadCV, r.ExactAmp)
	emit(t)
}
