// Command tracegen writes a synthetic memory trace in the repository's
// text trace format (one "W <addr>" / "R <addr>" record per line), for
// replay with cmd/replay.
//
// Examples:
//
//	tracegen -n 100000 > oltp.trace                 # default OLTP-like mix
//	tracegen -mix streaming -n 50000 > scan.trace
//	tracegen -zipf 1.3 -writes 0.7 -lines 65536 > hot.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"maxwe/internal/trace"
	"maxwe/internal/xrand"
)

func main() {
	n := flag.Int("n", 100_000, "number of records")
	lines := flag.Int("lines", 1<<16, "logical address-space size in lines")
	mix := flag.String("mix", "oltp", "workload mix: oltp|streaming|custom")
	seq := flag.Float64("seq", 0, "custom mix: sequential weight")
	rnd := flag.Float64("rand", 0, "custom mix: random weight")
	zipf := flag.Float64("zipf", 0, "custom mix: zipf weight (exponent via -zipf-s)")
	zipfS := flag.Float64("zipf-s", 1.1, "custom mix: zipf exponent")
	writes := flag.Float64("writes", -1, "write ratio override in [0,1] (-1 = mix default)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var m trace.Mix
	switch *mix {
	case "oltp":
		m = trace.OLTPLike()
	case "streaming":
		m = trace.StreamingLike()
	case "custom":
		m = trace.Mix{Sequential: *seq, Random: *rnd, Zipf: *zipf, ZipfS: *zipfS}
		if *writes < 0 {
			m.WriteRatio = 0.5
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown mix %q\n", *mix)
		os.Exit(2)
	}
	if *writes >= 0 {
		m.WriteRatio = *writes
	}

	g, err := trace.NewGenerator(*lines, m, xrand.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	fmt.Printf("# tracegen n=%d lines=%d mix=%s seed=%d\n", *n, *lines, *mix, *seed)
	if err := trace.Encode(os.Stdout, g.Generate(*n)); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
