// Command replay runs a recorded memory trace (cmd/tracegen's format)
// against a configured protection stack and reports the wear it caused —
// the trace-driven counterpart of cmd/nvmsim's attack-driven runs.
//
// Reads are ignored (they do not wear NVM); write addresses beyond the
// stack's logical space fold modulo its size. The trace is replayed in a
// loop -loops times (0 = once).
//
// A long replay is cancelable: on SIGINT/SIGTERM the loop stops at the
// next loop boundary and the wear accumulated so far is still reported.
//
// With -seeds N the trace is replayed against N independently seeded
// stacks (seed, seed+1, ...) and the wear spread is reported; -parallel
// spreads those replays across workers with results identical to
// -parallel 1.
//
// Examples:
//
//	tracegen -n 100000 > oltp.trace
//	replay -trace oltp.trace
//	replay -trace oltp.trace -scheme none -loops 100
//	replay -trace oltp.trace -loops 0 -seeds 8 -parallel 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"maxwe"
	"maxwe/internal/memo"
	"maxwe/internal/report"
	"maxwe/internal/runner"
	"maxwe/internal/trace"
)

func main() {
	cfg := maxwe.DefaultConfig()
	tracePath := flag.String("trace", "", "trace file to replay (required; - for stdin)")
	loops := flag.Int("loops", 1, "replay the trace this many times (0 = until device failure)")
	flag.IntVar(&cfg.Regions, "regions", cfg.Regions, "number of regions")
	flag.IntVar(&cfg.LinesPerRegion, "lines-per-region", cfg.LinesPerRegion, "lines per region")
	flag.Float64Var(&cfg.MeanEndurance, "endurance", cfg.MeanEndurance, "mean line endurance (scaled writes)")
	flag.Float64Var(&cfg.VariationQ, "q", cfg.VariationQ, "max/min endurance ratio")
	flag.StringVar(&cfg.Scheme, "scheme", cfg.Scheme, "spare scheme: max-we|pcd|ps-random|ps-worst|ps-best|none")
	flag.Float64Var(&cfg.SpareFraction, "spare", cfg.SpareFraction, "spare fraction of total capacity")
	flag.StringVar(&cfg.WearLeveling, "wl", cfg.WearLeveling, "wear-leveling substrate")
	flag.IntVar(&cfg.Psi, "psi", cfg.Psi, "wear-leveling remap period")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	seedsFlag := flag.Int("seeds", 1, "replay against this many consecutively seeded stacks and report the spread")
	parallelFlag := flag.Int("parallel", 0, "worker count for -seeds sweeps (0 = one per CPU, 1 = sequential); results are identical at every setting")
	cacheFlag := flag.Bool("cache", false, "memoize -seeds sweep cells in the content-addressed result cache (keyed by config, loop budget and trace content)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (implies -cache; default .maxwe-cache)")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "replay: -trace is required")
		os.Exit(2)
	}
	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }() // read-only; nothing to flush
		in = f
	}
	records, err := trace.Decode(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	writesInTrace := 0
	for _, r := range records {
		if r.Op == trace.Write {
			writesInTrace++
		}
	}
	if writesInTrace == 0 {
		fmt.Fprintln(os.Stderr, "replay: trace contains no writes")
		os.Exit(2)
	}

	// Ctrl-C stops the replay at the next poll point; the partial wear
	// report below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *seedsFlag > 1 {
		runSeedSweep(ctx, cfg, records, *tracePath, writesInTrace, *loops, *seedsFlag, *parallelFlag,
			openCache(*cacheFlag, *cacheDir))
		return
	}

	sys, err := maxwe.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	res, loopsDone, interrupted := replayTrace(ctx, sys, records, *loops)
	fmt.Printf("trace              : %s (%d records, %d writes/loop)\n",
		*tracePath, len(records), writesInTrace)
	fmt.Printf("stack              : scheme=%s spares=%.0f%% wl=%s\n",
		cfg.Scheme, cfg.SpareFraction*100, orNone(cfg.WearLeveling))
	fmt.Printf("loops replayed     : %d\n", loopsDone)
	fmt.Printf("user writes served : %d\n", res.UserWrites)
	fmt.Printf("device writes      : %d (amplification %.3f)\n", res.DeviceWrites, res.WriteAmplification)
	fmt.Printf("budget consumed    : %.2f%% of ideal lifetime\n", res.NormalizedLifetime*100)
	fmt.Printf("worn lines         : %d, spares used: %d\n", res.WornLines, res.SparesUsed)
	switch {
	case interrupted:
		fmt.Println("outcome            : interrupted (partial replay)")
	case res.Failed:
		fmt.Println("outcome            : device failed")
	default:
		fmt.Println("outcome            : device survived the replay")
	}
}

// replayTrace loops the decoded trace through the stack's stepper until
// the loop budget, device failure or cancellation.
func replayTrace(ctx context.Context, sys *maxwe.System, records []trace.Record, loops int) (maxwe.Result, int, bool) {
	st := sys.Stepper()
	loopsDone := 0
	interrupted := false
	for loop := 0; (loops == 0 || loop < loops) && !st.Failed() && !interrupted; loop++ {
		for i, r := range records {
			if i&4095 == 0 && ctx.Err() != nil {
				interrupted = true
				break
			}
			if r.Op != trace.Write {
				continue
			}
			if !st.Write(r.Line) {
				break
			}
		}
		if !interrupted {
			loopsDone++
		}
	}
	return st.Result(), loopsDone, interrupted
}

// seedReplay is one seeded replay outcome carried through the sweep
// supervisor.
type seedReplay struct {
	Seed   uint64       `json:"seed"`
	Loops  int          `json:"loops"`
	Result maxwe.Result `json:"result"`
}

// runSeedSweep replays the trace against seeds independently seeded
// stacks and prints the wear spread. Each replay is an independent cell,
// so worker count never changes the table.
func runSeedSweep(ctx context.Context, base maxwe.Config, records []trace.Record,
	tracePath string, writesInTrace, loops, seeds, parallel int, cache *memo.Cache) {
	// The replay result depends on the trace content, not its file name,
	// so the cache key hashes the decoded records once and folds the
	// digest into every cell fingerprint alongside the stack config
	// (which carries the engine schema version) and the loop budget.
	traceFP := memo.Fingerprint("trace", records)
	cells := make([]runner.Cell[seedReplay], seeds)
	for i := 0; i < seeds; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)
		cells[i] = runner.Cell[seedReplay]{
			Key: fmt.Sprintf("seed/%d", cfg.Seed),
			Fingerprint: memo.Fingerprint("replay/v1", struct {
				Config string `json:"config"`
				Loops  int    `json:"loops"`
				Trace  string `json:"trace"`
			}{cfg.Fingerprint(), loops, traceFP}),
			Run: func(c context.Context) (seedReplay, error) {
				sys, err := maxwe.New(cfg)
				if err != nil {
					return seedReplay{}, err
				}
				res, done, interrupted := replayTrace(c, sys, records, loops)
				if interrupted {
					// Leave the cell incomplete rather than recording a
					// truncated replay.
					return seedReplay{}, c.Err()
				}
				return seedReplay{Seed: cfg.Seed, Loops: done, Result: res}, nil
			},
		}
	}
	rep, err := runner.Run(ctx, runner.Config{Parallelism: parallel, Cache: cache}, cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}

	fmt.Printf("trace              : %s (%d records, %d writes/loop)\n",
		tracePath, len(records), writesInTrace)
	fmt.Printf("stack              : scheme=%s spares=%.0f%% wl=%s\n",
		base.Scheme, base.SpareFraction*100, orNone(base.WearLeveling))
	t := report.NewTable(fmt.Sprintf("wear across %d seeds", seeds),
		"seed", "loops", "budget consumed %", "worn lines", "spares used", "failed")
	n := 0
	for i := 0; i < seeds; i++ {
		r, ok := rep.Results[fmt.Sprintf("seed/%d", base.Seed+uint64(i))]
		if !ok {
			continue
		}
		t.AddRow(r.Seed, r.Loops, r.Result.NormalizedLifetime*100,
			r.Result.WornLines, r.Result.SparesUsed, r.Result.Failed)
		n++
	}
	_, _ = t.WriteTo(os.Stdout)
	for key, msg := range rep.Failed {
		fmt.Fprintf(os.Stderr, "replay: %s failed: %s\n", key, msg)
	}
	if rep.Interrupted {
		fmt.Fprintf(os.Stderr, "replay: interrupted after %d/%d seeds (partial spread above)\n", n, seeds)
		os.Exit(130)
	}
	if len(rep.Failed) > 0 {
		os.Exit(1)
	}
}

// openCache opens the content-addressed result cache when -cache or
// -cache-dir asked for one; nil disables memoization.
func openCache(enabled bool, dir string) *memo.Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		dir = ".maxwe-cache"
	}
	c, err := memo.Open(memo.Options{Dir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	return c
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
