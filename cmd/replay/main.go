// Command replay runs a recorded memory trace (cmd/tracegen's format)
// against a configured protection stack and reports the wear it caused —
// the trace-driven counterpart of cmd/nvmsim's attack-driven runs.
//
// Reads are ignored (they do not wear NVM); write addresses beyond the
// stack's logical space fold modulo its size. The trace is replayed in a
// loop -loops times (0 = once).
//
// A long replay is cancelable: on SIGINT/SIGTERM the loop stops at the
// next loop boundary and the wear accumulated so far is still reported.
//
// Examples:
//
//	tracegen -n 100000 > oltp.trace
//	replay -trace oltp.trace
//	replay -trace oltp.trace -scheme none -loops 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"maxwe"
	"maxwe/internal/trace"
)

func main() {
	cfg := maxwe.DefaultConfig()
	tracePath := flag.String("trace", "", "trace file to replay (required; - for stdin)")
	loops := flag.Int("loops", 1, "replay the trace this many times (0 = until device failure)")
	flag.IntVar(&cfg.Regions, "regions", cfg.Regions, "number of regions")
	flag.IntVar(&cfg.LinesPerRegion, "lines-per-region", cfg.LinesPerRegion, "lines per region")
	flag.Float64Var(&cfg.MeanEndurance, "endurance", cfg.MeanEndurance, "mean line endurance (scaled writes)")
	flag.Float64Var(&cfg.VariationQ, "q", cfg.VariationQ, "max/min endurance ratio")
	flag.StringVar(&cfg.Scheme, "scheme", cfg.Scheme, "spare scheme: max-we|pcd|ps-random|ps-worst|ps-best|none")
	flag.Float64Var(&cfg.SpareFraction, "spare", cfg.SpareFraction, "spare fraction of total capacity")
	flag.StringVar(&cfg.WearLeveling, "wl", cfg.WearLeveling, "wear-leveling substrate")
	flag.IntVar(&cfg.Psi, "psi", cfg.Psi, "wear-leveling remap period")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "replay: -trace is required")
		os.Exit(2)
	}
	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }() // read-only; nothing to flush
		in = f
	}
	records, err := trace.Decode(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	writesInTrace := 0
	for _, r := range records {
		if r.Op == trace.Write {
			writesInTrace++
		}
	}
	if writesInTrace == 0 {
		fmt.Fprintln(os.Stderr, "replay: trace contains no writes")
		os.Exit(2)
	}

	sys, err := maxwe.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	st := sys.Stepper()

	// Ctrl-C stops the replay at the next poll point; the partial wear
	// report below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	loopsDone := 0
	interrupted := false
	for loop := 0; (*loops == 0 || loop < *loops) && !st.Failed() && !interrupted; loop++ {
		for i, r := range records {
			if i&4095 == 0 && ctx.Err() != nil {
				interrupted = true
				break
			}
			if r.Op != trace.Write {
				continue
			}
			if !st.Write(r.Line) {
				break
			}
		}
		if !interrupted {
			loopsDone++
		}
	}

	res := st.Result()
	fmt.Printf("trace              : %s (%d records, %d writes/loop)\n",
		*tracePath, len(records), writesInTrace)
	fmt.Printf("stack              : scheme=%s spares=%.0f%% wl=%s\n",
		cfg.Scheme, cfg.SpareFraction*100, orNone(cfg.WearLeveling))
	fmt.Printf("loops replayed     : %d\n", loopsDone)
	fmt.Printf("user writes served : %d\n", res.UserWrites)
	fmt.Printf("device writes      : %d (amplification %.3f)\n", res.DeviceWrites, res.WriteAmplification)
	fmt.Printf("budget consumed    : %.2f%% of ideal lifetime\n", res.NormalizedLifetime*100)
	fmt.Printf("worn lines         : %d, spares used: %d\n", res.WornLines, res.SparesUsed)
	switch {
	case interrupted:
		fmt.Println("outcome            : interrupted (partial replay)")
	case res.Failed:
		fmt.Println("outcome            : device failed")
	default:
		fmt.Println("outcome            : device survived the replay")
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
