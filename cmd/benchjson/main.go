// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON document: one record per benchmark with
// iterations, ns/op and — when -benchmem was passed — B/op and allocs/op,
// plus host metadata (go version, GOOS/GOARCH, NumCPU, GOMAXPROCS) so a
// committed file records the conditions it was measured under.
//
// `make bench` pipes the full figure/table/runner suite through it to
// produce BENCH_PR8.json; `make bench-smoke` uses it as a parse check.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_PR8.json
//	benchjson -compare BENCH_PR5.json BENCH_PR8.json
//
// The -compare form reads two previously written documents and exits
// nonzero when any benchmark present in both regressed by more than
// -threshold (default 20%) in ns/op. CI runs it as a non-blocking step so
// a noisy runner cannot fail the build, but the regression table still
// lands in the log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -P GOMAXPROCS suffix go test appends.
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Output is the document written to -o.
type Output struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	comparing := flag.Bool("compare", false, "compare two benchjson documents: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "with -compare, the ns/op regression fraction that fails the run")
	flag.Parse()

	if *comparing {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		oldDoc, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newDoc, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		deltas := compare(oldDoc.Benchmarks, newDoc.Benchmarks)
		regressed := false
		for _, d := range deltas {
			verdict := "ok"
			if d.Ratio > 1+*threshold {
				verdict = "REGRESSION"
				regressed = true
			}
			fmt.Printf("%-48s procs=%-2d %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
				d.Name, d.Procs, d.OldNsPerOp, d.NewNsPerOp, (d.Ratio-1)*100, verdict)
		}
		fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks (threshold %+.0f%%)\n", len(deltas), *threshold*100)
		if regressed {
			os.Exit(1)
		}
		return
	}

	benches, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did the bench run fail?)")
		os.Exit(1)
	}
	doc := Output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
	} else {
		//lint:allow durablewrite "one-shot report regenerated from the bench log on demand; a torn file just means rerunning the conversion"
		err = os.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(benches), *out)
}

// Delta is one name+procs pair present in both compared documents.
type Delta struct {
	// Name and Procs identify the benchmark as in Benchmark.
	Name  string
	Procs int
	// OldNsPerOp and NewNsPerOp are the two measurements; Ratio is
	// new/old, so 1.25 means the new run is 25% slower.
	OldNsPerOp float64
	NewNsPerOp float64
	Ratio      float64
}

// load reads a document previously written with -o.
func load(path string) (Output, error) {
	var doc Output
	buf, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare pairs benchmarks by name+procs and reports the ns/op ratio for
// every pair, preserving the new document's order. Benchmarks present in
// only one document are skipped — adding or retiring a benchmark is not a
// regression.
func compare(oldB, newB []Benchmark) []Delta {
	type key struct {
		name  string
		procs int
	}
	olds := make(map[key]Benchmark, len(oldB))
	for _, b := range oldB {
		olds[key{b.Name, b.Procs}] = b
	}
	var deltas []Delta
	for _, nb := range newB {
		ob, found := olds[key{nb.Name, nb.Procs}]
		if !found || ob.NsPerOp <= 0 {
			continue
		}
		deltas = append(deltas, Delta{
			Name:       nb.Name,
			Procs:      nb.Procs,
			OldNsPerOp: ob.NsPerOp,
			NewNsPerOp: nb.NsPerOp,
			Ratio:      nb.NsPerOp / ob.NsPerOp,
		})
	}
	return deltas
}

// parse scans go test output for result lines. A result line is
//
//	BenchmarkName-P   iterations   value unit [value unit ...]
//
// interleaved with arbitrary other output (the figure tables the benches
// print, PASS/ok trailers), which is skipped. Unrecognized units are
// ignored so custom b.ReportMetric values do not break parsing.
func parse(sc *bufio.Scanner) ([]Benchmark, error) {
	var benches []Benchmark
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // a table row that happens to start with "Benchmark"
		}
		b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark"), Procs: 1, Iterations: iters}
		if i := strings.LastIndex(b.Name, "-"); i >= 0 {
			if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], p
			}
		}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stdin: %w", err)
	}
	return benches, nil
}
