// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON document: one record per benchmark with
// iterations, ns/op and — when -benchmem was passed — B/op and allocs/op,
// plus host metadata (go version, GOOS/GOARCH, NumCPU, GOMAXPROCS) so a
// committed file records the conditions it was measured under.
//
// `make bench` pipes the full figure/table/runner suite through it to
// produce BENCH_PR8.json; `make bench-smoke` uses it as a parse check.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_PR8.json
//	benchjson -compare BENCH_PR5.json BENCH_PR8.json
//
// The -compare form reads two previously written documents and exits
// nonzero when any benchmark present in both regressed by more than
// -threshold (default 20%) in ns/op; with -allocs F an allocs/op growth
// beyond fraction F fails too (0 disables the gate). Benchmarks present
// in only one document cannot regress, but each one is named in a
// per-benchmark "only in old/new" diagnostic so a silently vanished
// benchmark is visible in the log. CI runs -compare as a non-blocking
// step so a noisy runner cannot fail the build, but the table still
// lands in the log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -P GOMAXPROCS suffix go test appends.
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Output is the document written to -o.
type Output struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	comparing := flag.Bool("compare", false, "compare two benchjson documents: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "with -compare, the ns/op regression fraction that fails the run")
	allocs := flag.Float64("allocs", 0, "with -compare, the allocs/op growth fraction that fails the run (0 disables)")
	flag.Parse()

	if *comparing {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		oldDoc, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newDoc, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		deltas, retired, added := compare(oldDoc.Benchmarks, newDoc.Benchmarks)
		regressed := false
		for _, d := range deltas {
			verdict := "ok"
			if d.Ratio > 1+*threshold {
				verdict = "REGRESSION"
				regressed = true
			}
			line := fmt.Sprintf("%-48s procs=%-2d %14.0f -> %14.0f ns/op  %+6.1f%%  %s",
				d.Name, d.Procs, d.OldNsPerOp, d.NewNsPerOp, (d.Ratio-1)*100, verdict)
			if *allocs > 0 && d.AllocsRatio > 0 {
				averdict := "ok"
				if d.AllocsRatio > 1+*allocs {
					averdict = "REGRESSION"
					regressed = true
				}
				line += fmt.Sprintf("  %.0f -> %.0f allocs/op  %+6.1f%%  %s",
					d.OldAllocsPerOp, d.NewAllocsPerOp, (d.AllocsRatio-1)*100, averdict)
			}
			fmt.Println(line)
		}
		// Unpaired benchmarks cannot regress, but name each one so a bench
		// that silently vanished (or is measured for the first time) is
		// visible rather than skipped without a trace.
		for _, b := range retired {
			fmt.Printf("%-48s procs=%-2d only in %s — retired or not run; no comparison\n",
				b.Name, b.Procs, flag.Arg(0))
		}
		for _, b := range added {
			fmt.Printf("%-48s procs=%-2d only in %s — new benchmark; no baseline\n",
				b.Name, b.Procs, flag.Arg(1))
		}
		fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks, %d only-old, %d only-new (threshold %+.0f%%)\n",
			len(deltas), len(retired), len(added), *threshold*100)
		if regressed {
			os.Exit(1)
		}
		return
	}

	benches, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did the bench run fail?)")
		os.Exit(1)
	}
	doc := Output{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
	} else {
		//lint:allow durablewrite "one-shot report regenerated from the bench log on demand; a torn file just means rerunning the conversion"
		err = os.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(benches), *out)
}

// Delta is one name+procs pair present in both compared documents.
type Delta struct {
	// Name and Procs identify the benchmark as in Benchmark.
	Name  string
	Procs int
	// OldNsPerOp and NewNsPerOp are the two measurements; Ratio is
	// new/old, so 1.25 means the new run is 25% slower.
	OldNsPerOp float64
	NewNsPerOp float64
	Ratio      float64
	// OldAllocsPerOp, NewAllocsPerOp and AllocsRatio mirror the ns/op
	// triple for the -benchmem allocation count; AllocsRatio is 0 when
	// either document lacks the measurement (no -benchmem, or zero
	// allocations in the baseline — nothing meaningful to gate).
	OldAllocsPerOp float64
	NewAllocsPerOp float64
	AllocsRatio    float64
}

// load reads a document previously written with -o.
func load(path string) (Output, error) {
	var doc Output
	buf, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare pairs benchmarks by name+procs and reports the ns/op (and,
// when both sides measured it, allocs/op) ratio for every pair,
// preserving the new document's order. Benchmarks present in only one
// document are returned separately — adding or retiring a benchmark is
// not a regression, but the caller names each one so nothing vanishes
// silently. retired preserves the old document's order, added the new
// document's.
func compare(oldB, newB []Benchmark) (deltas []Delta, retired, added []Benchmark) {
	type key struct {
		name  string
		procs int
	}
	olds := make(map[key]Benchmark, len(oldB))
	paired := make(map[key]bool, len(oldB))
	for _, b := range oldB {
		olds[key{b.Name, b.Procs}] = b
	}
	for _, nb := range newB {
		k := key{nb.Name, nb.Procs}
		ob, found := olds[k]
		if !found {
			added = append(added, nb)
			continue
		}
		paired[k] = true
		if ob.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:       nb.Name,
			Procs:      nb.Procs,
			OldNsPerOp: ob.NsPerOp,
			NewNsPerOp: nb.NsPerOp,
			Ratio:      nb.NsPerOp / ob.NsPerOp,
		}
		if ob.AllocsPerOp > 0 {
			d.OldAllocsPerOp = ob.AllocsPerOp
			d.NewAllocsPerOp = nb.AllocsPerOp
			d.AllocsRatio = nb.AllocsPerOp / ob.AllocsPerOp
		}
		deltas = append(deltas, d)
	}
	for _, ob := range oldB {
		if !paired[key{ob.Name, ob.Procs}] {
			retired = append(retired, ob)
		}
	}
	return deltas, retired, added
}

// parse scans go test output for result lines. A result line is
//
//	BenchmarkName-P   iterations   value unit [value unit ...]
//
// interleaved with arbitrary other output (the figure tables the benches
// print, PASS/ok trailers), which is skipped. Unrecognized units are
// ignored so custom b.ReportMetric values do not break parsing.
func parse(sc *bufio.Scanner) ([]Benchmark, error) {
	var benches []Benchmark
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // a table row that happens to start with "Benchmark"
		}
		b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark"), Procs: 1, Iterations: iters}
		if i := strings.LastIndex(b.Name, "-"); i >= 0 {
			if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], p
			}
		}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stdin: %w", err)
	}
	return benches, nil
}
