package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

func TestParseExtractsResultLines(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkFig7CellBatched     	     226	   5266036 ns/op",
		"BenchmarkRunnerScaling-4     	     100	   2500000 ns/op	 128 B/op	       2 allocs/op",
		"Benchmark results table: not a result line",
		"PASS",
	}, "\n")
	benches, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(benches), benches)
	}
	if b := benches[0]; b.Name != "Fig7CellBatched" || b.Procs != 1 || b.NsPerOp != 5266036 {
		t.Errorf("first = %+v", b)
	}
	if b := benches[1]; b.Name != "RunnerScaling" || b.Procs != 4 || b.NsPerOp != 2.5e6 || b.BytesPerOp != 128 || b.AllocsPerOp != 2 {
		t.Errorf("second = %+v", b)
	}
}

func TestCompareKeysByNameAndProcs(t *testing.T) {
	oldB := []Benchmark{
		{Name: "Fig7Cell", Procs: 1, NsPerOp: 1000},
		{Name: "RunnerScaling", Procs: 1, NsPerOp: 400},
		{Name: "RunnerScaling", Procs: 2, NsPerOp: 250},
		{Name: "Retired", Procs: 1, NsPerOp: 99},
	}
	newB := []Benchmark{
		{Name: "Fig7Cell", Procs: 1, NsPerOp: 1300},
		{Name: "RunnerScaling", Procs: 1, NsPerOp: 380},
		{Name: "RunnerScaling", Procs: 2, NsPerOp: 260},
		{Name: "Added", Procs: 1, NsPerOp: 1},
	}
	deltas, retired, added := compare(oldB, newB)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (added/retired benches must be skipped): %+v", len(deltas), deltas)
	}
	// Order follows the new document.
	wantRatios := []float64{1.3, 0.95, 1.04}
	for i, want := range wantRatios {
		if got := deltas[i].Ratio; math.Abs(got-want) > 1e-9 {
			t.Errorf("delta %d (%s procs=%d): ratio = %v, want %v", i, deltas[i].Name, deltas[i].Procs, got, want)
		}
	}
	// Same name at different procs must not cross-pair: procs=2 compares
	// against the old procs=2 entry, not procs=1.
	if d := deltas[2]; d.Procs != 2 || d.OldNsPerOp != 250 {
		t.Errorf("procs=2 delta paired wrong: %+v", d)
	}
	// Unpaired benchmarks come back by name so the caller can diagnose
	// them instead of dropping them silently.
	if len(retired) != 1 || retired[0].Name != "Retired" {
		t.Errorf("retired = %+v, want [Retired]", retired)
	}
	if len(added) != 1 || added[0].Name != "Added" {
		t.Errorf("added = %+v, want [Added]", added)
	}
}

func TestCompareTracksAllocsWhenBothMeasured(t *testing.T) {
	oldB := []Benchmark{
		{Name: "WithAllocs", Procs: 1, NsPerOp: 100, AllocsPerOp: 10},
		{Name: "NoAllocs", Procs: 1, NsPerOp: 100},
	}
	newB := []Benchmark{
		{Name: "WithAllocs", Procs: 1, NsPerOp: 100, AllocsPerOp: 15},
		{Name: "NoAllocs", Procs: 1, NsPerOp: 100, AllocsPerOp: 5},
	}
	deltas, _, _ := compare(oldB, newB)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if d := deltas[0]; math.Abs(d.AllocsRatio-1.5) > 1e-9 || d.OldAllocsPerOp != 10 || d.NewAllocsPerOp != 15 {
		t.Errorf("allocs delta = %+v, want ratio 1.5", d)
	}
	// A baseline without -benchmem data (allocs/op 0) has nothing to gate.
	if d := deltas[1]; d.AllocsRatio != 0 {
		t.Errorf("no-baseline allocs ratio = %v, want 0", d.AllocsRatio)
	}
}

func TestCompareSkipsZeroBaseline(t *testing.T) {
	deltas, retired, added := compare(
		[]Benchmark{{Name: "X", Procs: 1, NsPerOp: 0}},
		[]Benchmark{{Name: "X", Procs: 1, NsPerOp: 10}},
	)
	if len(deltas) != 0 {
		t.Fatalf("zero-ns/op baseline must be skipped, got %+v", deltas)
	}
	// A zero baseline is still paired — it must not masquerade as
	// retired or added.
	if len(retired) != 0 || len(added) != 0 {
		t.Fatalf("zero baseline misclassified: retired=%+v added=%+v", retired, added)
	}
}
