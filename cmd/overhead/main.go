// Command overhead computes the Section 4.4 mapping-table storage model
// for an arbitrary device geometry and spare split, reproducing the
// paper's 0.16 MB vs 1.1 MB comparison at its defaults.
//
// Usage:
//
//	overhead                          # the paper's 1 GB configuration
//	overhead -capacity-gb 4 -regions 4096
//	overhead -spare 0.2 -swr 0.8 -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"maxwe/internal/mapping"
	"maxwe/internal/report"
)

func main() {
	capacityGB := flag.Float64("capacity-gb", 1, "device capacity in GiB")
	lineBytes := flag.Int("line-bytes", 256, "line size in bytes")
	regions := flag.Int("regions", 2048, "number of regions")
	spareFrac := flag.Float64("spare", 0.10, "spare fraction of total capacity")
	swrFrac := flag.Float64("swr", 0.90, "SWR fraction of the spare capacity")
	sweep := flag.Bool("sweep", false, "also sweep the SWR fraction 0..100%")
	flag.Parse()

	lines := int(*capacityGB * float64(1<<30) / float64(*lineBytes))
	if lines <= 0 || lines%*regions != 0 {
		fmt.Fprintf(os.Stderr, "overhead: %v GiB / %d B lines = %d lines, not divisible into %d regions\n",
			*capacityGB, *lineBytes, lines, *regions)
		os.Exit(2)
	}
	o := mapping.Overhead{
		Lines:         lines,
		Regions:       *regions,
		SpareFraction: *spareFrac,
		SWRFraction:   *swrFrac,
	}

	t := report.NewTable(
		fmt.Sprintf("Mapping overhead — %.4g GiB, %d-byte lines, %d regions, %.0f%% spares, %.0f%% SWRs",
			*capacityGB, *lineBytes, *regions, *spareFrac*100, *swrFrac*100),
		"table", "bits", "MB")
	t.AddRow("LMT (line-level)", o.LMTBits(), mapping.BitsToMB(o.LMTBits()))
	t.AddRow("RMT (region-level)", o.RMTBits(), mapping.BitsToMB(o.RMTBits()))
	t.AddRow("wear-out tags", o.TagBits(), mapping.BitsToMB(o.TagBits()))
	t.AddRow("Max-WE total", o.TotalBits(), mapping.BitsToMB(o.TotalBits()))
	t.AddRow("traditional line-level", o.TraditionalBits(), mapping.BitsToMB(o.TraditionalBits()))
	t.AddRow("reduction", fmt.Sprintf("%.1f%%", o.Reduction()*100), "")
	_, _ = t.WriteTo(os.Stdout)

	if *sweep {
		fmt.Println()
		st := report.NewTable("SWR-fraction sweep", "swr %", "total MB", "reduction %")
		for q := 0; q <= 100; q += 10 {
			o.SWRFraction = float64(q) / 100
			st.AddRow(q, mapping.BitsToMB(o.TotalBits()), o.Reduction()*100)
		}
		_, _ = st.WriteTo(os.Stdout)
	}
}
