package spare_test

import (
	"fmt"

	"maxwe/internal/endurance"
	"maxwe/internal/spare"
)

// Build Max-WE over a 10-region device and inspect the weak-priority
// allocation: the weakest regions become SWRs, the next weakest become
// the RWRs they rescue, and the following ones form the dynamic pool.
func ExampleNewMaxWE() {
	// Region endurance rises with the region id (region 0 weakest).
	p := endurance.Linear(10, 4, 100, 4000)
	opts := spare.DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := spare.NewMaxWE(p, opts)

	fmt.Println("SWR regions:       ", s.SWRRegionIDs())
	fmt.Println("RWR regions:       ", s.RWRRegionIDs())
	fmt.Println("dynamic pool:      ", s.AdditionalRegionIDs())
	fmt.Println("user lines:        ", s.UserLines())
	// Weak-strong matching: the weakest RWR (2) pairs with the strongest
	// SWR (1).
	fmt.Println("spare of region 2: ", s.Mapping().RMT.SpareOf(2))
	// Output:
	// SWR regions:        [0 1]
	// RWR regions:        [2 3]
	// dynamic pool:       [4]
	// user lines:         28
	// spare of region 2:  1
}

// The replacement procedure: an RWR line's first wear-out flips its RMT
// tag and redirects accesses to the paired SWR line.
func ExampleMaxWEScheme_OnWearOut() {
	p := endurance.Linear(10, 4, 100, 4000)
	opts := spare.DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := spare.NewMaxWE(p, opts)

	// Slot 0 is the first RWR line (region 2, line 8).
	fmt.Println("backing line before:", s.Access(0))
	s.OnWearOut(0)
	fmt.Println("backing line after: ", s.Access(0))
	// Output:
	// backing line before: 8
	// backing line after:  4
}
