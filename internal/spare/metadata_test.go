package spare

import (
	"testing"

	"maxwe/internal/endurance"
	"maxwe/internal/xrand"
)

// metadataProfile is large enough that the default spare split yields
// whole SWR regions, so a fresh Max-WE starts with RMT pairs to corrupt
// (testProfile's 40 lines round the SWR share down to zero regions).
func metadataProfile() *endurance.Profile {
	return endurance.Linear(32, 8, 10, 500)
}

func TestMaxWEMetadataCorruptScrubRoundtrip(t *testing.T) {
	p := metadataProfile().Shuffled(xrand.New(1))
	s := NewMaxWE(p, DefaultMaxWEOptions())

	// A fresh scrub on intact metadata finds nothing.
	if n := s.ScrubMetadata(); n != 0 {
		t.Fatalf("clean scrub repaired %d entries", n)
	}

	// Record the full slot -> line binding before the fault.
	before := make([]int, s.UserLines())
	for u := range before {
		before[u] = s.Access(u)
	}

	src := xrand.New(2)
	for round := 0; round < 32; round++ {
		if !s.CorruptMetadata(src) {
			t.Fatalf("round %d: Max-WE has metadata but Corrupt found none", round)
		}
		if n := s.ScrubMetadata(); n != 1 {
			t.Fatalf("round %d: scrub repaired %d entries, want 1", round, n)
		}
	}

	// Every binding is restored: the corrupt/scrub cycle is lossless.
	for u, want := range before {
		if got := s.Access(u); got != want {
			t.Fatalf("slot %d resolves to line %d after scrub, want %d", u, got, want)
		}
	}
}

func TestMaxWEMetadataCorruptIsDeterministic(t *testing.T) {
	build := func() *MaxWEScheme {
		return NewMaxWE(metadataProfile().Shuffled(xrand.New(1)), DefaultMaxWEOptions())
	}
	a, b := build(), build()
	srcA, srcB := xrand.New(5), xrand.New(5)
	for round := 0; round < 16; round++ {
		a.CorruptMetadata(srcA)
		b.CorruptMetadata(srcB)
		for u := 0; u < a.UserLines(); u++ {
			if a.Access(u) != b.Access(u) {
				t.Fatalf("round %d: corruption diverged at slot %d", round, u)
			}
		}
		a.ScrubMetadata()
		b.ScrubMetadata()
	}
}
