package spare

import (
	"testing"

	"maxwe/internal/endurance"
	"maxwe/internal/xrand"
)

// testProfile: 10 regions x 4 lines, endurance ascending with region id
// (region 0 weakest).
func testProfile() *endurance.Profile {
	return endurance.Linear(10, 4, 100, 4000)
}

func TestNoneScheme(t *testing.T) {
	s := NewNone(16)
	if s.UserLines() != 16 || s.Name() != "none" {
		t.Fatal("basic accessors wrong")
	}
	if s.Access(3) != 3 || s.BaseLine(3) != 3 {
		t.Fatal("identity mapping broken")
	}
	if s.OnWearOut(0) {
		t.Fatal("None survived a wear-out")
	}
	if s.SpareLinesTotal() != 0 || s.SpareLinesUsed() != 0 {
		t.Fatal("None reports spares")
	}
}

func TestNonePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewNone(0) },
		func() { NewNone(4).Access(4) },
		func() { NewNone(4).Access(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPSWorstReservesStrongest(t *testing.T) {
	p := testProfile()
	s := NewPS(p, 8, PSWorst, nil)
	if s.UserLines() != 32 || s.SpareLinesTotal() != 8 {
		t.Fatalf("geometry: user=%d spares=%d", s.UserLines(), s.SpareLinesTotal())
	}
	// The strongest 8 lines (35..39 region area) must be absent from the
	// user space.
	minSpare := p.KthWeakestLine(p.Lines() - 8)
	for u := 0; u < s.UserLines(); u++ {
		if p.LineEndurance(s.Access(u)) >= minSpare && p.LineEndurance(s.Access(u)) > p.KthWeakestLine(p.Lines()-9) {
			t.Fatalf("strong line %d still in user space", s.Access(u))
		}
	}
}

func TestPSBestReservesWeakest(t *testing.T) {
	p := testProfile()
	s := NewPS(p, 8, PSBest, nil)
	// The weakest 8 lines must be out of service: user minimum endurance
	// is the 9th weakest.
	want := p.KthWeakestLine(8)
	for u := 0; u < s.UserLines(); u++ {
		if p.LineEndurance(s.Access(u)) < want {
			t.Fatalf("weak line %d still in user space", s.Access(u))
		}
	}
}

func TestPSRandomDeterministicAndDisjoint(t *testing.T) {
	p := testProfile()
	a := NewPS(p, 6, PSRandom, xrand.New(42))
	b := NewPS(p, 6, PSRandom, xrand.New(42))
	for u := 0; u < a.UserLines(); u++ {
		if a.Access(u) != b.Access(u) {
			t.Fatal("PSRandom not deterministic under equal seeds")
		}
	}
	// User lines and pool must partition the device.
	seen := map[int]bool{}
	for u := 0; u < a.UserLines(); u++ {
		l := a.Access(u)
		if seen[l] {
			t.Fatalf("line %d appears twice", l)
		}
		seen[l] = true
	}
	for a.OnWearOut(0) {
		l := a.Access(0)
		if seen[l] {
			t.Fatalf("spare %d overlaps user space or reused", l)
		}
		seen[l] = true
	}
	if len(seen) != p.Lines() {
		t.Fatalf("partition covers %d of %d lines", len(seen), p.Lines())
	}
}

func TestPSExhaustion(t *testing.T) {
	p := testProfile()
	s := NewPS(p, 3, PSWorst, nil)
	for i := 0; i < 3; i++ {
		if !s.OnWearOut(i) {
			t.Fatalf("spare %d not granted", i)
		}
	}
	if s.SpareLinesUsed() != 3 {
		t.Fatalf("used = %d", s.SpareLinesUsed())
	}
	if s.OnWearOut(3) {
		t.Fatal("exhausted pool still granted a spare")
	}
}

func TestPSRebindsSlot(t *testing.T) {
	p := testProfile()
	s := NewPS(p, 2, PSWorst, nil)
	old := s.Access(5)
	base := s.BaseLine(5)
	if !s.OnWearOut(5) {
		t.Fatal("no spare granted")
	}
	if s.Access(5) == old {
		t.Fatal("slot not rebound")
	}
	if s.BaseLine(5) != base {
		t.Fatal("BaseLine changed on rebind")
	}
}

func TestPSPanics(t *testing.T) {
	p := testProfile()
	for _, f := range []func(){
		func() { NewPS(p, -1, PSWorst, nil) },
		func() { NewPS(p, p.Lines(), PSWorst, nil) },
		func() { NewPS(p, 4, PSRandom, nil) },
		func() { NewPS(p, 4, PSPolicy(99), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPCDShrinks(t *testing.T) {
	s := NewPCD(10, 7)
	if s.UserLines() != 10 || s.SpareLinesTotal() != 3 {
		t.Fatalf("geometry wrong: %d/%d", s.UserLines(), s.SpareLinesTotal())
	}
	// Kill slot 2: the last slot's line (9) moves in.
	if !s.OnWearOut(2) {
		t.Fatal("PCD failed with capacity to spare")
	}
	if s.UserLines() != 9 {
		t.Fatalf("capacity = %d after one death", s.UserLines())
	}
	if s.Access(2) != 9 {
		t.Fatalf("slot 2 now backed by %d, want 9", s.Access(2))
	}
	if !s.OnWearOut(0) || !s.OnWearOut(1) {
		t.Fatal("PCD failed early")
	}
	if s.UserLines() != 7 {
		t.Fatalf("capacity = %d", s.UserLines())
	}
	if s.OnWearOut(0) {
		t.Fatal("PCD survived below min capacity")
	}
	if s.SpareLinesUsed() != 3 {
		t.Fatalf("used = %d", s.SpareLinesUsed())
	}
}

func TestPCDLastSlotDeath(t *testing.T) {
	s := NewPCD(4, 2)
	// Killing the last slot shrinks without relocation.
	if !s.OnWearOut(3) {
		t.Fatal("failed")
	}
	if s.UserLines() != 3 {
		t.Fatal("capacity wrong")
	}
	for u := 0; u < 3; u++ {
		if s.Access(u) != u {
			t.Fatalf("slot %d remapped unexpectedly to %d", u, s.Access(u))
		}
	}
}

func TestPCDPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPCD(0, 1) },
		func() { NewPCD(5, 0) },
		func() { NewPCD(5, 6) },
		func() { NewPCD(4, 2).Access(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxWERegionRoles(t *testing.T) {
	p := testProfile() // 10 regions, region 0 weakest
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30 // 3 spare regions
	opts.SWRFraction = 0.67   // 2 SWRs + 1 additional
	s := NewMaxWE(p, opts)
	if got := s.SWRRegionIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SWRs = %v, want [0 1]", got)
	}
	if got := s.RWRRegionIDs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("RWRs = %v, want [2 3]", got)
	}
	if got := s.AdditionalRegionIDs(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("additional = %v, want [4]", got)
	}
	// User space excludes regions 0, 1 and 4: 7 regions x 4 lines.
	if s.UserLines() != 28 {
		t.Fatalf("UserLines = %d, want 28", s.UserLines())
	}
	if s.SpareLinesTotal() != 12 {
		t.Fatalf("SpareLinesTotal = %d, want 12", s.SpareLinesTotal())
	}
}

func TestMaxWEWeakStrongMatching(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := NewMaxWE(p, opts)
	// Weakest RWR (region 2) must be paired with the strongest SWR
	// (region 1); RWR 3 with SWR 0.
	if s.Mapping().RMT.SpareOf(2) != 1 {
		t.Fatalf("RWR 2 paired with %d, want 1", s.Mapping().RMT.SpareOf(2))
	}
	if s.Mapping().RMT.SpareOf(3) != 0 {
		t.Fatalf("RWR 3 paired with %d, want 0", s.Mapping().RMT.SpareOf(3))
	}
	// Ablation: in-order matching pairs 2-0 and 3-1.
	opts.WeakStrongMatching = false
	s2 := NewMaxWE(p, opts)
	if s2.Mapping().RMT.SpareOf(2) != 0 || s2.Mapping().RMT.SpareOf(3) != 1 {
		t.Fatal("in-order matching not honored")
	}
}

func TestMaxWERWRWearOutUsesRMT(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := NewMaxWE(p, opts)
	// Find the slot whose base line is region 2, offset 1 (line 9).
	slot := -1
	for u := 0; u < s.UserLines(); u++ {
		if s.BaseLine(u) == 9 {
			slot = u
			break
		}
	}
	if slot < 0 {
		t.Fatal("line 9 not in user space")
	}
	if s.Access(slot) != 9 {
		t.Fatalf("fresh access = %d", s.Access(slot))
	}
	if !s.OnWearOut(slot) {
		t.Fatal("RWR wear-out not survivable")
	}
	// Region 2 pairs with SWR region 1 -> line 4+1 = 5.
	if s.Access(slot) != 5 {
		t.Fatalf("redirected access = %d, want 5", s.Access(slot))
	}
	if s.SpareLinesUsed() != 1 {
		t.Fatalf("SpareLinesUsed = %d", s.SpareLinesUsed())
	}
	// The SWR replacement dying falls back to a dynamic spare in region 4.
	if !s.OnWearOut(slot) {
		t.Fatal("SWR failure not survivable with dynamic spares left")
	}
	if got := s.Access(slot); got/4 != 4 {
		t.Fatalf("second redirect landed on line %d, want region 4", got)
	}
}

func TestMaxWEDynamicStrongestFirst(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := NewMaxWE(p, opts)
	// Slot with base outside RWRs: take the first user slot from
	// region 5+ (not RWR 2,3).
	slot := -1
	for u := 0; u < s.UserLines(); u++ {
		if p.RegionOf(s.BaseLine(u)) >= 5 {
			slot = u
			break
		}
	}
	if !s.OnWearOut(slot) {
		t.Fatal("dynamic rescue failed")
	}
	// Strongest line of region 4 is its last line (Linear ascending):
	// line 19.
	if got := s.Access(slot); got != 19 {
		t.Fatalf("first dynamic spare = %d, want strongest (19)", got)
	}
	// Next allocation: 18.
	slot2 := slot + 1
	if !s.OnWearOut(slot2) {
		t.Fatal("second dynamic rescue failed")
	}
	if got := s.Access(slot2); got != 18 {
		t.Fatalf("second dynamic spare = %d, want 18", got)
	}
}

func TestMaxWEDynamicExhaustion(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	s := NewMaxWE(p, opts)
	// 4 dynamic spare lines (region 4). Kill a non-RWR slot 5 times.
	slot := 0
	for u := 0; u < s.UserLines(); u++ {
		if p.RegionOf(s.BaseLine(u)) >= 5 {
			slot = u
			break
		}
	}
	for i := 0; i < 4; i++ {
		if !s.OnWearOut(slot) {
			t.Fatalf("rescue %d failed early", i)
		}
	}
	if s.OnWearOut(slot) {
		t.Fatal("rescue granted beyond pool size")
	}
}

func TestMaxWEZeroSpares(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0
	s := NewMaxWE(p, opts)
	if s.UserLines() != p.Lines() {
		t.Fatal("zero-spare user space should cover the device")
	}
	if s.OnWearOut(0) {
		t.Fatal("zero-spare scheme survived a wear-out")
	}
}

func TestMaxWEUserSpaceExcludesSpares(t *testing.T) {
	p := endurance.DefaultModel().Sample(32, 8, xrand.New(4))
	s := NewMaxWE(p, DefaultMaxWEOptions())
	spare := map[int]bool{}
	for _, r := range s.SWRRegionIDs() {
		spare[r] = true
	}
	for _, r := range s.AdditionalRegionIDs() {
		spare[r] = true
	}
	for u := 0; u < s.UserLines(); u++ {
		if spare[p.RegionOf(s.BaseLine(u))] {
			t.Fatalf("slot %d base line in spare region", u)
		}
	}
	// Every RWR must remain in service.
	inUser := map[int]bool{}
	for u := 0; u < s.UserLines(); u++ {
		inUser[p.RegionOf(s.BaseLine(u))] = true
	}
	for _, r := range s.RWRRegionIDs() {
		if !inUser[r] {
			t.Fatalf("RWR %d missing from user space", r)
		}
	}
}

func TestMaxWERandomSpareAblation(t *testing.T) {
	p := testProfile()
	opts := DefaultMaxWEOptions()
	opts.SpareFraction = 0.30
	opts.SWRFraction = 0.67
	opts.WeakPriority = false
	opts.Rand = xrand.New(17)
	s := NewMaxWE(p, opts)
	if len(s.SWRRegionIDs()) != 2 || len(s.RWRRegionIDs()) != 2 || len(s.AdditionalRegionIDs()) != 1 {
		t.Fatal("ablated scheme geometry wrong")
	}
	// RWRs are the weakest non-spare regions.
	spare := map[int]bool{}
	for _, r := range s.SWRRegionIDs() {
		spare[r] = true
	}
	for _, r := range s.AdditionalRegionIDs() {
		spare[r] = true
	}
	weakestNonSpare := []int{}
	for _, r := range p.RegionsByMetricAsc() {
		if !spare[r] {
			weakestNonSpare = append(weakestNonSpare, r)
		}
		if len(weakestNonSpare) == 2 {
			break
		}
	}
	got := s.RWRRegionIDs()
	for i := range got {
		if got[i] != weakestNonSpare[i] {
			t.Fatalf("RWRs = %v, want %v", got, weakestNonSpare)
		}
	}
}

// The theory behind Equation 6: with weak-strong matching over a linear
// profile, every RWR/SWR pair's combined endurance is at least the
// endurance of the (2S+1)-th weakest line, so the pairs are never the
// binding constraint under uniform wear.
func TestMaxWEPairSumsDominateEq6Threshold(t *testing.T) {
	p := endurance.Linear(40, 8, 100, 5000)
	opts := DefaultMaxWEOptions()
	opts.SWRFraction = 1 // all spares region-level, matching Eq 6's model
	s := NewMaxWE(p, opts)
	swrs, rwrs := s.SWRRegionIDs(), s.RWRRegionIDs()
	if len(swrs) == 0 {
		t.Fatal("no SWRs configured")
	}
	// The (2S+1)-th weakest line, S = spare line count.
	threshold := p.KthWeakestLine(2 * len(swrs) * p.LinesPerRegion())
	for _, pra := range rwrs {
		sra := s.Mapping().RMT.SpareOf(pra)
		if sra < 0 {
			t.Fatalf("RWR %d unpaired", pra)
		}
		pairSum := p.RegionMetric(pra) + p.RegionMetric(sra)
		if pairSum < float64(threshold) {
			t.Fatalf("pair (%d,%d) sum %v below Eq-6 threshold %d",
				pra, sra, pairSum, threshold)
		}
	}
}

func TestMaxWEPanics(t *testing.T) {
	p := testProfile()
	for _, f := range []func(){
		func() {
			o := DefaultMaxWEOptions()
			o.SpareFraction = 0.6
			NewMaxWE(p, o)
		},
		func() {
			o := DefaultMaxWEOptions()
			o.SWRFraction = 1.5
			NewMaxWE(p, o)
		},
		func() {
			o := DefaultMaxWEOptions()
			o.WeakPriority = false
			o.Rand = nil
			NewMaxWE(p, o)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkMaxWEAccess(b *testing.B) {
	p := endurance.Linear(256, 16, 100, 5000)
	s := NewMaxWE(p, DefaultMaxWEOptions())
	n := s.UserLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Access(i % n)
	}
}
