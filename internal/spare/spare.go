// Package spare implements the spare-line replacement schemes the paper
// proposes and compares (Sections 2.2.3, 4 and 5):
//
//   - Max-WE — the paper's contribution: weak-priority spare-region
//     selection, weak-strong matching of SWRs to RWRs with region-level
//     mapping, and dynamic strongest-first line-level sparing for
//     everything else (Section 4).
//   - PS — Physical Sparing: a pool of reserved spare lines replaces
//     failures; the average case reserves random lines, the worst case
//     (PS-worst) reserves strong lines (Section 4.3).
//   - PCD — Physical Capacity Degradation: every physical line starts in
//     service and capacity shrinks as lines die (Section 2.2.3).
//   - None — no protection; the first wear-out kills the device.
//
// A Scheme owns the binding from user-visible physical slots to device
// lines. The simulator (internal/sim) asks Access for the current backing
// line of a slot and calls OnWearOut when that line's budget is exhausted;
// the scheme rebinds the slot to a spare or declares the device dead.
package spare

import (
	"fmt"
	"sort"

	"maxwe/internal/endurance"
	"maxwe/internal/mapping"
	"maxwe/internal/xrand"
)

// lineKey pairs a device line with its endurance so spare-pool
// construction sorts precomputed keys instead of calling LineEndurance
// inside the comparator.
type lineKey struct {
	endurance int64
	line      int
}

// sortByEndurance orders keys by (endurance, line). The line id breaks
// every tie, so the comparator is a total order and the unstable
// sort.Slice yields the exact permutation the former sort.SliceStable did.
func sortByEndurance(keys []lineKey) {
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].endurance != keys[b].endurance {
			return keys[a].endurance < keys[b].endurance
		}
		return keys[a].line < keys[b].line
	})
}

// Scheme is the contract between the simulator and a spare-line
// replacement policy.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// UserLines returns the current user-visible capacity in lines. It is
	// constant for every scheme except PCD, whose capacity shrinks.
	UserLines() int
	// Access returns the device line currently backing user slot
	// u in [0, UserLines()). Access is a pure lookup: it never mutates
	// scheme state. Slot→line bindings change only inside OnWearOut, and
	// OnWearOut(u) rebinds only slot u (plus, under PCD, the former last
	// slot whose binding moves into u as the space shrinks). The batched
	// sim engine (internal/sim) caches Access results across writes on
	// the strength of this contract; implementations that break it (or
	// external metadata corruption, see sim.MetadataFaulter) must stay on
	// the uncached per-write path.
	Access(u int) int
	// BaseLine returns the boot-time device line of slot u, independent of
	// later replacements. Wear-leveling substrates use it to attach a
	// fixed endurance metric to each slot.
	BaseLine(u int) int
	// OnWearOut reports that the line backing slot u has worn out and asks
	// the scheme to rebind the slot. It returns false when the scheme is
	// out of spares — the device has failed.
	OnWearOut(u int) bool
	// SpareLinesTotal returns the number of provisioned spare lines.
	SpareLinesTotal() int
	// SpareLinesUsed returns how many spare lines have been consumed.
	SpareLinesUsed() int
}

// ---------------------------------------------------------------------------
// None

// NoneScheme exposes every line and fails on the first wear-out — the
// paper's unprotected baseline (the 4.1% row of Figure 6).
type NoneScheme struct {
	lines int
}

// NewNone builds the unprotected scheme over a device with n lines.
func NewNone(n int) *NoneScheme {
	if n <= 0 {
		panic("spare: NewNone needs positive line count")
	}
	return &NoneScheme{lines: n}
}

// Name implements Scheme.
func (s *NoneScheme) Name() string { return "none" }

// UserLines implements Scheme.
func (s *NoneScheme) UserLines() int { return s.lines }

// Access implements Scheme.
func (s *NoneScheme) Access(u int) int { s.check(u); return u }

// BaseLine implements Scheme.
func (s *NoneScheme) BaseLine(u int) int { s.check(u); return u }

// OnWearOut implements Scheme.
func (s *NoneScheme) OnWearOut(u int) bool { s.check(u); return false }

// SpareLinesTotal implements Scheme.
func (s *NoneScheme) SpareLinesTotal() int { return 0 }

// SpareLinesUsed implements Scheme.
func (s *NoneScheme) SpareLinesUsed() int { return 0 }

func (s *NoneScheme) check(u int) {
	if u < 0 || u >= s.lines {
		panic(fmt.Sprintf("spare: slot %d out of range [0,%d)", u, s.lines))
	}
}

// ---------------------------------------------------------------------------
// Physical Sparing (PS)

// PSScheme reserves a pool of spare lines; worn lines are replaced from
// the pool until it runs dry.
type PSScheme struct {
	name      string
	slotLine  []int // slot -> current backing device line
	baseLine  []int // slot -> boot-time device line
	pool      []int // unconsumed spare lines, next allocation at the end
	total     int
	allocated int
}

// PSPolicy selects which lines become spares.
type PSPolicy int

const (
	// PSRandom reserves uniformly random lines — the paper's PS average
	// case, whose lifetime Ferreira et al. showed tracks PCD.
	PSRandom PSPolicy = iota
	// PSWorst reserves the strongest lines, leaving all weak lines in
	// service — the paper's PS worst case (Equation 8).
	PSWorst
	// PSBest reserves the weakest lines (keeping them out of service),
	// a useful control that isolates the first half of Max-WE's idea.
	PSBest
)

// String returns the policy name used in reports.
func (p PSPolicy) String() string {
	switch p {
	case PSRandom:
		return "ps-random"
	case PSWorst:
		return "ps-worst"
	case PSBest:
		return "ps-best"
	}
	return "ps-unknown"
}

// NewPS builds a physical-sparing scheme with spareLines reserved lines
// chosen per policy over the profile. src supplies randomness for
// PSRandom; it may be nil for the deterministic policies.
func NewPS(p *endurance.Profile, spareLines int, policy PSPolicy, src *xrand.Source) *PSScheme {
	n := p.Lines()
	if spareLines < 0 || spareLines >= n {
		panic("spare: NewPS spareLines out of range")
	}
	var spares []int
	switch policy {
	case PSRandom:
		if src == nil {
			panic("spare: PSRandom needs a randomness source")
		}
		perm := src.Perm(n)
		spares = append(spares, perm[:spareLines]...)
	case PSWorst, PSBest:
		keys := make([]lineKey, n)
		for i := range keys {
			keys[i] = lineKey{endurance: p.LineEndurance(i), line: i}
		}
		sortByEndurance(keys)
		if policy == PSWorst {
			for _, k := range keys[n-spareLines:] {
				spares = append(spares, k.line)
			}
		} else {
			for _, k := range keys[:spareLines] {
				spares = append(spares, k.line)
			}
		}
	default:
		panic("spare: unknown PS policy")
	}
	isSpare := make([]bool, n)
	for _, l := range spares {
		isSpare[l] = true
	}
	s := &PSScheme{name: policy.String(), total: spareLines}
	for l := 0; l < n; l++ {
		if !isSpare[l] {
			s.slotLine = append(s.slotLine, l)
			s.baseLine = append(s.baseLine, l)
		}
	}
	// Allocation order: consume from the end of pool; keep the sampled /
	// sorted order so PSRandom allocates randomly and PSWorst/PSBest
	// allocate weakest-first (a deliberately naive FIFO-by-weakness).
	s.pool = spares
	return s
}

// Name implements Scheme.
func (s *PSScheme) Name() string { return s.name }

// UserLines implements Scheme.
func (s *PSScheme) UserLines() int { return len(s.slotLine) }

// Access implements Scheme.
func (s *PSScheme) Access(u int) int { return s.slotLine[u] }

// BaseLine implements Scheme.
func (s *PSScheme) BaseLine(u int) int { return s.baseLine[u] }

// OnWearOut implements Scheme.
func (s *PSScheme) OnWearOut(u int) bool {
	if len(s.pool) == 0 {
		return false
	}
	spareLine := s.pool[len(s.pool)-1]
	s.pool = s.pool[:len(s.pool)-1]
	s.slotLine[u] = spareLine
	s.allocated++
	return true
}

// SpareLinesTotal implements Scheme.
func (s *PSScheme) SpareLinesTotal() int { return s.total }

// SpareLinesUsed implements Scheme.
func (s *PSScheme) SpareLinesUsed() int { return s.allocated }

// ---------------------------------------------------------------------------
// Physical Capacity Degradation (PCD)

// PCDScheme starts with every physical line in service. When a line dies,
// the address space shrinks by one (the last slot's line moves into the
// dead slot). The device fails when capacity drops below minCapacity.
type PCDScheme struct {
	slotLine    []int
	baseLine    []int
	live        int
	minCapacity int
	consumed    int
}

// NewPCD builds a capacity-degradation scheme over n lines that fails once
// fewer than minCapacity lines remain. The spare-budget equivalent is
// n - minCapacity lines.
func NewPCD(n, minCapacity int) *PCDScheme {
	if n <= 0 || minCapacity <= 0 || minCapacity > n {
		panic("spare: NewPCD needs 0 < minCapacity <= n")
	}
	s := &PCDScheme{
		slotLine:    make([]int, n),
		baseLine:    make([]int, n),
		live:        n,
		minCapacity: minCapacity,
	}
	for i := range s.slotLine {
		s.slotLine[i] = i
		s.baseLine[i] = i
	}
	return s
}

// Name implements Scheme.
func (s *PCDScheme) Name() string { return "pcd" }

// UserLines implements Scheme.
func (s *PCDScheme) UserLines() int { return s.live }

// Access implements Scheme.
func (s *PCDScheme) Access(u int) int { s.check(u); return s.slotLine[u] }

// BaseLine implements Scheme.
func (s *PCDScheme) BaseLine(u int) int { s.check(u); return s.baseLine[u] }

func (s *PCDScheme) check(u int) {
	if u < 0 || u >= s.live {
		panic(fmt.Sprintf("spare: PCD slot %d out of live range [0,%d)", u, s.live))
	}
}

// OnWearOut implements Scheme.
func (s *PCDScheme) OnWearOut(u int) bool {
	s.check(u)
	if s.live-1 < s.minCapacity {
		return false
	}
	last := s.live - 1
	s.slotLine[u] = s.slotLine[last]
	s.baseLine[u] = s.baseLine[last]
	s.live--
	s.consumed++
	return true
}

// SpareLinesTotal implements Scheme.
func (s *PCDScheme) SpareLinesTotal() int { return len(s.slotLine) - s.minCapacity }

// SpareLinesUsed implements Scheme.
func (s *PCDScheme) SpareLinesUsed() int { return s.consumed }

// ---------------------------------------------------------------------------
// Max-WE

// MaxWEOptions expose the design choices of Section 4 for ablation.
type MaxWEOptions struct {
	// SpareFraction is p, the share of total capacity reserved as spares
	// (the paper settles on 0.10 in Section 5.2.1).
	SpareFraction float64
	// SWRFraction is q, the share of spare capacity managed as SWRs with
	// region-level mapping (the paper settles on 0.90 in Section 5.2.2).
	SWRFraction float64
	// WeakPriority selects the weakest regions as spares (the paper's
	// weak-priority strategy). Disabling it picks spare regions uniformly
	// at random — the ablation of Section 4.1's first idea.
	WeakPriority bool
	// WeakStrongMatching pairs the strongest SWR with the weakest RWR
	// (the paper's strategy). Disabling it pairs them in index order —
	// the ablation of Section 4.1's second idea.
	WeakStrongMatching bool
	// StrongestSpareFirst allocates dynamic spare lines strongest-first
	// (Section 4.2). Disabling it allocates in address order.
	StrongestSpareFirst bool
	// Rand is needed only when WeakPriority is disabled.
	Rand *xrand.Source
}

// DefaultMaxWEOptions returns the paper's configuration: 10% spares, 90%
// SWRs, all three strategies on.
func DefaultMaxWEOptions() MaxWEOptions {
	return MaxWEOptions{
		SpareFraction:       0.10,
		SWRFraction:         0.90,
		WeakPriority:        true,
		WeakStrongMatching:  true,
		StrongestSpareFirst: true,
	}
}

// MaxWEScheme implements the paper's scheme. Geometry:
//
//   - spareRegions = round(p * R) regions are reserved; of those,
//     swrRegions = floor(q * spareRegions) become SWRs and the remainder
//     become additional (dynamic) spare regions;
//   - with weak-priority, SWRs are the weakest spareRegions... precisely:
//     the weakest swrRegions regions become SWRs, the next weakest
//     swrRegions regions are the RWRs (which stay in service), and the
//     following addRegions weakest regions become the additional spares —
//     exactly the ordering of the paper's Figure 3 example;
//   - weak-strong matching pairs SWRs (descending endurance) with RWRs
//     (ascending endurance) in the RMT;
//   - wear-outs inside RWRs flip the RMT tag; all other wear-outs allocate
//     the strongest remaining dynamic spare line through the LMT.
type MaxWEScheme struct {
	profile *endurance.Profile
	opts    MaxWEOptions

	hybrid   *mapping.Hybrid
	slotBase []int // slot -> boot-time device line (never changes)
	pool     []int // dynamic spare lines; next allocation at the end
	total    int
	used     int

	swrRegions []int
	rwrRegions []int
	addRegions []int
}

// NewMaxWE builds the scheme over profile with the given options.
func NewMaxWE(p *endurance.Profile, opts MaxWEOptions) *MaxWEScheme {
	if opts.SpareFraction < 0 || opts.SpareFraction > 0.5 {
		panic("spare: MaxWE SpareFraction must be in [0, 0.5] so the RWRs fit")
	}
	if opts.SWRFraction < 0 || opts.SWRFraction > 1 {
		panic("spare: MaxWE SWRFraction must be in [0, 1]")
	}
	r := p.Regions()
	lpr := p.LinesPerRegion()
	spareRegions := int(opts.SpareFraction*float64(r) + 0.5)
	swrRegions := int(opts.SWRFraction * float64(spareRegions))
	addRegions := spareRegions - swrRegions
	if 2*swrRegions+addRegions > r {
		panic("spare: MaxWE configuration leaves no user regions")
	}

	s := &MaxWEScheme{
		profile: p,
		opts:    opts,
		hybrid:  mapping.NewHybrid(lpr),
		total:   spareRegions * lpr,
	}

	// Region role assignment.
	order := p.RegionsByMetricAsc()
	if !opts.WeakPriority {
		if opts.Rand == nil {
			panic("spare: MaxWE without weak-priority needs Rand")
		}
		// Random spare selection: shuffle the candidate order, but the
		// RWRs must still be the weakest of the *remaining* regions —
		// the scheme always knows the endurance ordering.
		shuffled := make([]int, len(order))
		copy(shuffled, order)
		opts.Rand.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		spareSet := map[int]bool{}
		for _, reg := range shuffled[:swrRegions+addRegions] {
			spareSet[reg] = true
		}
		var spares, rest []int
		for _, reg := range order { // keep endurance order within groups
			if spareSet[reg] {
				spares = append(spares, reg)
			} else {
				rest = append(rest, reg)
			}
		}
		s.swrRegions = append(s.swrRegions, spares[:swrRegions]...)
		s.addRegions = append(s.addRegions, spares[swrRegions:]...)
		s.rwrRegions = append(s.rwrRegions, rest[:swrRegions]...)
	} else {
		s.swrRegions = append(s.swrRegions, order[:swrRegions]...)
		s.rwrRegions = append(s.rwrRegions, order[swrRegions:2*swrRegions]...)
		s.addRegions = append(s.addRegions, order[2*swrRegions:2*swrRegions+addRegions]...)
	}

	// Weak-strong matching: SWRs strongest-first against RWRs
	// weakest-first. Groups above are in ascending endurance order.
	for i := 0; i < swrRegions; i++ {
		var sra int
		if opts.WeakStrongMatching {
			sra = s.swrRegions[swrRegions-1-i] // strongest SWR first
		} else {
			sra = s.swrRegions[i]
		}
		pra := s.rwrRegions[i] // weakest RWR first
		s.hybrid.RMT.AddPair(pra, sra)
	}

	// Dynamic spare pool: all lines of the additional spare regions,
	// ordered so allocation (from the end) is strongest-first when
	// requested.
	for _, reg := range s.addRegions {
		for l := 0; l < lpr; l++ {
			s.pool = append(s.pool, reg*lpr+l)
		}
	}
	if opts.StrongestSpareFirst {
		// Weakest at the front so the strongest is popped first.
		keys := make([]lineKey, len(s.pool))
		for i, l := range s.pool {
			keys[i] = lineKey{endurance: p.LineEndurance(l), line: l}
		}
		sortByEndurance(keys)
		for i, k := range keys {
			s.pool[i] = k.line
		}
	} else {
		// Address order with the next allocation (end of slice) being the
		// lowest address: reverse.
		for i, j := 0, len(s.pool)-1; i < j; i, j = i+1, j-1 {
			s.pool[i], s.pool[j] = s.pool[j], s.pool[i]
		}
	}

	// User space: every line outside SWR and additional spare regions.
	spareRegion := make([]bool, r)
	for _, reg := range s.swrRegions {
		spareRegion[reg] = true
	}
	for _, reg := range s.addRegions {
		spareRegion[reg] = true
	}
	for reg := 0; reg < r; reg++ {
		if spareRegion[reg] {
			continue
		}
		for l := 0; l < lpr; l++ {
			s.slotBase = append(s.slotBase, reg*lpr+l)
		}
	}
	return s
}

// Name implements Scheme.
func (s *MaxWEScheme) Name() string { return "max-we" }

// UserLines implements Scheme.
func (s *MaxWEScheme) UserLines() int { return len(s.slotBase) }

// BaseLine implements Scheme.
func (s *MaxWEScheme) BaseLine(u int) int { return s.slotBase[u] }

// Access resolves slot u through the hybrid mapping tables, mirroring the
// read/write translation of Section 4.2.
func (s *MaxWEScheme) Access(u int) int {
	return s.hybrid.Translate(s.slotBase[u])
}

// OnWearOut implements the replacement procedure of Section 4.2.
func (s *MaxWEScheme) OnWearOut(u int) bool {
	base := s.slotBase[u]
	if s.hybrid.RMT.HasRegion(s.profile.RegionOf(base)) {
		line, replaced := s.hybrid.RMT.Translate(base)
		if !replaced {
			// First failure of an RWR line: flip the wear-out tag; the
			// permanent region pairing supplies the replacement.
			s.hybrid.RMT.MarkWorn(base)
			return true
		}
		// The SWR replacement line (or its dynamic successor) has died:
		// rescue through the LMT keyed by the SWR line.
		return s.allocDynamic(line)
	}
	// A line outside the RWRs (or a dynamic spare backing it) died.
	return s.allocDynamic(base)
}

// allocDynamic binds the next dynamic spare to key in the LMT, replacing
// any prior binding (the dead spare's entry).
func (s *MaxWEScheme) allocDynamic(key int) bool {
	if len(s.pool) == 0 {
		return false
	}
	spareLine := s.pool[len(s.pool)-1]
	s.pool = s.pool[:len(s.pool)-1]
	s.hybrid.LMT.Add(key, spareLine)
	s.used++
	return true
}

// SpareLinesTotal implements Scheme.
func (s *MaxWEScheme) SpareLinesTotal() int { return s.total }

// SpareLinesUsed implements Scheme.
func (s *MaxWEScheme) SpareLinesUsed() int {
	return s.used + s.hybrid.RMT.WornTags()
}

// SWRRegionIDs returns the SWR region ids in ascending endurance order.
func (s *MaxWEScheme) SWRRegionIDs() []int { return append([]int(nil), s.swrRegions...) }

// RWRRegionIDs returns the RWR region ids in ascending endurance order.
func (s *MaxWEScheme) RWRRegionIDs() []int { return append([]int(nil), s.rwrRegions...) }

// AdditionalRegionIDs returns the dynamic spare region ids.
func (s *MaxWEScheme) AdditionalRegionIDs() []int { return append([]int(nil), s.addRegions...) }

// Mapping exposes the hybrid tables (read-only use expected) for overhead
// reporting and white-box tests.
func (s *MaxWEScheme) Mapping() *mapping.Hybrid { return s.hybrid }

// CorruptMetadata injects one metadata fault into the scheme's hybrid
// mapping tables (the fault-injection layer's metadata fault class). It
// returns false when the tables hold no entries to corrupt. Until the
// next ScrubMetadata, Access may resolve through the damaged entry.
func (s *MaxWEScheme) CorruptMetadata(src *xrand.Source) bool {
	return s.hybrid.Corrupt(src)
}

// ScrubMetadata runs the integrity scrub over the hybrid tables,
// rebuilding corrupted entries from their journal copies, and returns how
// many entries were repaired.
func (s *MaxWEScheme) ScrubMetadata() int { return s.hybrid.Scrub() }
