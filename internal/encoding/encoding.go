// Package encoding implements the write-reduction codes of Section 3.3.2
// and the adversarial data patterns that invalidate them:
//
//   - DCW (data-comparison write): only flipped bits are programmed, so
//     the bit-write cost of an update is the Hamming distance.
//   - Flip-N-Write (Cho & Lee, MICRO'09): each w-bit word carries a flip
//     bit; if more than half the bits would change, the complement is
//     stored instead, capping the cost at w/2 + 1 bit-writes.
//
// The paper's attack observation: writing 0x0000... and 0x5555... to the
// same address in turn forces Flip-N-Write to its worst case on every
// write, eliminating its endurance benefit. AdversarialPair generates the
// worst-case pattern for any word width.
package encoding

import "math/bits"

// Word is a 64-bit memory word used by the write-cost models.
type Word = uint64

// HammingDistance returns the number of differing bits between two words.
func HammingDistance(a, b Word) int {
	return bits.OnesCount64(a ^ b)
}

// DCWCost returns the bit-writes data-comparison write performs to update
// old to new: exactly the flipped bits.
func DCWCost(old, new Word) int {
	return HammingDistance(old, new)
}

// FNWState is a stored word plus its flip bit.
type FNWState struct {
	// Stored is the raw cell contents (possibly the complement of the
	// logical value).
	Stored Word
	// Flipped records whether Stored is complemented.
	Flipped bool
	// Width is the logical word width in bits (1..64).
	Width int
}

// NewFNW initializes Flip-N-Write storage of the given width holding
// logical value v.
func NewFNW(width int, v Word) *FNWState {
	if width < 1 || width > 64 {
		panic("encoding: FNW width must be in [1, 64]")
	}
	return &FNWState{Stored: v & mask(width), Width: width}
}

func mask(width int) Word {
	if width == 64 {
		return ^Word(0)
	}
	return (Word(1) << width) - 1
}

// Value returns the logical word currently stored.
func (s *FNWState) Value() Word {
	if s.Flipped {
		return (^s.Stored) & mask(s.Width)
	}
	return s.Stored
}

// Write updates the logical value to v and returns the number of bit-cells
// programmed (including the flip bit when it changes). Flip-N-Write
// guarantees cost <= width/2 + 1.
func (s *FNWState) Write(v Word) int {
	v &= mask(s.Width)
	direct := HammingDistance(s.Stored, v)
	complemented := HammingDistance(s.Stored, (^v)&mask(s.Width))
	// Choose the representation with fewer cell flips; ties keep the
	// current flip state to avoid touching the flip bit.
	wantFlip := complemented < direct
	cost := direct
	if wantFlip {
		cost = complemented
	}
	if wantFlip != s.Flipped {
		cost++ // programming the flip bit is a cell write too
	}
	if wantFlip {
		s.Stored = (^v) & mask(s.Width)
	} else {
		s.Stored = v
	}
	s.Flipped = wantFlip
	return cost
}

// MaxFNWCost returns Flip-N-Write's worst-case bit-writes for a word of
// the given width: floor(width/2) + 1.
func MaxFNWCost(width int) int { return width/2 + 1 }

// AdversarialPair returns two values that, written alternately over a
// width-bit word, force Flip-N-Write to its worst case on every write:
// all-zeros and the alternating pattern 0101...b (the generalization of
// the paper's 0x0000/0x5555 example). Their Hamming distance is exactly
// width/2, making the direct and complemented encodings equally bad.
func AdversarialPair(width int) (a, b Word) {
	if width < 2 || width > 64 {
		panic("encoding: adversarial pair needs width in [2, 64]")
	}
	return 0, 0x5555555555555555 & mask(width)
}

// AverageRandomCost estimates the expected Flip-N-Write cost for uniformly
// random updates of a width-bit word by exact expectation: E[min(k, w-k)]
// over the binomial Hamming distance k, plus the flip-bit cost when the
// complement is chosen. It is used by tests and reports to contrast the
// benign average case with the adversarial worst case.
func AverageRandomCost(width int) float64 {
	if width < 1 || width > 63 {
		panic("encoding: width must be in [1, 63] for exact expectation")
	}
	// P(k) = C(w, k) / 2^w.
	total := 0.0
	c := 1.0 // C(w, 0)
	pow := 1.0
	for i := 0; i < width; i++ {
		pow *= 2
	}
	for k := 0; k <= width; k++ {
		cost := float64(k)
		if width-k < k {
			cost = float64(width-k) + 1 // complement + flip bit
		}
		total += c / pow * cost
		// next binomial coefficient
		c = c * float64(width-k) / float64(k+1)
	}
	return total
}
