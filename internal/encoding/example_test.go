package encoding_test

import (
	"fmt"

	"maxwe/internal/encoding"
)

// Flip-N-Write stores the complement when that flips fewer cells: going
// from all-zeros to all-ones costs one cell (the flip bit) instead of 16.
func ExampleFNWState_Write() {
	s := encoding.NewFNW(16, 0x0000)
	cost := s.Write(0xFFFF)
	fmt.Printf("cost: %d bit-write(s), stored value: %#04x\n", cost, s.Value())
	// Output:
	// cost: 1 bit-write(s), stored value: 0xffff
}

// The paper's adversarial pattern pins Flip-N-Write at its worst case:
// alternating 0x0000 and 0x5555 makes the direct and complemented
// encodings equally expensive on every write.
func ExampleAdversarialPair() {
	a, b := encoding.AdversarialPair(16)
	fmt.Printf("pattern: %#04x / %#04x, distance %d of %d bits\n",
		a, b, encoding.HammingDistance(a, b), 16)
	// Output:
	// pattern: 0x0000 / 0x5555, distance 8 of 16 bits
}
