package encoding

import "testing"

// FuzzFNWRoundTrip checks, for arbitrary write sequences, that
// Flip-N-Write always stores the correct logical value and never exceeds
// its worst-case cost bound.
func FuzzFNWRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0x5555), uint8(16))
	f.Add(uint64(1<<63), uint64(1), uint8(64))
	f.Add(uint64(0xdeadbeef), uint64(0xcafebabe), uint8(32))
	f.Fuzz(func(t *testing.T, a, b uint64, w uint8) {
		width := int(w%64) + 1
		s := NewFNW(width, a)
		bound := MaxFNWCost(width)
		for i := 0; i < 8; i++ {
			v := a
			if i%2 == 1 {
				v = b
			}
			cost := s.Write(v)
			if cost < 0 || cost > bound {
				t.Fatalf("width %d: cost %d outside [0, %d]", width, cost, bound)
			}
			if s.Value() != v&mask(width) {
				t.Fatalf("width %d: stored %#x, want %#x", width, s.Value(), v&mask(width))
			}
		}
	})
}

// FuzzDCWSymmetric checks the data-comparison-write cost is symmetric and
// zero iff the operands are equal.
func FuzzDCWSymmetric(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		if DCWCost(a, b) != DCWCost(b, a) {
			t.Fatal("DCW cost not symmetric")
		}
		if (DCWCost(a, b) == 0) != (a == b) {
			t.Fatal("DCW zero-cost iff equality violated")
		}
	})
}
