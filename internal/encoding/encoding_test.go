package encoding

import (
	"testing"
	"testing/quick"

	"maxwe/internal/xrand"
)

func TestHammingDistance(t *testing.T) {
	if HammingDistance(0, 0) != 0 {
		t.Fatal("identical words differ")
	}
	if HammingDistance(0, ^Word(0)) != 64 {
		t.Fatal("complement distance wrong")
	}
	if HammingDistance(0b1010, 0b0110) != 2 {
		t.Fatal("distance wrong")
	}
}

func TestDCWCost(t *testing.T) {
	if DCWCost(0xFF, 0xFF) != 0 {
		t.Fatal("no-op write cost nonzero")
	}
	if DCWCost(0x00, 0x0F) != 4 {
		t.Fatal("DCW cost wrong")
	}
}

func TestFNWValueRoundTrip(t *testing.T) {
	s := NewFNW(16, 0x1234)
	if s.Value() != 0x1234 {
		t.Fatalf("initial value = %#x", s.Value())
	}
	s.Write(0xFFFF)
	if s.Value() != 0xFFFF {
		t.Fatalf("value after write = %#x", s.Value())
	}
	s.Write(0x0001)
	if s.Value() != 0x0001 {
		t.Fatalf("value after second write = %#x", s.Value())
	}
}

func TestFNWUsesComplementWhenCheaper(t *testing.T) {
	// From 0x0000 to 0xFFFF: direct cost 16, complemented cost 0 bits +
	// 1 flip bit = 1.
	s := NewFNW(16, 0)
	cost := s.Write(0xFFFF)
	if cost != 1 {
		t.Fatalf("complement write cost = %d, want 1", cost)
	}
	if !s.Flipped {
		t.Fatal("flip bit not set")
	}
	if s.Value() != 0xFFFF {
		t.Fatal("logical value wrong after complement store")
	}
}

func TestFNWCostBound(t *testing.T) {
	src := xrand.New(5)
	for _, width := range []int{2, 8, 16, 32, 64} {
		s := NewFNW(width, 0)
		bound := MaxFNWCost(width)
		for i := 0; i < 2000; i++ {
			v := Word(src.Uint64())
			if width < 64 {
				v &= (1 << width) - 1
			}
			if c := s.Write(v); c > bound {
				t.Fatalf("width %d: cost %d exceeds bound %d", width, c, bound)
			}
		}
	}
}

// Property: FNW always stores the correct logical value, regardless of
// write sequence.
func TestFNWCorrectnessProperty(t *testing.T) {
	s := NewFNW(32, 0)
	f := func(v uint32) bool {
		s.Write(Word(v))
		return s.Value() == Word(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialPairForcesWorstCase(t *testing.T) {
	// The paper's attack: alternate 0x0000 and 0x5555. Every write after
	// the first must cost the worst case (width/2 bit flips; the flip bit
	// never helps because distance to value and complement are equal).
	for _, width := range []int{8, 16, 32, 64} {
		a, b := AdversarialPair(width)
		if HammingDistance(a, b) != width/2 {
			t.Fatalf("width %d: adversarial distance = %d, want %d",
				width, HammingDistance(a, b), width/2)
		}
		s := NewFNW(width, a)
		total := 0
		const writes = 100
		for i := 0; i < writes; i++ {
			if i%2 == 0 {
				total += s.Write(b)
			} else {
				total += s.Write(a)
			}
		}
		perWrite := float64(total) / writes
		if perWrite < float64(width)/2 {
			t.Fatalf("width %d: adversarial per-write cost %v < width/2", width, perWrite)
		}
	}
}

func TestAdversarialBeatsRandom(t *testing.T) {
	// Average random updates must cost strictly less than the adversarial
	// pattern — that is the whole point of the attack.
	width := 32
	avg := AverageRandomCost(width)
	if avg >= float64(width)/2 {
		t.Fatalf("random average %v not below adversarial %v", avg, float64(width)/2)
	}
}

func TestAverageRandomCostSmallWidths(t *testing.T) {
	// width=1: updates are 0 or 1 with equal probability; cost 0 or 1,
	// expectation 0.5 (complement never chosen: w-k<k impossible for k<=... )
	got := AverageRandomCost(1)
	if got != 0.5 {
		t.Fatalf("AverageRandomCost(1) = %v, want 0.5", got)
	}
	// width=2: k=0:cost0 p=1/4; k=1:cost1 p=1/2; k=2: complement cost 0+1 p=1/4.
	got = AverageRandomCost(2)
	if got != 0.75 {
		t.Fatalf("AverageRandomCost(2) = %v, want 0.75", got)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFNW(0, 0) },
		func() { NewFNW(65, 0) },
		func() { AdversarialPair(1) },
		func() { AdversarialPair(65) },
		func() { AverageRandomCost(0) },
		func() { AverageRandomCost(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxFNWCost(t *testing.T) {
	if MaxFNWCost(16) != 9 || MaxFNWCost(64) != 33 {
		t.Fatal("MaxFNWCost wrong")
	}
}
