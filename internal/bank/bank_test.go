package bank

import (
	"math"
	"testing"

	"maxwe/internal/endurance"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

func newBank(t *testing.T, seed uint64) *sim.Stepper {
	t.Helper()
	p := endurance.Linear(16, 8, 20, 1000).Shuffled(xrand.New(seed))
	st, err := sim.NewStepper(sim.Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newArray(t *testing.T, banks int) *Array {
	t.Helper()
	bs := make([]*sim.Stepper, banks)
	for i := range bs {
		bs[i] = newBank(t, uint64(i+1))
	}
	a, err := New(bs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty bank list accepted")
	}
	if _, err := New([]*sim.Stepper{nil}); err == nil {
		t.Fatal("nil bank accepted")
	}
}

func TestInterleaving(t *testing.T) {
	a := newArray(t, 4)
	if a.Banks() != 4 {
		t.Fatal("bank count wrong")
	}
	perBank := a.LogicalLines() / 4
	if perBank == 0 {
		t.Fatal("degenerate interleave")
	}
	// Writing addresses 0..3 touches each bank once: per-bank user
	// writes must each be 1.
	for i := 0; i < 4; i++ {
		if !a.Write(i) {
			t.Fatal("early failure")
		}
	}
	for i, r := range a.BankResults() {
		if r.UserWrites != 1 {
			t.Fatalf("bank %d served %d writes, want 1", i, r.UserWrites)
		}
	}
}

func TestUAAOverArrayMatchesSingleBankNormalized(t *testing.T) {
	// A uniform sweep over the interleaved space is a uniform sweep over
	// every bank, so the array's normalized lifetime must match a single
	// bank's within a few percent.
	single := newBank(t, 1)
	lla := 0
	for single.Write(lla) {
		lla = (lla + 1) % single.LogicalLines()
	}
	want := single.Result().NormalizedLifetime

	a := newArray(t, 4)
	addr := 0
	for a.Write(addr) {
		addr = (addr + 1) % a.LogicalLines()
	}
	got := a.NormalizedLifetime()
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("array normalized lifetime %v vs single bank %v", got, want)
	}
	if !a.Failed() {
		t.Fatal("array did not fail")
	}
}

func TestFailureStopsArray(t *testing.T) {
	a := newArray(t, 2)
	for a.Write(0) {
	}
	if !a.Failed() {
		t.Fatal("array not failed")
	}
	if a.Write(1) {
		t.Fatal("write accepted after failure")
	}
}

func TestAddressFolding(t *testing.T) {
	a := newArray(t, 2)
	if !a.Write(a.LogicalLines() + 3) {
		t.Fatal("folded write failed")
	}
	if a.UserWrites() != 1 {
		t.Fatalf("UserWrites = %d", a.UserWrites())
	}
}

func TestNegativeAddressPanics(t *testing.T) {
	a := newArray(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Write(-1)
}
