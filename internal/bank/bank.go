// Package bank composes multiple independently protected NVM banks into
// one interleaved address space. The paper evaluates a single 1 GB bank;
// real modules stripe consecutive lines across banks, which matters for
// attacks: striping spreads a sequential sweep evenly (UAA stays uniform
// per bank) but also spreads a hammer's victims, so per-bank protection
// sees the same pattern at 1/B rate.
//
// Each bank is a trace-driven stack (sim.Stepper); the array fails when
// its first bank fails — there is no inter-bank sparing, matching how
// per-bank controllers are provisioned.
package bank

import (
	"errors"
	"fmt"

	"maxwe/internal/sim"
)

// Array interleaves logical lines across banks: logical line a lives in
// bank a % B at bank-local line a / B.
type Array struct {
	banks []*sim.Stepper
	// logicalLines is the fixed interleaved space: B * min bank size.
	logicalLines int
	failed       bool
	userWrites   int64
}

// New builds an array from per-bank steppers. All banks should have the
// same logical size; the interleaved space uses the minimum so every
// address maps into every bank.
func New(banks []*sim.Stepper) (*Array, error) {
	if len(banks) == 0 {
		return nil, errors.New("bank: New needs at least one bank")
	}
	for i, b := range banks {
		if b == nil {
			return nil, fmt.Errorf("bank: bank %d is nil", i)
		}
	}
	minLines := banks[0].LogicalLines()
	for _, b := range banks[1:] {
		if b.LogicalLines() < minLines {
			minLines = b.LogicalLines()
		}
	}
	if minLines == 0 {
		return nil, errors.New("bank: a bank has no logical space")
	}
	return &Array{
		banks:        banks,
		logicalLines: minLines * len(banks),
	}, nil
}

// Banks returns the number of banks.
func (a *Array) Banks() int { return len(a.banks) }

// LogicalLines returns the interleaved logical space size.
func (a *Array) LogicalLines() int { return a.logicalLines }

// Failed reports whether any bank has failed.
func (a *Array) Failed() bool { return a.failed }

// Write performs one user write to interleaved logical line lla. It
// returns false once the array has failed. Addresses fold modulo the
// interleaved space.
func (a *Array) Write(lla int) bool {
	if a.failed {
		return false
	}
	if lla < 0 {
		panic(fmt.Sprintf("bank: negative address %d", lla))
	}
	lla %= a.logicalLines
	b := lla % len(a.banks)
	local := lla / len(a.banks)
	ok := a.banks[b].Write(local)
	a.userWrites++
	if !ok {
		a.failed = true
	}
	return ok
}

// UserWrites returns the writes served across all banks.
func (a *Array) UserWrites() int64 { return a.userWrites }

// NormalizedLifetime returns user writes over the summed ideal lifetime
// of all banks — comparable to the single-bank metric.
func (a *Array) NormalizedLifetime() float64 {
	var ideal float64
	for _, b := range a.banks {
		ideal += b.Device().IdealLifetime()
	}
	return float64(a.userWrites) / ideal
}

// BankResults returns each bank's lifetime summary.
func (a *Array) BankResults() []sim.Result {
	out := make([]sim.Result, len(a.banks))
	for i, b := range a.banks {
		out[i] = b.Result()
	}
	return out
}
