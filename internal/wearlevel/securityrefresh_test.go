package wearlevel

import (
	"testing"

	"maxwe/internal/xrand"
)

func TestSecurityRefreshBijective(t *testing.T) {
	l := NewSecurityRefresh(64, 2, xrand.New(1))
	m := &recordingMover{}
	src := xrand.New(2)
	for step := 0; step < 5000; step++ {
		if step%97 == 0 {
			seen := make([]bool, 64)
			for a := 0; a < 64; a++ {
				p := l.Translate(a)
				if p < 0 || p >= 64 || seen[p] {
					t.Fatalf("step %d: translation not bijective at %d -> %d", step, a, p)
				}
				seen[p] = true
			}
		}
		if !l.OnWrite(src.Intn(64), m) {
			t.Fatal("refresh failed with healthy mover")
		}
	}
	if l.Rounds() == 0 {
		t.Fatal("no refresh round completed in 5000 writes with psi=2")
	}
}

func TestSecurityRefreshStartsIdentityThenRandomizes(t *testing.T) {
	l := NewSecurityRefresh(32, 1, xrand.New(3))
	// Before any refresh step, keyPrev = 0: identity.
	for a := 0; a < 32; a++ {
		if l.Translate(a) != a {
			t.Fatal("initial mapping not identity")
		}
	}
	m := &recordingMover{}
	for i := 0; i < 16*4; i++ { // enough steps for at least one round
		l.OnWrite(0, m)
	}
	moved := 0
	for a := 0; a < 32; a++ {
		if l.Translate(a) != a {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("mapping still identity after a refresh round")
	}
}

func TestSecurityRefreshPairSwapCosts(t *testing.T) {
	l := NewSecurityRefresh(16, 1, xrand.New(4))
	m := &recordingMover{}
	// One refresh step per write; each non-degenerate step writes exactly
	// two slots. Run half a round and check parity.
	steps := 0
	for i := 0; i < 8; i++ {
		l.OnWrite(0, m)
		steps++
	}
	if len(m.writes)%2 != 0 {
		t.Fatalf("odd number of movement writes: %d", len(m.writes))
	}
	if len(m.writes) > 2*steps {
		t.Fatalf("more than one pair swap per step: %d writes in %d steps", len(m.writes), steps)
	}
}

func TestSecurityRefreshFailurePropagates(t *testing.T) {
	l := NewSecurityRefresh(16, 1, xrand.New(5))
	m := &recordingMover{fail: true}
	for i := 0; i < 100; i++ {
		if !l.OnWrite(0, m) {
			return
		}
	}
	t.Fatal("mover failure never propagated")
}

func TestSecurityRefreshPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSecurityRefresh(0, 1, xrand.New(1)) },
		func() { NewSecurityRefresh(3, 1, xrand.New(1)) },
		func() { NewSecurityRefresh(4, 0, xrand.New(1)) },
		func() { NewSecurityRefresh(4, 1, nil) },
		func() { NewSecurityRefresh(4, 1, xrand.New(1)).Translate(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTwoLevelBijective(t *testing.T) {
	l := NewTwoLevelSecurityRefresh(8, 16, 64, 4, xrand.New(6))
	if l.LogicalLines() != 128 {
		t.Fatalf("logical lines = %d", l.LogicalLines())
	}
	m := &recordingMover{}
	src := xrand.New(7)
	for step := 0; step < 4000; step++ {
		if step%111 == 0 {
			seen := make([]bool, 128)
			for a := 0; a < 128; a++ {
				p := l.Translate(a)
				if p < 0 || p >= 128 || seen[p] {
					t.Fatalf("step %d: two-level translation not bijective (%d -> %d)", step, a, p)
				}
				seen[p] = true
			}
		}
		if !l.OnWrite(src.Intn(128), m) {
			t.Fatal("two-level refresh failed with healthy mover")
		}
	}
	if len(m.writes) == 0 {
		t.Fatal("no refresh traffic generated")
	}
	for _, w := range m.writes {
		if w < 0 || w >= 128 {
			t.Fatalf("movement write to out-of-range slot %d", w)
		}
	}
}

func TestTwoLevelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTwoLevelSecurityRefresh(3, 16, 8, 8, xrand.New(1)) },
		func() { NewTwoLevelSecurityRefresh(4, 3, 8, 8, xrand.New(1)) },
		func() { NewTwoLevelSecurityRefresh(4, 4, 8, 8, xrand.New(1)).Translate(16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTwoLevelFailurePropagates(t *testing.T) {
	l := NewTwoLevelSecurityRefresh(4, 4, 1, 1, xrand.New(8))
	m := &recordingMover{fail: true}
	for i := 0; i < 200; i++ {
		if !l.OnWrite(i%16, m) {
			return
		}
	}
	t.Fatal("two-level mover failure never propagated")
}
