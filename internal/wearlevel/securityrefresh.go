// securityrefresh.go implements Seong et al.'s Security Refresh
// (ISCA'10) faithfully at algorithm level: XOR-keyed randomized address
// remapping refreshed incrementally, and its two-level composition (the
// paper's TLSR baseline). Unlike the behavioural SwapWL model, this is
// the published mechanism: two keys per round, a refresh pointer, and a
// pair swap per refresh step.
package wearlevel

import (
	"fmt"

	"maxwe/internal/xrand"
)

// SecurityRefresh remaps a power-of-two address space with an XOR key.
// Each refresh round draws a fresh key and migrates lines to their new
// locations incrementally: every Psi user writes, one unrefreshed logical
// address a is processed by swapping the physical locations a^keyPrev and
// a^keyCur (two data-movement writes), which simultaneously migrates a
// and its partner a^keyPrev^keyCur.
type SecurityRefresh struct {
	n       int // power-of-two line count
	mask    uint64
	psi     int
	keyPrev uint64
	keyCur  uint64
	// refreshed[a] records whether logical address a already uses keyCur
	// this round.
	refreshed []bool
	pointer   int // next candidate logical address to refresh
	since     int
	rounds    int64
	src       *xrand.Source
}

// NewSecurityRefresh builds a single-level security-refresh controller
// over n lines (n must be a power of two >= 2) with refresh period psi.
func NewSecurityRefresh(n, psi int, src *xrand.Source) *SecurityRefresh {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("wearlevel: SecurityRefresh needs a power-of-two space, got %d", n))
	}
	if psi < 1 {
		panic("wearlevel: SecurityRefresh needs psi >= 1")
	}
	if src == nil {
		panic("wearlevel: SecurityRefresh needs a randomness source")
	}
	l := &SecurityRefresh{
		n:         n,
		mask:      uint64(n - 1),
		psi:       psi,
		refreshed: make([]bool, n),
		src:       src,
	}
	// First round starts with both keys zero (identity mapping) and
	// immediately begins migrating toward a random key.
	l.keyPrev = 0
	l.keyCur = src.Uint64() & l.mask
	return l
}

// Name implements Leveler.
func (l *SecurityRefresh) Name() string { return "security-refresh" }

// LogicalLines implements Leveler.
func (l *SecurityRefresh) LogicalLines() int { return l.n }

// Translate maps logical address a to its physical location under the
// current refresh state: the new key once a has been refreshed this
// round, the previous key before that.
func (l *SecurityRefresh) Translate(a int) int {
	if a < 0 || a >= l.n {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", a, l.n))
	}
	if l.refreshed[a] {
		return int(uint64(a) ^ l.keyCur)
	}
	return int(uint64(a) ^ l.keyPrev)
}

// Rounds returns how many complete refresh rounds have finished.
func (l *SecurityRefresh) Rounds() int64 { return l.rounds }

// OnWrite advances the refresh schedule: every psi user writes, one
// refresh step migrates a pair of lines to the new key.
func (l *SecurityRefresh) OnWrite(_ int, mov Mover) bool {
	l.since++
	if l.since < l.psi {
		return true
	}
	l.since = 0
	return l.refreshStep(mov)
}

func (l *SecurityRefresh) refreshStep(mov Mover) bool {
	// Find the next unrefreshed logical address.
	for l.pointer < l.n && l.refreshed[l.pointer] {
		l.pointer++
	}
	if l.pointer == l.n {
		l.completeRound()
		return true
	}
	a := uint64(l.pointer)
	partner := a ^ l.keyPrev ^ l.keyCur
	oldLoc := int(a ^ l.keyPrev) // == partner ^ keyCur
	newLoc := int(a ^ l.keyCur)  // == partner ^ keyPrev
	if oldLoc != newLoc {
		// Swap the two physical locations: two data-movement writes.
		if !mov.WriteSlot(newLoc) {
			return false
		}
		if !mov.WriteSlot(oldLoc) {
			return false
		}
	}
	l.refreshed[a] = true
	l.refreshed[partner] = true
	return true
}

func (l *SecurityRefresh) completeRound() {
	l.rounds++
	l.keyPrev = l.keyCur
	l.keyCur = l.src.Uint64() & l.mask
	for i := range l.refreshed {
		l.refreshed[i] = false
	}
	l.pointer = 0
}

// TwoLevelSecurityRefresh composes an outer controller that remaps
// sub-region indexes with one inner controller per sub-region that remaps
// offsets — Seong et al.'s two-level organization (the paper's "TLSR").
// Both dimensions must be powers of two.
type TwoLevelSecurityRefresh struct {
	outer     *SecurityRefresh
	inner     []*SecurityRefresh
	subSize   int
	subShift  uint
	offsetMsk int
}

// NewTwoLevelSecurityRefresh builds a two-level controller over
// subRegions x subSize lines. outerPsi and innerPsi set the refresh
// periods of the two levels (the outer level is typically much slower).
func NewTwoLevelSecurityRefresh(subRegions, subSize, outerPsi, innerPsi int, src *xrand.Source) *TwoLevelSecurityRefresh {
	if subRegions < 2 || subRegions&(subRegions-1) != 0 {
		panic("wearlevel: TwoLevelSecurityRefresh needs power-of-two subRegions")
	}
	if subSize < 2 || subSize&(subSize-1) != 0 {
		panic("wearlevel: TwoLevelSecurityRefresh needs power-of-two subSize")
	}
	shift := uint(0)
	for 1<<shift != subSize {
		shift++
	}
	l := &TwoLevelSecurityRefresh{
		outer:     NewSecurityRefresh(subRegions, outerPsi, src),
		inner:     make([]*SecurityRefresh, subRegions),
		subSize:   subSize,
		subShift:  shift,
		offsetMsk: subSize - 1,
	}
	for i := range l.inner {
		l.inner[i] = NewSecurityRefresh(subSize, innerPsi, src)
	}
	return l
}

// Name implements Leveler.
func (l *TwoLevelSecurityRefresh) Name() string { return "tlsr-exact" }

// LogicalLines implements Leveler.
func (l *TwoLevelSecurityRefresh) LogicalLines() int {
	return len(l.inner) * l.subSize
}

// Translate applies the inner remap to the offset within the logical
// sub-region, then the outer remap to the sub-region index.
func (l *TwoLevelSecurityRefresh) Translate(a int) int {
	if a < 0 || a >= l.LogicalLines() {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", a, l.LogicalLines()))
	}
	sub := a >> l.subShift
	off := a & l.offsetMsk
	newOff := l.inner[sub].Translate(off)
	newSub := l.outer.Translate(sub)
	return newSub<<l.subShift | newOff
}

// OnWrite advances the inner controller of the written sub-region and the
// outer controller.
//
// Note: the outer level remaps whole sub-regions; a faithful hardware
// implementation migrates an entire sub-region's worth of lines per outer
// refresh. Here an outer refresh step issues subSize paired moves through
// the Mover (costed as 2*subSize writes spread over the step), which is
// the same total traffic.
func (l *TwoLevelSecurityRefresh) OnWrite(a int, mov Mover) bool {
	sub := a >> l.subShift
	if !l.inner[sub].OnWrite(a&l.offsetMsk, &offsetMover{mov: mov, l: l, sub: sub}) {
		return false
	}
	return l.outer.OnWrite(sub, &subregionMover{mov: mov, l: l})
}

// offsetMover lifts an inner-level move (an offset within sub-region sub)
// to a full-space slot write, applying the *outer* mapping so the data
// lands where reads will look for it.
type offsetMover struct {
	mov Mover
	l   *TwoLevelSecurityRefresh
	sub int
}

func (m *offsetMover) WriteSlot(off int) bool {
	newSub := m.l.outer.Translate(m.sub)
	return m.mov.WriteSlot(newSub<<m.l.subShift | off)
}

// subregionMover expands an outer-level move (a sub-region index) into
// writes to every line of that physical sub-region.
type subregionMover struct {
	mov Mover
	l   *TwoLevelSecurityRefresh
}

func (m *subregionMover) WriteSlot(sub int) bool {
	base := sub << m.l.subShift
	for off := 0; off < m.l.subSize; off++ {
		if !m.mov.WriteSlot(base | off) {
			return false
		}
	}
	return true
}
