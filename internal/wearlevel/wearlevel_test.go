package wearlevel

import (
	"testing"

	"maxwe/internal/xrand"
)

// recordingMover counts data-movement writes and can simulate failure.
type recordingMover struct {
	writes []int
	fail   bool
}

func (m *recordingMover) WriteSlot(u int) bool {
	if m.fail {
		return false
	}
	m.writes = append(m.writes, u)
	return true
}

func checkPermutation(t *testing.T, l Leveler, slots int) {
	t.Helper()
	seen := make([]bool, slots)
	for lla := 0; lla < l.LogicalLines(); lla++ {
		u := l.Translate(lla)
		if u < 0 || u >= slots {
			t.Fatalf("%s: Translate(%d) = %d out of range", l.Name(), lla, u)
		}
		if seen[u] {
			t.Fatalf("%s: slot %d hit twice", l.Name(), u)
		}
		seen[u] = true
	}
}

func TestIdentity(t *testing.T) {
	l := NewIdentity(8)
	if l.LogicalLines() != 8 {
		t.Fatal("logical size wrong")
	}
	for i := 0; i < 8; i++ {
		if l.Translate(i) != i {
			t.Fatal("identity broken")
		}
	}
	m := &recordingMover{}
	if !l.OnWrite(0, m) || len(m.writes) != 0 {
		t.Fatal("identity moved data")
	}
}

func TestIdentityPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewIdentity(0) },
		func() { NewIdentity(4).Translate(4) },
		func() { NewIdentity(4).Translate(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStartGapInjectiveAvoidsGap(t *testing.T) {
	l := NewStartGap(16, 4)
	m := &recordingMover{}
	for step := 0; step < 500; step++ {
		seen := make(map[int]bool)
		for lla := 0; lla < l.LogicalLines(); lla++ {
			u := l.Translate(lla)
			if u == l.Gap() {
				t.Fatalf("step %d: logical %d mapped onto gap %d", step, lla, u)
			}
			if seen[u] {
				t.Fatalf("step %d: slot %d hit twice", step, u)
			}
			if u < 0 || u >= 16 {
				t.Fatalf("step %d: slot %d out of range", step, u)
			}
			seen[u] = true
		}
		if !l.OnWrite(step%l.LogicalLines(), m) {
			t.Fatal("start-gap reported failure with healthy mover")
		}
	}
}

func TestStartGapMovesEveryPsi(t *testing.T) {
	l := NewStartGap(8, 3)
	m := &recordingMover{}
	gap0 := l.Gap()
	for i := 0; i < 2; i++ {
		l.OnWrite(0, m)
	}
	if l.Gap() != gap0 {
		t.Fatal("gap moved before psi writes")
	}
	l.OnWrite(0, m)
	if l.Gap() != gap0-1 {
		t.Fatalf("gap = %d after psi writes, want %d", l.Gap(), gap0-1)
	}
	// The movement wrote exactly one slot: the old gap position.
	if len(m.writes) != 1 || m.writes[0] != gap0 {
		t.Fatalf("movement writes = %v", m.writes)
	}
}

func TestStartGapFullRotationAdvancesStart(t *testing.T) {
	l := NewStartGap(4, 1)
	m := &recordingMover{}
	if l.Start() != 0 {
		t.Fatal("initial start nonzero")
	}
	// Gap starts at 3; after 3 moves it reaches 0; the 4th OnWrite wraps
	// it and advances start.
	for i := 0; i < 4; i++ {
		l.OnWrite(0, m)
	}
	if l.Start() != 1 {
		t.Fatalf("start = %d after full rotation, want 1", l.Start())
	}
	if l.Gap() != 3 {
		t.Fatalf("gap = %d after wrap, want 3", l.Gap())
	}
}

func TestStartGapPropagatesFailure(t *testing.T) {
	l := NewStartGap(4, 1)
	m := &recordingMover{fail: true}
	if l.OnWrite(0, m) {
		t.Fatal("failure not propagated")
	}
}

func TestStartGapPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewStartGap(1, 1) },
		func() { NewStartGap(4, 0) },
		func() { NewStartGap(4, 1).Translate(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func uniformMetrics(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = 1000
	}
	return m
}

func gradedMetrics(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = float64(100 * (i + 1))
	}
	return m
}

func TestSwapLevelersStayPermutations(t *testing.T) {
	src := xrand.New(31)
	levelers := []Leveler{
		NewTLSR(32, 5, xrand.New(1)),
		NewPCMS(32, 5, xrand.New(2)),
		NewBWL(32, gradedMetrics(32), 5, xrand.New(3)),
		NewWAWL(32, gradedMetrics(32), 5, xrand.New(4)),
	}
	m := &recordingMover{}
	for _, l := range levelers {
		for step := 0; step < 3000; step++ {
			if !l.OnWrite(src.Intn(l.LogicalLines()), m) {
				t.Fatalf("%s failed with healthy mover", l.Name())
			}
		}
		checkPermutation(t, l, 32)
	}
}

func TestSwapCostsTwoWrites(t *testing.T) {
	l := NewTLSR(16, 3, xrand.New(9))
	m := &recordingMover{}
	// Drive a single logical line: a swap should occur at its third write
	// (or a self-relocation costing zero).
	for i := 0; i < 300; i++ {
		l.OnWrite(5, m)
	}
	if l.Swaps() == 0 {
		t.Fatal("no swaps after 300 writes with psi=3")
	}
	if int64(len(m.writes)) != 2*l.Swaps() {
		t.Fatalf("movement writes = %d, want 2 per swap x %d swaps",
			len(m.writes), l.Swaps())
	}
}

func TestSwapFailurePropagates(t *testing.T) {
	l := NewTLSR(16, 1, xrand.New(9))
	m := &recordingMover{fail: true}
	// With psi=1, the first write triggers a relocation attempt; either it
	// self-relocates (keep trying) or the mover failure must propagate.
	for i := 0; i < 100; i++ {
		if !l.OnWrite(0, m) {
			return // propagated as expected
		}
	}
	t.Fatal("failure never propagated across 100 forced relocations")
}

func TestWAWLDwellScalesWithMetric(t *testing.T) {
	// With strongly graded metrics, a line on a strong slot must receive
	// a longer dwell than one on a weak slot.
	metrics := gradedMetrics(16)
	l := NewWAWL(16, metrics, 100, xrand.New(5))
	weakDwell := l.dwell(0)
	strongDwell := l.dwell(15)
	if strongDwell <= weakDwell {
		t.Fatalf("dwell(strong)=%d <= dwell(weak)=%d", strongDwell, weakDwell)
	}
}

func TestBWLUniformPick(t *testing.T) {
	l := NewBWL(16, gradedMetrics(16), 10, xrand.New(6))
	if l.chooser != nil {
		t.Fatal("BWL must pick targets uniformly (dwell-only bias)")
	}
	if l.dwellGamma != 0.5 {
		t.Fatal("BWL dwell gamma wrong")
	}
}

func TestWAWLBiasedPick(t *testing.T) {
	l := NewWAWL(16, gradedMetrics(16), 10, xrand.New(7))
	if l.chooser == nil {
		t.Fatal("WAWL must bias its relocation targets")
	}
	// Empirically, picks must favor high-metric slots.
	var lowHalf, highHalf int
	for i := 0; i < 10000; i++ {
		if l.pick() < 8 {
			lowHalf++
		} else {
			highHalf++
		}
	}
	if highHalf <= lowHalf {
		t.Fatalf("WAWL picks not biased: low=%d high=%d", lowHalf, highHalf)
	}
}

func TestPCMSJitter(t *testing.T) {
	l := NewPCMS(16, 100, xrand.New(8))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[l.dwell(0)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("PCM-S dwell not jittered: %d distinct values", len(seen))
	}
	for d := range seen {
		if d < 50 || d > 150 {
			t.Fatalf("jittered dwell %d outside [psi/2, 3psi/2)", d)
		}
	}
}

func TestTLSRConstantDwell(t *testing.T) {
	l := NewTLSR(16, 100, xrand.New(8))
	for i := 0; i < 10; i++ {
		if l.dwell(i) != 100 {
			t.Fatalf("TLSR dwell = %d, want psi", l.dwell(i))
		}
	}
}

func TestSwapWLPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTLSR(1, 5, xrand.New(1)) },
		func() { NewTLSR(8, 0, xrand.New(1)) },
		func() { NewTLSR(8, 5, nil) },
		func() { NewBWL(8, uniformMetrics(7), 5, xrand.New(1)) },
		func() { NewBWL(8, []float64{1, 1, 1, 1, 0, 1, 1, 1}, 5, xrand.New(1)) },
		func() { NewTLSR(8, 5, xrand.New(1)).Translate(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTWLBondingAndToss(t *testing.T) {
	metrics := []float64{10, 1000, 20, 2000} // weak: 0,2; strong: 1,3
	l := NewTWL(4, metrics, xrand.New(12))
	if l.LogicalLines() != 2 {
		t.Fatalf("logical lines = %d", l.LogicalLines())
	}
	// Pair 0: weakest (slot 0) with strongest (slot 3).
	if l.weak[0] != 0 || l.strong[0] != 3 {
		t.Fatalf("pair 0 = (%d,%d), want (0,3)", l.weak[0], l.strong[0])
	}
	if l.weak[1] != 2 || l.strong[1] != 1 {
		t.Fatalf("pair 1 = (%d,%d), want (2,1)", l.weak[1], l.strong[1])
	}
	// Tossing must favor the strong member ~ E_s/(E_s+E_w) ≈ 0.995.
	strongHits := 0
	for i := 0; i < 10000; i++ {
		if l.Translate(0) == 3 {
			strongHits++
		}
	}
	if strongHits < 9800 {
		t.Fatalf("strong member hit %d/10000, want ~9950", strongHits)
	}
}

func TestTWLTranslateWithinPair(t *testing.T) {
	metrics := gradedMetrics(8)
	l := NewTWL(8, metrics, xrand.New(13))
	for lla := 0; lla < l.LogicalLines(); lla++ {
		for i := 0; i < 100; i++ {
			u := l.Translate(lla)
			if u != l.weak[lla] && u != l.strong[lla] {
				t.Fatalf("Translate(%d) = %d escaped its pair", lla, u)
			}
		}
	}
}

func TestTWLPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTWL(3, uniformMetrics(3), xrand.New(1)) },
		func() { NewTWL(4, uniformMetrics(3), xrand.New(1)) },
		func() { NewTWL(4, uniformMetrics(4), nil) },
		func() { NewTWL(4, uniformMetrics(4), xrand.New(1)).Translate(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: across heavy traffic, swap levelers keep perm/inv mutually
// inverse.
func TestSwapPermInverseInvariant(t *testing.T) {
	l := NewWAWL(24, gradedMetrics(24), 2, xrand.New(14))
	m := &recordingMover{}
	src := xrand.New(15)
	for step := 0; step < 5000; step++ {
		l.OnWrite(src.Intn(24), m)
		if step%500 == 0 {
			for lla, slot := range l.perm {
				if l.inv[slot] != lla {
					t.Fatalf("perm/inv inconsistent at step %d", step)
				}
			}
		}
	}
}

func BenchmarkSwapWLOnWrite(b *testing.B) {
	l := NewWAWL(4096, gradedMetrics(4096), 64, xrand.New(1))
	m := &recordingMover{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.OnWrite(i&4095, m)
		if len(m.writes) > 1<<20 {
			m.writes = m.writes[:0]
		}
	}
}

func BenchmarkStartGapTranslate(b *testing.B) {
	l := NewStartGap(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Translate(i & 4094)
	}
}

// The HotState + Relocate split must be observationally identical to
// OnWrite: two identically-seeded levelers, one driven through OnWrite
// and one through the inlined fast path the sim engine uses, must issue
// the same mover writes and end in the same placement/credit state.
func TestHotStateRelocateMatchesOnWrite(t *testing.T) {
	for _, mk := range []func(seed uint64) *SwapWL{
		func(s uint64) *SwapWL { return NewTLSR(24, 6, xrand.New(s)) },
		func(s uint64) *SwapWL { return NewPCMS(24, 6, xrand.New(s)) },
		func(s uint64) *SwapWL { return NewBWL(24, gradedMetrics(24), 6, xrand.New(s)) },
		func(s uint64) *SwapWL { return NewWAWL(24, gradedMetrics(24), 6, xrand.New(s)) },
	} {
		ref, fast := mk(7), mk(7)
		perm, credit := fast.HotState()
		refMov, fastMov := &recordingMover{}, &recordingMover{}
		addrs := xrand.New(8)
		for step := 0; step < 5000; step++ {
			lla := addrs.Intn(24)
			if ref.Translate(lla) != perm[lla] {
				t.Fatalf("%s: step %d: HotState perm diverged from Translate", ref.Name(), step)
			}
			if !ref.OnWrite(lla, refMov) {
				t.Fatalf("%s: reference OnWrite failed", ref.Name())
			}
			// The sim fast path: inline decrement, Relocate on exhaustion.
			credit[lla]--
			if credit[lla] <= 0 {
				if !fast.Relocate(lla, fastMov) {
					t.Fatalf("%s: Relocate failed", fast.Name())
				}
			}
		}
		if len(refMov.writes) != len(fastMov.writes) {
			t.Fatalf("%s: mover write counts diverged: %d vs %d",
				ref.Name(), len(refMov.writes), len(fastMov.writes))
		}
		for i := range refMov.writes {
			if refMov.writes[i] != fastMov.writes[i] {
				t.Fatalf("%s: mover write %d diverged: %d vs %d",
					ref.Name(), i, refMov.writes[i], fastMov.writes[i])
			}
		}
		for lla := 0; lla < 24; lla++ {
			if ref.perm[lla] != perm[lla] || ref.credit[lla] != credit[lla] {
				t.Fatalf("%s: final state diverged at line %d", ref.Name(), lla)
			}
		}
		if ref.Swaps() != fast.Swaps() {
			t.Fatalf("%s: swap counts diverged: %d vs %d", ref.Name(), ref.Swaps(), fast.Swaps())
		}
	}
}
