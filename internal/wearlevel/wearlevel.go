// Package wearlevel implements the wear-leveling substrates the paper
// layers under the spare-line schemes (Sections 2.2.1, 3.3.1 and 5):
//
//   - Identity — no wear leveling (the UAA experiments, where the paper
//     shows the choice of wear-leveling scheme is irrelevant).
//   - Start-Gap (Qureshi et al., MICRO'09) — the classic algebraic
//     scheme, faithfully implemented with a moving gap line and a start
//     pointer.
//   - TLSR — two-level security refresh (Seong et al., ISCA'10): keyed
//     randomized remapping, refreshed incrementally. Modeled as periodic
//     uniformly-random relocation of lines.
//   - PCM-S (Seznec) — secure random swap: like TLSR but with a jittered
//     (randomized) swap interval.
//   - BWL (Yun et al., TVLSI'15) — endurance-variation-aware: dwell time
//     on a location scales with the location's endurance metric.
//   - WAWL (Zhou et al., ICPADS'16) — endurance-variation-aware: both the
//     relocation target ("chosen probability") and the swap interval scale
//     with the endurance metric, approaching proportional-fill wear.
//   - TWL (Zhang & Sun, DAC'17) — toss-up wear leveling: writes toss
//     between a bonded strong/weak location pair with endurance-weighted
//     probability.
//
// Remapping moves data, and data movement is real writes: every swap
// issues device writes through the Mover, reproducing the write
// amplification of the paper's Figure 2 (one swap adds two extra writes).
//
// The randomized schemes are behavioural models: they reproduce the
// published schemes' steady-state placement and remap-traffic behaviour
// (uniform randomization for TLSR/PCM-S; endurance-biased placement and
// dwell for BWL/WAWL) rather than their exact hardware tables, which is
// the level of detail the paper's lifetime evaluation depends on.
package wearlevel

import (
	"fmt"
	"math"

	"maxwe/internal/xrand"
)

// Mover performs data-movement writes on behalf of a leveler. WriteSlot
// returns false when the device has failed; the leveler must stop moving
// and propagate the failure.
type Mover interface {
	WriteSlot(u int) bool
}

// Leveler translates logical line addresses to user-physical slots and
// advances its remap schedule on every user write.
type Leveler interface {
	// Name identifies the scheme in reports.
	Name() string
	// LogicalLines returns the size of the logical address space.
	LogicalLines() int
	// Translate maps a logical line in [0, LogicalLines()) to a user slot.
	Translate(lla int) int
	// OnWrite is invoked once per user write, after the write completed,
	// and may move data through mov. It returns false if the device
	// failed during remap traffic.
	OnWrite(lla int, mov Mover) bool
}

// ---------------------------------------------------------------------------
// Identity

// Identity is the no-wear-leveling baseline.
type Identity struct{ n int }

// NewIdentity returns the identity leveler over n slots.
func NewIdentity(n int) *Identity {
	if n <= 0 {
		panic("wearlevel: NewIdentity needs positive slots")
	}
	return &Identity{n: n}
}

// Name implements Leveler.
func (l *Identity) Name() string { return "identity" }

// LogicalLines implements Leveler.
func (l *Identity) LogicalLines() int { return l.n }

// Translate implements Leveler.
func (l *Identity) Translate(lla int) int {
	if lla < 0 || lla >= l.n {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, l.n))
	}
	return lla
}

// OnWrite implements Leveler.
func (l *Identity) OnWrite(int, Mover) bool { return true }

// ---------------------------------------------------------------------------
// Start-Gap

// StartGap implements Qureshi et al.'s start-gap wear leveling over n
// slots: n-1 logical lines rotate through n physical slots around a moving
// gap. Every Psi user writes the gap advances by one slot, costing one
// data-movement write.
type StartGap struct {
	n     int // physical slots
	psi   int
	start int
	gap   int
	since int
}

// NewStartGap builds a start-gap leveler over n >= 2 slots with gap period
// psi >= 1.
func NewStartGap(n, psi int) *StartGap {
	if n < 2 {
		panic("wearlevel: NewStartGap needs at least 2 slots")
	}
	if psi < 1 {
		panic("wearlevel: NewStartGap needs psi >= 1")
	}
	return &StartGap{n: n, psi: psi, gap: n - 1}
}

// Name implements Leveler.
func (l *StartGap) Name() string { return "start-gap" }

// LogicalLines implements Leveler.
func (l *StartGap) LogicalLines() int { return l.n - 1 }

// Translate implements PA = (LA + Start) mod (N-1), incremented past the
// gap.
func (l *StartGap) Translate(lla int) int {
	if lla < 0 || lla >= l.n-1 {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, l.n-1))
	}
	pa := (lla + l.start) % (l.n - 1)
	if pa >= l.gap {
		pa++
	}
	return pa
}

// Gap returns the current gap slot (exported for tests and visualization).
func (l *StartGap) Gap() int { return l.gap }

// Start returns the current start offset.
func (l *StartGap) Start() int { return l.start }

// OnWrite implements Leveler.
func (l *StartGap) OnWrite(_ int, mov Mover) bool {
	l.since++
	if l.since < l.psi {
		return true
	}
	l.since = 0
	// Move the line above the gap into the gap slot: one device write.
	if l.gap == 0 {
		// Gap wraps: a full rotation completed; advance start.
		l.gap = l.n - 1
		l.start = (l.start + 1) % (l.n - 1)
		return true
	}
	if !mov.WriteSlot(l.gap) {
		return false
	}
	l.gap--
	return true
}

// ---------------------------------------------------------------------------
// Randomized swap levelers (TLSR, PCM-S, BWL, WAWL)

// SwapWL is the shared machinery of the randomized remapping schemes: a
// permutation from logical lines to slots, a per-logical-line write credit,
// and a relocation policy. When a line's credit is exhausted it swaps
// places with a policy-chosen partner, at a cost of two data-movement
// writes (Figure 2 of the paper).
type SwapWL struct {
	name    string
	perm    []int // logical -> slot
	inv     []int // slot -> logical
	credit  []int
	metrics []float64 // per-slot endurance metric (nil for uniform schemes)

	// psi is the base dwell in writes.
	psi int
	// pickGamma biases relocation-target choice toward strong slots:
	// probability ∝ metric^pickGamma (0 = uniform).
	pickGamma float64
	// dwellGamma scales dwell with the occupied slot's metric:
	// dwell = psi * (metric/meanMetric)^dwellGamma (0 = constant).
	dwellGamma float64
	// jitter randomizes each dwell uniformly in [psi/2, 3psi/2) (PCM-S).
	jitter bool

	chooser    *xrand.WeightedChooser
	meanMetric float64
	src        *xrand.Source

	swaps int64
}

func newSwapWL(name string, slots int, metrics []float64, psi int,
	pickGamma, dwellGamma float64, jitter bool, src *xrand.Source) *SwapWL {
	if slots <= 1 {
		panic("wearlevel: swap leveler needs at least 2 slots")
	}
	if psi < 1 {
		panic("wearlevel: swap leveler needs psi >= 1")
	}
	if src == nil {
		panic("wearlevel: swap leveler needs a randomness source")
	}
	if metrics != nil && len(metrics) != slots {
		panic("wearlevel: metrics length must equal slots")
	}
	l := &SwapWL{
		name:       name,
		perm:       make([]int, slots),
		inv:        make([]int, slots),
		credit:     make([]int, slots),
		metrics:    metrics,
		psi:        psi,
		pickGamma:  pickGamma,
		dwellGamma: dwellGamma,
		jitter:     jitter,
		src:        src,
	}
	for i := range l.perm {
		l.perm[i] = i
		l.inv[i] = i
	}
	if metrics != nil {
		sum := 0.0
		for _, m := range metrics {
			if m <= 0 {
				panic("wearlevel: slot metrics must be positive")
			}
			sum += m
		}
		l.meanMetric = sum / float64(slots)
		if pickGamma > 0 {
			w := make([]float64, slots)
			for i, m := range metrics {
				w[i] = math.Pow(m, pickGamma)
			}
			l.chooser = xrand.NewWeightedChooser(w)
		}
	}
	for lla := range l.credit {
		l.credit[lla] = l.dwell(l.perm[lla])
	}
	return l
}

// NewTLSR models two-level security refresh: uniform randomized
// relocation with a fixed refresh period.
func NewTLSR(slots, psi int, src *xrand.Source) *SwapWL {
	return newSwapWL("tlsr", slots, nil, psi, 0, 0, false, src)
}

// NewPCMS models Seznec's secure PCM main memory: uniform randomized
// relocation with a jittered (randomized) swap interval.
func NewPCMS(slots, psi int, src *xrand.Source) *SwapWL {
	return newSwapWL("pcm-s", slots, nil, psi, 0, 0, true, src)
}

// NewBWL models Yun et al.'s dynamic wear leveling under endurance
// variation: relocation targets are uniform but dwell time scales with
// the square root of the slot's endurance metric, shifting a partial share
// of the traffic toward strong lines.
func NewBWL(slots int, metrics []float64, psi int, src *xrand.Source) *SwapWL {
	return newSwapWL("bwl", slots, metrics, psi, 0, 0.5, false, src)
}

// NewWAWL models Zhou et al.'s WAWL, which ties both the chosen
// probability of a region and the swapping interval to the endurance
// metric; the combination makes a line's time-share on a slot proportional
// to the slot's endurance (proportional fill).
func NewWAWL(slots int, metrics []float64, psi int, src *xrand.Source) *SwapWL {
	return newSwapWL("wawl", slots, metrics, psi, 0.5, 0.5, false, src)
}

// Name implements Leveler.
func (l *SwapWL) Name() string { return l.name }

// LogicalLines implements Leveler.
func (l *SwapWL) LogicalLines() int { return len(l.perm) }

// Translate implements Leveler.
func (l *SwapWL) Translate(lla int) int {
	if lla < 0 || lla >= len(l.perm) {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, len(l.perm)))
	}
	return l.perm[lla]
}

// Swaps returns the number of relocations performed (for amplification
// accounting in tests and reports).
func (l *SwapWL) Swaps() int64 { return l.swaps }

// dwell computes the write credit granted to a line placed on slot.
func (l *SwapWL) dwell(slot int) int {
	d := float64(l.psi)
	if l.dwellGamma > 0 && l.metrics != nil {
		d *= math.Pow(l.metrics[slot]/l.meanMetric, l.dwellGamma)
	}
	if l.jitter {
		d *= 0.5 + l.src.Float64()
	}
	if d < 1 {
		return 1
	}
	return int(d)
}

func (l *SwapWL) pick() int {
	if l.chooser != nil {
		return l.chooser.Draw(l.src)
	}
	return l.src.Intn(len(l.perm))
}

// HotState exposes the live logical→slot permutation and per-line write
// credits for the devirtualized sim fast path (internal/sim): the hot
// loop reads perm for translation and decrements credit in place, calling
// Relocate only when a credit reaches zero — exactly OnWrite's split. The
// returned slices alias the leveler's state and stay valid across
// Relocate calls (relocations mutate entries, never reallocate).
func (l *SwapWL) HotState() (perm []int, credit []int) { return l.perm, l.credit }

// OnWrite implements Leveler: decrement the line's dwell credit and
// relocate once it is exhausted.
func (l *SwapWL) OnWrite(lla int, mov Mover) bool {
	l.credit[lla]--
	if l.credit[lla] > 0 {
		return true
	}
	return l.Relocate(lla, mov)
}

// Relocate performs the relocation slow path for a line whose credit is
// exhausted (credit[lla] <= 0 after the caller's decrement): pick a
// destination, swap placements at two data-movement writes, and grant
// fresh dwell credits. Exposed so the sim fast path can inline the credit
// decrement and pay the policy cost only on the rare exhaustion.
func (l *SwapWL) Relocate(lla int, mov Mover) bool {
	dest := l.pick()
	cur := l.perm[lla]
	if dest == cur {
		// Relocating to itself: no data movement, just a fresh dwell.
		l.credit[lla] = l.dwell(cur)
		return true
	}
	other := l.inv[dest]
	// Swap the two lines' placements; each move is one device write
	// (Figure 2: a swap adds two extra writes).
	if !mov.WriteSlot(dest) {
		return false
	}
	if !mov.WriteSlot(cur) {
		return false
	}
	l.perm[lla], l.perm[other] = dest, cur
	l.inv[dest], l.inv[cur] = lla, other
	l.credit[lla] = l.dwell(dest)
	l.credit[other] = l.dwell(cur)
	l.swaps++
	return true
}

// ---------------------------------------------------------------------------
// Toss-up wear leveling (TWL)

// TWL bonds slot pairs (one strong, one weak) and tosses each write to one
// member of the pair with endurance-weighted probability, per Zhang & Sun
// (DAC'17). The logical space is half the slot count.
type TWL struct {
	// pairs[i] = {weak slot, strong slot} for logical line i.
	weak, strong []int
	pStrong      []float64
	src          *xrand.Source
}

// NewTWL builds a toss-up leveler over an even number of slots with the
// given per-slot endurance metrics. Slots are sorted by metric; the
// weakest is bonded with the strongest, and so on inward.
func NewTWL(slots int, metrics []float64, src *xrand.Source) *TWL {
	if slots < 2 || slots%2 != 0 {
		panic("wearlevel: NewTWL needs an even slot count >= 2")
	}
	if len(metrics) != slots {
		panic("wearlevel: metrics length must equal slots")
	}
	if src == nil {
		panic("wearlevel: NewTWL needs a randomness source")
	}
	order := make([]int, slots)
	for i := range order {
		order[i] = i
	}
	// Insertion-free ordering: simple index sort by metric ascending,
	// ties broken by slot id for determinism.
	less := func(a, b int) bool {
		if metrics[a] < metrics[b] {
			return true
		}
		if metrics[b] < metrics[a] {
			return false
		}
		return a < b
	}
	for i := 1; i < slots; i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	n := slots / 2
	l := &TWL{
		weak:    make([]int, n),
		strong:  make([]int, n),
		pStrong: make([]float64, n),
		src:     src,
	}
	for i := 0; i < n; i++ {
		w := order[i]
		s := order[slots-1-i]
		l.weak[i], l.strong[i] = w, s
		l.pStrong[i] = metrics[s] / (metrics[s] + metrics[w])
	}
	return l
}

// Name implements Leveler.
func (l *TWL) Name() string { return "twl" }

// LogicalLines implements Leveler.
func (l *TWL) LogicalLines() int { return len(l.weak) }

// Translate tosses the write between the bonded pair: the strong member
// receives it with probability E_strong/(E_strong+E_weak).
func (l *TWL) Translate(lla int) int {
	if lla < 0 || lla >= len(l.weak) {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, len(l.weak)))
	}
	if l.src.Float64() < l.pStrong[lla] {
		return l.strong[lla]
	}
	return l.weak[lla]
}

// OnWrite implements Leveler.
func (l *TWL) OnWrite(int, Mover) bool { return true }
