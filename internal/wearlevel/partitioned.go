// partitioned.go implements the region-based composition pattern that
// production wear-leveling designs use (e.g. Qureshi et al.'s
// region-based Start-Gap): the address space is split into equal
// partitions, a static random permutation scatters logical lines across
// partitions, and an independent inner leveler runs inside each
// partition. This keeps per-leveler state small while the static
// scatter breaks the spatial correlation an attacker could exploit.
package wearlevel

import (
	"fmt"

	"maxwe/internal/xrand"
)

// Partitioned composes per-partition inner levelers behind a static
// random scatter.
type Partitioned struct {
	inner []Leveler
	// scatter maps a logical line to (partition, innerLogical); it is a
	// static bijection fixed at construction.
	scatterPart  []int
	scatterInner []int
	partSlots    int
	logical      int
}

// NewPartitioned splits `partitions * innerLogical(slots)` lines across
// the inner levelers built by mk. mk is called once per partition with
// the partition index and must return a leveler over partSlots slots.
// All inner levelers must report the same logical size.
func NewPartitioned(partitions, partSlots int, src *xrand.Source,
	mk func(partition, slots int) Leveler) *Partitioned {
	if partitions < 1 || partSlots < 1 {
		panic("wearlevel: NewPartitioned needs positive partitions and partSlots")
	}
	if src == nil {
		panic("wearlevel: NewPartitioned needs a randomness source")
	}
	if mk == nil {
		panic("wearlevel: NewPartitioned needs an inner constructor")
	}
	p := &Partitioned{
		inner:     make([]Leveler, partitions),
		partSlots: partSlots,
	}
	innerLogical := -1
	for i := range p.inner {
		p.inner[i] = mk(i, partSlots)
		if p.inner[i] == nil {
			panic("wearlevel: inner constructor returned nil")
		}
		if innerLogical == -1 {
			innerLogical = p.inner[i].LogicalLines()
		} else if p.inner[i].LogicalLines() != innerLogical {
			panic("wearlevel: inner levelers disagree on logical size")
		}
		if innerLogical > partSlots {
			panic("wearlevel: inner logical size exceeds partition slots")
		}
	}
	p.logical = partitions * innerLogical
	// Static scatter: a random permutation of all logical positions.
	perm := src.Perm(p.logical)
	p.scatterPart = make([]int, p.logical)
	p.scatterInner = make([]int, p.logical)
	for lla, pos := range perm {
		p.scatterPart[lla] = pos / innerLogical
		p.scatterInner[lla] = pos % innerLogical
	}
	return p
}

// Name implements Leveler.
func (p *Partitioned) Name() string {
	return fmt.Sprintf("partitioned-%s", p.inner[0].Name())
}

// LogicalLines implements Leveler.
func (p *Partitioned) LogicalLines() int { return p.logical }

// Translate implements Leveler.
func (p *Partitioned) Translate(lla int) int {
	if lla < 0 || lla >= p.logical {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, p.logical))
	}
	part := p.scatterPart[lla]
	inner := p.inner[part].Translate(p.scatterInner[lla])
	return part*p.partSlots + inner
}

// OnWrite implements Leveler.
func (p *Partitioned) OnWrite(lla int, mov Mover) bool {
	part := p.scatterPart[lla]
	return p.inner[part].OnWrite(p.scatterInner[lla], &partitionMover{
		mov: mov, base: part * p.partSlots,
	})
}

// partitionMover rebases an inner leveler's slot writes into the full
// space.
type partitionMover struct {
	mov  Mover
	base int
}

func (m *partitionMover) WriteSlot(u int) bool { return m.mov.WriteSlot(m.base + u) }
