package wearlevel

import "testing"

func TestStressAwareSwapsHotAndCold(t *testing.T) {
	l := NewStressAware(8, 4)
	m := &recordingMover{}
	// Hammer logical line 3 (slot 3): after enough writes its slot must
	// be rotated away.
	for i := 0; i < 40; i++ {
		if !l.OnWrite(3, m) {
			t.Fatal("failed with healthy mover")
		}
	}
	if l.Swaps() == 0 {
		t.Fatal("no swap under a pure hammer")
	}
	if l.Translate(3) == 3 {
		t.Fatal("hammered line still on its original slot")
	}
	// 2 movement writes per swap.
	if int64(len(m.writes)) != 2*l.Swaps() {
		t.Fatalf("%d movement writes for %d swaps", len(m.writes), l.Swaps())
	}
}

func TestStressAwareStaysPermutation(t *testing.T) {
	l := NewStressAware(16, 2)
	m := &recordingMover{}
	for i := 0; i < 3000; i++ {
		l.OnWrite(i%5, m) // skewed traffic forces many swaps
	}
	checkPermutation(t, l, 16)
	for lla, slot := range l.perm {
		if l.inv[slot] != lla {
			t.Fatal("perm/inv inconsistent")
		}
	}
}

func TestStressAwareIdleUnderUniformTraffic(t *testing.T) {
	// UAA's defining property: uniform stress never exceeds the swap
	// threshold, so the scheme (nearly) never triggers.
	l := NewStressAware(16, 4)
	m := &recordingMover{}
	for round := 0; round < 200; round++ {
		for lla := 0; lla < 16; lla++ {
			l.OnWrite(lla, m)
		}
	}
	if l.Swaps() > 4 {
		t.Fatalf("stress-aware swapped %d times under uniform traffic", l.Swaps())
	}
}

func TestStressAwareTracksWrites(t *testing.T) {
	l := NewStressAware(4, 100)
	m := &recordingMover{}
	l.OnWrite(2, m)
	l.OnWrite(2, m)
	if l.SlotWrites(2) != 2 {
		t.Fatalf("SlotWrites = %d", l.SlotWrites(2))
	}
}

func TestStressAwareFailurePropagates(t *testing.T) {
	l := NewStressAware(4, 1)
	m := &recordingMover{fail: true}
	for i := 0; i < 100; i++ {
		if !l.OnWrite(0, m) {
			return
		}
	}
	t.Fatal("failure never propagated")
}

func TestStressAwarePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewStressAware(1, 1) },
		func() { NewStressAware(4, 0) },
		func() { NewStressAware(4, 1).Translate(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
