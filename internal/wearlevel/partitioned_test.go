package wearlevel

import (
	"strings"
	"testing"

	"maxwe/internal/xrand"
)

func newPartitionedStartGap(t *testing.T) *Partitioned {
	t.Helper()
	return NewPartitioned(4, 16, xrand.New(1), func(_, slots int) Leveler {
		return NewStartGap(slots, 4)
	})
}

func TestPartitionedGeometry(t *testing.T) {
	p := newPartitionedStartGap(t)
	// 4 partitions x (16-1) logical lines each.
	if p.LogicalLines() != 60 {
		t.Fatalf("LogicalLines = %d, want 60", p.LogicalLines())
	}
	if !strings.HasPrefix(p.Name(), "partitioned-") {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPartitionedInjective(t *testing.T) {
	p := newPartitionedStartGap(t)
	m := &recordingMover{}
	src := xrand.New(2)
	for step := 0; step < 2000; step++ {
		if step%101 == 0 {
			seen := map[int]bool{}
			for lla := 0; lla < p.LogicalLines(); lla++ {
				u := p.Translate(lla)
				if u < 0 || u >= 64 {
					t.Fatalf("step %d: slot %d out of range", step, u)
				}
				if seen[u] {
					t.Fatalf("step %d: slot %d hit twice", step, u)
				}
				seen[u] = true
			}
		}
		if !p.OnWrite(src.Intn(p.LogicalLines()), m) {
			t.Fatal("partitioned leveler failed with healthy mover")
		}
	}
	// Inner gap movements must have produced rebased movement writes.
	if len(m.writes) == 0 {
		t.Fatal("no movement traffic")
	}
	for _, w := range m.writes {
		if w < 0 || w >= 64 {
			t.Fatalf("movement write to out-of-range slot %d", w)
		}
	}
}

func TestPartitionedScatterSpreads(t *testing.T) {
	p := newPartitionedStartGap(t)
	// Consecutive logical lines must not all land in one partition.
	parts := map[int]bool{}
	for lla := 0; lla < 8; lla++ {
		parts[p.Translate(lla)/16] = true
	}
	if len(parts) < 2 {
		t.Fatalf("first 8 logical lines confined to %d partition(s)", len(parts))
	}
}

func TestPartitionedMixedInners(t *testing.T) {
	// Compose security refresh inside partitions.
	p := NewPartitioned(2, 16, xrand.New(3), func(i, slots int) Leveler {
		return NewSecurityRefresh(slots, 2, xrand.New(uint64(10+i)))
	})
	if p.LogicalLines() != 32 {
		t.Fatalf("LogicalLines = %d", p.LogicalLines())
	}
	m := &recordingMover{}
	for step := 0; step < 500; step++ {
		if !p.OnWrite(step%32, m) {
			t.Fatal("failed")
		}
	}
	seen := map[int]bool{}
	for lla := 0; lla < 32; lla++ {
		u := p.Translate(lla)
		if seen[u] {
			t.Fatal("not injective with security-refresh inners")
		}
		seen[u] = true
	}
}

func TestPartitionedFailurePropagates(t *testing.T) {
	p := newPartitionedStartGap(t)
	m := &recordingMover{fail: true}
	for i := 0; i < 200; i++ {
		if !p.OnWrite(i%p.LogicalLines(), m) {
			return
		}
	}
	t.Fatal("failure never propagated")
}

func TestPartitionedPanics(t *testing.T) {
	mk := func(_, slots int) Leveler { return NewStartGap(slots, 1) }
	for _, f := range []func(){
		func() { NewPartitioned(0, 4, xrand.New(1), mk) },
		func() { NewPartitioned(2, 0, xrand.New(1), mk) },
		func() { NewPartitioned(2, 4, nil, mk) },
		func() { NewPartitioned(2, 4, xrand.New(1), nil) },
		func() {
			NewPartitioned(2, 4, xrand.New(1), func(int, int) Leveler { return nil })
		},
		func() {
			// Inner levelers of inconsistent logical size.
			i := 0
			NewPartitioned(2, 8, xrand.New(1), func(int, int) Leveler {
				i++
				if i == 1 {
					return NewStartGap(8, 1) // 7 logical
				}
				return NewIdentity(8) // 8 logical
			})
		},
		func() { newPartitionedStartGap(t).Translate(60) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
