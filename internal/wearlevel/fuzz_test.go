package wearlevel

import (
	"testing"

	"maxwe/internal/xrand"
)

// FuzzStartGapInjective drives start-gap with arbitrary psi/size/write
// sequences and checks the translation stays an injection avoiding the
// gap.
func FuzzStartGapInjective(f *testing.F) {
	f.Add(uint8(16), uint8(4), uint16(100))
	f.Add(uint8(2), uint8(1), uint16(7))
	f.Add(uint8(255), uint8(9), uint16(1000))
	f.Fuzz(func(t *testing.T, nRaw, psiRaw uint8, steps uint16) {
		n := int(nRaw%62) + 2 // [2, 63]
		psi := int(psiRaw%9) + 1
		l := NewStartGap(n, psi)
		m := &recordingMover{}
		for s := 0; s < int(steps%600); s++ {
			if !l.OnWrite(s%(n-1), m) {
				t.Fatal("failed with healthy mover")
			}
			seen := make([]bool, n)
			for lla := 0; lla < n-1; lla++ {
				u := l.Translate(lla)
				if u < 0 || u >= n || u == l.Gap() || seen[u] {
					t.Fatalf("step %d: bad translation %d -> %d (gap %d)", s, lla, u, l.Gap())
				}
				seen[u] = true
			}
		}
	})
}

// FuzzSecurityRefreshBijective drives security refresh with arbitrary
// parameters and checks the keyed mapping stays a bijection throughout
// incremental refresh.
func FuzzSecurityRefreshBijective(f *testing.F) {
	f.Add(uint8(4), uint8(1), uint16(50), uint64(1))
	f.Add(uint8(6), uint8(3), uint16(500), uint64(99))
	f.Fuzz(func(t *testing.T, bits, psiRaw uint8, steps uint16, seed uint64) {
		n := 1 << (int(bits%6) + 2) // 4..128 lines
		psi := int(psiRaw%5) + 1
		l := NewSecurityRefresh(n, psi, xrand.New(seed))
		m := &recordingMover{}
		for s := 0; s < int(steps%800); s++ {
			if !l.OnWrite(s%n, m) {
				t.Fatal("failed with healthy mover")
			}
			if s%37 != 0 {
				continue
			}
			seen := make([]bool, n)
			for a := 0; a < n; a++ {
				p := l.Translate(a)
				if p < 0 || p >= n || seen[p] {
					t.Fatalf("step %d: mapping not bijective at %d -> %d", s, a, p)
				}
				seen[p] = true
			}
		}
	})
}
