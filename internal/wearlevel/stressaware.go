// stressaware.go implements the stress-tracking wear-leveling model the
// paper cites as XML (Wen et al., DAC'18, "Wear leveling for crossbar
// resistive memory"): the controller counts writes per location and
// periodically remaps the most-stressed location, swapping it with the
// least-stressed one. Unlike the randomized schemes it reacts to observed
// wear rather than to a schedule, which is exactly what UAA starves — no
// location is ever more stressed than another, so the scheme never
// triggers meaningfully.
package wearlevel

import "fmt"

// StressAware tracks per-slot write counts and swaps the hottest slot's
// data with the coldest slot's every Psi writes.
type StressAware struct {
	perm   []int // logical -> slot
	inv    []int // slot -> logical
	writes []int64
	psi    int
	since  int
	swaps  int64
}

// NewStressAware builds the stress-tracking leveler over n slots with
// remap period psi.
func NewStressAware(n, psi int) *StressAware {
	if n < 2 {
		panic("wearlevel: NewStressAware needs at least 2 slots")
	}
	if psi < 1 {
		panic("wearlevel: NewStressAware needs psi >= 1")
	}
	l := &StressAware{
		perm:   make([]int, n),
		inv:    make([]int, n),
		writes: make([]int64, n),
		psi:    psi,
	}
	for i := range l.perm {
		l.perm[i] = i
		l.inv[i] = i
	}
	return l
}

// Name implements Leveler.
func (l *StressAware) Name() string { return "stress-aware" }

// LogicalLines implements Leveler.
func (l *StressAware) LogicalLines() int { return len(l.perm) }

// Translate implements Leveler.
func (l *StressAware) Translate(lla int) int {
	if lla < 0 || lla >= len(l.perm) {
		panic(fmt.Sprintf("wearlevel: logical line %d out of range [0,%d)", lla, len(l.perm)))
	}
	return l.perm[lla]
}

// Swaps returns the number of hot/cold swaps performed.
func (l *StressAware) Swaps() int64 { return l.swaps }

// SlotWrites returns the tracked write count of a slot (exported for
// tests and wear visualization).
func (l *StressAware) SlotWrites(slot int) int64 { return l.writes[slot] }

// OnWrite implements Leveler.
func (l *StressAware) OnWrite(lla int, mov Mover) bool {
	l.writes[l.perm[lla]]++
	l.since++
	if l.since < l.psi {
		return true
	}
	l.since = 0
	// Find the most- and least-stressed slots.
	hot, cold := 0, 0
	for s, w := range l.writes {
		if w > l.writes[hot] {
			hot = s
		}
		if w < l.writes[cold] {
			cold = s
		}
	}
	// A swap only pays off if the stress gap is meaningful; XML uses a
	// threshold — one remap period's worth of writes.
	if hot == cold || l.writes[hot]-l.writes[cold] < int64(l.psi) {
		return true
	}
	if !mov.WriteSlot(cold) {
		return false
	}
	if !mov.WriteSlot(hot) {
		return false
	}
	hotL, coldL := l.inv[hot], l.inv[cold]
	l.perm[hotL], l.perm[coldL] = cold, hot
	l.inv[hot], l.inv[cold] = coldL, hotL
	// The swap itself stressed both slots.
	l.writes[hot]++
	l.writes[cold]++
	l.swaps++
	return true
}
