package wearlevel_test

import (
	"fmt"

	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// nopMover discards data-movement writes (real callers route them to the
// device through the simulator).
type nopMover struct{}

func (nopMover) WriteSlot(int) bool { return true }

// Start-Gap rotates 15 logical lines through 16 physical slots around a
// moving gap: after psi writes the gap advances and the mapping shifts.
func ExampleStartGap() {
	l := wearlevel.NewStartGap(16, 4)
	fmt.Println("logical 0 starts at slot", l.Translate(0))
	for i := 0; i < 4; i++ {
		l.OnWrite(0, nopMover{})
	}
	fmt.Println("gap moved to", l.Gap())
	fmt.Println("logical 14 now maps to", l.Translate(14))
	// Output:
	// logical 0 starts at slot 0
	// gap moved to 14
	// logical 14 now maps to 15
}

// Security Refresh starts from the identity mapping and migrates lines to
// a fresh XOR key, one pair swap per refresh step; the mapping stays a
// bijection at every point of the incremental round.
func ExampleSecurityRefresh() {
	l := wearlevel.NewSecurityRefresh(8, 1, xrand.New(1))
	fmt.Println("before any refresh:", l.Translate(3))
	for i := 0; i < 8; i++ {
		l.OnWrite(0, nopMover{})
	}
	seen := map[int]bool{}
	bijective := true
	for a := 0; a < l.LogicalLines(); a++ {
		p := l.Translate(a)
		if seen[p] {
			bijective = false
		}
		seen[p] = true
	}
	fmt.Println("still a bijection after a round:", bijective)
	// Output:
	// before any refresh: 3
	// still a bijection after a round: true
}
