// extensions.go holds the studies that go beyond the paper's figures:
// the ECP-salvaging comparison its Section 2.2.2 argues about, the
// attack-coverage sensitivity of its Section 3.2 implementation model,
// and a cross-check of the behavioural TLSR model against the faithful
// two-level Security Refresh implementation.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/ecp"
	"maxwe/internal/endurance"
	"maxwe/internal/guarded"
	"maxwe/internal/salvage"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/stats"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// ECPRow is one row of the salvaging study.
type ECPRow struct {
	// K is the per-line ECP pointer budget.
	K int
	// CapacityOverhead is ECP-k's storage cost for 512-bit lines.
	CapacityOverhead float64
	// ECPOnly is the UAA lifetime with ECP-k and no sparing. Both
	// lifetimes are normalized to the NOMINAL device's ideal lifetime
	// (Σ nominal line endurance), not the boosted device's own sum —
	// otherwise ECP's absolute benefit would cancel out of the ratio.
	ECPOnly float64
	// ECPPlusMaxWE stacks Max-WE (10% spares) on the ECP-boosted device.
	ECPPlusMaxWE float64
}

// ECPStudy quantifies Section 2.2.2's argument: per-line correction
// (ECP-k) raises line endurance but cannot, by itself, match spare-line
// replacement under UAA, while the two compose. Lines are modeled as
// cellsPerLine cells with lognormal intra-line variation; ECP-k makes the
// (k+1)-th weakest cell the line's budget.
func ECPStudy(s Setup, ks []int) []ECPRow {
	base := s.Profile()
	const (
		cellsPerLine = 64
		cellSigma    = 0.25
		lineBits     = 512
	)
	nominalIdeal := base.Sum()
	out := make([]ECPRow, 0, len(ks))
	for _, k := range ks {
		boosted := ecp.BoostProfile(base, cellsPerLine, k, cellSigma, xrand.New(s.Seed+10))
		row := ECPRow{K: k, CapacityOverhead: ecp.Overhead(lineBits, k)}
		row.ECPOnly = runUAA(boosted, spare.NewNone(boosted.Lines())) *
			boosted.Sum() / nominalIdeal
		row.ECPPlusMaxWE = runUAA(boosted, spare.NewMaxWE(boosted, spare.DefaultMaxWEOptions())) *
			boosted.Sum() / nominalIdeal
		out = append(out, row)
	}
	return out
}

// CoverageRow is one row of the attack-coverage study.
type CoverageRow struct {
	// Coverage is the user-reachable fraction of physical memory the
	// attack can sweep (Section 3.2 measures ~95% on Linux).
	Coverage float64
	// Unprotected and MaxWE are normalized lifetimes under the partial
	// sweep.
	Unprotected float64
	MaxWE       float64
}

// CoverageStudy sweeps the reachable fraction of the Section 3.2 attack
// implementation: even a partial sweep retains almost the full UAA
// effect, because the weak lines it does reach still die at their
// endurance floor.
func CoverageStudy(s Setup, coverages []float64) []CoverageRow {
	p := s.Profile()
	out := make([]CoverageRow, 0, len(coverages))
	for _, c := range coverages {
		run := func(sch spare.Scheme) float64 {
			res, err := sim.Run(sim.Config{
				Profile: p, Scheme: sch, Attack: attack.NewPartialUAA(c),
			})
			if err != nil {
				panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
			}
			return res.NormalizedLifetime
		}
		out = append(out, CoverageRow{
			Coverage:    c,
			Unprotected: run(spare.NewNone(p.Lines())),
			MaxWE:       run(spare.NewMaxWE(p, spare.DefaultMaxWEOptions())),
		})
	}
	return out
}

// GuardRow is one row of the guarded-stack study.
type GuardRow struct {
	// Configuration names the stream + guard combination.
	Configuration string
	// Days is the simulated wall-clock time to device failure.
	Days float64
	// Stretch is the time-to-failure multiple over the unguarded attack.
	Stretch float64
}

// GuardStudy quantifies the dynamic-defense extension: the same Max-WE
// device under UAA with and without the detect+throttle guard, in
// simulated wall-clock terms projected onto a physical 1 GB module
// (4 Mi lines x 1e8 endurance). The guard cannot change the write
// budget — it changes how fast the attacker can spend it.
func GuardStudy(s Setup, writesPerSecond float64) []GuardRow {
	if writesPerSecond <= 0 {
		panic("experiments: GuardStudy needs a positive write rate")
	}
	// Project scaled-device seconds to the physical module: the write
	// budget scales by the ratio of total endurance.
	const physicalBudget = float64(1<<22) * 1e8
	projection := physicalBudget / s.Profile().Sum()
	run := func(throttle bool) float64 {
		p := s.Profile()
		st, err := sim.NewStepper(sim.Config{
			Profile: p,
			Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		})
		if err != nil {
			panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
		}
		policy := guarded.Policy{
			NormalRate:    writesPerSecond,
			ThrottledRate: writesPerSecond,
		}
		if throttle {
			policy = guarded.DefaultPolicy(writesPerSecond)
		}
		g, err := guarded.New(st, detect.Config{}, policy)
		if err != nil {
			panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
		}
		a := attack.NewUAA()
		for g.Write(a.Next(g.LogicalLines())) {
		}
		return g.Seconds()
	}
	unguarded := run(false) * projection
	guardedSecs := run(true) * projection
	const day = 86400
	return []GuardRow{
		{Configuration: "uaa, no guard", Days: unguarded / day, Stretch: 1},
		{Configuration: "uaa, detect+throttle (50x)", Days: guardedSecs / day,
			Stretch: guardedSecs / unguarded},
	}
}

// OracleRow is one row of the informed-adversary study.
type OracleRow struct {
	Scheme string
	// UAA is the oblivious uniform-attack lifetime; Oracle is the
	// lifetime under an adversary that sweeps only the weakest 10% of
	// user lines (perfect endurance knowledge).
	UAA    float64
	Oracle float64
}

// OracleStudy compares schemes against an adversary with manufacture-time
// endurance knowledge: it sweeps only the weakest tenth of the user
// space. The paper's attacker is oblivious (Section 3.1); this extension
// probes how much of Max-WE's margin survives the stronger threat.
func OracleStudy(s Setup) []OracleRow {
	p := s.Profile()
	out := make([]OracleRow, 0, len(SchemeNames()))
	for _, name := range SchemeNames() {
		row := OracleRow{Scheme: name}
		row.UAA = runUAA(p, newScheme(name, p, s.Seed))

		sch := newScheme(name, p, s.Seed)
		// Weakest 10% of user slots by their base line's endurance.
		slots := make([]int, sch.UserLines())
		for u := range slots {
			slots[u] = u
		}
		sort.SliceStable(slots, func(a, b int) bool {
			ea := p.LineEndurance(sch.BaseLine(slots[a]))
			eb := p.LineEndurance(sch.BaseLine(slots[b]))
			if ea != eb {
				return ea < eb
			}
			return slots[a] < slots[b]
		})
		targets := slots[:len(slots)/10]
		res, err := sim.Run(sim.Config{
			Profile: p,
			Scheme:  sch,
			Attack:  attack.NewTargetedSweep(targets),
		})
		if err != nil {
			panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
		}
		row.Oracle = res.NormalizedLifetime
		out = append(out, row)
	}
	return out
}

// ProfileSensitivityRow reports the §5.3.1 comparison under one
// endurance-distribution family.
type ProfileSensitivityRow struct {
	ProfileName string
	Rows        []UAARow
}

// ProfileSensitivity re-runs the UAA spare-scheme comparison under all
// three endurance-distribution families (linear, truncated power law,
// truncated lognormal) at the same q, checking that the paper's ordering
// is a property of endurance variation itself rather than of one
// distribution shape.
func ProfileSensitivity(s Setup) []ProfileSensitivityRow {
	kinds := []struct {
		name string
		kind ProfileKind
	}{
		{"linear", ProfileLinear},
		{"power-law", ProfilePowerLaw},
		{"lognormal", ProfileLogNormal},
	}
	out := make([]ProfileSensitivityRow, 0, len(kinds))
	for _, k := range kinds {
		run := s
		run.ProfileKind = k.kind
		out = append(out, ProfileSensitivityRow{
			ProfileName: k.name,
			Rows:        TableUAA(run),
		})
	}
	return out
}

// ZooRow is one row of the wear-leveling zoo comparison.
type ZooRow struct {
	WL            string
	Normalized    float64
	Amplification float64
}

// ZooNames lists every wear-leveling substrate the repository implements
// that can run over an arbitrary user-space size.
func ZooNames() []string {
	return []string{"identity", "start-gap", "partitioned-start-gap",
		"stress-aware", "twl", "tlsr", "pcm-s", "bwl", "wawl"}
}

// WLZoo runs the birthday-paradox attack against Max-WE under every
// implemented wear-leveling substrate — the repository-wide superset of
// the paper's four-substrate Figure 7/8 comparison.
func WLZoo(s Setup) []ZooRow {
	p := s.Profile()
	out := make([]ZooRow, 0, len(ZooNames()))
	for _, wl := range ZooNames() {
		sch := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
		lev := NewLeveler(wl, sch, p, s.Psi, xrand.New(s.Seed+2))
		res, err := sim.Run(sim.Config{
			Profile: p,
			Scheme:  sch,
			Leveler: lev,
			Attack:  attack.DefaultBPA(xrand.New(s.Seed + 3)),
		})
		if err != nil {
			panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
		}
		out = append(out, ZooRow{
			WL:            wl,
			Normalized:    res.NormalizedLifetime,
			Amplification: res.WriteAmplification,
		})
	}
	return out
}

// SeedSweep runs metric over n seeds derived from the setup's and
// reports the mean and population standard deviation — the robustness
// companion to every single-seed figure. The setup passed to metric has
// only its Seed changed.
func SeedSweep(s Setup, n int, metric func(Setup) float64) (mean, stddev float64) {
	if n < 1 {
		panic("experiments: SeedSweep needs n >= 1")
	}
	if metric == nil {
		panic("experiments: SeedSweep needs a metric")
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		run := s
		run.Seed = s.Seed + uint64(1000*i+1000)
		vals = append(vals, metric(run))
	}
	return stats.Mean(vals), stats.Stddev(vals)
}

// SalvageRow is one row of the salvaging comparison.
type SalvageRow struct {
	// Policy names the salvaging scheme.
	Policy string
	// RoundsTo90 is the number of UAA rounds (writes per line) the
	// device survives before usable capacity drops below 90% of its
	// lines, normalized by the mean nominal line endurance (1.0 means
	// "the average line's full budget").
	RoundsTo90 float64
}

// SalvageStudy compares the Section 2.2.2 salvaging baselines on a
// cell-level fault model under UAA-style uniform wear: every line is
// written once per round and each cell fails when the rounds reach its
// endurance. Capacity retention is tracked for:
//
//   - line-kill — a line dies at its first cell failure (no salvaging);
//   - ECP-6 — six per-line correction pointers;
//   - PAYG — a global pool with the same total entry budget as ECP-6;
//   - DRM — faulty lines pair into replicas.
func SalvageStudy(s Setup) []SalvageRow {
	const (
		cellsPerLine = 64
		cellSigma    = 0.25
		ecpK         = 6
		capacityGoal = 0.9
	)
	base := s.Profile()
	lines := base.Lines()
	src := xrand.New(s.Seed + 20)

	// One failure event per cell, in wear order.
	type failure struct {
		round int64
		line  int
		cell  int
	}
	events := make([]failure, 0, lines*cellsPerLine)
	for i := 0; i < lines; i++ {
		nominal := float64(base.LineEndurance(i))
		for c := 0; c < cellsPerLine; c++ {
			e := nominal * math.Exp(cellSigma*src.NormFloat64())
			if e < 1 {
				e = 1
			}
			events = append(events, failure{round: int64(e), line: i, cell: c})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].round < events[b].round })

	threshold := int(capacityGoal * float64(lines))
	norm := base.Mean()

	killDead := make([]bool, lines)
	killCapacity := lines
	ecpCells := salvage.NewCellTracker(lines, cellsPerLine)
	ecpCapacity := lines
	payg := salvage.NewPAYG(lines, cellsPerLine, ecpK*lines)
	paygCapacity := lines
	drm := salvage.NewDRM(lines, cellsPerLine)

	res := map[string]float64{}
	record := func(policy string, round int64) {
		if _, done := res[policy]; !done {
			res[policy] = float64(round) / norm
		}
	}
	for _, ev := range events {
		if len(res) == 4 {
			break
		}
		if _, done := res["line-kill"]; !done {
			if !killDead[ev.line] {
				killDead[ev.line] = true
				killCapacity--
				if killCapacity < threshold {
					record("line-kill", ev.round)
				}
			}
		}
		if _, done := res["ecp-6"]; !done {
			if ecpCells.Fail(ev.line, ev.cell) == ecpK+1 {
				ecpCapacity--
				if ecpCapacity < threshold {
					record("ecp-6", ev.round)
				}
			}
		}
		if _, done := res["payg"]; !done {
			before := payg.DeadLines()
			payg.FailCell(ev.line, ev.cell)
			if payg.DeadLines() > before {
				paygCapacity--
				if paygCapacity < threshold {
					record("payg", ev.round)
				}
			}
		}
		if _, done := res["drm"]; !done {
			drm.FailCell(ev.line, ev.cell)
			if drm.Capacity() < threshold {
				record("drm", ev.round)
			}
		}
	}
	order := []string{"line-kill", "ecp-6", "payg", "drm"}
	out := make([]SalvageRow, 0, len(order))
	for _, policy := range order {
		r, ok := res[policy]
		if !ok {
			// Never dropped below the goal within the failure stream.
			r = float64(events[len(events)-1].round) / norm
		}
		out = append(out, SalvageRow{Policy: policy, RoundsTo90: r})
	}
	return out
}

// TLSRModelCheckResult compares how uniformly the behavioural TLSR model
// (randomized swaps) and the faithful two-level Security Refresh spread a
// fixed budget of BPA traffic. SpreadCV is the coefficient of variation
// (stddev/mean) of per-line write counts — 0 is perfectly uniform. The
// behavioural substitution is justified when both randomizers spread the
// hammered traffic to near-uniformity; their remap write-amplification
// is reported alongside, where the two mechanisms legitimately differ.
type TLSRModelCheckResult struct {
	BehavioralSpreadCV float64
	ExactSpreadCV      float64
	BehavioralAmp      float64
	ExactAmp           float64
}

// TLSRModelCheck requires a power-of-two line count; it panics otherwise.
// The device is made effectively unwearable so the comparison isolates
// placement behaviour from failure handling.
func TLSRModelCheck(s Setup) TLSRModelCheckResult {
	geomProfile := s.Profile()
	n := geomProfile.Lines()
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("experiments: TLSRModelCheck needs a power-of-two device, got %d lines", n))
	}
	// Unwearable uniform device: only placement matters.
	p := endurance.Uniform(s.Regions, s.LinesPerRegion, 1<<40)
	// Security Refresh randomizes per round (one full key migration =
	// psi * n/2 user writes); give both mechanisms enough rounds for
	// their steady-state spread to emerge.
	budget := int64(n) * 200
	if roundBudget := int64(60) * int64(s.Psi) * int64(n) / 2; roundBudget > budget {
		budget = roundBudget
	}
	run := func(lev wearlevel.Leveler, seed uint64) (cv, amp float64) {
		res, dev, err := sim.RunDetailed(sim.Config{
			Profile:       p,
			Scheme:        spare.NewNone(n),
			Leveler:       lev,
			Attack:        attack.DefaultBPA(xrand.New(seed)),
			MaxUserWrites: budget,
		})
		if err != nil {
			panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
		}
		counts := make([]float64, n)
		for l := 0; l < n; l++ {
			counts[l] = float64(dev.Writes(l))
		}
		return stats.Stddev(counts) / stats.Mean(counts), res.WriteAmplification
	}
	subSize := 64
	for subSize > n/2 {
		subSize /= 2
	}
	var out TLSRModelCheckResult
	out.BehavioralSpreadCV, out.BehavioralAmp =
		run(wearlevel.NewTLSR(n, s.Psi, xrand.New(s.Seed+11)), s.Seed+12)
	out.ExactSpreadCV, out.ExactAmp = run(wearlevel.NewTwoLevelSecurityRefresh(
		n/subSize, subSize, s.Psi*8, s.Psi, xrand.New(s.Seed+13)), s.Seed+12)
	return out
}
