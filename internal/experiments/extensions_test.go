package experiments

import (
	"math"
	"testing"
)

func TestECPStudyShape(t *testing.T) {
	// midSetup's larger endurance scale keeps the cell order statistics
	// distinct after integer truncation.
	rows := ECPStudy(midSetup(), []int{0, 2, 6})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// ECP-only lifetime rises with k.
	for i := 1; i < len(rows); i++ {
		if rows[i].ECPOnly <= rows[i-1].ECPOnly {
			t.Fatalf("ECP-only lifetime not increasing: k=%d %v vs k=%d %v",
				rows[i].K, rows[i].ECPOnly, rows[i-1].K, rows[i-1].ECPOnly)
		}
	}
	// The paper's argument: even ECP-6 alone stays below Max-WE stacked
	// on the same boosted device.
	last := rows[len(rows)-1]
	if last.ECPOnly >= last.ECPPlusMaxWE {
		t.Fatalf("ECP-6 alone (%v) not below ECP-6+Max-WE (%v)",
			last.ECPOnly, last.ECPPlusMaxWE)
	}
	// ECP-6 on 512-bit lines costs the canonical 11.9%.
	if math.Abs(last.CapacityOverhead-0.119) > 0.001 {
		t.Fatalf("ECP-6 overhead = %v", last.CapacityOverhead)
	}
}

func TestCoverageStudyShape(t *testing.T) {
	rows := CoverageStudy(QuickSetup(), []float64{0.5, 0.95, 1.0})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Max-WE always beats unprotected under any coverage.
		if r.MaxWE <= r.Unprotected {
			t.Fatalf("coverage %v: Max-WE %v <= unprotected %v",
				r.Coverage, r.MaxWE, r.Unprotected)
		}
	}
	// Section 3.2's point: 95% coverage retains nearly the full attack
	// effect — the unprotected lifetime stays within 2x of the full
	// sweep's (both are collapsed).
	full := rows[2].Unprotected
	at95 := rows[1].Unprotected
	if at95 > 3*full {
		t.Fatalf("95%% coverage attack much weaker than full: %v vs %v", at95, full)
	}
}

func TestGuardStudyStretchesTime(t *testing.T) {
	rows := GuardStudy(QuickSetup(), 1e6)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Stretch != 1 {
		t.Fatalf("baseline stretch = %v", rows[0].Stretch)
	}
	// The 50x throttle should stretch time-to-failure by tens of x
	// (detection happens within the first window, so nearly the whole
	// attack runs throttled).
	if rows[1].Stretch < 20 {
		t.Fatalf("guard stretch = %vx, want >= 20x", rows[1].Stretch)
	}
	if rows[1].Days <= rows[0].Days {
		t.Fatal("guarded time not longer")
	}
}

func TestGuardStudyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GuardStudy(QuickSetup(), 0)
}

func TestOracleStudyInvertsRanking(t *testing.T) {
	rows := OracleStudy(midSetup())
	by := map[string]OracleRow{}
	for _, r := range rows {
		if r.UAA <= 0 || r.Oracle <= 0 {
			t.Fatalf("%s: degenerate lifetimes %+v", r.Scheme, r)
		}
		by[r.Scheme] = r
	}
	// Against the oblivious UAA, Max-WE wins (the paper's result)...
	if !(by["max-we"].UAA > by["ps-worst"].UAA) {
		t.Fatalf("UAA: max-we %v not above ps-worst %v", by["max-we"].UAA, by["ps-worst"].UAA)
	}
	// ...but an endurance-aware adversary inverts it: strong spares
	// (ps-worst) are robust, while weak-priority sparing collapses
	// because its entire reserve is weak lines.
	if !(by["ps-worst"].Oracle > 2*by["max-we"].Oracle) {
		t.Fatalf("oracle: ps-worst %v not clearly above max-we %v",
			by["ps-worst"].Oracle, by["max-we"].Oracle)
	}
	// Every scheme loses lifetime against the informed adversary.
	for _, r := range rows {
		if r.Oracle >= r.UAA {
			t.Fatalf("%s: oracle attack (%v) not stronger than UAA (%v)",
				r.Scheme, r.Oracle, r.UAA)
		}
	}
}

func TestProfileSensitivity(t *testing.T) {
	rows := ProfileSensitivity(QuickSetup())
	if len(rows) != 3 {
		t.Fatalf("got %d profile families", len(rows))
	}
	seen := map[string]bool{}
	for _, ps := range rows {
		seen[ps.ProfileName] = true
		by := map[string]float64{}
		for _, r := range ps.Rows {
			by[r.Scheme] = r.Normalized
		}
		// The headline ordering must hold under every distribution.
		if !(by["max-we"] > by["pcd/ps"] && by["pcd/ps"] > by["none"]) {
			t.Fatalf("%s: ordering broken: %+v", ps.ProfileName, ps.Rows)
		}
	}
	for _, name := range []string{"linear", "power-law", "lognormal"} {
		if !seen[name] {
			t.Fatalf("missing family %s", name)
		}
	}
}

func TestWLZooOrdering(t *testing.T) {
	rows := WLZoo(QuickSetup())
	if len(rows) != len(ZooNames()) {
		t.Fatalf("got %d rows", len(rows))
	}
	byWL := map[string]ZooRow{}
	for _, r := range rows {
		if r.Normalized <= 0 {
			t.Fatalf("%s: degenerate lifetime", r.WL)
		}
		byWL[r.WL] = r
	}
	// Deterministic movement cannot resist a hammering adversary the way
	// randomization does.
	if byWL["start-gap"].Normalized >= byWL["tlsr"].Normalized {
		t.Fatalf("start-gap (%v) not below tlsr (%v) under BPA",
			byWL["start-gap"].Normalized, byWL["tlsr"].Normalized)
	}
	// Endurance-aware randomization tops the zoo.
	if byWL["wawl"].Normalized <= byWL["tlsr"].Normalized {
		t.Fatalf("wawl (%v) not above tlsr (%v)",
			byWL["wawl"].Normalized, byWL["tlsr"].Normalized)
	}
	// Identity pays no amplification.
	if byWL["identity"].Amplification != 1 {
		t.Fatalf("identity amplification = %v", byWL["identity"].Amplification)
	}
}

func TestSeedSweep(t *testing.T) {
	s := QuickSetup()
	calls := 0
	mean, sd := SeedSweep(s, 4, func(run Setup) float64 {
		calls++
		if run.Seed == s.Seed {
			t.Fatal("SeedSweep reused the base seed")
		}
		return float64(run.Seed % 7)
	})
	if calls != 4 {
		t.Fatalf("metric called %d times", calls)
	}
	if mean < 0 || sd < 0 {
		t.Fatal("degenerate statistics")
	}
	// Constant metric: zero spread.
	_, sd = SeedSweep(s, 3, func(Setup) float64 { return 5 })
	if sd != 0 {
		t.Fatalf("constant metric stddev = %v", sd)
	}
}

func TestSeedSweepPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SeedSweep(QuickSetup(), 0, func(Setup) float64 { return 0 }) },
		func() { SeedSweep(QuickSetup(), 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSalvageStudyOrdering(t *testing.T) {
	rows := SalvageStudy(QuickSetup())
	byPolicy := map[string]float64{}
	for _, r := range rows {
		if r.RoundsTo90 <= 0 {
			t.Fatalf("%s: degenerate result %v", r.Policy, r.RoundsTo90)
		}
		byPolicy[r.Policy] = r.RoundsTo90
	}
	if len(byPolicy) != 4 {
		t.Fatalf("got %d policies", len(byPolicy))
	}
	// Every salvaging policy must outlive the no-salvaging baseline.
	for _, policy := range []string{"ecp-6", "payg", "drm"} {
		if byPolicy[policy] < byPolicy["line-kill"] {
			t.Fatalf("%s (%v) below line-kill (%v)", policy, byPolicy[policy], byPolicy["line-kill"])
		}
	}
	// PAYG's pooled budget must beat the same budget split per line
	// (failures cluster in weak lines — Qureshi's argument).
	if byPolicy["payg"] <= byPolicy["ecp-6"] {
		t.Fatalf("payg (%v) not above ecp-6 (%v)", byPolicy["payg"], byPolicy["ecp-6"])
	}
}

func TestTLSRModelCheck(t *testing.T) {
	s := QuickSetup() // 128x8 = 1024 lines, a power of two
	r := TLSRModelCheck(s)
	// Both randomizers must spread the 16-victim hammer to
	// near-uniformity: the coefficient of variation of per-line writes
	// stays below 0.6, versus ~sqrt(N/16) ≈ 8 for no wear leveling.
	if r.BehavioralSpreadCV > 0.6 {
		t.Fatalf("behavioural TLSR spread CV = %v, want < 0.6", r.BehavioralSpreadCV)
	}
	if r.ExactSpreadCV > 0.6 {
		t.Fatalf("exact security refresh spread CV = %v, want < 0.6", r.ExactSpreadCV)
	}
	// Both mechanisms pay remap traffic.
	if r.BehavioralAmp <= 1 || r.ExactAmp <= 1 {
		t.Fatalf("amplifications %v/%v, want > 1", r.BehavioralAmp, r.ExactAmp)
	}
}

func TestTLSRModelCheckPanicsOnNonPowerOfTwo(t *testing.T) {
	s := QuickSetup()
	s.Regions = 100 // 800 lines
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TLSRModelCheck(s)
}
