package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"maxwe/internal/memo"
	"maxwe/internal/runner"
	"maxwe/internal/stats"
)

func fig8Sweep(t *testing.T, cfg runner.Config, s Setup) runner.Report[Fig8Row] {
	t.Helper()
	rep, err := runner.Run(context.Background(), cfg, Fig8Cells(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed cells: %+v", rep.Failed)
	}
	return rep
}

func TestFig8CellsMatchMonolithicFig8(t *testing.T) {
	s := QuickSetup()
	wantRows, wantGmeans := Fig8(s)

	rep := fig8Sweep(t, runner.Config{}, s)
	rows, gmeans := Fig8FromResults(rep.Results)
	if !reflect.DeepEqual(wantRows, rows) {
		t.Fatalf("cell rows diverge from Fig8:\nwant %+v\ngot  %+v", wantRows, rows)
	}
	for scheme, want := range wantGmeans {
		if !stats.ApproxEqual(gmeans[scheme], want, 0) {
			t.Fatalf("gmean[%s] = %v, want %v", scheme, gmeans[scheme], want)
		}
	}
}

func TestFig7CellsMatchMonolithicFig7(t *testing.T) {
	s := QuickSetup()
	pcts := []int{0, 90}
	wls := []string{"tlsr", "bwl"}
	want := Fig7(s, pcts, wls)

	rep, err := runner.Run(context.Background(), runner.Config{}, Fig7Cells(s, pcts, wls))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed cells: %+v", rep.Failed)
	}
	got := Fig7FromResults(rep.Results, pcts, wls)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cell rows diverge from Fig7:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestFig8SweepResumesBitIdentical(t *testing.T) {
	// Acceptance criterion: a sweep killed mid-flight and resumed from its
	// checkpoint produces bit-identical results to an uninterrupted run.
	s := QuickSetup()
	ref := fig8Sweep(t, runner.Config{}, s)

	cfg := runner.Config{
		CheckpointPath: filepath.Join(t.TempDir(), "fig8.ckpt.json"),
		Fingerprint:    s.Fingerprint(),
		// Parallelism 1 pins the sequential cut line: with a worker pool,
		// every remaining cell may already be in flight when the third Done
		// lands, and a cancellation that outruns no work interrupts nothing.
		Parallelism: 1,
	}
	// Kill the sweep after the third completed cell.
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	cfg.Progress = func(ev runner.Event) {
		if ev.Status == runner.StatusDone {
			if done++; done == 3 {
				cancel()
			}
		}
	}
	rep1, err := runner.Run(ctx, cfg, Fig8Cells(s))
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Interrupted {
		t.Fatal("sweep survived cancellation")
	}
	if len(rep1.Results) >= len(ref.Results) {
		t.Fatalf("interrupted sweep completed all %d cells", len(rep1.Results))
	}

	cfg.Progress = nil
	rep2 := fig8Sweep(t, cfg, s)
	if rep2.Resumed != len(rep1.Results) {
		t.Fatalf("resumed %d cells, want %d", rep2.Resumed, len(rep1.Results))
	}
	if !reflect.DeepEqual(ref.Results, rep2.Results) {
		t.Fatalf("resumed sweep diverged:\nref %+v\ngot %+v", ref.Results, rep2.Results)
	}
}

func TestFigSweepsParallelBitIdentical(t *testing.T) {
	// Acceptance criterion: the Fig 7/8 sweeps produce results bit-identical
	// to the sequential run at every worker count.
	s := QuickSetup()
	pcts := []int{0, 90}
	wls := []string{"tlsr", "bwl"}

	refRows7, refRep7, err := Fig7Sweep(context.Background(), runner.Config{Parallelism: 1}, s, pcts, wls)
	if err != nil {
		t.Fatal(err)
	}
	refRows8, refGmeans, refRep8, err := Fig8Sweep(context.Background(), runner.Config{Parallelism: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRep7.Failed)+len(refRep8.Failed) != 0 {
		t.Fatalf("failed cells: %+v %+v", refRep7.Failed, refRep8.Failed)
	}

	for _, par := range []int{0, 2, 8} {
		rows7, rep7, err := Fig7Sweep(context.Background(), runner.Config{Parallelism: par}, s, pcts, wls)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(refRows7, rows7) || !reflect.DeepEqual(refRep7.Results, rep7.Results) {
			t.Fatalf("parallelism %d: Fig7 diverged from sequential", par)
		}
		rows8, gmeans, rep8, err := Fig8Sweep(context.Background(), runner.Config{Parallelism: par}, s)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(refRows8, rows8) || !reflect.DeepEqual(refRep8.Results, rep8.Results) {
			t.Fatalf("parallelism %d: Fig8 diverged from sequential", par)
		}
		if !reflect.DeepEqual(refGmeans, gmeans) {
			t.Fatalf("parallelism %d: Fig8 gmeans diverged from sequential", par)
		}
	}
}

// TestFigSweepsCacheBitIdentical is the memo-cache acceptance test: the
// full Fig7+Fig8 sweep with the result cache enabled — cold (every cell
// computes and populates) and warm (every cell is a memo hit) — produces
// rows and results bit-identical to the cache-disabled run.
func TestFigSweepsCacheBitIdentical(t *testing.T) {
	s := QuickSetup()
	pcts := []int{0, 90}
	wls := []string{"tlsr", "bwl"}

	refRows7, refRep7, err := Fig7Sweep(context.Background(), runner.Config{}, s, pcts, wls)
	if err != nil {
		t.Fatal(err)
	}
	refRows8, refGmeans, refRep8, err := Fig8Sweep(context.Background(), runner.Config{}, s)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := memo.Open(memo.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for pass, label := range []string{"cold", "warm"} {
		cfg := runner.Config{Cache: cache}
		rows7, rep7, err := Fig7Sweep(context.Background(), cfg, s, pcts, wls)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(refRows7, rows7) || !reflect.DeepEqual(refRep7.Results, rep7.Results) {
			t.Fatalf("%s cached Fig7 diverged from cache-off run", label)
		}
		rows8, gmeans, rep8, err := Fig8Sweep(context.Background(), cfg, s)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(refRows8, rows8) || !reflect.DeepEqual(refRep8.Results, rep8.Results) ||
			!reflect.DeepEqual(refGmeans, gmeans) {
			t.Fatalf("%s cached Fig8 diverged from cache-off run", label)
		}
		st := cache.Stats()
		total := int64(len(refRep7.Results) + len(refRep8.Results))
		if pass == 0 && (st.Puts != total || st.Hits != 0) {
			t.Fatalf("cold pass stats = %+v, want %d puts and 0 hits", st, total)
		}
		if pass == 1 && st.Hits != total {
			t.Fatalf("warm pass stats = %+v, want %d hits", st, total)
		}
	}
}

// TestCellFingerprintGolden pins the exact per-cell fingerprint strings
// of representative Fig7/Fig8 cells. These strings are the memo-cache
// keys: if this test fails, the key derivation drifted and every cached
// result in existence is either orphaned (harmless but wasteful) or —
// far worse, if an old key now names a different computation — stale.
// Such a change must be deliberate; bump sim.EngineSchemaVersion instead
// of silently reshaping the key, then update these constants.
func TestCellFingerprintGolden(t *testing.T) {
	s := QuickSetup()
	const setupFP = "setup/r128/l8/e300/p0/q50/psi32/seed20190602"
	if got := s.Fingerprint(); got != setupFP {
		t.Fatalf("Setup fingerprint = %q, want %q (cache keys and checkpoints orphaned?)", got, setupFP)
	}
	fig7 := Fig7Cells(s, []int{0, 90}, []string{"tlsr"})
	fig8 := Fig8Cells(s)
	golden := []struct {
		name string
		got  string
		want string
	}{
		{"fig7 tlsr 0%", fig7[0].Fingerprint,
			"cells/v1/" + setupFP + "/fig7/tlsr/0"},
		{"fig7 tlsr 90%", fig7[1].Fingerprint,
			"cells/v1/" + setupFP + "/fig7/tlsr/90"},
		{"fig8 tlsr ps-worst", fig8[0].Fingerprint,
			"cells/v1/" + setupFP + "/fig8/tlsr/ps-worst"},
		{"fig8 tlsr max-we", fig8[2].Fingerprint,
			"cells/v1/" + setupFP + "/fig8/tlsr/max-we"},
	}
	for _, tc := range golden {
		if tc.got != tc.want {
			t.Errorf("%s fingerprint = %q, want %q (cache-key-breaking change?)", tc.name, tc.got, tc.want)
		}
	}
	// Every cell's fingerprint must match its key: the memo cache trusts
	// this equality to serve fig7/tlsr/90 bytes only to fig7/tlsr/90.
	for _, c := range fig7 {
		if want := s.CellFingerprint(c.Key); c.Fingerprint != want {
			t.Errorf("cell %s fingerprint = %q, want CellFingerprint %q", c.Key, c.Fingerprint, want)
		}
	}
}

func TestFingerprintDistinguishesSetups(t *testing.T) {
	a, b := QuickSetup(), QuickSetup()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical setups fingerprint differently")
	}
	b.Seed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds share a fingerprint")
	}
	b = QuickSetup()
	b.ProfileKind = ProfilePowerLaw
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different profile kinds share a fingerprint")
	}
}

func TestCellCancellationLeavesNoTruncatedRows(t *testing.T) {
	// A canceled cell must surface ctx.Err(), never a truncated lifetime.
	s := QuickSetup()
	cells := Fig8Cells(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := cells[0].Run(ctx)
	if err == nil {
		t.Fatal("canceled cell returned a result")
	}
}
