// cells.go decomposes the sweep-shaped experiments (Figures 7 and 8) into
// internal/runner cells: one independent simulation per cell, each
// cancelable through its context and addressable by a stable key. This is
// what lets cmd/figures checkpoint long sweeps and resume them after an
// interruption with bit-identical results — each cell re-derives its
// profile and seeds from the Setup alone, so recomputing any subset
// reproduces exactly what an uninterrupted run would have produced.
package experiments

import (
	"context"
	"fmt"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/runner"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/stats"
	"maxwe/internal/xrand"
)

// Fingerprint identifies the Setup for checkpoint validation: two Setups
// produce the same fingerprint exactly when they produce the same
// simulation inputs, so a checkpoint written under a different
// configuration is rejected instead of silently reused.
func (s Setup) Fingerprint() string {
	return fmt.Sprintf("setup/r%d/l%d/e%g/p%d/q%g/psi%d/seed%d",
		s.Regions, s.LinesPerRegion, s.MeanEndurance, s.ProfileKind,
		s.VariationQ, s.Psi, s.Seed)
}

// CellFingerprint is the per-cell sibling of Fingerprint: the canonical
// content-address of one sweep cell's result for the memo cache
// (internal/memo). It extends the Setup fingerprint with the engine
// schema version — so results computed by a semantically different
// engine can never be served — and the cell key, which pins the cell's
// own parameters (scheme, leveler, SWR percent). Two cells with equal
// CellFingerprints compute byte-identical results by the same argument
// that makes checkpoint resume safe: every cell re-derives all of its
// state from the Setup and key alone.
func (s Setup) CellFingerprint(key string) string {
	return fmt.Sprintf("cells/v%d/%s/%s", sim.EngineSchemaVersion, s.Fingerprint(), key)
}

// runBPACtx is runBPA with cooperative cancellation: the simulation polls
// ctx and an interrupted run surfaces as ctx's error, so the runner
// leaves the cell incomplete instead of recording a truncated lifetime.
func (s Setup) runBPACtx(ctx context.Context, p *endurance.Profile, sch spare.Scheme, wl string) (float64, error) {
	lev := NewLeveler(wl, sch, p, s.Psi, xrand.New(s.Seed+2))
	res, err := sim.Run(sim.Config{
		Profile: p,
		Scheme:  sch,
		Leveler: lev,
		Attack:  attack.DefaultBPA(xrand.New(s.Seed + 3)),
		Done:    ctx.Done(),
	})
	if err != nil {
		return 0, err
	}
	if res.Interrupted {
		return 0, ctx.Err()
	}
	return res.NormalizedLifetime, nil
}

// Fig7Cells decomposes Fig7 into one cell per (wear leveler, SWR percent)
// combination, keyed "fig7/<wl>/<percent>". Running every cell and
// assembling with Fig7FromResults reproduces Fig7's rows exactly.
func Fig7Cells(s Setup, swrPercents []int, wls []string) []runner.Cell[Fig7Row] {
	p := s.Profile()
	var cells []runner.Cell[Fig7Row]
	for _, wl := range wls {
		for _, pct := range swrPercents {
			if pct < 0 || pct > 100 {
				panic(fmt.Sprintf("experiments: Fig7 SWR percent %d out of [0, 100]", pct))
			}
			key := fmt.Sprintf("fig7/%s/%d", wl, pct)
			cells = append(cells, runner.Cell[Fig7Row]{
				Key:         key,
				Fingerprint: s.CellFingerprint(key),
				Run: func(ctx context.Context) (Fig7Row, error) {
					opts := spare.DefaultMaxWEOptions()
					opts.SWRFraction = float64(pct) / 100
					nl, err := s.runBPACtx(ctx, p, spare.NewMaxWE(p, opts), wl)
					if err != nil {
						return Fig7Row{}, err
					}
					return Fig7Row{WL: wl, SWRPercent: pct, Normalized: nl}, nil
				},
			})
		}
	}
	return cells
}

// Fig7FromResults assembles completed Fig7 cells back into Fig7's row
// order (wear levelers outer, SWR percents inner). Cells missing from
// results — failed or not yet computed — are skipped.
func Fig7FromResults(results map[string]Fig7Row, swrPercents []int, wls []string) []Fig7Row {
	var rows []Fig7Row
	for _, wl := range wls {
		for _, pct := range swrPercents {
			if row, ok := results[fmt.Sprintf("fig7/%s/%d", wl, pct)]; ok {
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// Fig8Cells decomposes Fig8 into one cell per (wear leveler, spare
// scheme) combination, keyed "fig8/<wl>/<scheme>". Running every cell and
// assembling with Fig8FromResults reproduces Fig8's rows and geometric
// means exactly.
func Fig8Cells(s Setup) []runner.Cell[Fig8Row] {
	p := s.Profile()
	var cells []runner.Cell[Fig8Row]
	for _, wl := range WLNames() {
		for _, scheme := range SchemeNames() {
			key := fmt.Sprintf("fig8/%s/%s", wl, scheme)
			cells = append(cells, runner.Cell[Fig8Row]{
				Key:         key,
				Fingerprint: s.CellFingerprint(key),
				Run: func(ctx context.Context) (Fig8Row, error) {
					nl, err := s.runBPACtx(ctx, p, newScheme(scheme, p, s.Seed), wl)
					if err != nil {
						return Fig8Row{}, err
					}
					return Fig8Row{WL: wl, Scheme: scheme, Normalized: nl}, nil
				},
			})
		}
	}
	return cells
}

// Fig7Sweep drives the Fig7 cells through the sweep supervisor — with
// whatever parallelism, checkpointing and retry policy cfg carries — and
// assembles the completed rows. The report is returned alongside so
// callers can surface interruption and per-cell failures.
func Fig7Sweep(ctx context.Context, cfg runner.Config, s Setup, swrPercents []int, wls []string) ([]Fig7Row, runner.Report[Fig7Row], error) {
	rep, err := runner.Run(ctx, cfg, Fig7Cells(s, swrPercents, wls))
	if err != nil {
		return nil, rep, err
	}
	return Fig7FromResults(rep.Results, swrPercents, wls), rep, nil
}

// Fig8Sweep is Fig7Sweep's counterpart for the Figure 8 cells; it also
// recomputes the per-scheme geometric means over the completed rows.
func Fig8Sweep(ctx context.Context, cfg runner.Config, s Setup) ([]Fig8Row, map[string]float64, runner.Report[Fig8Row], error) {
	rep, err := runner.Run(ctx, cfg, Fig8Cells(s))
	if err != nil {
		return nil, nil, rep, err
	}
	rows, gmeans := Fig8FromResults(rep.Results)
	return rows, gmeans, rep, nil
}

// Fig8FromResults assembles completed Fig8 cells back into Fig8's row
// order and recomputes the per-scheme geometric means over the rows
// present. Cells missing from results are skipped (their scheme's gmean
// then covers fewer wear levelers).
func Fig8FromResults(results map[string]Fig8Row) ([]Fig8Row, map[string]float64) {
	var rows []Fig8Row
	perScheme := map[string][]float64{}
	for _, wl := range WLNames() {
		for _, scheme := range SchemeNames() {
			row, ok := results[fmt.Sprintf("fig8/%s/%s", wl, scheme)]
			if !ok {
				continue
			}
			rows = append(rows, row)
			perScheme[scheme] = append(perScheme[scheme], row.Normalized)
		}
	}
	gmeans := map[string]float64{}
	for scheme, vals := range perScheme {
		gmeans[scheme] = stats.GeoMean(vals)
	}
	return rows, gmeans
}
