// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) on the scaled simulator. It is the single source
// of truth shared by the bench harness (bench_test.go) and the
// cmd/figures driver, so the benches and the CLI print identical rows.
//
// All experiments are deterministic for a given Setup (seed included) and
// report the paper's metric: normalized lifetime = user writes served
// before failure / Σ line endurance.
package experiments

import (
	"fmt"
	"math"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/stats"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// Setup fixes the device scale and randomness of an experiment run. The
// paper simulates a 1 GB bank with 2048 regions and PCM-scale endurance;
// normalized lifetime is scale-invariant, so the default setup shrinks the
// device to keep per-write simulation fast while keeping the paper's
// region structure (see DESIGN.md).
type Setup struct {
	// Regions and LinesPerRegion fix the geometry.
	Regions        int
	LinesPerRegion int
	// MeanEndurance is the scaled mean write budget per line.
	MeanEndurance float64
	// ProfileKind selects the endurance distribution: ProfileLinear is
	// the paper's tractable linear model (its analysis, the 4.1% UAA
	// baseline and the q axis of Figure 5 are all stated in it);
	// ProfilePowerLaw samples the Equation 1-2 truncated power-law model.
	ProfileKind ProfileKind
	// VariationQ is the max/min endurance ratio (the paper's q = 50
	// operating point).
	VariationQ float64
	// Psi is the wear-leveling remap period in writes.
	Psi int
	// Seed drives every random choice (profile sampling, shuffling,
	// attacks, randomized wear leveling).
	Seed uint64
}

// ProfileKind selects the endurance distribution family of a Setup.
type ProfileKind int

const (
	// ProfileLinear is the linear EL..EH model of the paper's analysis.
	ProfileLinear ProfileKind = iota
	// ProfilePowerLaw is the Equation 1-2 truncated power-law model.
	ProfilePowerLaw
	// ProfileLogNormal is the lognormal sensitivity-check distribution,
	// truncated at the same q ratio.
	ProfileLogNormal
)

// String names the profile kind; the names round-trip through
// ParseProfileKind.
func (k ProfileKind) String() string {
	switch k {
	case ProfileLinear:
		return "linear"
	case ProfilePowerLaw:
		return "power-law"
	case ProfileLogNormal:
		return "lognormal"
	}
	return fmt.Sprintf("profile(%d)", int(k))
}

// ParseProfileKind resolves a profile kind by name ("linear", "power-law",
// "lognormal"); the empty string selects the paper's linear model. It is
// the inverse of ProfileKind.String, for configuration surfaces (the nvmd
// job API) that carry the kind as text.
func ParseProfileKind(name string) (ProfileKind, error) {
	switch name {
	case "", "linear":
		return ProfileLinear, nil
	case "power-law":
		return ProfilePowerLaw, nil
	case "lognormal":
		return ProfileLogNormal, nil
	}
	return 0, fmt.Errorf("experiments: unknown profile kind %q", name)
}

// DefaultSetup returns the configuration the committed benchmark numbers
// use: 512 regions x 32 lines, linear q=50 endurance, mean 2000 writes,
// psi 32.
func DefaultSetup() Setup {
	return Setup{
		Regions:        512,
		LinesPerRegion: 32,
		MeanEndurance:  2000,
		ProfileKind:    ProfileLinear,
		VariationQ:     50,
		Psi:            32,
		Seed:           20190602, // DAC'19 opened June 2, 2019
	}
}

// QuickSetup returns a small configuration for unit tests: 128 regions x
// 8 lines, mean endurance 300.
func QuickSetup() Setup {
	s := DefaultSetup()
	s.Regions = 128
	s.LinesPerRegion = 8
	s.MeanEndurance = 300
	return s
}

// Profile builds the endurance profile of the setup, scaled to
// MeanEndurance and spatially shuffled so weakness is not sorted by
// address.
func (s Setup) Profile() *endurance.Profile {
	var p *endurance.Profile
	switch s.ProfileKind {
	case ProfileLinear:
		q := s.VariationQ
		if q < 1 {
			panic(fmt.Sprintf("experiments: VariationQ %v must be >= 1", q))
		}
		// Mean of the linear EL..EH distribution is (EL+EH)/2; pick EL so
		// the mean matches before the exact rescale.
		el := 2 * s.MeanEndurance / (1 + q)
		p = endurance.Linear(s.Regions, s.LinesPerRegion, el, el*q)
	case ProfilePowerLaw:
		m := endurance.DefaultModel()
		m.TruncSigma = m.TruncSigmaForRatio(s.VariationQ)
		p = m.Sample(s.Regions, s.LinesPerRegion, xrand.New(s.Seed))
	case ProfileLogNormal:
		// sigmaLog chosen so ±2σ spans the q ratio; truncation enforces
		// the cap exactly.
		sigma := math.Log(s.VariationQ) / 4
		p = endurance.LogNormal(s.Regions, s.LinesPerRegion,
			s.MeanEndurance, sigma, s.VariationQ, xrand.New(s.Seed))
	default:
		panic(fmt.Sprintf("experiments: unknown profile kind %d", s.ProfileKind))
	}
	return p.ScaleToMean(s.MeanEndurance).Shuffled(xrand.New(s.Seed + 1))
}

// WLNames lists the wear-leveling substrates of the paper's Figures 7-8
// in the paper's order.
func WLNames() []string { return []string{"tlsr", "pcm-s", "bwl", "wawl"} }

// NewLeveler constructs the named wear-leveling substrate over scheme's
// user space. Endurance-aware schemes receive per-slot metrics derived
// from the manufacture-time region metric of each slot's base line.
func NewLeveler(name string, sch spare.Scheme, p *endurance.Profile, psi int, src *xrand.Source) wearlevel.Leveler {
	slots := sch.UserLines()
	metrics := func() []float64 {
		ms := make([]float64, slots)
		for u := range ms {
			ms[u] = p.RegionMetric(p.RegionOf(sch.BaseLine(u)))
		}
		return ms
	}
	switch name {
	case "identity":
		return wearlevel.NewIdentity(slots)
	case "start-gap":
		return wearlevel.NewStartGap(slots, psi)
	case "stress-aware":
		return wearlevel.NewStressAware(slots, psi)
	case "partitioned-start-gap":
		const partitions = 8
		if slots%partitions != 0 {
			panic(fmt.Sprintf("experiments: %d slots not divisible into %d partitions", slots, partitions))
		}
		return wearlevel.NewPartitioned(partitions, slots/partitions, src,
			func(_, partSlots int) wearlevel.Leveler {
				return wearlevel.NewStartGap(partSlots, psi)
			})
	case "twl":
		if slots%2 != 0 {
			panic(fmt.Sprintf("experiments: twl needs an even slot count, got %d", slots))
		}
		return wearlevel.NewTWL(slots, metrics(), src)
	case "tlsr":
		return wearlevel.NewTLSR(slots, psi, src)
	case "pcm-s":
		return wearlevel.NewPCMS(slots, psi, src)
	case "bwl":
		return wearlevel.NewBWL(slots, metrics(), psi, src)
	case "wawl":
		return wearlevel.NewWAWL(slots, metrics(), psi, src)
	default:
		panic(fmt.Sprintf("experiments: unknown wear-leveling scheme %q", name))
	}
}

// runBPA runs the birthday-paradox attack against sch under the named
// leveler and returns the normalized lifetime.
func (s Setup) runBPA(p *endurance.Profile, sch spare.Scheme, wl string) float64 {
	lev := NewLeveler(wl, sch, p, s.Psi, xrand.New(s.Seed+2))
	res, err := sim.Run(sim.Config{
		Profile: p,
		Scheme:  sch,
		Leveler: lev,
		Attack:  attack.DefaultBPA(xrand.New(s.Seed + 3)),
	})
	if err != nil {
		panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
	}
	return res.NormalizedLifetime
}

// runUAA runs the uniform address attack (no wear leveling, per the
// paper's observation that leveling is irrelevant under UAA) and returns
// the normalized lifetime.
func runUAA(p *endurance.Profile, sch spare.Scheme) float64 {
	res, err := sim.Run(sim.Config{Profile: p, Scheme: sch, Attack: attack.NewUAA()})
	if err != nil {
		panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
	}
	return res.NormalizedLifetime
}

// ---------------------------------------------------------------------------
// Figure 6 — Max-WE lifetime under UAA vs spare-line percentage

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	SparePercent int
	Normalized   float64
}

// Fig6 sweeps the spare-line percentage under UAA with Max-WE (90% SWRs).
// The paper's x axis is {0, 1, 10, 20, 30, 40, 50}.
func Fig6(s Setup, percents []int) []Fig6Row {
	p := s.Profile()
	out := make([]Fig6Row, 0, len(percents))
	for _, pct := range percents {
		if pct < 0 || pct > 50 {
			panic(fmt.Sprintf("experiments: Fig6 spare percent %d out of [0, 50]", pct))
		}
		opts := spare.DefaultMaxWEOptions()
		opts.SpareFraction = float64(pct) / 100
		sch := spare.NewMaxWE(p, opts)
		out = append(out, Fig6Row{SparePercent: pct, Normalized: runUAA(p, sch)})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 7 — lifetime under BPA vs SWR percentage, per wear-leveling scheme

// Fig7Row is one point of Figure 7. Rows are serialized into nvmd
// results and runner checkpoints, so wire names are pinned explicitly.
type Fig7Row struct {
	WL         string  `json:"WL"`
	SWRPercent int     `json:"SWRPercent"`
	Normalized float64 `json:"Normalized"`
}

// Fig7DefaultPercents returns the paper's Figure 7 x axis — the SWR share
// of the spare capacity, in percent — shared by cmd/figures and the nvmd
// job defaults.
func Fig7DefaultPercents() []int { return []int{0, 20, 60, 80, 90, 100} }

// Fig7 sweeps the SWR share of the spare capacity under BPA for each
// wear-leveling substrate, with the spare budget fixed at 10%. The
// paper's x axis is {0, 20, 60, 80, 90, 100}.
func Fig7(s Setup, swrPercents []int, wls []string) []Fig7Row {
	p := s.Profile()
	var out []Fig7Row
	for _, wl := range wls {
		for _, pct := range swrPercents {
			if pct < 0 || pct > 100 {
				panic(fmt.Sprintf("experiments: Fig7 SWR percent %d out of [0, 100]", pct))
			}
			opts := spare.DefaultMaxWEOptions()
			opts.SWRFraction = float64(pct) / 100
			sch := spare.NewMaxWE(p, opts)
			out = append(out, Fig7Row{
				WL:         wl,
				SWRPercent: pct,
				Normalized: s.runBPA(p, sch, wl),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 8 — spare-scheme comparison under BPA per wear-leveling scheme

// Fig8Row is one bar of Figure 8. Rows are serialized into nvmd
// results and runner checkpoints, so wire names are pinned explicitly.
type Fig8Row struct {
	WL         string  `json:"WL"`
	Scheme     string  `json:"Scheme"`
	Normalized float64 `json:"Normalized"`
}

// SchemeNames lists the spare schemes of Figure 8 in the paper's order.
// "pcd/ps" is realized as random physical sparing, which Ferreira et al.
// (and the paper) treat as equivalent to PCD's average behaviour.
func SchemeNames() []string { return []string{"ps-worst", "pcd/ps", "max-we"} }

// newScheme builds the named spare scheme with a 10% budget.
func newScheme(name string, p *endurance.Profile, seed uint64) spare.Scheme {
	spareLines := p.Lines() / 10
	switch name {
	case "max-we":
		return spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
	case "pcd/ps":
		return spare.NewPS(p, spareLines, spare.PSRandom, xrand.New(seed+4))
	case "ps-worst":
		return spare.NewPS(p, spareLines, spare.PSWorst, nil)
	case "none":
		return spare.NewNone(p.Lines())
	default:
		panic(fmt.Sprintf("experiments: unknown spare scheme %q", name))
	}
}

// Fig8 compares the three spare schemes under BPA across the four
// wear-leveling substrates and returns the per-combination rows plus the
// per-scheme geometric means (the paper's Gmean group).
func Fig8(s Setup) ([]Fig8Row, map[string]float64) {
	p := s.Profile()
	var rows []Fig8Row
	perScheme := map[string][]float64{}
	for _, wl := range WLNames() {
		for _, scheme := range SchemeNames() {
			sch := newScheme(scheme, p, s.Seed)
			nl := s.runBPA(p, sch, wl)
			rows = append(rows, Fig8Row{WL: wl, Scheme: scheme, Normalized: nl})
			perScheme[scheme] = append(perScheme[scheme], nl)
		}
	}
	gmeans := map[string]float64{}
	for scheme, vals := range perScheme {
		gmeans[scheme] = stats.GeoMean(vals)
	}
	return rows, gmeans
}

// ---------------------------------------------------------------------------
// Section 5.3.1 — UAA lifetime table

// UAARow is one row of the Section 5.3.1 comparison.
type UAARow struct {
	Scheme     string
	Normalized float64
	// ImprovementX is the lifetime multiple over the unprotected device
	// (the paper reports 9.5X / 7.4X / 6.9X).
	ImprovementX float64
}

// TableUAA reproduces the Section 5.3.1 numbers: normalized lifetime and
// improvement factors of Max-WE, PCD/PS and PS-worst under UAA with 10%
// spares, plus the unprotected baseline.
func TableUAA(s Setup) []UAARow {
	p := s.Profile()
	base := runUAA(p, newScheme("none", p, s.Seed))
	rows := []UAARow{{Scheme: "none", Normalized: base, ImprovementX: 1}}
	for _, scheme := range SchemeNames() {
		nl := runUAA(p, newScheme(scheme, p, s.Seed))
		rows = append(rows, UAARow{Scheme: scheme, Normalized: nl, ImprovementX: nl / base})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 2 / Section 3.3.1 — remapping aggravates wear under UAA

// Fig2Result quantifies the remap-overhead demonstration: the device
// writes consumed per user write with and without a remapping scheme
// under UAA.
type Fig2Result struct {
	PlainAmplification   float64
	LeveledAmplification float64
	PlainLifetime        float64
	LeveledLifetime      float64
}

// Fig2 runs UAA with and without TLSR remapping on the unprotected device
// and reports amplification and lifetime, demonstrating Section 3.3.1's
// claim that remapping can only hurt a uniform attack.
func Fig2(s Setup) Fig2Result {
	p := s.Profile()
	plain, err := sim.Run(sim.Config{
		Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA(),
	})
	if err != nil {
		panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
	}
	sch := spare.NewNone(p.Lines())
	leveled, err := sim.Run(sim.Config{
		Profile: p, Scheme: sch,
		Leveler: NewLeveler("tlsr", sch, p, s.Psi, xrand.New(s.Seed+5)),
		Attack:  attack.NewUAA(),
	})
	if err != nil {
		panic(fmt.Errorf("experiments: sim rejected a validated config: %w", err))
	}
	return Fig2Result{
		PlainAmplification:   plain.WriteAmplification,
		LeveledAmplification: leveled.WriteAmplification,
		PlainLifetime:        plain.NormalizedLifetime,
		LeveledLifetime:      leveled.NormalizedLifetime,
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Section 4)

// AblationRow compares the full Max-WE design against one disabled
// strategy under UAA.
type AblationRow struct {
	Variant    string
	Normalized float64
}

// Ablations runs Max-WE under UAA with each design strategy disabled in
// turn, quantifying what weak-priority, weak-strong matching and
// strongest-spare-first allocation each contribute.
func Ablations(s Setup) []AblationRow {
	p := s.Profile()
	variants := []struct {
		name string
		mod  func(*spare.MaxWEOptions)
	}{
		{"full", func(*spare.MaxWEOptions) {}},
		{"random-spare-regions", func(o *spare.MaxWEOptions) {
			o.WeakPriority = false
			o.Rand = xrand.New(s.Seed + 6)
		}},
		{"in-order-matching", func(o *spare.MaxWEOptions) { o.WeakStrongMatching = false }},
		{"fifo-spare-alloc", func(o *spare.MaxWEOptions) { o.StrongestSpareFirst = false }},
	}
	out := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		opts := spare.DefaultMaxWEOptions()
		v.mod(&opts)
		sch := spare.NewMaxWE(p, opts)
		out = append(out, AblationRow{Variant: v.name, Normalized: runUAA(p, sch)})
	}
	return out
}
