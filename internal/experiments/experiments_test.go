package experiments

import (
	"math"
	"testing"

	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

// midSetup is large enough for the BPA experiments' orderings to be
// stable but still runs in well under a second per figure.
func midSetup() Setup {
	s := DefaultSetup()
	s.Regions = 256
	s.LinesPerRegion = 16
	s.MeanEndurance = 1000
	return s
}

func TestProfileLinearMatchesKnobs(t *testing.T) {
	s := QuickSetup()
	p := s.Profile()
	if p.Lines() != s.Regions*s.LinesPerRegion {
		t.Fatalf("profile has %d lines", p.Lines())
	}
	if math.Abs(p.Mean()-s.MeanEndurance)/s.MeanEndurance > 0.02 {
		t.Fatalf("profile mean = %v, want ~%v", p.Mean(), s.MeanEndurance)
	}
	if math.Abs(p.Ratio()-s.VariationQ)/s.VariationQ > 0.1 {
		t.Fatalf("profile ratio = %v, want ~%v", p.Ratio(), s.VariationQ)
	}
}

func TestProfilePowerLaw(t *testing.T) {
	s := QuickSetup()
	s.ProfileKind = ProfilePowerLaw
	p := s.Profile()
	if p.Lines() != s.Regions*s.LinesPerRegion {
		t.Fatal("power-law profile shape wrong")
	}
	if p.Ratio() > s.VariationQ*1.2 {
		t.Fatalf("power-law ratio %v exceeds the q=%v truncation", p.Ratio(), s.VariationQ)
	}
}

func TestProfilePanics(t *testing.T) {
	for _, mod := range []func(*Setup){
		func(s *Setup) { s.VariationQ = 0.5 },
		func(s *Setup) { s.ProfileKind = ProfileKind(99) },
	} {
		s := QuickSetup()
		mod(&s)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			s.Profile()
		}()
	}
}

func TestProfileDeterministic(t *testing.T) {
	s := QuickSetup()
	a, b := s.Profile(), s.Profile()
	for i := 0; i < a.Lines(); i++ {
		if a.LineEndurance(i) != b.LineEndurance(i) {
			t.Fatal("Profile not deterministic")
		}
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	s := QuickSetup()
	rows := Fig6(s, []int{0, 1, 10, 20, 30, 40, 50})
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Monotone non-decreasing in the spare percentage.
	for i := 1; i < len(rows); i++ {
		if rows[i].Normalized < rows[i-1].Normalized {
			t.Fatalf("lifetime decreased from %d%% to %d%% spares",
				rows[i-1].SparePercent, rows[i].SparePercent)
		}
	}
	// The unprotected baseline sits at the Equation 5 floor (~3.9% for
	// q=50; the paper reports 4.1%).
	if rows[0].Normalized < 0.03 || rows[0].Normalized > 0.06 {
		t.Fatalf("0%% spares lifetime = %v, want ~0.04", rows[0].Normalized)
	}
	// 10% spares lifts lifetime by several times (paper: 43.1%).
	if rows[2].Normalized < 0.25 {
		t.Fatalf("10%% spares lifetime = %v, want > 0.25", rows[2].Normalized)
	}
	// 50% spares approaches but does not exceed 1.
	if rows[6].Normalized < 0.7 || rows[6].Normalized > 1 {
		t.Fatalf("50%% spares lifetime = %v", rows[6].Normalized)
	}
}

func TestFig6PanicsOnBadPercent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fig6(QuickSetup(), []int{60})
}

func TestFig7WLOrderingAndTrend(t *testing.T) {
	s := midSetup()
	rows := Fig7(s, []int{0, 90}, WLNames())
	byKey := map[string]map[int]float64{}
	for _, r := range rows {
		if byKey[r.WL] == nil {
			byKey[r.WL] = map[int]float64{}
		}
		byKey[r.WL][r.SWRPercent] = r.Normalized
	}
	// Paper's Figure 7 ordering at every SWR point: the endurance-aware
	// substrates beat the uniform randomizers, WAWL on top.
	for _, pct := range []int{0, 90} {
		if !(byKey["wawl"][pct] > byKey["bwl"][pct]) {
			t.Fatalf("wawl <= bwl at %d%%", pct)
		}
		if !(byKey["bwl"][pct] > byKey["tlsr"][pct]) {
			t.Fatalf("bwl <= tlsr at %d%%", pct)
		}
		if math.Abs(byKey["tlsr"][pct]-byKey["pcm-s"][pct]) > 0.08 {
			t.Fatalf("tlsr and pcm-s diverge at %d%%: %v vs %v",
				pct, byKey["tlsr"][pct], byKey["pcm-s"][pct])
		}
	}
	// All-dynamic sparing (SWR = 0%) achieves the highest lifetime, as
	// the paper reports.
	for _, wl := range WLNames() {
		if byKey[wl][0] < byKey[wl][90] {
			t.Fatalf("%s: SWR=0%% (%v) below SWR=90%% (%v)", wl, byKey[wl][0], byKey[wl][90])
		}
	}
	// WAWL at SWR=0 lands near the paper's 72.5%.
	if byKey["wawl"][0] < 0.6 || byKey["wawl"][0] > 0.85 {
		t.Fatalf("wawl@0%% = %v, want ~0.73", byKey["wawl"][0])
	}
}

func TestFig7PanicsOnBadPercent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fig7(QuickSetup(), []int{101}, []string{"tlsr"})
}

func TestFig8GmeanOrdering(t *testing.T) {
	rows, gmeans := Fig8(midSetup())
	if len(rows) != len(WLNames())*len(SchemeNames()) {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper: Max-WE > PCD/PS > PS-worst on the geometric mean.
	if !(gmeans["max-we"] > gmeans["pcd/ps"]) {
		t.Fatalf("max-we gmean %v <= pcd/ps %v", gmeans["max-we"], gmeans["pcd/ps"])
	}
	if !(gmeans["pcd/ps"] > gmeans["ps-worst"]) {
		t.Fatalf("pcd/ps gmean %v <= ps-worst %v", gmeans["pcd/ps"], gmeans["ps-worst"])
	}
	// Every normalized lifetime is a sane fraction.
	for _, r := range rows {
		if r.Normalized <= 0 || r.Normalized >= 1 {
			t.Fatalf("row %+v out of (0,1)", r)
		}
	}
}

func TestTableUAAMatchesPaperOrdering(t *testing.T) {
	rows := TableUAA(midSetup())
	byScheme := map[string]UAARow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	// Section 5.3.1 ordering: Max-WE > PCD/PS > PS-worst > none.
	if !(byScheme["max-we"].Normalized > byScheme["pcd/ps"].Normalized &&
		byScheme["pcd/ps"].Normalized > byScheme["ps-worst"].Normalized &&
		byScheme["ps-worst"].Normalized > byScheme["none"].Normalized) {
		t.Fatalf("UAA ordering wrong: %+v", rows)
	}
	// Improvement factors in the paper's ballpark (9.5X / 7.4X / 6.9X).
	if byScheme["max-we"].ImprovementX < 6 || byScheme["max-we"].ImprovementX > 13 {
		t.Fatalf("max-we improvement = %vX, want ~9.5X", byScheme["max-we"].ImprovementX)
	}
	if byScheme["none"].ImprovementX != 1 {
		t.Fatal("baseline improvement != 1")
	}
}

func TestFig2RemappingHurtsUAA(t *testing.T) {
	s := midSetup()
	s.Psi = 4 // remap often enough that swaps occur before the weak lines die
	r := Fig2(s)
	if r.PlainAmplification != 1 {
		t.Fatalf("plain amplification = %v", r.PlainAmplification)
	}
	if r.LeveledAmplification <= 1 {
		t.Fatalf("leveled amplification = %v, want > 1", r.LeveledAmplification)
	}
	if r.LeveledLifetime > r.PlainLifetime*1.05 {
		t.Fatalf("remapping helped UAA: %v vs %v", r.LeveledLifetime, r.PlainLifetime)
	}
}

func TestAblationsShowStrategyValue(t *testing.T) {
	rows := Ablations(midSetup())
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Variant] = r.Normalized
	}
	full := byName["full"]
	// Weak-priority and weak-strong matching each contribute materially
	// under UAA; strongest-first allocation is neutral there (failures
	// arrive in endurance order, so any allocation order drains the pool
	// identically).
	if !(full > byName["random-spare-regions"]*1.2) {
		t.Fatalf("weak-priority worth <20%%: full %v vs random %v",
			full, byName["random-spare-regions"])
	}
	if !(full > byName["in-order-matching"]*1.1) {
		t.Fatalf("matching worth <10%%: full %v vs in-order %v",
			full, byName["in-order-matching"])
	}
	if byName["fifo-spare-alloc"] > full*1.02 {
		t.Fatalf("fifo alloc beat strongest-first: %v vs %v",
			byName["fifo-spare-alloc"], full)
	}
}

func TestNewLevelerNames(t *testing.T) {
	s := QuickSetup()
	p := s.Profile()
	sch := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
	for _, name := range append(WLNames(), "identity", "start-gap") {
		l := NewLeveler(name, sch, p, 16, xrand.New(1))
		if l == nil {
			t.Fatalf("leveler %q nil", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown leveler name accepted")
		}
	}()
	NewLeveler("bogus", sch, p, 16, xrand.New(1))
}

func TestNewSchemePanicsOnUnknown(t *testing.T) {
	s := QuickSetup()
	p := s.Profile()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme accepted")
		}
	}()
	newScheme("bogus", p, 1)
}
