package attack

import (
	"testing"

	"maxwe/internal/xrand"
)

// batchPair builds two identically-configured instances of every attack
// that implements BatchAttack, keyed by name.
func batchPair() map[string][2]BatchAttack {
	mk := func(seed uint64) []BatchAttack {
		return []BatchAttack{
			NewUAA(),
			NewPartialUAA(0.35),
			NewBPA(4, 17, xrand.New(seed)),
			NewTargetedSweep([]int{3, 3, 9, 41, 0}),
			NewRepeated(5),
			NewHotCold(64, 1.2, xrand.New(seed + 1)),
			NewRandomUniform(xrand.New(seed + 2)),
		}
	}
	a, b := mk(99), mk(99)
	out := map[string][2]BatchAttack{}
	for i := range a {
		out[a[i].Name()] = [2]BatchAttack{a[i], b[i]}
	}
	return out
}

// NextBatch must be observationally identical to the same number of Next
// calls: same addresses, same state afterwards — across irregular batch
// sizes and a mid-stream logical-space shrink (PCD).
func TestNextBatchMatchesNext(t *testing.T) {
	sizes := []int{1, 7, 64, 3, 1000, 2, 129}
	for name, pair := range batchPair() {
		batched, perWrite := pair[0], pair[1]
		n := 64
		total := 0
		for round, sz := range sizes {
			if round == 4 {
				n = 41 // PCD-style shrink between batches
			}
			dst := make([]int, sz)
			batched.NextBatch(n, dst)
			for i, got := range dst {
				want := perWrite.Next(n)
				if got != want {
					t.Fatalf("%s: write %d (batch %d, elem %d): batched %d != per-write %d",
						name, total+i, round, i, got, want)
				}
				if got < 0 || got >= n {
					t.Fatalf("%s: address %d out of range [0,%d)", name, got, n)
				}
			}
			total += sz
		}
		// State equality: both streams must continue identically.
		for i := 0; i < 50; i++ {
			if g, w := batched.Next(n), perWrite.Next(n); g != w {
				t.Fatalf("%s: post-batch state diverged at write %d: %d != %d", name, i, g, w)
			}
		}
	}
}

// cyclicCases builds every CyclicAttack implementation.
func cyclicCases() []CyclicAttack {
	return []CyclicAttack{
		NewUAA(),
		NewPartialUAA(0.5),
		NewPartialUAA(0.01), // limit clamps to 1
		NewTargetedSweep([]int{2, 7, 7, 100}),
		NewRepeated(3),
	}
}

// Cycle must describe the stream exactly: from any mid-stream state, one
// period of Next calls hits each slot counts[u] times and returns the
// generator to an equivalent state (the following period is identical).
func TestCycleDescribesStream(t *testing.T) {
	const n = 24
	for _, att := range cyclicCases() {
		// Desynchronize: start mid-cycle.
		for i := 0; i < 5; i++ {
			att.Next(n)
		}
		period, counts := att.Cycle(n)
		if len(counts) != n {
			t.Fatalf("%s: counts length %d != n %d", att.Name(), len(counts), n)
		}
		var sum int64
		for _, c := range counts {
			sum += c
		}
		if sum != period {
			t.Fatalf("%s: counts sum %d != period %d", att.Name(), sum, period)
		}
		first := make([]int, period)
		got := make([]int64, n)
		for i := range first {
			first[i] = att.Next(n)
			got[first[i]]++
		}
		for u := 0; u < n; u++ {
			if got[u] != counts[u] {
				t.Fatalf("%s: slot %d written %d times in one period, Cycle says %d",
					att.Name(), u, got[u], counts[u])
			}
		}
		// State-neutrality: the second period repeats the first verbatim.
		for i := range first {
			if v := att.Next(n); v != first[i] {
				t.Fatalf("%s: period not state-neutral at write %d: %d != %d",
					att.Name(), i, v, first[i])
			}
		}
	}
}
