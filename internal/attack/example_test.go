package attack_test

import (
	"fmt"

	"maxwe/internal/attack"
	"maxwe/internal/xrand"
)

// The uniform address attack: one write to each line, one by one,
// forever — no line is ever hotter than another.
func ExampleUAA() {
	a := attack.NewUAA()
	for i := 0; i < 6; i++ {
		fmt.Print(a.Next(4), " ")
	}
	fmt.Println()
	// Output:
	// 0 1 2 3 0 1
}

// The birthday-paradox attack hammers a small victim set round-robin.
func ExampleBPA() {
	a := attack.NewBPA(3, 0, xrand.New(7))
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[a.Next(10_000)] = true
	}
	fmt.Printf("%d distinct victims across 300 writes\n", len(seen))
	// Output:
	// 3 distinct victims across 300 writes
}

// A partial-coverage sweep models the Section 3.2 reality that a process
// reaches only ~95% of physical memory.
func ExamplePartialUAA() {
	a := attack.NewPartialUAA(0.5)
	max := 0
	for i := 0; i < 100; i++ {
		if v := a.Next(100); v > max {
			max = v
		}
	}
	fmt.Println("highest address touched:", max)
	// Output:
	// highest address touched: 49
}
