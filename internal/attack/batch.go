package attack

// BatchAttack is an optional extension of Attack for generators that can
// fill a whole batch of addresses in one call. NextBatch(n, dst) must be
// observationally identical to len(dst) successive Next(n) calls — same
// addresses, same internal state afterwards — so the sim engine can swap
// freely between the per-write and the batched path. The logical-space
// size n is fixed for the duration of one batch; callers simulating
// capacity shrink (PCD) must not use the batched path (internal/sim
// routes those configurations through the per-write loops).
type BatchAttack interface {
	Attack
	// NextBatch fills dst with the next len(dst) logical lines, each in
	// [0, n). It must equal len(dst) successive Next(n) calls.
	NextBatch(n int, dst []int)
}

// CyclicAttack is an optional extension of Attack for generators whose
// address stream is periodic and state-neutral: from any internal state,
// emitting one full period of writes touches a fixed multiset of slots
// and returns the generator to the same state. The fast-forward engine
// (internal/sim) uses this to skip whole quiescent periods in O(1) —
// bulk-adding counts to the device without consuming generator state.
type CyclicAttack interface {
	Attack
	// Cycle describes one period of the stream at logical-space size n:
	// the period length in writes and a length-n slice of per-slot write
	// counts summing to the period. The description must stay valid until
	// n changes or a non-Cycle method is called.
	Cycle(n int) (period int64, counts []int64)
}

// NextBatch implements BatchAttack: a uniform sweep with PCD wrap,
// element-for-element identical to Next.
func (a *UAA) NextBatch(n int, dst []int) {
	checkN(n)
	for i := range dst {
		if a.next >= n {
			a.next = 0
		}
		dst[i] = a.next
		a.next++
		if a.next == n {
			a.next = 0
		}
	}
}

// Cycle implements CyclicAttack: one period sweeps every slot exactly
// once and returns the cursor to its starting position.
func (a *UAA) Cycle(n int) (int64, []int64) {
	checkN(n)
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = 1
	}
	return int64(n), counts
}

// NextBatch implements BatchAttack with the coverage limit hoisted out of
// the per-element loop (n is fixed for the batch, so the limit is too).
func (a *PartialUAA) NextBatch(n int, dst []int) {
	checkN(n)
	limit := int(a.coverage * float64(n))
	if limit < 1 {
		limit = 1
	}
	for i := range dst {
		if a.next >= limit {
			a.next = 0
		}
		dst[i] = a.next
		a.next++
		if a.next == limit {
			a.next = 0
		}
	}
}

// Cycle implements CyclicAttack: one period sweeps the covered prefix
// exactly once; slots past the coverage limit are never written.
func (a *PartialUAA) Cycle(n int) (int64, []int64) {
	checkN(n)
	limit := int(a.coverage * float64(n))
	if limit < 1 {
		limit = 1
	}
	counts := make([]int64, n)
	for i := 0; i < limit; i++ {
		counts[i] = 1
	}
	return int64(limit), counts
}

// NextBatch implements BatchAttack. Redraw boundaries land at exactly the
// write indexes the per-write stream redraws at; between redraws the
// round-robin is emitted as a straight run with the modulo replaced by a
// wrap compare.
func (a *BPA) NextBatch(n int, dst []int) {
	checkN(n)
	i := 0
	for i < len(dst) {
		if a.victims == nil || a.spaceN != n || (a.repick > 0 && a.writes >= a.repick) {
			a.draw(n)
		}
		run := len(dst) - i
		if a.repick > 0 {
			if left := a.repick - a.writes; left < run {
				run = left
			}
		}
		v, c := a.victims, a.cursor
		for j := 0; j < run; j++ {
			dst[i+j] = v[c]
			if c++; c == len(v) {
				c = 0
			}
		}
		a.cursor = c
		a.writes += run
		i += run
	}
}

// NextBatch implements BatchAttack: the target list round-robin, folded
// into the current space per element like Next.
func (a *TargetedSweep) NextBatch(n int, dst []int) {
	checkN(n)
	for i := range dst {
		dst[i] = a.targets[a.next] % n
		a.next = (a.next + 1) % len(a.targets)
	}
}

// Cycle implements CyclicAttack: one period is one pass over the target
// list (targets folded modulo n may repeat a slot, so counts can exceed 1).
func (a *TargetedSweep) Cycle(n int) (int64, []int64) {
	checkN(n)
	counts := make([]int64, n)
	for _, t := range a.targets {
		counts[t%n]++
	}
	return int64(len(a.targets)), counts
}

// NextBatch implements BatchAttack: the same folded address repeated.
func (a *Repeated) NextBatch(n int, dst []int) {
	checkN(n)
	v := a.addr % n
	for i := range dst {
		dst[i] = v
	}
}

// Cycle implements CyclicAttack: a one-write period on the folded target.
func (a *Repeated) Cycle(n int) (int64, []int64) {
	checkN(n)
	counts := make([]int64, n)
	counts[a.addr%n] = 1
	return 1, counts
}

// NextBatch implements BatchAttack: per-element Zipf draws in stream
// order, identical to repeated Next calls.
func (a *HotCold) NextBatch(n int, dst []int) {
	checkN(n)
	for i := range dst {
		v := a.perm[a.zipf.Draw(a.src)]
		if v >= n {
			v %= n
		}
		dst[i] = v
	}
}

// NextBatch implements BatchAttack: per-element uniform draws in stream
// order, identical to repeated Next calls.
func (a *RandomUniform) NextBatch(n int, dst []int) {
	checkN(n)
	for i := range dst {
		dst[i] = a.src.Intn(n)
	}
}
