package attack

import (
	"testing"

	"maxwe/internal/xrand"
)

func TestUAASequentialAndUniform(t *testing.T) {
	a := NewUAA()
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			if got := a.Next(10); got != i {
				t.Fatalf("round %d: Next = %d, want %d", round, got, i)
			}
		}
	}
}

func TestUAAShrinkingSpace(t *testing.T) {
	a := NewUAA()
	for i := 0; i < 7; i++ {
		a.Next(10)
	}
	// Space shrinks to 5; the cursor (7) must wrap, not panic.
	if got := a.Next(5); got != 0 {
		t.Fatalf("after shrink Next = %d, want 0", got)
	}
	if got := a.Next(5); got != 1 {
		t.Fatalf("Next = %d, want 1", got)
	}
}

func TestUAACoverageIsExact(t *testing.T) {
	a := NewUAA()
	counts := make([]int, 16)
	for i := 0; i < 16*5; i++ {
		counts[a.Next(16)]++
	}
	for l, c := range counts {
		if c != 5 {
			t.Fatalf("line %d written %d times, want exactly 5", l, c)
		}
	}
}

func TestPartialUAAStaysInCoverage(t *testing.T) {
	a := NewPartialUAA(0.5)
	if a.Coverage() != 0.5 {
		t.Fatal("Coverage accessor wrong")
	}
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		seen[a.Next(100)]++
	}
	for addr, c := range seen {
		if addr >= 50 {
			t.Fatalf("address %d outside the 50%% coverage", addr)
		}
		if c != 20 {
			t.Fatalf("address %d written %d times, want uniform 20", addr, c)
		}
	}
	if len(seen) != 50 {
		t.Fatalf("covered %d addresses, want 50", len(seen))
	}
}

func TestPartialUAAFullCoverageMatchesUAA(t *testing.T) {
	p, u := NewPartialUAA(1.0), NewUAA()
	for i := 0; i < 50; i++ {
		if p.Next(16) != u.Next(16) {
			t.Fatalf("full-coverage PartialUAA diverged from UAA at %d", i)
		}
	}
}

func TestPartialUAATinySpace(t *testing.T) {
	a := NewPartialUAA(0.01)
	// Coverage rounds down to zero lines; at least one line must still
	// be attacked.
	for i := 0; i < 10; i++ {
		if a.Next(10) != 0 {
			t.Fatal("tiny coverage escaped line 0")
		}
	}
}

func TestPartialUAAPanics(t *testing.T) {
	for _, c := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("coverage %v accepted", c)
				}
			}()
			NewPartialUAA(c)
		}()
	}
}

func TestBPAHammersSmallSet(t *testing.T) {
	a := NewBPA(4, 0, xrand.New(3))
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		seen[a.Next(1000)]++
	}
	if len(seen) != 4 {
		t.Fatalf("BPA touched %d addresses, want 4", len(seen))
	}
	for addr, c := range seen {
		if c != 1000 {
			t.Fatalf("victim %d written %d times, want 1000 (round-robin)", addr, c)
		}
	}
}

func TestBPARepick(t *testing.T) {
	a := NewBPA(4, 100, xrand.New(4))
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		seen[a.Next(100000)] = true
	}
	// 100 repicks of 4 victims over a huge space: far more than 4
	// distinct addresses.
	if len(seen) < 50 {
		t.Fatalf("repick produced only %d distinct victims", len(seen))
	}
}

func TestBPASetLargerThanSpace(t *testing.T) {
	a := NewBPA(64, 0, xrand.New(5))
	for i := 0; i < 100; i++ {
		v := a.Next(8)
		if v < 0 || v >= 8 {
			t.Fatalf("victim %d out of shrunken space", v)
		}
	}
}

func TestBPADeterministic(t *testing.T) {
	a := NewBPA(8, 50, xrand.New(77))
	b := NewBPA(8, 50, xrand.New(77))
	for i := 0; i < 500; i++ {
		if a.Next(1000) != b.Next(1000) {
			t.Fatalf("BPA streams diverged at %d", i)
		}
	}
}

func TestBPAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBPA(0, 0, xrand.New(1)) },
		func() { NewBPA(1, -1, xrand.New(1)) },
		func() { NewBPA(1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTargetedSweep(t *testing.T) {
	a := NewTargetedSweep([]int{5, 9, 2})
	got := []int{a.Next(100), a.Next(100), a.Next(100), a.Next(100)}
	want := []int{5, 9, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	// Shrunken space folds targets.
	if v := a.Next(4); v != 9%4 {
		t.Fatalf("folded target = %d, want 1", v)
	}
}

func TestTargetedSweepCopiesInput(t *testing.T) {
	targets := []int{1, 2}
	a := NewTargetedSweep(targets)
	targets[0] = 99
	if a.Next(100) != 1 {
		t.Fatal("NewTargetedSweep aliased its input")
	}
}

func TestTargetedSweepPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTargetedSweep(nil) },
		func() { NewTargetedSweep([]int{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRepeated(t *testing.T) {
	a := NewRepeated(42)
	for i := 0; i < 10; i++ {
		if a.Next(100) != 42 {
			t.Fatal("Repeated wandered")
		}
	}
	// Shrunken space folds the address.
	if a.Next(10) != 2 {
		t.Fatalf("folded address = %d, want 2", a.Next(10))
	}
}

func TestRepeatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRepeated(-1)
}

func TestHotColdSkew(t *testing.T) {
	a := NewHotCold(1000, 1.2, xrand.New(6))
	counts := map[int]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[a.Next(1000)]++
	}
	// The hottest address must take far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/100 {
		t.Fatalf("hottest line got %d writes, want skew over uniform %d", max, draws/1000)
	}
}

func TestHotColdInRange(t *testing.T) {
	a := NewHotCold(100, 1.0, xrand.New(7))
	for i := 0; i < 1000; i++ {
		if v := a.Next(50); v < 0 || v >= 50 {
			t.Fatalf("HotCold escaped the shrunken space: %d", v)
		}
	}
}

func TestRandomUniformInRange(t *testing.T) {
	a := NewRandomUniform(xrand.New(8))
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[a.Next(8)]++
	}
	for l, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("line %d count %d far from uniform", l, c)
		}
	}
}

func TestNextPanicsOnBadSpace(t *testing.T) {
	attacks := []Attack{
		NewUAA(),
		NewBPA(2, 0, xrand.New(1)),
		NewRepeated(0),
		NewHotCold(10, 1, xrand.New(1)),
		NewRandomUniform(xrand.New(1)),
	}
	for _, a := range attacks {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s.Next(0) did not panic", a.Name())
				}
			}()
			a.Next(0)
		}()
	}
}

func TestNames(t *testing.T) {
	if NewUAA().Name() != "uaa" ||
		NewBPA(1, 0, xrand.New(1)).Name() != "bpa" ||
		NewRepeated(0).Name() != "repeated" ||
		NewHotCold(2, 1, xrand.New(1)).Name() != "hotcold" ||
		NewRandomUniform(xrand.New(1)).Name() != "random" {
		t.Fatal("attack names wrong")
	}
}
