// Package attack implements the adversarial and benign write-address
// generators of the paper's evaluation:
//
//   - UAA — the Uniform Address Attack of Section 3: one write to each
//     line, one by one, repeated forever. It defeats hot/cold remapping
//     because no line is ever hotter than another.
//   - BPA — the Birthday Paradox Attack (Seong et al., ISCA'10): the
//     attacker hammers a small set of addresses, probing the randomized
//     remapping for collisions. At lifetime granularity its effect is a
//     concentrated hot set that wear leveling keeps relocating.
//   - Repeated — the classic single-address hammer.
//   - HotCold — a benign Zipf workload exhibiting the locality that
//     cold/hot remapping schemes were designed for (used as the control).
//   - RandomUniform — uniformly random writes over the whole space.
//
// An Attack is a stream: Next(n) returns the next logical line to write
// given the current logical-space size n (the size can shrink under
// Physical Capacity Degradation, so it is an argument, not construction
// state).
package attack

import (
	"fmt"

	"maxwe/internal/xrand"
)

// Attack generates the logical write-address stream.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// Next returns the next logical line to write, in [0, n). n is the
	// current logical-space size and must be positive.
	Next(n int) int
}

// UAA is the Uniform Address Attack: sequential, uniform, endless.
type UAA struct {
	next int
}

// NewUAA returns a fresh uniform address attack starting at line 0.
func NewUAA() *UAA { return &UAA{} }

// Name implements Attack.
func (a *UAA) Name() string { return "uaa" }

// Next implements Attack.
func (a *UAA) Next(n int) int {
	checkN(n)
	if a.next >= n {
		// The space shrank (PCD); wrap to keep the sweep uniform.
		a.next = 0
	}
	v := a.next
	a.next++
	if a.next == n {
		a.next = 0
	}
	return v
}

// PartialUAA is the Section 3.2 implementation model of UAA: a malicious
// process can mmap/malloc only the user-reachable share of physical
// memory (the paper measures the kernel holding <5% on a 4 GB Linux
// machine, with swappiness=0 pinning the rest). The attack sweeps the
// first coverage fraction of the logical space uniformly and never
// touches the remainder.
type PartialUAA struct {
	coverage float64
	next     int
}

// NewPartialUAA builds a uniform sweep over the first coverage fraction
// of the address space, coverage in (0, 1].
func NewPartialUAA(coverage float64) *PartialUAA {
	if coverage <= 0 || coverage > 1 {
		panic("attack: NewPartialUAA needs coverage in (0, 1]")
	}
	return &PartialUAA{coverage: coverage}
}

// Coverage returns the attacked fraction of the address space.
func (a *PartialUAA) Coverage() float64 { return a.coverage }

// Name implements Attack.
func (a *PartialUAA) Name() string { return "partial-uaa" }

// Next implements Attack.
func (a *PartialUAA) Next(n int) int {
	checkN(n)
	limit := int(a.coverage * float64(n))
	if limit < 1 {
		limit = 1
	}
	if a.next >= limit {
		a.next = 0
	}
	v := a.next
	a.next++
	if a.next == limit {
		a.next = 0
	}
	return v
}

// BPA hammers a fixed-size set of victim addresses round-robin,
// re-drawing the set every Repick writes to model the attacker probing
// the randomized mapping for new collisions.
type BPA struct {
	setSize int
	repick  int
	victims []int
	cursor  int
	writes  int
	src     *xrand.Source
	spaceN  int
}

// NewBPA builds a birthday-paradox attack with setSize victim addresses,
// re-drawn every repick writes (0 disables re-drawing).
func NewBPA(setSize, repick int, src *xrand.Source) *BPA {
	if setSize < 1 {
		panic("attack: NewBPA needs setSize >= 1")
	}
	if repick < 0 {
		panic("attack: NewBPA needs repick >= 0")
	}
	if src == nil {
		panic("attack: NewBPA needs a randomness source")
	}
	return &BPA{setSize: setSize, repick: repick, src: src}
}

// DefaultBPA returns the configuration used by the benchmarks: 16 victim
// lines re-drawn every 100k writes.
func DefaultBPA(src *xrand.Source) *BPA { return NewBPA(16, 100_000, src) }

// Name implements Attack.
func (a *BPA) Name() string { return "bpa" }

// Next implements Attack.
func (a *BPA) Next(n int) int {
	checkN(n)
	if a.victims == nil || a.spaceN != n || (a.repick > 0 && a.writes >= a.repick) {
		a.draw(n)
	}
	v := a.victims[a.cursor]
	a.cursor = (a.cursor + 1) % len(a.victims)
	a.writes++
	return v
}

func (a *BPA) draw(n int) {
	k := a.setSize
	if k > n {
		k = n
	}
	a.victims = a.victims[:0]
	seen := map[int]bool{}
	for len(a.victims) < k {
		v := a.src.Intn(n)
		if !seen[v] {
			seen[v] = true
			a.victims = append(a.victims, v)
		}
	}
	a.cursor = 0
	a.writes = 0
	a.spaceN = n
}

// TargetedSweep writes a fixed list of victim addresses round-robin — the
// informed adversary that knows which lines are weak (the paper's
// attacker explicitly does not; this models the stronger threat as an
// extension).
type TargetedSweep struct {
	targets []int
	next    int
}

// NewTargetedSweep builds a sweep over the given victim addresses. The
// list is copied and must be non-empty with non-negative entries.
func NewTargetedSweep(targets []int) *TargetedSweep {
	if len(targets) == 0 {
		panic("attack: NewTargetedSweep needs at least one target")
	}
	ts := &TargetedSweep{targets: append([]int(nil), targets...)}
	for _, t := range ts.targets {
		if t < 0 {
			panic("attack: NewTargetedSweep needs non-negative targets")
		}
	}
	return ts
}

// Name implements Attack.
func (a *TargetedSweep) Name() string { return "targeted-sweep" }

// Next implements Attack.
func (a *TargetedSweep) Next(n int) int {
	checkN(n)
	v := a.targets[a.next] % n
	a.next = (a.next + 1) % len(a.targets)
	return v
}

// Repeated hammers one fixed address.
type Repeated struct {
	addr int
}

// NewRepeated builds a single-address hammer on addr.
func NewRepeated(addr int) *Repeated {
	if addr < 0 {
		panic("attack: NewRepeated needs a non-negative address")
	}
	return &Repeated{addr: addr}
}

// Name implements Attack.
func (a *Repeated) Name() string { return "repeated" }

// Next implements Attack.
func (a *Repeated) Next(n int) int {
	checkN(n)
	return a.addr % n
}

// HotCold is a benign Zipf-distributed workload over a shuffled rank
// assignment: a small set of hot lines receives most writes.
type HotCold struct {
	zipf *xrand.Zipf
	perm []int
	src  *xrand.Source
}

// NewHotCold builds a Zipf(s) workload over n logical lines. The rank->
// address assignment is a random permutation so hot lines are scattered.
func NewHotCold(n int, s float64, src *xrand.Source) *HotCold {
	if n < 1 {
		panic("attack: NewHotCold needs n >= 1")
	}
	if src == nil {
		panic("attack: NewHotCold needs a randomness source")
	}
	return &HotCold{zipf: xrand.NewZipf(n, s), perm: src.Perm(n), src: src}
}

// Name implements Attack.
func (a *HotCold) Name() string { return "hotcold" }

// Next implements Attack.
func (a *HotCold) Next(n int) int {
	checkN(n)
	v := a.perm[a.zipf.Draw(a.src)]
	if v >= n {
		// Space shrank below the built size; fold uniformly.
		v %= n
	}
	return v
}

// RandomUniform writes uniformly random addresses.
type RandomUniform struct {
	src *xrand.Source
}

// NewRandomUniform builds a uniformly random write stream.
func NewRandomUniform(src *xrand.Source) *RandomUniform {
	if src == nil {
		panic("attack: NewRandomUniform needs a randomness source")
	}
	return &RandomUniform{src: src}
}

// Name implements Attack.
func (a *RandomUniform) Name() string { return "random" }

// Next implements Attack.
func (a *RandomUniform) Next(n int) int {
	checkN(n)
	return a.src.Intn(n)
}

func checkN(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("attack: logical space size %d must be positive", n))
	}
}
