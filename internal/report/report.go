// Package report renders experiment results as fixed-width text tables,
// CSV, and ASCII bar charts. The figure benchmarks and the cmd/figures
// driver use it to print the same rows/series the paper's tables and
// figures report.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a header and renders them aligned.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	if len(headers) == 0 {
		panic("report: NewTable needs at least one column")
	}
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v. The cell count must
// match the header count.
func (t *Table) AddRow(cells ...interface{}) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns",
			len(cells), len(t.headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table. It always returns a nil error from the
// underlying writes being checked; the (int64, error) shape satisfies
// io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int64
	emit := func(format string, args ...interface{}) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if t.title != "" {
		if err := emit("%s\n", t.title); err != nil {
			return total, err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return emit("  %s\n", strings.Join(parts, "  "))
	}
	if err := line(t.headers); err != nil {
		return total, err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// JSON renders the table as a JSON array of objects keyed by the column
// headers, with a trailing newline. Cell values stay strings (they were
// formatted on AddRow); consumers that need numbers parse them.
func (t *Table) JSON() string {
	rows := make([]map[string]string, 0, len(t.rows))
	for _, row := range t.rows {
		m := make(map[string]string, len(t.headers))
		for i, h := range t.headers {
			m[h] = row[i]
		}
		rows = append(rows, m)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		// Maps of strings always marshal; this is unreachable.
		panic(fmt.Errorf("report: marshaling rows: %w", err))
	}
	return string(out) + "\n"
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// LinePlot renders one or more y series over a shared x axis as an ASCII
// grid, height rows tall. Series are drawn with distinct marks in the
// order given ('*', 'o', 'x', '+', then letters); later series overdraw
// earlier ones on collisions. All series must have len(xLabels) points
// and non-negative values.
func LinePlot(title string, xLabels []string, series map[string][]float64, height int) string {
	if height < 2 {
		panic("report: LinePlot needs height >= 2")
	}
	if len(xLabels) == 0 || len(series) == 0 {
		panic("report: LinePlot needs data")
	}
	// Stable series order: sorted by name.
	names := make([]string, 0, len(series))
	maxV := 0.0
	for name, ys := range series {
		if len(ys) != len(xLabels) {
			panic(fmt.Sprintf("report: series %q has %d points, want %d", name, len(ys), len(xLabels)))
		}
		for _, y := range ys {
			if y < 0 {
				panic("report: LinePlot values must be non-negative")
			}
			if y > maxV {
				maxV = y
			}
		}
		names = append(names, name)
	}
	sortStrings(names)
	marks := []byte{'*', 'o', 'x', '+', 'a', 'b', 'c', 'd'}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, len(xLabels))
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, name := range names {
		mark := marks[si%len(marks)]
		for c, y := range series[name] {
			row := height - 1
			if maxV > 0 {
				row = height - 1 - int(y/maxV*float64(height-1)+0.5)
			}
			grid[row][c] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, row := range grid {
		yVal := 0.0
		if height > 1 {
			yVal = maxV * float64(height-1-r) / float64(height-1)
		}
		fmt.Fprintf(&b, "  %8.3g |%s|\n", yVal, string(row))
	}
	b.WriteString("           ")
	for range xLabels {
		b.WriteByte('-')
	}
	b.WriteByte('\n')
	b.WriteString("  x: ")
	b.WriteString(strings.Join(xLabels, " "))
	b.WriteByte('\n')
	for si, name := range names {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], name)
	}
	return b.String()
}

// sortStrings is a dependency-free insertion sort (the series count is
// tiny).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// BarChart renders labeled values as horizontal ASCII bars scaled to
// maxWidth characters, for eyeballing figure shapes in terminal output.
func BarChart(title string, labels []string, values []float64, maxWidth int) string {
	if len(labels) != len(values) {
		panic("report: BarChart labels and values length mismatch")
	}
	if maxWidth < 1 {
		panic("report: BarChart needs positive width")
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v < 0 {
			panic("report: BarChart values must be non-negative")
		}
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(&b, "  %s  %s %.4g\n", pad(labels[i], maxL), strings.Repeat("#", n), v)
	}
	return b.String()
}
