package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Lifetime", "scheme", "normalized")
	tb.AddRow("max-we", 0.431)
	tb.AddRow("pcd", 0.306)
	out := tb.String()
	if !strings.Contains(out, "Lifetime") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "scheme") || !strings.Contains(out, "normalized") {
		t.Fatal("headers missing")
	}
	if !strings.Contains(out, "max-we") || !strings.Contains(out, "0.431") {
		t.Fatalf("row missing:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	// Alignment: every line has the same position for the second column
	// start... coarse check: rule line present.
	if !strings.Contains(out, "------") {
		t.Fatal("rule missing")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title rendered as blank line")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.String(), "0.1235") {
		t.Fatalf("float not compacted: %s", tb.String())
	}
}

func TestTablePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTable("x") },
		func() { NewTable("x", "a", "b").AddRow(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", 2)
	tb.AddRow(`with"quote`, 3)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma",2` {
		t.Fatalf("comma row = %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Fatalf("quote row = %q", lines[3])
	}
}

func TestJSON(t *testing.T) {
	tb := NewTable("t", "scheme", "value")
	tb.AddRow("max-we", 0.43)
	tb.AddRow("pcd", 0.31)
	got := tb.JSON()
	if !strings.Contains(got, `"scheme": "max-we"`) {
		t.Fatalf("JSON missing row: %s", got)
	}
	if !strings.Contains(got, `"value": "0.31"`) {
		t.Fatalf("JSON missing value: %s", got)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Fatal("JSON missing trailing newline")
	}
	// Empty table marshals to an empty array.
	empty := NewTable("", "a")
	if strings.TrimSpace(empty.JSON()) != "[]" {
		t.Fatalf("empty JSON = %q", empty.JSON())
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "chart") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines", len(lines))
	}
	// Max value gets the full width; half value gets half.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
}

func TestLinePlot(t *testing.T) {
	out := LinePlot("plot", []string{"0", "1", "2"}, map[string][]float64{
		"up":   {0, 5, 10},
		"flat": {5, 5, 5},
	}, 5)
	if !strings.Contains(out, "plot") {
		t.Fatal("title missing")
	}
	// Legend lists both series with distinct marks ('flat' sorts first).
	if !strings.Contains(out, "* = flat") || !strings.Contains(out, "o = up") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	// The rising series tops the grid at the last column.
	lines := strings.Split(out, "\n")
	topRow := lines[1]
	if !strings.Contains(topRow, "o") {
		t.Fatalf("max point missing from top row: %q", topRow)
	}
	// X labels present.
	if !strings.Contains(out, "x: 0 1 2") {
		t.Fatal("x axis missing")
	}
}

func TestLinePlotAllZero(t *testing.T) {
	out := LinePlot("", []string{"a"}, map[string][]float64{"z": {0}}, 3)
	if !strings.Contains(out, "*") {
		t.Fatal("zero series not drawn on the baseline")
	}
}

func TestLinePlotPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LinePlot("", []string{"a"}, map[string][]float64{"s": {1}}, 1) },
		func() { LinePlot("", nil, map[string][]float64{"s": {}}, 3) },
		func() { LinePlot("", []string{"a"}, map[string][]float64{}, 3) },
		func() { LinePlot("", []string{"a"}, map[string][]float64{"s": {1, 2}}, 3) },
		func() { LinePlot("", []string{"a"}, map[string][]float64{"s": {-1}}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", []string{"z"}, []float64{0}, 5)
	if strings.Contains(out, "#") {
		t.Fatal("zero value drew a bar")
	}
}

func TestBarChartPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BarChart("", []string{"a"}, []float64{1, 2}, 5) },
		func() { BarChart("", []string{"a"}, []float64{1}, 0) },
		func() { BarChart("", []string{"a"}, []float64{-1}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
