// Package device models the physical NVM bank at line granularity: every
// line carries a finite write budget drawn from an endurance profile, a
// write counter, and a worn-out flag. The device is deliberately passive —
// it knows nothing about wear leveling, sparing or attacks; it just counts
// writes and reports wear-out transitions. All lifetime machinery composes
// on top of it (internal/sim).
//
// The wear state itself lives in a struct-of-arrays Core (core.go) so hot
// simulation loops can index the flat slices directly; Device is the
// bounds-checked view everyone else uses.
package device

import (
	"fmt"

	"maxwe/internal/endurance"
)

// Device is a line-granularity NVM bank. Construct with New.
type Device struct {
	profile *endurance.Profile
	core    Core
}

// New builds a device over the given endurance profile. The profile is
// retained by reference (it is read-only here).
func New(p *endurance.Profile) *Device {
	return &Device{profile: p, core: newCore(p)}
}

// Core returns the struct-of-arrays wear state backing this device. Hot
// loops that index it directly must preserve the invariants documented on
// Core; all Device accessors observe mutations made through the core.
func (d *Device) Core() *Core { return &d.core }

// Profile returns the endurance profile the device was built from.
func (d *Device) Profile() *endurance.Profile { return d.profile }

// Lines returns the number of physical lines.
func (d *Device) Lines() int { return d.profile.Lines() }

// Regions returns the number of regions.
func (d *Device) Regions() int { return d.profile.Regions() }

// LinesPerRegion returns the region size in lines.
func (d *Device) LinesPerRegion() int { return d.profile.LinesPerRegion() }

// RegionOf returns the region that contains physical line i.
func (d *Device) RegionOf(line int) int { return d.profile.RegionOf(line) }

func (d *Device) check(line int) {
	if line < 0 || line >= len(d.core.Writes) {
		panic(fmt.Sprintf("device: line %d out of range [0,%d)", line, len(d.core.Writes)))
	}
}

// Write performs one physical write to line. It returns true exactly when
// this write exhausts the line's budget (the wear-out transition); the
// write itself still completes, matching the paper's model in which the
// wear-out failure triggers the replacement procedure for subsequent
// accesses. Writes to an already-worn line are counted but return false.
func (d *Device) Write(line int) (wornNow bool) {
	d.check(line)
	return d.core.Write(line)
}

// ForceWear marks line worn immediately, regardless of how much of its
// write budget remains — the stuck-at hard fault of the fault-injection
// layer (internal/faultinject). No write is counted. It returns true when
// this call performed the wear-out transition and false when the line was
// already worn.
func (d *Device) ForceWear(line int) bool {
	d.check(line)
	return d.core.ForceWear(line)
}

// Worn reports whether line has exhausted its budget.
func (d *Device) Worn(line int) bool {
	d.check(line)
	return d.core.Worn[line]
}

// Remaining returns the writes line can still absorb before wearing out
// (zero for worn lines).
func (d *Device) Remaining(line int) int64 {
	d.check(line)
	return d.core.Remaining(line)
}

// Writes returns the number of physical writes line has absorbed.
func (d *Device) Writes(line int) int64 {
	d.check(line)
	return d.core.Writes[line]
}

// WornCount returns how many lines have worn out.
func (d *Device) WornCount() int { return d.core.WornLines }

// TotalWrites returns the number of physical writes performed on the
// device, including wear-leveling and replacement amplification. Dividing
// user writes by this gives the inverse write-amplification factor.
func (d *Device) TotalWrites() int64 { return d.core.Total }

// Endurance returns the write budget of line.
func (d *Device) Endurance(line int) int64 {
	d.check(line)
	return d.core.Endurance[line]
}

// IdealLifetime returns the sum of all line budgets — the paper's
// normalization denominator.
func (d *Device) IdealLifetime() float64 { return d.profile.Sum() }

// WearFraction returns the fraction of total budget consumed so far:
// Σ min(writes, endurance) / Σ endurance.
func (d *Device) WearFraction() float64 {
	used := 0.0
	for i, w := range d.core.Writes {
		e := d.core.Endurance[i]
		if w > e {
			w = e
		}
		used += float64(w)
	}
	return used / d.profile.Sum()
}

// Reset clears all wear state, returning the device to factory condition
// with the same profile. Simulation sweeps reuse a device across
// configurations to avoid resampling profiles.
func (d *Device) Reset() { d.core.Reset() }

// WearHistogram buckets the per-line consumed-fraction of budget into
// `buckets` equal-width bins over [0, 1]; worn lines land in the last bin
// regardless of consumed fraction, so a force-worn line (whose budget was
// killed, not spent) is counted as dead rather than as lightly used.
// Useful for visualizing how evenly a scheme spreads wear.
func (d *Device) WearHistogram(buckets int) []int {
	if buckets <= 0 {
		panic("device: WearHistogram needs positive buckets")
	}
	h := make([]int, buckets)
	for i, w := range d.core.Writes {
		if d.core.Worn[i] {
			h[buckets-1]++
			continue
		}
		frac := float64(w) / float64(d.core.Endurance[i])
		if frac >= 1 {
			h[buckets-1]++
			continue
		}
		h[int(frac*float64(buckets))]++
	}
	return h
}
