// Package device models the physical NVM bank at line granularity: every
// line carries a finite write budget drawn from an endurance profile, a
// write counter, and a worn-out flag. The device is deliberately passive —
// it knows nothing about wear leveling, sparing or attacks; it just counts
// writes and reports wear-out transitions. All lifetime machinery composes
// on top of it (internal/sim).
package device

import (
	"fmt"

	"maxwe/internal/endurance"
)

// Device is a line-granularity NVM bank. Construct with New.
type Device struct {
	profile *endurance.Profile
	writes  []int64
	worn    []bool

	wornCount   int
	totalWrites int64
}

// New builds a device over the given endurance profile. The profile is
// retained by reference (it is read-only here).
func New(p *endurance.Profile) *Device {
	return &Device{
		profile: p,
		writes:  make([]int64, p.Lines()),
		worn:    make([]bool, p.Lines()),
	}
}

// Profile returns the endurance profile the device was built from.
func (d *Device) Profile() *endurance.Profile { return d.profile }

// Lines returns the number of physical lines.
func (d *Device) Lines() int { return d.profile.Lines() }

// Regions returns the number of regions.
func (d *Device) Regions() int { return d.profile.Regions() }

// LinesPerRegion returns the region size in lines.
func (d *Device) LinesPerRegion() int { return d.profile.LinesPerRegion() }

// RegionOf returns the region that contains physical line i.
func (d *Device) RegionOf(line int) int { return d.profile.RegionOf(line) }

func (d *Device) check(line int) {
	if line < 0 || line >= len(d.writes) {
		panic(fmt.Sprintf("device: line %d out of range [0,%d)", line, len(d.writes)))
	}
}

// Write performs one physical write to line. It returns true exactly when
// this write exhausts the line's budget (the wear-out transition); the
// write itself still completes, matching the paper's model in which the
// wear-out failure triggers the replacement procedure for subsequent
// accesses. Writes to an already-worn line are counted but return false.
func (d *Device) Write(line int) (wornNow bool) {
	d.check(line)
	d.writes[line]++
	d.totalWrites++
	if !d.worn[line] && d.writes[line] >= d.profile.LineEndurance(line) {
		d.worn[line] = true
		d.wornCount++
		return true
	}
	return false
}

// ForceWear marks line worn immediately, regardless of how much of its
// write budget remains — the stuck-at hard fault of the fault-injection
// layer (internal/faultinject). No write is counted. It returns true when
// this call performed the wear-out transition and false when the line was
// already worn.
func (d *Device) ForceWear(line int) bool {
	d.check(line)
	if d.worn[line] {
		return false
	}
	d.worn[line] = true
	d.wornCount++
	return true
}

// Worn reports whether line has exhausted its budget.
func (d *Device) Worn(line int) bool {
	d.check(line)
	return d.worn[line]
}

// Remaining returns the writes line can still absorb before wearing out
// (zero for worn lines).
func (d *Device) Remaining(line int) int64 {
	d.check(line)
	if d.worn[line] {
		// Covers force-worn lines, whose budget was killed, not spent.
		return 0
	}
	r := d.profile.LineEndurance(line) - d.writes[line]
	if r < 0 {
		return 0
	}
	return r
}

// Writes returns the number of physical writes line has absorbed.
func (d *Device) Writes(line int) int64 {
	d.check(line)
	return d.writes[line]
}

// WornCount returns how many lines have worn out.
func (d *Device) WornCount() int { return d.wornCount }

// TotalWrites returns the number of physical writes performed on the
// device, including wear-leveling and replacement amplification. Dividing
// user writes by this gives the inverse write-amplification factor.
func (d *Device) TotalWrites() int64 { return d.totalWrites }

// Endurance returns the write budget of line.
func (d *Device) Endurance(line int) int64 {
	d.check(line)
	return d.profile.LineEndurance(line)
}

// IdealLifetime returns the sum of all line budgets — the paper's
// normalization denominator.
func (d *Device) IdealLifetime() float64 { return d.profile.Sum() }

// WearFraction returns the fraction of total budget consumed so far:
// Σ min(writes, endurance) / Σ endurance.
func (d *Device) WearFraction() float64 {
	used := 0.0
	for i, w := range d.writes {
		e := d.profile.LineEndurance(i)
		if w > e {
			w = e
		}
		used += float64(w)
	}
	return used / d.profile.Sum()
}

// Reset clears all wear state, returning the device to factory condition
// with the same profile. Simulation sweeps reuse a device across
// configurations to avoid resampling profiles.
func (d *Device) Reset() {
	for i := range d.writes {
		d.writes[i] = 0
		d.worn[i] = false
	}
	d.wornCount = 0
	d.totalWrites = 0
}

// WearHistogram buckets the per-line consumed-fraction of budget into
// `buckets` equal-width bins over [0, 1]; worn lines land in the last bin.
// Useful for visualizing how evenly a scheme spreads wear.
func (d *Device) WearHistogram(buckets int) []int {
	if buckets <= 0 {
		panic("device: WearHistogram needs positive buckets")
	}
	h := make([]int, buckets)
	for i, w := range d.writes {
		frac := float64(w) / float64(d.profile.LineEndurance(i))
		if frac >= 1 {
			h[buckets-1]++
			continue
		}
		h[int(frac*float64(buckets))]++
	}
	return h
}
