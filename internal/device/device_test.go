package device

import (
	"testing"
	"testing/quick"

	"maxwe/internal/endurance"
	"maxwe/internal/xrand"
)

func newTestDevice() *Device {
	return New(endurance.Uniform(4, 4, 3)) // 16 lines, budget 3 each
}

func TestWriteCountsAndWearOut(t *testing.T) {
	d := newTestDevice()
	if d.Write(0) {
		t.Fatal("first write reported wear-out")
	}
	if d.Write(0) {
		t.Fatal("second write reported wear-out")
	}
	if !d.Write(0) {
		t.Fatal("third write did not report wear-out at budget 3")
	}
	if !d.Worn(0) {
		t.Fatal("line 0 not marked worn")
	}
	if d.WornCount() != 1 {
		t.Fatalf("WornCount = %d", d.WornCount())
	}
	// Writing a worn line counts but does not re-transition.
	if d.Write(0) {
		t.Fatal("worn line re-reported wear-out")
	}
	if d.Writes(0) != 4 {
		t.Fatalf("Writes(0) = %d, want 4", d.Writes(0))
	}
}

func TestRemaining(t *testing.T) {
	d := newTestDevice()
	if d.Remaining(5) != 3 {
		t.Fatalf("fresh Remaining = %d", d.Remaining(5))
	}
	d.Write(5)
	if d.Remaining(5) != 2 {
		t.Fatalf("Remaining after 1 write = %d", d.Remaining(5))
	}
	d.Write(5)
	d.Write(5)
	d.Write(5) // past budget
	if d.Remaining(5) != 0 {
		t.Fatalf("Remaining for worn line = %d", d.Remaining(5))
	}
}

func TestTotalWrites(t *testing.T) {
	d := newTestDevice()
	for i := 0; i < 10; i++ {
		d.Write(i % d.Lines())
	}
	if d.TotalWrites() != 10 {
		t.Fatalf("TotalWrites = %d", d.TotalWrites())
	}
}

func TestGeometryAccessors(t *testing.T) {
	d := New(endurance.Uniform(8, 32, 5))
	if d.Lines() != 256 || d.Regions() != 8 || d.LinesPerRegion() != 32 {
		t.Fatalf("geometry: %d/%d/%d", d.Lines(), d.Regions(), d.LinesPerRegion())
	}
	if d.RegionOf(0) != 0 || d.RegionOf(31) != 0 || d.RegionOf(32) != 1 || d.RegionOf(255) != 7 {
		t.Fatal("RegionOf mapping wrong")
	}
	if d.Endurance(0) != 5 {
		t.Fatalf("Endurance(0) = %d", d.Endurance(0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDevice()
	for _, f := range []func(){
		func() { d.Write(-1) },
		func() { d.Write(16) },
		func() { d.Worn(99) },
		func() { d.Remaining(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestIdealLifetime(t *testing.T) {
	d := New(endurance.Uniform(2, 2, 100))
	if d.IdealLifetime() != 400 {
		t.Fatalf("IdealLifetime = %v", d.IdealLifetime())
	}
}

func TestWearFraction(t *testing.T) {
	d := New(endurance.Uniform(1, 4, 10)) // 4 lines x 10
	if d.WearFraction() != 0 {
		t.Fatal("fresh device has nonzero wear")
	}
	for i := 0; i < 10; i++ {
		d.Write(0)
	}
	if got := d.WearFraction(); got != 0.25 {
		t.Fatalf("WearFraction = %v, want 0.25", got)
	}
	// Over-writing a worn line must not push fraction past its budget.
	d.Write(0)
	if got := d.WearFraction(); got != 0.25 {
		t.Fatalf("WearFraction after overdrive = %v, want 0.25", got)
	}
}

func TestReset(t *testing.T) {
	d := newTestDevice()
	for i := 0; i < 5; i++ {
		d.Write(1)
	}
	d.Reset()
	if d.TotalWrites() != 0 || d.WornCount() != 0 || d.Writes(1) != 0 || d.Worn(1) {
		t.Fatal("Reset did not clear state")
	}
}

func TestWearHistogram(t *testing.T) {
	d := New(endurance.Uniform(1, 4, 10))
	d.Write(0) // 10%
	for i := 0; i < 5; i++ {
		d.Write(1) // 50%
	}
	for i := 0; i < 10; i++ {
		d.Write(2) // worn
	}
	h := d.WearHistogram(10)
	if h[0] != 1 { // line 3 untouched (0%) ... and line 0 at 10% is bucket 1
		t.Fatalf("bucket 0 = %d, want 1 (untouched line)", h[0])
	}
	if h[1] != 1 {
		t.Fatalf("bucket 1 = %d, want 1 (10%% line)", h[1])
	}
	if h[5] != 1 {
		t.Fatalf("bucket 5 = %d, want 1 (50%% line)", h[5])
	}
	if h[9] != 1 {
		t.Fatalf("bucket 9 = %d, want 1 (worn line)", h[9])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != d.Lines() {
		t.Fatalf("histogram total %d != lines %d", total, d.Lines())
	}
}

func TestWearHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WearHistogram(0) did not panic")
		}
	}()
	newTestDevice().WearHistogram(0)
}

// Property: under any write sequence, WornCount equals the number of lines
// whose write counter is at or past budget.
func TestWornCountConsistencyProperty(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		src := xrand.New(seed)
		d := New(endurance.Uniform(2, 8, 4))
		for i := 0; i < int(steps%500); i++ {
			d.Write(src.Intn(d.Lines()))
		}
		want := 0
		for l := 0; l < d.Lines(); l++ {
			if d.Writes(l) >= d.Endurance(l) {
				want++
				if !d.Worn(l) {
					return false
				}
			} else if d.Worn(l) {
				return false
			}
		}
		return d.WornCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: each line reports wear-out exactly once.
func TestSingleWearOutTransitionProperty(t *testing.T) {
	d := New(endurance.Uniform(1, 1, 5))
	transitions := 0
	for i := 0; i < 20; i++ {
		if d.Write(0) {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("line transitioned %d times", transitions)
	}
}

func TestVariedProfileWearOrder(t *testing.T) {
	// Weakest line must wear out first under uniform writing.
	p := endurance.Linear(1, 8, 2, 16)
	d := New(p)
	var firstWorn int = -1
	for round := 0; firstWorn < 0 && round < 100; round++ {
		for l := 0; l < d.Lines(); l++ {
			if d.Write(l) && firstWorn < 0 {
				firstWorn = l
			}
		}
	}
	if firstWorn != 0 {
		t.Fatalf("first worn line = %d, want weakest (0)", firstWorn)
	}
}

func TestForceWear(t *testing.T) {
	d := New(endurance.Uniform(1, 4, 10))
	if d.Write(0) {
		t.Fatal("first write wore a 10-budget line")
	}
	if !d.ForceWear(0) {
		t.Fatal("ForceWear on a healthy line did not transition")
	}
	if !d.Worn(0) {
		t.Fatal("force-worn line not reported worn")
	}
	if d.WornCount() != 1 {
		t.Fatalf("worn count = %d, want 1", d.WornCount())
	}
	if r := d.Remaining(0); r != 0 {
		t.Fatalf("force-worn line has %d writes remaining, want 0", r)
	}
	// A second ForceWear is a no-op and must not double-count.
	if d.ForceWear(0) {
		t.Fatal("ForceWear transitioned an already-worn line")
	}
	if d.WornCount() != 1 {
		t.Fatalf("worn count after double ForceWear = %d, want 1", d.WornCount())
	}
	// Writes to a force-worn line are counted but never transition.
	before := d.TotalWrites()
	if d.Write(0) {
		t.Fatal("write to force-worn line reported a transition")
	}
	if d.TotalWrites() != before+1 {
		t.Fatal("write to force-worn line not counted")
	}
	// ForceWear counts no write.
	d.ForceWear(1)
	if d.Writes(1) != 0 {
		t.Fatal("ForceWear consumed a write")
	}
}

// Regression: a force-worn line with consumed-fraction < 1 must land in
// the LAST histogram bin ("worn lines land in the last bin"), not in the
// interior bucket its write counter would suggest.
func TestWearHistogramForceWornLandsInLastBin(t *testing.T) {
	d := New(endurance.Uniform(1, 4, 10))
	d.Write(0)     // 10% consumed...
	d.ForceWear(0) // ...then killed: dead, not lightly used.
	h := d.WearHistogram(10)
	if h[9] != 1 {
		t.Fatalf("last bucket = %d, want 1 (force-worn line)", h[9])
	}
	if h[1] != 0 {
		t.Fatalf("bucket 1 = %d, want 0 — force-worn line leaked into interior bucket", h[1])
	}
	// A completely untouched force-worn line must not land in bucket 0.
	d.ForceWear(1)
	h = d.WearHistogram(10)
	if h[9] != 2 {
		t.Fatalf("last bucket = %d, want 2", h[9])
	}
	if h[0] != 2 { // lines 2 and 3 untouched
		t.Fatalf("bucket 0 = %d, want 2 (the two healthy untouched lines)", h[0])
	}
}

// Reset must also clear force-worn state and restore the full budget.
func TestResetAfterForceWear(t *testing.T) {
	d := New(endurance.Uniform(1, 4, 10))
	d.Write(2)
	d.ForceWear(2)
	d.Reset()
	if d.Worn(2) || d.WornCount() != 0 {
		t.Fatal("Reset left force-worn state behind")
	}
	if d.Remaining(2) != 10 {
		t.Fatalf("Remaining after Reset = %d, want full budget 10", d.Remaining(2))
	}
	if d.TotalWrites() != 0 || d.Writes(2) != 0 {
		t.Fatal("Reset left write counters behind")
	}
	// The revived line must wear out normally again.
	for i := 0; i < 9; i++ {
		if d.Write(2) {
			t.Fatalf("write %d reported premature wear-out after Reset", i+1)
		}
	}
	if !d.Write(2) {
		t.Fatal("line did not wear out at budget after Reset")
	}
}

// The Core accessor must expose the same state the Device view reports,
// and direct core mutations must be observed by the view — the contract
// the struct-of-arrays sim loops depend on.
func TestCoreViewConsistency(t *testing.T) {
	d := New(endurance.Uniform(2, 2, 5))
	c := d.Core()
	if len(c.Writes) != d.Lines() || len(c.Endurance) != d.Lines() || len(c.Worn) != d.Lines() {
		t.Fatal("core slice lengths disagree with device geometry")
	}
	for i := 0; i < d.Lines(); i++ {
		if c.Endurance[i] != d.Endurance(i) {
			t.Fatalf("line %d: core endurance %d != device %d", i, c.Endurance[i], d.Endurance(i))
		}
	}
	// Device write visible through core.
	d.Write(1)
	if c.Writes[1] != 1 || c.Total != 1 {
		t.Fatal("device write not visible through core")
	}
	// Core mutation visible through device, including the transition.
	for i := 0; i < 4; i++ {
		c.Write(1)
	}
	if !d.Worn(1) || d.WornCount() != 1 || d.Writes(1) != 5 || d.TotalWrites() != 5 {
		t.Fatal("core writes not visible through device view")
	}
	if c.Remaining(1) != 0 || d.Remaining(1) != 0 {
		t.Fatal("Remaining disagrees between core and view")
	}
	// Core ForceWear semantics match the device's.
	if !c.ForceWear(0) || c.ForceWear(0) {
		t.Fatal("core ForceWear transition semantics wrong")
	}
	if !d.Worn(0) || d.WornCount() != 2 {
		t.Fatal("core ForceWear not visible through device view")
	}
}

func BenchmarkDeviceWrite(b *testing.B) {
	d := New(endurance.Uniform(64, 64, 1<<40))
	n := d.Lines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(i % n)
	}
}
