package device

import "maxwe/internal/endurance"

// Core is the struct-of-arrays wear state of a device: three flat slices
// indexed by physical line number, plus two running totals. Hot simulation
// loops (internal/sim) index these slices directly instead of paying a
// method call per write; Device remains the bounds-checked, invariant-
// preserving view for everyone else.
//
// The invariants the sim loops rely on — and must preserve when mutating
// the slices directly — are exactly Write's semantics:
//
//   - Writes[i] counts every physical write to line i, worn or not.
//   - Total is the sum of all Writes[i] increments.
//   - Worn[i] flips false→true exactly once, when a write lands while
//     Writes[i] >= Endurance[i] (or via ForceWear); it never flips back
//     except through Reset.
//   - WornLines counts true entries in Worn.
type Core struct {
	// Writes is the per-line physical write counter.
	Writes []int64
	// Endurance is the per-line write budget, materialized from the
	// endurance profile at construction so the hot loop needs no
	// profile indirection.
	Endurance []int64
	// Worn is the per-line wear-out flag.
	Worn []bool
	// WornLines counts lines with Worn[i] == true.
	WornLines int
	// Total counts every physical write performed on the device.
	Total int64
}

// newCore materializes the SoA state for a profile.
func newCore(p *endurance.Profile) Core {
	n := p.Lines()
	c := Core{
		Writes:    make([]int64, n),
		Endurance: make([]int64, n),
		Worn:      make([]bool, n),
	}
	for i := 0; i < n; i++ {
		c.Endurance[i] = p.LineEndurance(i)
	}
	return c
}

// Write performs one physical write to line, returning true exactly on
// the wear-out transition. It is the canonical per-write semantics that
// batched loops replicate inline; callers must pass an in-range line.
func (c *Core) Write(line int) (wornNow bool) {
	c.Writes[line]++
	c.Total++
	if !c.Worn[line] && c.Writes[line] >= c.Endurance[line] {
		c.Worn[line] = true
		c.WornLines++
		return true
	}
	return false
}

// ForceWear marks line worn without counting a write. It returns true
// when this call performed the transition, false if already worn.
func (c *Core) ForceWear(line int) bool {
	if c.Worn[line] {
		return false
	}
	c.Worn[line] = true
	c.WornLines++
	return true
}

// Remaining returns the writes line can still absorb before wearing out
// (zero for worn lines, including force-worn lines whose budget was
// killed rather than spent).
func (c *Core) Remaining(line int) int64 {
	if c.Worn[line] {
		return 0
	}
	r := c.Endurance[line] - c.Writes[line]
	if r < 0 {
		return 0
	}
	return r
}

// Reset clears all wear state in place.
func (c *Core) Reset() {
	for i := range c.Writes {
		c.Writes[i] = 0
		c.Worn[i] = false
	}
	c.WornLines = 0
	c.Total = 0
}
