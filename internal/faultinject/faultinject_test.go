package faultinject

import (
	"testing"
)

func TestZeroConfigIsDisabled(t *testing.T) {
	p, err := NewPlan(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	// A disabled plan must still draw cleanly (and draw nothing).
	for i := 0; i < 100; i++ {
		if f := p.Draw(); !f.Clean() {
			t.Fatalf("disabled plan drew fault %+v", f)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TransientProb: -0.1},
		{TransientProb: 1.1},
		{StuckAtProb: 2},
		{MetadataProb: -1},
		{TransientProb: 0.5, MaxTransientRetries: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, TransientProb: 0.3, StuckAtProb: 0.05, MetadataProb: 0.02}
	a, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for i := 0; i < 10_000; i++ {
		fa, fb := a.Draw(), b.Draw()
		if fa != fb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, fa, fb)
		}
		if !fa.Clean() {
			any = true
		}
	}
	if !any {
		t.Fatal("10k draws at 30% transient probability injected nothing")
	}
}

func TestDrawRespectsRetryBound(t *testing.T) {
	cfg := Config{Seed: 7, TransientProb: 1, MaxTransientRetries: 3}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f := p.Draw()
		if f.TransientRetries < 1 || f.TransientRetries > 3 {
			t.Fatalf("draw %d demanded %d retries, want [1, 3]", i, f.TransientRetries)
		}
	}
}

func TestDefaultRetriesApplied(t *testing.T) {
	p, err := NewPlan(Config{TransientProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Config().MaxTransientRetries; got != DefaultMaxTransientRetries {
		t.Fatalf("normalized MaxTransientRetries = %d, want %d", got, DefaultMaxTransientRetries)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 4, BackoffBase: 1, BackoffCap: 8}
	want := []int64{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := pol.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", i, got, w)
		}
	}
	if got := (RetryPolicy{MaxRetries: 1}).Backoff(5); got != 0 {
		t.Errorf("zero-base backoff = %d, want 0", got)
	}
	// Far past the shift width the cap must still hold (no overflow).
	if got := pol.Backoff(100); got != 8 {
		t.Errorf("Backoff(100) = %d, want cap 8", got)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxRetries: 0},
		{MaxRetries: 1, BackoffBase: -1},
		{MaxRetries: 1, BackoffCap: -1},
	}
	for i, pol := range bad {
		if err := pol.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, pol)
		}
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Errorf("default policy rejected: %v", err)
	}
}

func TestCountersAnyAndAdd(t *testing.T) {
	var c Counters
	if c.Any() {
		t.Fatal("zero counters report Any")
	}
	c.Add(Counters{TransientFaults: 2, Retries: 5, BackoffUnits: 7,
		Escalations: 1, StuckAtFaults: 3, MetadataFaults: 4, MetadataRepairs: 4})
	c.Add(Counters{Retries: 1})
	if !c.Any() {
		t.Fatal("nonzero counters report !Any")
	}
	want := Counters{TransientFaults: 2, Retries: 6, BackoffUnits: 7,
		Escalations: 1, StuckAtFaults: 3, MetadataFaults: 4, MetadataRepairs: 4}
	if c != want {
		t.Fatalf("accumulated %+v, want %+v", c, want)
	}
}
