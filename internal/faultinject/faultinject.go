// Package faultinject provides the deterministic fault layer of the
// lifetime simulator. The seed simulator models exactly one failure mode —
// clean, deterministic wear-out when a line's write budget runs dry — but
// real NVM misbehaves in richer ways, and an evaluation of spare-line
// replacement should too (WoLFRaM and SoftWear both evaluate wear
// management under perturbed, non-ideal fault models). The package defines
// three injectable fault classes:
//
//   - transient write failures: a physical write succeeds only after k
//     retries, each retry charging a real device write and a bounded
//     backoff delay (RetryPolicy);
//   - stuck-at faults: a line dies immediately, before its endurance
//     budget is spent, feeding the spare scheme's replacement procedure
//     early;
//   - metadata faults: a mapping-table entry (Max-WE's RMT/LMT) is
//     corrupted in place and must be detected by an integrity scrub and
//     rebuilt from the journal copy.
//
// A Plan is a pure function of its Config (seed included): the same plan
// applied to the same write stream injects the same faults on every
// platform, preserving the repository's determinism invariant. All
// randomness flows through internal/xrand.
package faultinject

import (
	"fmt"

	"maxwe/internal/xrand"
)

// Config parameterizes a fault plan. The zero value injects nothing and
// is a strict no-op: a simulator run with a zero-config plan is
// bit-identical to a run with no fault layer at all. Config is embedded
// in maxwe.Config and therefore hashed into nvmd job fingerprints; the
// json tags pin the wire names (maxwelint jsonschema rule).
type Config struct {
	// Seed drives every fault decision. Plans with equal configs draw
	// identical fault sequences.
	Seed uint64 `json:"Seed"`
	// TransientProb is the per-physical-write probability that the write
	// fails transiently and must be retried.
	TransientProb float64 `json:"TransientProb"`
	// MaxTransientRetries bounds how many retries a transient failure can
	// demand (the demand is drawn uniformly from [1, MaxTransientRetries]).
	// Zero selects DefaultMaxTransientRetries when TransientProb > 0.
	MaxTransientRetries int `json:"MaxTransientRetries"`
	// StuckAtProb is the per-physical-write probability that the target
	// line fails hard (stuck-at) before its endurance budget is spent.
	StuckAtProb float64 `json:"StuckAtProb"`
	// MetadataProb is the per-physical-write probability that one mapping
	// table entry is corrupted (schemes without corruptible metadata
	// ignore the event).
	MetadataProb float64 `json:"MetadataProb"`
}

// DefaultMaxTransientRetries is the retry demand bound used when
// Config.MaxTransientRetries is left zero.
const DefaultMaxTransientRetries = 4

// Enabled reports whether the config injects any faults at all.
func (c Config) Enabled() bool {
	return c.TransientProb > 0 || c.StuckAtProb > 0 || c.MetadataProb > 0
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"TransientProb", c.TransientProb},
		{"StuckAtProb", c.StuckAtProb},
		{"MetadataProb", c.MetadataProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.MaxTransientRetries < 0 {
		return fmt.Errorf("faultinject: MaxTransientRetries %d must be >= 0", c.MaxTransientRetries)
	}
	return nil
}

// WriteFault is the fault outcome drawn for one physical write. The zero
// value is a clean write.
type WriteFault struct {
	// TransientRetries is how many retries this write demands before it
	// succeeds (0 = first attempt succeeds).
	TransientRetries int
	// StuckAt kills the target line immediately.
	StuckAt bool
	// Metadata corrupts one mapping-table entry.
	Metadata bool
}

// Clean reports whether the draw injects nothing.
func (f WriteFault) Clean() bool {
	return f.TransientRetries == 0 && !f.StuckAt && !f.Metadata
}

// Plan is a seeded fault schedule. Construct with NewPlan; a Plan is
// consumed by one simulation run (its stream advances with every draw).
type Plan struct {
	cfg Config
	src *xrand.Source
}

// NewPlan validates cfg and builds a plan. A disabled (zero-probability)
// config is legal and yields a plan whose Enabled method returns false.
func NewPlan(cfg Config) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.TransientProb > 0 && cfg.MaxTransientRetries == 0 {
		cfg.MaxTransientRetries = DefaultMaxTransientRetries
	}
	return &Plan{cfg: cfg, src: xrand.New(cfg.Seed)}, nil
}

// Enabled reports whether the plan can inject any fault.
func (p *Plan) Enabled() bool { return p != nil && p.cfg.Enabled() }

// Config returns the (normalized) configuration the plan was built from.
func (p *Plan) Config() Config { return p.cfg }

// Src exposes the plan's randomness source for fault payloads that need
// extra draws (picking which metadata entry to corrupt). Consuming it
// outside the simulator's fault path breaks replay determinism.
func (p *Plan) Src() *xrand.Source { return p.src }

// Draw returns the fault outcome for the next physical write. Draws are
// made in write order, so a fixed write stream sees a fixed fault stream.
func (p *Plan) Draw() WriteFault {
	var f WriteFault
	if p.cfg.TransientProb > 0 && p.src.Float64() < p.cfg.TransientProb {
		f.TransientRetries = 1 + p.src.Intn(p.cfg.MaxTransientRetries)
	}
	if p.cfg.StuckAtProb > 0 && p.src.Float64() < p.cfg.StuckAtProb {
		f.StuckAt = true
	}
	if p.cfg.MetadataProb > 0 && p.src.Float64() < p.cfg.MetadataProb {
		f.Metadata = true
	}
	return f
}

// RetryPolicy bounds the engine's response to transient write failures:
// at most MaxRetries re-issues per write, each retry charging an
// exponentially growing but capped backoff delay. A write still failing
// after MaxRetries is escalated to a permanent line failure.
type RetryPolicy struct {
	// MaxRetries is the per-write retry budget (must be >= 1).
	MaxRetries int `json:"MaxRetries"`
	// BackoffBase is the delay charged for the first retry, in device
	// write-slot units (>= 0).
	BackoffBase int64 `json:"BackoffBase"`
	// BackoffCap bounds the per-retry delay: retry i charges
	// min(BackoffBase << i, BackoffCap).
	BackoffCap int64 `json:"BackoffCap"`
}

// DefaultRetryPolicy retries four times with 1-2-4-8 unit backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BackoffBase: 1, BackoffCap: 8}
}

// Validate checks the policy bounds.
func (p RetryPolicy) Validate() error {
	if p.MaxRetries < 1 {
		return fmt.Errorf("faultinject: RetryPolicy.MaxRetries %d must be >= 1", p.MaxRetries)
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("faultinject: RetryPolicy backoff (%d, %d) must be >= 0",
			p.BackoffBase, p.BackoffCap)
	}
	return nil
}

// Backoff returns the delay charged for retry attempt i (0-based):
// min(BackoffBase << i, BackoffCap).
func (p RetryPolicy) Backoff(attempt int) int64 {
	if attempt < 0 {
		panic("faultinject: Backoff with negative attempt")
	}
	if p.BackoffBase == 0 {
		return 0
	}
	// Shifting past 62 bits would overflow; the cap applies long before.
	if attempt > 62 {
		return p.BackoffCap
	}
	d := p.BackoffBase << uint(attempt)
	if d > p.BackoffCap || d < p.BackoffBase {
		return p.BackoffCap
	}
	return d
}

// Counters aggregates injected faults per class over one run. The zero
// value (no faults) keeps sim.Result bit-identical to the pre-fault
// engine.
type Counters struct {
	// TransientFaults counts writes that needed at least one retry.
	TransientFaults int64 `json:"TransientFaults"`
	// Retries counts individual retry attempts across all writes.
	Retries int64 `json:"Retries"`
	// BackoffUnits is the total retry delay charged, in write-slot units.
	BackoffUnits int64 `json:"BackoffUnits"`
	// Escalations counts transient failures that exhausted the retry
	// budget and were promoted to permanent line failures.
	Escalations int64 `json:"Escalations"`
	// StuckAtFaults counts lines killed before their budget was spent.
	StuckAtFaults int64 `json:"StuckAtFaults"`
	// MetadataFaults counts corrupted mapping-table entries injected.
	MetadataFaults int64 `json:"MetadataFaults"`
	// MetadataRepairs counts entries the integrity scrub detected and
	// rebuilt from the journal.
	MetadataRepairs int64 `json:"MetadataRepairs"`
}

// Any reports whether any fault was injected.
func (c Counters) Any() bool { return c != (Counters{}) }

// Add accumulates other into c (for aggregating sweep cells).
func (c *Counters) Add(other Counters) {
	c.TransientFaults += other.TransientFaults
	c.Retries += other.Retries
	c.BackoffUnits += other.BackoffUnits
	c.Escalations += other.Escalations
	c.StuckAtFaults += other.StuckAtFaults
	c.MetadataFaults += other.MetadataFaults
	c.MetadataRepairs += other.MetadataRepairs
}
