// coordinator.go is the scheduling half of the federation: a worker
// registry with TTL expiry, a FIFO task queue with sticky rendezvous
// assignment by cell fingerprint, lease deadlines with lazy expiry and
// reassignment, and a long-poll lease endpoint driven by the same
// closed-channel wake pattern as the service event log. DispatchCell is
// the bridge the sweep runner calls: it blocks until some worker has
// reported the cell's canonical JSON (or the job context ends), so the
// runner's ordered collector — not this package — remains the single
// authority on commit order.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync" //lint:allow nondeterminism "the coordinator is daemon scheduling plumbing; cell values are content-deterministic, so scheduling order cannot change any merged byte"
	"time"
)

// ErrUnknownWorker is returned for requests naming a worker the registry
// has dropped (TTL expiry or coordinator restart); the HTTP layer maps
// it to 404 and the worker answers by re-registering.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// ErrBadWorker rejects a registration whose capabilities are
// incompatible with this coordinator (protocol or engine-schema
// mismatch).
var ErrBadWorker = errors.New("cluster: incompatible worker")

// Config parameterizes a Coordinator. The zero value is usable: every
// field has a working default.
type Config struct {
	// LeaseTimeout is how long a leased task may go unheartbeated before
	// it is reassigned (default DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// WorkerTTL is how long a worker may go silent before it is dropped
	// (default DefaultWorkerTTL).
	WorkerTTL time.Duration
	// LeaseWait bounds the server-side long poll of Lease (default
	// DefaultLeaseWait).
	LeaseWait time.Duration
	// EngineSchema is the sim engine schema this coordinator requires of
	// its workers (sim.EngineSchemaVersion in production; tests may use
	// anything). Workers reporting a different value are rejected.
	EngineSchema int
	// Now supplies the scheduler's clock; tests inject a fake to drive
	// lease and TTL expiry deterministically. Defaults to the wall
	// clock, which never reaches any serialized document — it only
	// orders expiry decisions.
	Now func() time.Time
}

// workerState is the registry record of one live worker.
type workerState struct {
	id        string
	info      WorkerInfo
	lastSeen  time.Time
	leased    map[string]bool
	completed int64
}

// taskState is one dispatched cell moving through pending → leased →
// completed. A canceled task stays in the table (completed, with no
// waiter) so a late report is recognized instead of erroring.
type taskState struct {
	task     Task
	leasedTo string
	deadline time.Time
	// orphaned marks a task whose lease already expired once (worker
	// dead or stalled): it becomes grabbable by ANY worker, because the
	// rendezvous owner may be the very worker that is wedged on it.
	// Stickiness is a cache optimization for the healthy path only.
	orphaned  bool
	completed bool
	value     json.RawMessage
	err       string
	// done closes when the task completes; DispatchCell waits on it.
	done chan struct{}
}

// Coordinator schedules dispatched cells across registered workers.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex //lint:allow nondeterminism "guards the scheduler tables; see package doc"
	workers map[string]*workerState
	tasks   map[string]*taskState
	// pending is the FIFO of task IDs awaiting a lease; entries are
	// skipped lazily once leased or completed.
	pending    []string
	nextWorker int64
	nextTask   int64
	// wake is closed (and replaced) whenever the pending set can have
	// grown or the worker set changed, so long-polling leases re-check.
	wake chan struct{}

	dispatched     int64
	completedCount int64
	reassigned     int64
	expiredWorkers int64
	lateResults    int64
	registered     int64
}

// NewCoordinator builds a Coordinator, applying Config defaults.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = DefaultWorkerTTL
	}
	if cfg.LeaseWait <= 0 {
		cfg.LeaseWait = DefaultLeaseWait
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Time {
			return time.Now() //lint:allow nondeterminism "scheduler clock for lease/TTL expiry only; never serialized, never reaches a result"
		}
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*taskState),
		wake:    make(chan struct{}),
	}
}

// Register admits a worker, assigning its ID. Incompatible workers
// (wrong protocol or engine schema) are rejected with ErrBadWorker so a
// mixed-version cluster fails loudly at startup, not subtly at merge.
func (c *Coordinator) Register(info WorkerInfo) (RegisterResponse, error) {
	if info.Proto != ProtoVersion {
		return RegisterResponse{}, fmt.Errorf("%w: protocol %d, coordinator speaks %d", ErrBadWorker, info.Proto, ProtoVersion)
	}
	if info.EngineSchema != c.cfg.EngineSchema {
		return RegisterResponse{}, fmt.Errorf("%w: engine schema %d, coordinator requires %d", ErrBadWorker, info.EngineSchema, c.cfg.EngineSchema)
	}
	if info.Slots <= 0 {
		info.Slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	c.nextWorker++
	id := fmt.Sprintf("w-%06d", c.nextWorker)
	c.workers[id] = &workerState{
		id:       id,
		info:     info,
		lastSeen: c.cfg.Now(),
		leased:   make(map[string]bool),
	}
	c.registered++
	c.wakeLocked() // a new worker changes rendezvous owners
	return RegisterResponse{
		WorkerID:       id,
		LeaseTimeoutMS: c.cfg.LeaseTimeout.Milliseconds(),
		LeaseWaitMS:    c.cfg.LeaseWait.Milliseconds(),
	}, nil
}

// DispatchCell enqueues one cell and blocks until a worker reports it or
// ctx ends. It matches the service-side dispatcher signature
// structurally, so the service package can depend on an interface it
// defines itself and never import this package.
func (c *Coordinator) DispatchCell(ctx context.Context, job string, spec []byte, key, fingerprint string) ([]byte, error) {
	c.mu.Lock()
	c.nextTask++
	id := fmt.Sprintf("t-%06d", c.nextTask)
	st := &taskState{
		task: Task{
			ID:          id,
			Job:         job,
			Key:         key,
			Fingerprint: fingerprint,
			Spec:        json.RawMessage(spec),
		},
		done: make(chan struct{}),
	}
	c.tasks[id] = st
	c.pending = append(c.pending, id)
	c.dispatched++
	c.wakeLocked()
	c.mu.Unlock()

	select {
	case <-st.done:
	case <-ctx.Done():
		c.cancelTask(id)
		return nil, ctx.Err()
	}
	c.mu.Lock()
	value, errMsg := st.value, st.err
	delete(c.tasks, id) // completed and collected; forget it
	c.mu.Unlock()
	if errMsg != "" {
		return nil, errors.New(errMsg)
	}
	return value, nil
}

// cancelTask forgets an abandoned dispatch; a worker's eventual report
// for it is counted late (unknown task) instead of failing.
func (c *Coordinator) cancelTask(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.tasks[id]
	if !ok {
		return
	}
	if st.leasedTo != "" {
		if w := c.workers[st.leasedTo]; w != nil {
			delete(w.leased, id)
		}
	}
	if !st.completed {
		st.completed = true
		close(st.done)
	}
	delete(c.tasks, id)
}

// Lease hands the calling worker its next task, long-polling up to the
// configured lease wait. A nil task with nil error means "nothing for
// you right now; ask again". Assignment is sticky: a pending task goes
// only to the rendezvous owner of its fingerprint among live workers,
// so repeated sweeps keep hitting the same memo caches; reassignment
// happens implicitly when expiry changes the live set.
func (c *Coordinator) Lease(ctx context.Context, workerID string) (*Task, error) {
	deadline := c.cfg.Now().Add(c.cfg.LeaseWait)
	for {
		c.mu.Lock()
		now := c.cfg.Now()
		c.expireLocked(now)
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = now
		if t := c.leaseLocked(w, now); t != nil {
			c.mu.Unlock()
			return t, nil
		}
		wake := c.wake
		c.mu.Unlock()
		remain := deadline.Sub(now)
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// leaseLocked pops the first pending task owned by w, leasing it. The
// pending FIFO is compacted lazily: entries already leased or completed
// are dropped as they are passed over.
func (c *Coordinator) leaseLocked(w *workerState, now time.Time) *Task {
	if w.info.Slots > 0 && len(w.leased) >= w.info.Slots {
		return nil
	}
	live := c.liveWorkerIDsLocked()
	kept := c.pending[:0]
	var picked *taskState
	for _, id := range c.pending {
		st, ok := c.tasks[id]
		if !ok || st.completed || st.leasedTo != "" {
			continue // lazily compact
		}
		if picked == nil && (st.orphaned || c.ownerOf(st.task, live) == w.id) {
			picked = st
			continue
		}
		kept = append(kept, id)
	}
	c.pending = kept
	if picked == nil {
		return nil
	}
	picked.leasedTo = w.id
	picked.deadline = now.Add(c.cfg.LeaseTimeout)
	w.leased[picked.task.ID] = true
	t := picked.task
	return &t
}

// ownerOf picks the sticky assignee of a task among the live workers by
// rendezvous (highest-random-weight) hashing of its fingerprint, so the
// mapping is stable under membership changes except for the moved keys.
func (c *Coordinator) ownerOf(t Task, live []string) string {
	key := t.Fingerprint
	if key == "" {
		key = t.Job + "/" + t.Key
	}
	best, bestScore := "", uint64(0)
	for _, id := range live {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(id))
		if s := h.Sum64(); best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// liveWorkerIDsLocked lists registered workers sorted by ID — sorted so
// the rendezvous tie-break and every serialized listing are free of map
// iteration order.
func (c *Coordinator) liveWorkerIDsLocked() []string {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Report commits a worker's result for a leased task. Results are
// content-deterministic, so a live task accepts a report from any
// worker — even one whose lease already expired (counted late). Reports
// against completed or forgotten tasks are acknowledged and dropped.
func (c *Coordinator) Report(workerID, taskID string, value json.RawMessage, errMsg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	} else {
		return ErrUnknownWorker
	}
	st, ok := c.tasks[taskID]
	if !ok || st.completed {
		c.lateResults++
		return nil
	}
	if st.leasedTo != workerID {
		c.lateResults++
	}
	if st.leasedTo != "" {
		if w := c.workers[st.leasedTo]; w != nil {
			delete(w.leased, taskID)
		}
		st.leasedTo = ""
	}
	st.completed = true
	st.value = value
	st.err = errMsg
	c.completedCount++
	c.workers[workerID].completed++
	close(st.done)
	return nil
}

// Heartbeat renews the worker's registration and the leases it lists.
func (c *Coordinator) Heartbeat(workerID string, tasks []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	w, ok := c.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastSeen = now
	for _, id := range tasks {
		if st, ok := c.tasks[id]; ok && st.leasedTo == workerID && !st.completed {
			st.deadline = now.Add(c.cfg.LeaseTimeout)
		}
	}
	return nil
}

// expireLocked is the lazy failure detector, run under the lock on every
// entry point: workers silent past the TTL are dropped and their leases
// requeued; leases past their deadline are requeued even when the
// worker itself is still live (a stalled cell must not strand a sweep).
func (c *Coordinator) expireLocked(now time.Time) {
	changed := false
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			for taskID := range w.leased {
				if st, ok := c.tasks[taskID]; ok && !st.completed && st.leasedTo == id {
					st.leasedTo = ""
					st.orphaned = true
					c.pending = append(c.pending, taskID)
					c.reassigned++
					changed = true
				}
			}
			delete(c.workers, id)
			c.expiredWorkers++
			changed = true
		}
	}
	for id, st := range c.tasks {
		if st.leasedTo != "" && !st.completed && now.After(st.deadline) {
			if w := c.workers[st.leasedTo]; w != nil {
				delete(w.leased, id)
			}
			st.leasedTo = ""
			st.orphaned = true
			c.pending = append(c.pending, id)
			c.reassigned++
			changed = true
		}
	}
	if changed {
		c.wakeLocked()
	}
}

// wakeLocked wakes all long-polling leases (the event-log broadcast
// pattern: close the channel, replace it).
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// Workers snapshots the registry, sorted by worker ID so the serialized
// listing is stable.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, id := range c.liveWorkerIDsLocked() {
		w := c.workers[id]
		out = append(out, WorkerStatus{
			ID:        w.id,
			Info:      w.info,
			Leased:    len(w.leased),
			Completed: w.completed,
		})
	}
	return out
}

// Stats snapshots the scheduler counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	pending, leased := 0, 0
	for _, st := range c.tasks {
		switch {
		case st.completed:
		case st.leasedTo != "":
			leased++
		default:
			pending++
		}
	}
	return Stats{
		WorkersLive:    len(c.workers),
		TasksPending:   pending,
		TasksLeased:    leased,
		Dispatched:     c.dispatched,
		Completed:      c.completedCount,
		Reassigned:     c.reassigned,
		WorkersExpired: c.expiredWorkers,
		LateResults:    c.lateResults,
		Registered:     c.registered,
	}
}
