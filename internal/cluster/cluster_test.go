package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync" //lint:allow nondeterminism "test harness coordination"
	"testing"
	"time"
)

// fakeClock is a mutable test clock for driving lease and TTL expiry
// without real waiting.
type fakeClock struct {
	mu  sync.Mutex //lint:allow nondeterminism "test clock"
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func testInfo() WorkerInfo {
	return WorkerInfo{Slots: 4, EngineSchema: 7, Proto: ProtoVersion}
}

func testConfig(clk *fakeClock) Config {
	return Config{
		LeaseTimeout: 10 * time.Second,
		WorkerTTL:    30 * time.Second,
		LeaseWait:    50 * time.Millisecond,
		EngineSchema: 7,
		Now:          clk.Now,
	}
}

func TestRegisterRejectsIncompatibleWorkers(t *testing.T) {
	c := NewCoordinator(testConfig(newFakeClock()))
	if _, err := c.Register(WorkerInfo{Slots: 1, EngineSchema: 7, Proto: ProtoVersion + 1}); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
	if _, err := c.Register(WorkerInfo{Slots: 1, EngineSchema: 8, Proto: ProtoVersion}); err == nil {
		t.Fatal("wrong engine schema accepted")
	}
	if _, err := c.Register(testInfo()); err != nil {
		t.Fatalf("compatible worker rejected: %v", err)
	}
}

// dispatchAsync launches DispatchCell in a goroutine, returning a
// channel carrying its outcome.
func dispatchAsync(ctx context.Context, c *Coordinator, key, fp string) chan error {
	done := make(chan error, 1)
	go func() {
		val, err := c.DispatchCell(ctx, "job-1", []byte(`{}`), key, fp)
		if err == nil && string(val) != `{"cell":"`+key+`"}` {
			err = fmt.Errorf("wrong value %q for %s", val, key)
		}
		done <- err
	}()
	return done
}

// drainLeases leases everything available to worker id, reporting each
// task's canonical value, and returns the cell keys it computed.
func drainLeases(t *testing.T, c *Coordinator, id string) []string {
	t.Helper()
	var keys []string
	for {
		task, err := c.Lease(context.Background(), id)
		if err != nil {
			t.Fatalf("lease %s: %v", id, err)
		}
		if task == nil {
			return keys
		}
		keys = append(keys, task.Key)
		val := json.RawMessage(`{"cell":"` + task.Key + `"}`)
		if err := c.Report(id, task.ID, val, ""); err != nil {
			t.Fatalf("report %s: %v", id, err)
		}
	}
}

func TestStickyAssignmentIsStableAcrossSweeps(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(testConfig(clk))
	var ids []string
	for i := 0; i < 4; i++ {
		resp, err := c.Register(testInfo())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.WorkerID)
	}
	assignment := func() map[string]string {
		byKey := make(map[string]string)
		var waits []chan error
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("fig7/tlsr/%d", i)
			waits = append(waits, dispatchAsync(context.Background(), c, key, "fp-"+key))
		}
		deadline := time.After(5 * time.Second)
		for remaining := 16; remaining > 0; {
			progressed := false
			for _, id := range ids {
				for _, key := range drainLeases(t, c, id) {
					byKey[key] = id
					remaining--
					progressed = true
				}
			}
			if !progressed {
				select {
				case <-deadline:
					t.Fatalf("sweep stalled with %d cells undispatched", remaining)
				case <-time.After(5 * time.Millisecond):
				}
			}
		}
		for _, wait := range waits {
			if err := <-wait; err != nil {
				t.Fatal(err)
			}
		}
		return byKey
	}
	first := assignment()
	second := assignment()
	spread := make(map[string]bool)
	for key, worker := range first {
		spread[worker] = true
		if second[key] != worker {
			t.Fatalf("cell %s moved from %s to %s between identical sweeps", key, worker, second[key])
		}
	}
	if len(spread) < 2 {
		t.Fatalf("16 cells all landed on %d worker(s); rendezvous sharding is not spreading", len(spread))
	}
}

func TestLeaseExpiryReassignsToSurvivor(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	c := NewCoordinator(cfg)
	a, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	done := dispatchAsync(context.Background(), c, "cell", "fp-cell")
	task, err := c.Lease(context.Background(), a.WorkerID)
	if err != nil || task == nil {
		t.Fatalf("worker A got no lease: task=%v err=%v", task, err)
	}
	// A goes silent past its lease (but not its TTL); the task must
	// become grabbable by a newcomer even if rendezvous prefers A.
	clk.Advance(cfg.LeaseTimeout + time.Second)
	b, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Lease(context.Background(), b.WorkerID)
	if err != nil || got == nil {
		t.Fatalf("survivor got no lease after expiry: task=%v err=%v", got, err)
	}
	if got.ID != task.ID || got.Key != "cell" {
		t.Fatalf("survivor leased %+v, want the expired task %s", got, task.ID)
	}
	if err := c.Report(b.WorkerID, got.ID, json.RawMessage(`{"cell":"cell"}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Reassigned != 1 {
		t.Fatalf("Reassigned = %d, want 1", s.Reassigned)
	}
	// The original holder's late report for the now-forgotten task is
	// acknowledged and dropped.
	if err := c.Report(a.WorkerID, task.ID, json.RawMessage(`{"cell":"stale"}`), ""); err != nil {
		t.Fatalf("late report errored: %v", err)
	}
	if s := c.Stats(); s.LateResults != 1 {
		t.Fatalf("LateResults = %d, want 1", s.LateResults)
	}
}

func TestDeadWorkerIsExpiredAndCellsRequeued(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	c := NewCoordinator(cfg)
	a, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	done := dispatchAsync(context.Background(), c, "cell", "fp-cell")
	if task, err := c.Lease(context.Background(), a.WorkerID); err != nil || task == nil {
		t.Fatalf("no lease: %v", err)
	}
	clk.Advance(cfg.WorkerTTL + time.Second)
	if ws := c.Workers(); len(ws) != 0 {
		t.Fatalf("dead worker still listed: %+v", ws)
	}
	if _, err := c.Lease(context.Background(), a.WorkerID); err != ErrUnknownWorker {
		t.Fatalf("dead worker's lease err = %v, want ErrUnknownWorker", err)
	}
	s := c.Stats()
	if s.WorkersExpired != 1 || s.TasksPending != 1 {
		t.Fatalf("stats after death = %+v, want 1 expired worker and 1 pending task", s)
	}
	b, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Lease(context.Background(), b.WorkerID)
	if err != nil || got == nil {
		t.Fatalf("survivor got no requeued task: %v", err)
	}
	if err := c.Report(b.WorkerID, got.ID, json.RawMessage(`{"cell":"cell"}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	c := NewCoordinator(cfg)
	a, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	done := dispatchAsync(context.Background(), c, "cell", "fp-cell")
	task, err := c.Lease(context.Background(), a.WorkerID)
	if err != nil || task == nil {
		t.Fatalf("no lease: %v", err)
	}
	for i := 0; i < 6; i++ {
		clk.Advance(cfg.LeaseTimeout / 2)
		if err := c.Heartbeat(a.WorkerID, []string{task.ID}); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if s := c.Stats(); s.Reassigned != 0 || s.TasksLeased != 1 {
		t.Fatalf("heartbeated lease expired anyway: %+v", s)
	}
	if err := c.Report(a.WorkerID, task.ID, json.RawMessage(`{"cell":"cell"}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDispatchCancelForgetsTask(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(testConfig(clk))
	a, err := c.Register(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.DispatchCell(ctx, "job-1", []byte(`{}`), "cell", "fp")
		done <- err
	}()
	task, err := c.Lease(context.Background(), a.WorkerID)
	if err != nil || task == nil {
		t.Fatalf("no lease: %v", err)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled dispatch returned %v", err)
	}
	if err := c.Report(a.WorkerID, task.ID, json.RawMessage(`{}`), ""); err != nil {
		t.Fatalf("report after cancel errored: %v", err)
	}
	if s := c.Stats(); s.LateResults != 1 {
		t.Fatalf("LateResults = %d, want 1", s.LateResults)
	}
}

func TestRunWorkerEndToEnd(t *testing.T) {
	c := NewCoordinator(Config{
		LeaseTimeout: 2 * time.Second,
		WorkerTTL:    10 * time.Second,
		LeaseWait:    100 * time.Millisecond,
		EngineSchema: 7,
	})
	srv := httptest.NewServer(NewHandler(c, nil))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL,
			Info:        WorkerInfo{Slots: 2, EngineSchema: 7},
			Compute: func(_ context.Context, task Task) (json.RawMessage, error) {
				if task.Key == "boom" {
					return nil, fmt.Errorf("cell exploded")
				}
				return json.RawMessage(`{"cell":"` + task.Key + `"}`), nil
			},
		})
	}()

	var waits []chan error
	for i := 0; i < 8; i++ {
		waits = append(waits, dispatchAsync(ctx, c, fmt.Sprintf("k%d", i), fmt.Sprintf("fp%d", i)))
	}
	for i, wait := range waits {
		select {
		case err := <-wait:
			if err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("cell %d never completed", i)
		}
	}
	if _, err := c.DispatchCell(ctx, "job-1", []byte(`{}`), "boom", "fp-boom"); err == nil || err.Error() != "cell exploded" {
		t.Fatalf("failing cell returned %v, want the worker's error", err)
	}
	cancel()
	select {
	case err := <-workerDone:
		if err != context.Canceled {
			t.Fatalf("RunWorker returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorker did not stop on ctx cancel")
	}
}

// memCache is a CacheSource test double.
type memCache map[string]string

func (m memCache) Get(key string) ([]byte, bool) {
	v, ok := m[key]
	return []byte(v), ok
}

func TestCachePeerFetch(t *testing.T) {
	c := NewCoordinator(Config{EngineSchema: 7})
	srv := httptest.NewServer(NewHandler(c, memCache{"cells/v1/abc": `{"x":1}`}))
	defer srv.Close()
	peer := &CachePeer{URL: srv.URL}
	if val, ok := peer.Fetch("cells/v1/abc"); !ok || string(val) != `{"x":1}` {
		t.Fatalf("Fetch hit = %q, %v", val, ok)
	}
	if _, ok := peer.Fetch("cells/v1/absent"); ok {
		t.Fatal("Fetch of absent key reported a hit")
	}
	srv.Close()
	if _, ok := peer.Fetch("cells/v1/abc"); ok {
		t.Fatal("Fetch against a dead peer reported a hit")
	}
}

func TestMetricsTextListsAllCounters(t *testing.T) {
	text := MetricsText(Stats{WorkersLive: 2, Dispatched: 5})
	for _, want := range []string{
		"nvmd_cluster_workers_live 2",
		"nvmd_cluster_dispatched_total 5",
		"nvmd_cluster_reassigned_total 0",
		"nvmd_cluster_late_results_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}
