// Package cluster is the coordinator/worker federation layer that scales
// nvmd sweeps beyond one box. A coordinator owns the sweep: it expands a
// job into cells exactly like a single-node run, hands each cell to one
// of N registered workers as a leased task, and commits the results in
// sweep order through the ordinary internal/runner machinery — so the
// merged result document, event subsequence and checkpoint bytes are
// identical to a single-node run at every worker count. Workers are
// plain nvmd processes in worker mode: they register with capability
// info, long-poll for leases, compute cells through their local memo
// cache (peer-filled from the coordinator, see internal/memo.Peer), and
// report canonical JSON results back.
//
// Determinism argument, in three parts:
//
//   - every cell re-derives all of its state from the job spec and cell
//     key alone, so *where* it computes cannot change its value (the
//     same property that makes checkpoint resume and memo hits safe);
//   - the coordinator routes remote results through runner.Run, whose
//     single collector commits outcomes strictly in sweep order — the
//     checkpoint file states and final report are the sequential ones;
//   - values travel as the canonical JSON the runner itself would have
//     checkpointed, and JSON round-trips of result types are exact, so
//     a remote cell's committed bytes equal a local cell's.
//
// Failure handling reuses existing machinery rather than inventing new
// state: a worker that dies or stalls simply stops heartbeating, its
// leases expire, and its cells are reassigned to the surviving workers;
// a coordinator that dies restarts the job from its durable checkpoint
// like any interrupted nvmd job. Sharding is sticky by cell fingerprint
// (rendezvous hashing over live workers), so repeated and overlapping
// sweeps land identical cells on the same worker and its memo cache
// stays hot.
//
// Like internal/runner and internal/service, this package is daemon
// plumbing: goroutines, sync and the wall clock are its job, and every
// use is waived line-by-line with a reasoned //lint:allow directive.
// The simulations it schedules remain pure functions of their specs.
package cluster

import (
	"encoding/json"
	"time"
)

// ProtoVersion versions the /v1/cluster wire protocol. A worker built
// against a different protocol is rejected at registration instead of
// failing obscurely mid-sweep.
const ProtoVersion = 1

// Default scheduling parameters, exchanged at registration so workers
// and coordinator agree without extra configuration.
const (
	// DefaultLeaseTimeout bounds how long a leased cell may go without a
	// heartbeat before it is reassigned to another worker.
	DefaultLeaseTimeout = 15 * time.Second
	// DefaultWorkerTTL bounds how long a registered worker may go
	// without any request before it is dropped from the registry.
	DefaultWorkerTTL = 45 * time.Second
	// DefaultLeaseWait is how long a lease request blocks server-side
	// waiting for a task before answering "none".
	DefaultLeaseWait = 5 * time.Second
)

// WorkerInfo is the capability record a worker sends at registration.
type WorkerInfo struct {
	// Name is a free-form label for logs and the workers listing
	// (default: the worker's hostname as reported by the process).
	Name string `json:"name,omitempty"`
	// Slots is how many cells the worker computes concurrently.
	Slots int `json:"slots"`
	// CacheEnabled reports whether the worker runs a local memo cache
	// (peer-filled from the coordinator).
	CacheEnabled bool `json:"cache_enabled"`
	// EngineSchema is the worker's sim.EngineSchemaVersion. The
	// coordinator rejects a mismatch: results from a semantically
	// different engine must never be merged.
	EngineSchema int `json:"engine_schema"`
	// Proto is the worker's ProtoVersion.
	Proto int `json:"proto"`
}

// RegisterRequest is the body of POST /v1/cluster/register.
type RegisterRequest struct {
	Info WorkerInfo `json:"info"`
}

// RegisterResponse assigns the worker its identity and the scheduling
// parameters the coordinator runs with.
type RegisterResponse struct {
	// WorkerID names the worker in every subsequent request.
	WorkerID string `json:"worker_id"`
	// LeaseTimeoutMS is the lease deadline the coordinator enforces; a
	// worker must heartbeat comfortably inside it.
	LeaseTimeoutMS int64 `json:"lease_timeout_ms"`
	// LeaseWaitMS is the server-side long-poll bound for lease requests.
	LeaseWaitMS int64 `json:"lease_wait_ms"`
}

// Task is one cell of a federated sweep, leased to a worker.
type Task struct {
	// ID names the lease; results are reported against it.
	ID string `json:"id"`
	// Job is the coordinator-side job the cell belongs to.
	Job string `json:"job"`
	// Key is the cell key within the sweep (e.g. "fig7/tlsr/90").
	Key string `json:"key"`
	// Fingerprint is the cell's content address for the memo cache
	// (empty for cells that opt out of caching).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Spec is the normalized job specification JSON the worker expands
	// to reconstruct the cell.
	Spec json.RawMessage `json:"spec"`
}

// LeaseRequest is the body of POST /v1/cluster/lease. The request
// long-polls: the coordinator holds it up to its lease-wait bound when
// no task is immediately available.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// ResultRequest is the body of POST /v1/cluster/result: one computed
// cell, as the canonical JSON of its value, or the error that final
// attempt produced.
type ResultRequest struct {
	WorkerID string `json:"worker_id"`
	TaskID   string `json:"task_id"`
	// Value is the canonical JSON of the cell value (nil when Error is
	// set).
	Value json.RawMessage `json:"value,omitempty"`
	// Error carries the compute failure; the coordinator surfaces it as
	// the cell's error exactly as a local failure would be.
	Error string `json:"error,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/cluster/heartbeat: it renews
// the worker's registration and the leases of the listed tasks.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Tasks    []string `json:"tasks,omitempty"`
}

// CacheGetRequest is the body of POST /v1/cluster/cache/get — the
// peer-fill probe workers (and peered daemons) send on a local cache
// miss.
type CacheGetRequest struct {
	Key string `json:"key"`
}

// CacheGetResponse carries a peer cache hit.
type CacheGetResponse struct {
	Value json.RawMessage `json:"value"`
}

// WorkerStatus is one row of GET /v1/cluster/workers. It deliberately
// carries no wall-clock fields: serialized documents stay free of
// nondeterministic values (the dettaint invariant).
type WorkerStatus struct {
	ID   string     `json:"id"`
	Info WorkerInfo `json:"info"`
	// Leased is how many tasks the worker currently holds.
	Leased int `json:"leased"`
	// Completed counts results this worker reported.
	Completed int64 `json:"completed"`
}

// Stats is the coordinator's counter snapshot, served as
// GET /v1/cluster/stats and folded into /metrics.
type Stats struct {
	// WorkersLive is the current registry population.
	WorkersLive int `json:"workers_live"`
	// TasksPending and TasksLeased gauge the scheduler queues.
	TasksPending int `json:"tasks_pending"`
	TasksLeased  int `json:"tasks_leased"`
	// Dispatched counts cells handed to the scheduler; Completed counts
	// cells that came back (success or cell error).
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	// Reassigned counts leases that expired (worker dead or stalled)
	// and were requeued for another worker.
	Reassigned int64 `json:"reassigned"`
	// WorkersExpired counts workers dropped for missing heartbeats.
	WorkersExpired int64 `json:"workers_expired"`
	// LateResults counts results reported for tasks no longer leased to
	// that worker (already reassigned, completed or canceled). Late
	// values are still accepted when the task is live — results are
	// content-deterministic, so any worker's answer is the answer.
	LateResults int64 `json:"late_results"`
	// Registered counts registrations accepted over the coordinator's
	// lifetime (re-registrations included).
	Registered int64 `json:"registered"`
}
