// handler.go serves the /v1/cluster wire surface over a Coordinator:
// worker lifecycle (register, lease, result, heartbeat), the peer-fill
// cache endpoint, and read-only observability (workers, stats). The
// handler is a plain http.Handler so cmd/nvmd composes it onto the same
// mux as the job API and /metrics.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// maxBodyBytes bounds request bodies; specs and cell values are small
// JSON documents, so anything past this is a broken or hostile client.
const maxBodyBytes = 8 << 20

// CacheSource is the read side a cluster handler serves peer-fill
// probes from; *memo.Cache satisfies it structurally. A nil source
// answers every probe with 404 (plain miss at the caller).
type CacheSource interface {
	Get(key string) (val []byte, ok bool)
}

// Handler serves /v1/cluster/* over a Coordinator.
type Handler struct {
	coord *Coordinator
	cache CacheSource
	mux   *http.ServeMux
}

// NewHandler builds the cluster HTTP surface. cache may be nil when the
// process runs without a memo cache; peer-fill probes then always miss.
func NewHandler(coord *Coordinator, cache CacheSource) *Handler {
	h := &Handler{coord: coord, cache: cache, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/cluster/register", h.register)
	h.mux.HandleFunc("POST /v1/cluster/lease", h.lease)
	h.mux.HandleFunc("POST /v1/cluster/result", h.result)
	h.mux.HandleFunc("POST /v1/cluster/heartbeat", h.heartbeat)
	h.mux.HandleFunc("POST /v1/cluster/cache/get", h.cacheGet)
	h.mux.HandleFunc("GET /v1/cluster/workers", h.workers)
	h.mux.HandleFunc("GET /v1/cluster/stats", h.stats)
	return h
}

// CacheHandler serves only the peer-fill probe (POST
// /v1/cluster/cache/get) over cache — for plain daemons that expose
// their memo cache to peers without running a coordinator.
func CacheHandler(cache CacheSource) http.Handler {
	h := &Handler{cache: cache, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/cluster/cache/get", h.cacheGet)
	return h
}

// ServeHTTP dispatches to the cluster mux.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) register(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := h.coord.Register(req.Info)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) lease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	t, err := h.coord.Lease(r.Context(), req.WorkerID)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	if t == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (h *Handler) result(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := h.coord.Report(req.WorkerID, req.TaskID, req.Value, req.Error); err != nil {
		writeClusterError(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (h *Handler) heartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := h.coord.Heartbeat(req.WorkerID, req.Tasks); err != nil {
		writeClusterError(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (h *Handler) cacheGet(w http.ResponseWriter, r *http.Request) {
	var req CacheGetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if h.cache == nil || req.Key == "" {
		http.Error(w, "no cache", http.StatusNotFound)
		return
	}
	val, ok := h.cache.Get(req.Key)
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, CacheGetResponse{Value: json.RawMessage(val)})
}

func (h *Handler) workers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.coord.Workers())
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.coord.Stats())
}

// MetricsText renders the coordinator counters as Prometheus text
// exposition lines, for composition into the daemon's /metrics page.
func MetricsText(s Stats) string {
	var b strings.Builder
	line := func(name string, v int64) {
		fmt.Fprintf(&b, "# TYPE nvmd_cluster_%s gauge\nnvmd_cluster_%s %d\n", name, name, v)
	}
	line("workers_live", int64(s.WorkersLive))
	line("tasks_pending", int64(s.TasksPending))
	line("tasks_leased", int64(s.TasksLeased))
	line("dispatched_total", s.Dispatched)
	line("completed_total", s.Completed)
	line("reassigned_total", s.Reassigned)
	line("workers_expired_total", s.WorkersExpired)
	line("late_results_total", s.LateResults)
	line("registered_total", s.Registered)
	return b.String()
}

// decodeJSON reads a bounded JSON body into v, answering 400 itself on
// failure; the caller proceeds only on true.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if len(body) > maxBodyBytes {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "decode body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON serializes v with a 200-class status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data)
}

// writeClusterError maps coordinator errors onto wire statuses: unknown
// worker is 404 (the worker's cue to re-register), incompatibility is
// 409, context expiry 503, anything else 500.
func writeClusterError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownWorker):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadWorker):
		code = http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}
