// worker.go is the worker half of the federation: a pull loop that
// registers with the coordinator, long-polls leases across N slots,
// computes each cell through an injected compute function (cmd/nvmd
// wires service.ComputeCell through the worker's memo cache), reports
// canonical JSON results, and heartbeats to keep its registration and
// leases alive. Everything recovers by re-registering: a 404 from the
// coordinator means "I forgot you" (TTL expiry or restart) and the
// worker simply introduces itself again — leases it still held become
// late results, which the coordinator accepts or drops safely because
// cell values are content-deterministic.
//
// CachePeer lives here too: the memo.Peer implementation that fills
// local cache misses from a coordinator's /v1/cluster/cache/get.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync" //lint:allow nondeterminism "worker slots are daemon plumbing; each cell's value is a pure function of its spec"
	"time"
)

// ComputeFunc computes one leased cell, returning the canonical JSON of
// its value. It must be deterministic in the task alone — the whole
// merge-equivalence argument rests on that.
type ComputeFunc func(ctx context.Context, t Task) (json.RawMessage, error)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the coordinator base URL (e.g. http://host:port).
	Coordinator string
	// Compute computes leased cells. Required.
	Compute ComputeFunc
	// Info is the capability record sent at registration; Proto is
	// stamped by RunWorker, and Slots defaults to 1.
	Info WorkerInfo
	// Client issues the HTTP requests (default: a fresh http.Client; the
	// lease long-poll is bounded per request, so no global timeout).
	Client *http.Client
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// worker is the connection state shared by the slot and heartbeat
// loops.
type worker struct {
	opts WorkerOptions

	mu sync.Mutex //lint:allow nondeterminism "guards the worker's connection state (id, active leases); see package doc"
	id string
	// active tracks leased task IDs for heartbeat renewal.
	active       map[string]bool
	leaseTimeout time.Duration
	leaseWait    time.Duration
}

// RunWorker registers with the coordinator and serves leases until ctx
// ends. It returns ctx.Err() on shutdown and a terminal error only when
// the coordinator rejects the worker as incompatible.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Compute == nil {
		return fmt.Errorf("cluster: WorkerOptions.Compute is required")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Info.Slots <= 0 {
		opts.Info.Slots = 1
	}
	opts.Info.Proto = ProtoVersion
	w := &worker{opts: opts, active: make(map[string]bool)}
	if err := w.register(ctx); err != nil {
		return err
	}

	var wg sync.WaitGroup //lint:allow nondeterminism "slot/heartbeat lifecycle tracking; every loop exits on ctx.Done"
	wg.Add(1)
	go func() { //lint:allow nondeterminism "heartbeat loop of the worker runtime; renews registration and leases"
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < opts.Info.Slots; i++ {
		wg.Add(1)
		go func() { //lint:allow nondeterminism "lease/compute/report slot loop of the worker runtime"
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait() //lint:allow ctxprop "bounded: every loop above returns when ctx is done, so this wait ends with the context"
	return ctx.Err()
}

// register introduces the worker, retrying transient failures with
// backoff until ctx ends; incompatibility (409) is terminal.
func (w *worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		status, err := w.post(ctx, "/v1/cluster/register", RegisterRequest{Info: w.opts.Info}, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			w.mu.Lock()
			w.id = resp.WorkerID
			w.leaseTimeout = time.Duration(resp.LeaseTimeoutMS) * time.Millisecond
			w.leaseWait = time.Duration(resp.LeaseWaitMS) * time.Millisecond
			w.mu.Unlock()
			w.opts.Logf("cluster: registered as %s", resp.WorkerID)
			return nil
		case err == nil && status == http.StatusConflict:
			return fmt.Errorf("cluster: coordinator rejected worker as incompatible")
		}
		if err != nil {
			w.opts.Logf("cluster: register: %v (retrying)", err)
		} else {
			w.opts.Logf("cluster: register: HTTP %d (retrying)", status)
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// reRegister refreshes the worker's identity after a 404, deduplicating
// concurrent slot failures: only the first caller for a given stale ID
// actually re-registers.
func (w *worker) reRegister(ctx context.Context, staleID string) error {
	w.mu.Lock()
	current := w.id
	w.mu.Unlock()
	if current != staleID {
		return nil // someone already re-registered
	}
	return w.register(ctx)
}

// slotLoop is one lease slot: lease, compute, report, forever.
func (w *worker) slotLoop(ctx context.Context) {
	for ctx.Err() == nil {
		id := w.currentID()
		t, status, err := w.lease(ctx, id)
		switch {
		case ctx.Err() != nil:
			return
		case status == http.StatusNotFound:
			if w.reRegister(ctx, id) != nil {
				return
			}
			continue
		case err != nil || t == nil:
			if err != nil {
				w.opts.Logf("cluster: lease: %v", err)
				w.pause(ctx, 200*time.Millisecond)
			}
			continue
		}
		w.track(t.ID, true)
		val, cerr := w.opts.Compute(ctx, *t)
		w.track(t.ID, false)
		if ctx.Err() != nil {
			return // shutdown mid-cell: the lease expires and the cell is reassigned
		}
		req := ResultRequest{TaskID: t.ID, Value: val}
		if cerr != nil {
			req.Value, req.Error = nil, cerr.Error()
		}
		w.report(ctx, req)
	}
}

// lease long-polls the coordinator for one task; a 204 means none.
func (w *worker) lease(ctx context.Context, id string) (*Task, int, error) {
	w.mu.Lock()
	wait := w.leaseWait
	w.mu.Unlock()
	if wait <= 0 {
		wait = DefaultLeaseWait
	}
	// Bound the poll at twice the server's hold so a hung coordinator
	// surfaces as an error instead of a stuck slot.
	lctx, cancel := context.WithTimeout(ctx, 2*wait)
	defer cancel()
	var t Task
	status, err := w.post(lctx, "/v1/cluster/lease", LeaseRequest{WorkerID: id}, &t)
	if err != nil || status != http.StatusOK {
		return nil, status, err
	}
	return &t, status, nil
}

// report delivers a result, retrying transient failures and following
// the re-register path on 404 — the coordinator accepts results from
// any live worker, so re-identifying mid-report is safe.
func (w *worker) report(ctx context.Context, req ResultRequest) {
	for attempt := 0; attempt < 5 && ctx.Err() == nil; attempt++ {
		req.WorkerID = w.currentID()
		status, err := w.post(ctx, "/v1/cluster/result", req, nil)
		switch {
		case err == nil && status == http.StatusOK:
			return
		case err == nil && status == http.StatusNotFound:
			if w.reRegister(ctx, req.WorkerID) != nil {
				return
			}
		default:
			w.opts.Logf("cluster: report %s: status=%d err=%v", req.TaskID, status, err)
			w.pause(ctx, 200*time.Millisecond)
		}
	}
}

// heartbeatLoop renews the registration and active leases at a third of
// the lease timeout, re-registering when forgotten.
func (w *worker) heartbeatLoop(ctx context.Context) {
	for ctx.Err() == nil {
		w.mu.Lock()
		period := w.leaseTimeout / 3
		w.mu.Unlock()
		if period <= 0 {
			period = DefaultLeaseTimeout / 3
		}
		if period < 50*time.Millisecond {
			period = 50 * time.Millisecond
		}
		if !w.pause(ctx, period) {
			return
		}
		id := w.currentID()
		req := HeartbeatRequest{WorkerID: id, Tasks: w.activeTasks()}
		status, err := w.post(ctx, "/v1/cluster/heartbeat", req, nil)
		if err == nil && status == http.StatusNotFound {
			if w.reRegister(ctx, id) != nil {
				return
			}
		} else if err != nil {
			w.opts.Logf("cluster: heartbeat: %v", err)
		}
	}
}

// currentID snapshots the worker's registration ID.
func (w *worker) currentID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// track records (or clears) an active lease for heartbeat renewal.
func (w *worker) track(taskID string, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if on {
		w.active[taskID] = true
	} else {
		delete(w.active, taskID)
	}
}

// activeTasks snapshots the active lease IDs.
func (w *worker) activeTasks() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.active))
	for id := range w.active {
		out = append(out, id)
	}
	return out
}

// pause sleeps d, selectably on ctx; it reports whether the full pause
// elapsed (false means ctx ended).
func (w *worker) pause(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		timer.Stop()
		return false
	}
}

// post issues one JSON POST against the coordinator, decoding a 200
// response into out (when non-nil) and returning the HTTP status.
func (w *worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("cluster: request %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// CachePeer fills local memo-cache misses from a coordinator's
// /v1/cluster/cache/get endpoint; it implements memo.Peer. Failures of
// any kind are plain misses — peering is an optimization, never a
// dependency.
type CachePeer struct {
	// URL is the peer base URL (a coordinator, or any nvmd daemon
	// exposing the cluster cache surface).
	URL string
	// Client issues the probes (default: 5-second-timeout client).
	Client *http.Client
}

// Fetch probes the peer for key, satisfying memo.Peer.
func (p *CachePeer) Fetch(key string) ([]byte, bool) {
	client := p.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	body, err := json.Marshal(CacheGetRequest{Key: key})
	if err != nil {
		return nil, false
	}
	resp, err := client.Post(p.URL+"/v1/cluster/cache/get", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, false
	}
	var out CacheGetResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, false
	}
	return out.Value, len(out.Value) > 0
}
