package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Panicmsg enforces the repository's panic-message convention: every
// panic that carries a message must prefix it with the package name,
// "pkg: message" (see internal/ecp/ecp.go and
// internal/salvage/salvage.go for the canonical form). The rule checks
// string literals, "prefix" + expr concatenations, fmt.Sprintf /
// fmt.Errorf with a literal format, and flags panic(err) with a bare
// error value, which loses the prefix entirely.
var Panicmsg = &Analyzer{
	Name: "panicmsg",
	Doc: `require panic messages to carry the "pkg: " prefix so a panic in a ` +
		"deep simulation stack identifies the package that gave up",
	Run: runPanicmsg,
}

func runPanicmsg(p *Pass) {
	prefix := p.Pkg.Name + ": "
	p.inspectFiles(func(_ *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, ok := p.Pkg.Info.Uses[id].(*types.Builtin); !ok {
			return true
		}
		checkPanicArg(p, prefix, ast.Unparen(call.Args[0]))
		return true
	})
}

// checkPanicArg validates one panic argument against the required
// "pkg: " prefix.
func checkPanicArg(p *Pass, prefix string, arg ast.Expr) {
	if msg, ok := literalPrefix(p, arg); ok {
		if !strings.HasPrefix(msg, prefix) {
			p.Reportf(arg.Pos(), "panic message %q does not start with %q", clip(msg), prefix)
		}
		return
	}
	if isErrorValue(p, arg) {
		p.Reportf(arg.Pos(),
			"panic with a bare error loses the %q prefix; wrap it: panic(fmt.Errorf(%q, err))",
			prefix, prefix+"...: %v")
	}
}

// literalPrefix extracts the statically known leading text of a panic
// argument: a string literal, the left side of a "lit" + expr
// concatenation, or the literal format of fmt.Sprintf / fmt.Errorf.
func literalPrefix(p *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(e.Value); err == nil {
			return s, true
		}
	case *ast.BinaryExpr:
		return literalPrefix(p, e.X)
	case *ast.CallExpr:
		fn := calleeFunc(p, e)
		if fn == nil || len(e.Args) == 0 {
			return "", false
		}
		switch fn.FullName() {
		case "fmt.Sprintf", "fmt.Errorf", "fmt.Sprint", "fmt.Sprintln":
			return literalPrefix(p, e.Args[0])
		}
	}
	return "", false
}

// isErrorValue reports whether e's type implements the error interface.
func isErrorValue(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// clip shortens long messages for diagnostics.
func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
