// Package floatcmp exercises the floatcmp rule: exact float equality is
// flagged, ordered comparisons, zero guards, integer equality and the
// approved tolerance helper are not.
package floatcmp

// Equalish compares float64 values the wrong way.
func Equalish(a, b float64) bool {
	return a == b // want `floating-point == comparison; use stats.ApproxEqual`
}

// Different compares float32 values the wrong way.
func Different(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// MixedConst compares against a non-zero constant, still wrong.
func MixedConst(a float64) bool {
	return a == 0.5 // want `floating-point == comparison`
}

// ZeroGuard is the idiomatic division guard and is allowed.
func ZeroGuard(d float64) float64 {
	if d == 0 {
		return 0
	}
	return 1 / d
}

// Ordered comparisons are always fine.
func Ordered(a, b float64) bool { return a < b || a > b }

// Ints may use == freely.
func Ints(a, b int) bool { return a == b }

// approxEqual is the package's tolerance helper; the test approves it by
// configuration, so its internal exact comparison is exempt.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// UsesHelper shows the approved path.
func UsesHelper(a, b float64) bool { return approxEqual(a, b, 1e-12) }
