// Package errdrop exercises the errdrop rule: silently discarded error
// results are flagged; handled errors, explicit "_ =" discards and
// allowlisted callees are not.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

// Bad discards errors in every statement form the rule catches.
func Bad(f *os.File) {
	os.Remove("scratch") // want `error result of os.Remove is discarded`
	defer f.Close()      // want `error result of \(\*os.File\).Close is discarded`
	go f.Sync()          // want `error result of \(\*os.File\).Sync is discarded`
}

// Good handles or visibly discards every error.
func Good(f *os.File) error {
	if err := os.Remove("scratch"); err != nil {
		return err
	}
	_ = f.Close()
	fmt.Println("done")
	var sb strings.Builder
	sb.WriteString("x")
	return nil
}

// NoError calls functions without error results; nothing to flag.
func NoError() {
	var sb strings.Builder
	sb.Reset()
	helperNoErr()
}

func helperNoErr() {}
