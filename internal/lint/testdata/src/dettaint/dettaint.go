// Package dettaint is the golden corpus for the determinism-taint rule:
// map-iteration-, clock- and randomness-derived values must not flow
// into serialization.
package dettaint

import (
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"time"
)

type doc struct {
	Names []string `json:"names"`
}

// mapOrderLeak serializes map keys in iteration order — the bytes differ
// between runs.
func mapOrderLeak(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return json.Marshal(doc{Names: names}) // want `\[dettaint\] value derived from map iteration order is serialized by encoding/json.Marshal`
}

// mapOrderSorted canonicalizes with sort.Strings first — clean.
func mapOrderSorted(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return json.Marshal(doc{Names: names})
}

// clockLeak serializes a wall-clock read.
func clockLeak() ([]byte, error) {
	stamp := time.Now()
	return json.Marshal(stamp) // want `value derived from the wall clock \(time.Now\) is serialized`
}

// envLeak serializes a process-environment read.
func envLeak() ([]byte, error) {
	home := os.Getenv("HOME")
	return json.Marshal(home) // want `value derived from the process environment \(os.Getenv\) is serialized`
}

// randLeak serializes global randomness.
func randLeak() ([]byte, error) {
	n := rand.Int()
	return json.Marshal(n) // want `value derived from global randomness \(math/rand\) is serialized`
}

// helperStamp hides the clock read behind a same-package call; the
// package fixpoint still sees through it.
func helperStamp() time.Time { return time.Now() }

func helperLeak() ([]byte, error) {
	v := helperStamp()
	return json.Marshal(v) // want `value derived from the wall clock \(time.Now\) \(via helperStamp\) is serialized`
}

// encoderLeak covers the method-value sink form.
func encoderLeak(m map[string]int, enc *json.Encoder) error {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return enc.Encode(keys) // want `map iteration order is serialized by \(\*encoding/json.Encoder\).Encode`
}

// clean serializes caller-supplied data — nothing to report.
func clean(vals []string) ([]byte, error) {
	return json.Marshal(doc{Names: vals})
}
