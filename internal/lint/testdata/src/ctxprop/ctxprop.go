// Package ctxprop is the golden corpus for the context-propagation rule:
// in a goroutine-spawning package, blocking points in context-reached
// functions must be selectable on the context.
package ctxprop

import (
	"context"
	"sync"
)

// spawn makes this a goroutine-spawning package, which gates the rule on.
func spawn() {
	go func() {}()
}

func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `\[ctxprop\] blocking channel send outside a select`
}

func bareRecv(ctx context.Context, ch chan int) {
	<-ch // want `blocking channel receive outside a select`
}

func recvAssign(ctx context.Context, ch chan int) int {
	v := <-ch // want `blocking channel receive outside a select`
	return v
}

func rangeChan(ctx context.Context, ch chan int) {
	for range ch { // want `range over a channel blocks until the channel closes`
	}
}

func wgWait(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `\(\*sync.WaitGroup\).Wait cannot be interrupted by context cancellation`
}

// selectedSend multiplexes on the context — clean.
func selectedSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// selectedRecv multiplexes the receive — clean.
func selectedRecv(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// noContext has no context in scope: the rule enforces propagation of a
// context you have, not invention of one you don't.
func noContext(ch chan int, wg *sync.WaitGroup) {
	ch <- 1
	<-ch
	wg.Wait()
}
