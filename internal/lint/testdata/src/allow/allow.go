// Package allow is the golden corpus for the //lint:allow suppression
// directive: a well-formed directive waives exactly one rule on its own
// line (and the line below, when it stands alone); malformed directives
// are findings themselves and suppress nothing. The test runs the
// nondeterminism analyzer over this package.
package allow

import "time"

// trailing is suppressed by a directive on the offending line.
func trailing() time.Time {
	return time.Now() //lint:allow nondeterminism "golden corpus: trailing directive covers its own line"
}

// standalone is suppressed by a directive on the line above.
func standalone() time.Time {
	//lint:allow nondeterminism "golden corpus: standalone directive covers the next line"
	return time.Now()
}

// bare has no directive and is reported.
func bare() time.Time {
	return time.Now() // want `\[nondeterminism\] call to time.Now`
}

// wrongRule carries a well-formed directive for a different rule, which
// must not suppress the nondeterminism finding.
func wrongRule() time.Time {
	//lint:allow floatcmp "golden corpus: a directive for another rule must not suppress this one"
	return time.Now() // want `call to time.Now`
}

// tooFar shows the directive's reach is exactly one line: a blank line in
// between breaks the coverage.
func tooFar() time.Time {
	//lint:allow nondeterminism "golden corpus: reach is one line, not two"

	return time.Now() // want `call to time.Now`
}

// unknownRule: the malformed directive is a finding of the pseudo-rule
// "directive" and suppresses nothing.
func unknownRule() time.Time {
	//lint:allow nosuchrule "golden corpus" // want `\[directive\] "nosuchrule" is not a registered rule`
	return time.Now() // want `call to time.Now`
}

// missingReason: a directive without a quoted reason is a finding and
// suppresses nothing.
func missingReason() time.Time {
	//lint:allow nondeterminism // want `\[directive\] lint:allow nondeterminism: reason must be one quoted string`
	return time.Now() // want `call to time.Now`
}
