//go:build lintgolden_excluded

// This file is intentionally not valid Go. The loader must skip it via
// its build constraint before it ever reaches the parser, proving golden
// corpora can hold deliberately broken files.

package allow

this is not a Go declaration {{{
