// Package mutexblocking is the golden corpus for the blocking-under-lock
// rule: no channel operations, file I/O or sleeps while a sync mutex is
// provably held.
package mutexblocking

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	state map[string]int
}

func sendUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `\[mutexblocking\] a channel send while a mutex is held`
	s.mu.Unlock()
}

func ioUnderDeferredLock(s *store, path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want `file I/O \(os.ReadFile\) while a mutex is held`
}

func sleepUnderLock(s *store) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `a sleep \(time.Sleep\) while a mutex is held`
	s.mu.Unlock()
}

func recvUnderRWLock(mu *sync.RWMutex, ch chan int) int {
	mu.RLock()
	v := <-ch // want `a channel receive while a mutex is held`
	mu.RUnlock()
	return v
}

// ioAfterUnlock snapshots under the lock and does the slow work after —
// the pattern the diagnostic recommends.
func ioAfterUnlock(s *store, path string) ([]byte, error) {
	s.mu.Lock()
	n := len(s.state)
	s.mu.Unlock()
	_ = n
	return os.ReadFile(path)
}

// nonBlockingSelectUnderLock never blocks: the select has a default.
func nonBlockingSelectUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// closureScopes pins the scoping fix: a lock taken (and deferred-unlocked)
// inside a function literal must not put the enclosing function's channel
// send under that lock.
func closureScopes(s *store, ch chan int, vals []int) {
	emit := func(v int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.state["n"] = v
	}
	for _, v := range vals {
		emit(v)
		ch <- v
	}
}
