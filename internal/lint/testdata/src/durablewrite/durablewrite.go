// Package durablewrite exercises the durablewrite rule: raw
// os.WriteFile and os.Rename calls are torn-write hazards and are
// flagged; reads, removes, same-named local helpers and //lint:allow
// directives with a reason are not.
package durablewrite

import "os"

// Bad publishes durable state with the raw primitives in both shapes the
// rule catches.
func Bad(path string, data []byte) error {
	if err := os.WriteFile(path+".tmp", data, 0o644); err != nil { // want `call to os.WriteFile: a torn write on crash leaves a partial file`
		return err
	}
	return os.Rename(path+".tmp", path) // want `call to os.Rename: a rename without the temp-write-fsync prelude`
}

// Good touches the filesystem in ways that cannot tear durable state.
func Good(path string) error {
	if _, err := os.ReadFile(path); err != nil {
		return err
	}
	if err := os.MkdirAll(path+".d", 0o755); err != nil {
		return err
	}
	return os.Remove(path + ".d")
}

// store is a local type whose methods shadow the banned names; calls to
// them resolve to this package, not os, and are not findings.
type store struct{}

// WriteFile is a same-named local helper the rule must not confuse with
// os.WriteFile.
func (store) WriteFile(path string, data []byte) error { return nil }

// Rename is a same-named local helper the rule must not confuse with
// os.Rename.
func (store) Rename(oldpath, newpath string) error { return nil }

// Locals drives the same-named helpers and a package-local WriteFile.
func Locals() error {
	var s store
	if err := s.WriteFile("x", nil); err != nil {
		return err
	}
	if err := s.Rename("x", "y"); err != nil {
		return err
	}
	return WriteFile("x", nil)
}

// WriteFile is a package-level function sharing os.WriteFile's name.
func WriteFile(path string, data []byte) error { return nil }

// Sanctioned is the advisory-write escape hatch: a line-level directive
// with a reason waives the finding at exactly this site.
func Sanctioned(path string, data []byte) error {
	//lint:allow durablewrite "golden corpus: advisory file whose loss on crash is harmless"
	return os.WriteFile(path, data, 0o644)
}
