// Package jsonschema is the golden corpus for the schema-stability rule:
// every struct field reachable from a configured marshal root needs an
// explicit json tag. The test configures Root as the marshal root.
package jsonschema

import "time"

// Root is the marshal root the golden test configures.
type Root struct {
	Tagged   string    `json:"tagged"`
	Untagged int       // want `\[jsonschema\] field .*jsonschema.Root.Untagged reaches a marshal root without an explicit json tag`
	Nested   Nested    `json:"nested"`
	Pointers []*Deep   `json:"pointers"`
	Skipped  Hidden    `json:"-"`
	Stamp    time.Time `json:"stamp"`
	secret   int
}

// Nested is reachable through Root.Nested.
type Nested struct {
	Inner  string // want `field .*jsonschema.Nested.Inner reaches a marshal root`
	Tagged bool   `json:"tagged"`
}

// Deep is reachable through a slice of pointers.
type Deep struct {
	Leaf int // want `field .*jsonschema.Deep.Leaf reaches a marshal root`
}

// Hidden sits behind json:"-": its untagged field is unreachable and must
// not be reported.
type Hidden struct {
	NotReached int
}

// unreferenced is not reachable from Root at all.
type unreferenced struct {
	AlsoNotReached int
}

var _ = Root{secret: 0}
var _ = unreferenced{}
