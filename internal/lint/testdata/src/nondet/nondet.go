// Package nondet exercises the nondeterminism rule: banned imports and
// banned calls are flagged, explicit plumbing is not.
package nondet

import (
	"math/rand" // want `import of math/rand: global PRNG state breaks bit-for-bit reproducibility`
	"os"
	"time"
)

// Bad reads every nondeterministic source the rule bans.
func Bad() int64 {
	t := time.Now()                        // want `call to time.Now: wall-clock reads make runs irreproducible`
	d := time.Since(t)                     // want `call to time.Since: wall-clock reads`
	_ = os.Getenv("SEED")                  // want `call to os.Getenv: environment reads hide configuration`
	if _, ok := os.LookupEnv("SEED"); ok { // want `call to os.LookupEnv: environment reads`
		return 0
	}
	return int64(rand.Int()) + int64(d)
}

// Good threads time and configuration through explicitly: referencing
// the time package for types, doing arithmetic on supplied values, and
// deriving randomness from an explicit seed are all fine.
func Good(now time.Time, seed uint64) uint64 {
	seed += 0x9e3779b97f4a7c15
	z := seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ uint64(now.Unix())
}
