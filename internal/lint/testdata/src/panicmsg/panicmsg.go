// Package panicmsg exercises the panicmsg rule: messages must start
// with "panicmsg: ", bare error panics are flagged, and conforming
// literals, concatenations and fmt calls pass.
package panicmsg

import (
	"errors"
	"fmt"
)

// Bad panics without the package prefix.
func Bad(n int) {
	if n < 0 {
		panic("negative n") // want `panic message "negative n" does not start with "panicmsg: "`
	}
	if n > 10 {
		panic(fmt.Sprintf("n too big: %d", n)) // want `does not start with "panicmsg: "`
	}
	if n == 3 {
		panic(errors.New("boom")) // want `panic with a bare error loses the "panicmsg: " prefix`
	}
}

// Good panics follow the convention in every supported shape.
func Good(n int, err error) {
	if n < 0 {
		panic("panicmsg: negative n")
	}
	if n > 10 {
		panic(fmt.Sprintf("panicmsg: n %d out of range", n))
	}
	if n == 3 {
		panic(fmt.Errorf("panicmsg: wrapped: %w", err))
	}
	if n == 4 {
		panic("panicmsg: " + err.Error())
	}
}

// Opaque panics with a value the rule cannot see through; it stays
// silent rather than guessing.
func Opaque(v any) {
	panic(v)
}
