// Package concurrent exercises the nondeterminism rule's concurrency
// bans: sync/sync-atomic imports and go statements are reserved for the
// internal/runner worker pool (exempted by path in DefaultConfig) and
// must be flagged everywhere else.
package concurrent

import (
	"sync"        // want `import of sync: scheduler-dependent interleaving breaks reproducibility`
	"sync/atomic" // want `import of sync/atomic: scheduler-dependent interleaving breaks reproducibility`
)

// Bad spawns its own goroutine and synchronizes with locks and atomics —
// exactly the concurrency a simulation package must not contain.
func Bad() int64 {
	var n int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `go statement: scheduler-dependent interleaving breaks reproducibility`
		atomic.AddInt64(&n, 1)
		wg.Done()
	}()
	wg.Wait()
	return atomic.LoadInt64(&n)
}

// Good shows the sanctioned shapes: receiving on a supplied cancellation
// channel (how sim.Config.Done works) involves no goroutines or locks of
// its own.
func Good(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
