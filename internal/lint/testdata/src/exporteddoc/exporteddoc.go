// Package exporteddoc exercises the exporteddoc rule: exported
// identifiers need leading doc comments; unexported ones and documented
// groups do not.
package exporteddoc

// Documented is fine.
const Documented = 1

const Undocumented = 2 // want `exported const Undocumented is undocumented`

// Widget is documented.
type Widget struct{}

type Gadget struct{} // want `exported type Gadget is undocumented`

// Run is documented.
func (Widget) Run() {}

func (Widget) Stop() {} // want `exported method Stop is undocumented`

func Exported() {} // want `exported function Exported is undocumented`

var (
	NoDoc int // want `exported var NoDoc is undocumented`

	// WithDoc carries a spec-level doc comment.
	WithDoc int
)

// Grouped declarations are covered by the group doc comment.
var (
	GroupA int
	GroupB int
)

func helper() {}

type secret struct{}

// Exported methods on unexported receivers are unreachable via godoc
// and are not flagged.
func (secret) Visible() {}

var _ = helper
