// directive.go implements the line-level suppression directive
//
//	//lint:allow <rule> "reason"
//
// which waives one rule's findings on the directive's own line and, when
// the directive stands alone on a comment line, on the line directly
// below it. A reason is mandatory: the directive exists so every waiver
// is a reviewed, self-justifying decision in the diff, replacing the old
// directory-level exemption lists. A directive with an unknown rule, a
// missing reason, or an empty reason is itself a finding (rule
// "directive"), and a malformed directive never suppresses anything.
package lint

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// DirectiveRule is the pseudo-rule name under which malformed
// //lint:allow directives are reported. It is not part of the registry:
// directive validation is a driver responsibility and cannot be disabled
// or suppressed.
const DirectiveRule = "directive"

// allowRe matches the directive comment. The tail (rule and reason) is
// parsed by parseDirective so malformed tails produce findings instead of
// being silently ignored.
var allowRe = regexp.MustCompile(`^//lint:allow(\s+.*)?$`)

// allowSet indexes honored directives: file -> line -> rules waived on
// that line.
type allowSet map[string]map[int]map[string]bool

// allows reports whether rule is waived at file:line.
func (s allowSet) allows(file string, line int, rule string) bool {
	return s[file][line][rule]
}

// add records one honored directive covering file:line.
func (s allowSet) add(file string, line int, rule string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = make(map[string]bool)
		byLine[line] = rules
	}
	rules[rule] = true
}

// collectDirectives scans every comment of the package for //lint:allow
// directives. Well-formed directives are indexed for suppression;
// malformed ones become DirectiveRule diagnostics. A directive on the
// same line as code covers that line; a directive alone on its line
// covers itself and the next line.
func collectDirectives(fset *token.FileSet, pkg *Package) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, comment := range group.List {
				m := allowRe.FindStringSubmatch(comment.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(comment.Pos())
				rel := pkg.relFile(pos.Filename)
				rule, problem := parseDirective(m[1])
				if problem != "" {
					pos.Filename = rel
					diags = append(diags, Diagnostic{Pos: pos, Rule: DirectiveRule, Msg: problem})
					continue
				}
				allows.add(rel, pos.Line, rule)
				allows.add(rel, pos.Line+1, rule)
			}
		}
	}
	return allows, diags
}

// parseDirective validates the text after "//lint:allow" and returns the
// waived rule name, or a non-empty problem description when the directive
// is malformed.
func parseDirective(tail string) (rule, problem string) {
	fields := strings.Fields(tail)
	if len(fields) == 0 {
		return "", `lint:allow needs a rule and a quoted reason: //lint:allow <rule> "reason"`
	}
	rule = fields[0]
	if ByName(rule) == nil {
		return "", strconv.Quote(rule) + " is not a registered rule; run maxwelint -list for the rule set"
	}
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tail), rule))
	if rest == "" {
		return "", "lint:allow " + rule + " needs a quoted reason explaining the waiver"
	}
	reason, err := strconv.Unquote(rest)
	if err != nil {
		return "", "lint:allow " + rule + ": reason must be one quoted string, got " + strconv.Quote(rest)
	}
	if strings.TrimSpace(reason) == "" {
		return "", "lint:allow " + rule + ": reason must not be empty"
	}
	return rule, ""
}
