// Package lint implements maxwelint, the repository's static-analysis
// gate. It is built entirely on the standard library (go/ast, go/parser,
// go/token, go/types) and enforces the invariants the reproduction
// depends on:
//
//   - nondeterminism — simulation packages must not read wall-clock time,
//     the process environment, or math/rand global state; all randomness
//     flows through internal/xrand so every run is bit-for-bit
//     reproducible (see DESIGN.md, "Determinism invariant").
//   - floatcmp — floating-point values must not be compared with == / !=
//     outside the approved tolerance helpers in internal/stats.
//   - panicmsg — panic messages follow the "pkg: message" convention used
//     across the internal packages.
//   - exporteddoc — exported identifiers carry doc comments.
//   - errdrop — error return values must be handled or explicitly
//     discarded with "_ =".
//
// The Run driver loads packages with Loader, applies every enabled
// Analyzer, and returns diagnostics formatted as
// "file:line: [rule] message". cmd/maxwelint is the command-line front
// end; RunGolden is the analysistest-style harness the rule tests use.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	// Pos locates the finding. Filename is relative to the module root
	// when the package was loaded through Run.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic in the canonical
// "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, configuration and
	// the command line ("nondeterminism", "floatcmp", ...).
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run applies the rule to pass.Pkg.
	Run func(pass *Pass)
}

// All returns every registered analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{Nondeterminism, Floatcmp, Panicmsg, Exporteddoc, Errdrop}
}

// ByName returns the analyzer registered under name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Config selects which rules run and where they are allowed to report.
type Config struct {
	// Enable lists rule names to run. Empty means every registered rule.
	Enable []string
	// Disable lists rule names to skip; it takes precedence over Enable.
	Disable []string
	// Exempt maps a rule name to slash-separated path prefixes (relative
	// to the module root) whose files that rule must not report on. The
	// pseudo-rule "*" exempts a prefix from every rule.
	Exempt map[string][]string
	// FloatcmpAllowZero permits == / != against an exact constant zero,
	// the idiomatic division-by-zero guard.
	FloatcmpAllowZero bool
	// FloatcmpApproved lists tolerance helpers whose bodies may compare
	// floats exactly. Entries are matched as suffixes of the fully
	// qualified function name (for example
	// "maxwe/internal/stats.ApproxEqual").
	FloatcmpApproved []string
	// ErrdropAllow lists fully qualified callee prefixes whose discarded
	// error results are tolerated (for example "fmt.Print", which covers
	// Print, Printf and Println).
	ErrdropAllow []string
}

// DefaultConfig returns the repository policy: every rule enabled;
// nondeterminism, panicmsg and exporteddoc exempt command-line front ends
// and examples (they may read flags, print, and panic on internal bugs
// however they like); zero-guards allowed; stats.ApproxEqual approved;
// fmt printing and never-failing buffer writers allowed to drop errors.
func DefaultConfig() *Config {
	return &Config{
		Exempt: map[string][]string{
			// internal/runner is the experiment supervisor, not a
			// simulation package: wall-clock cell deadlines and
			// checkpoint file I/O are its job. internal/service (and its
			// client) is the HTTP daemon layer on top of it — goroutines,
			// sync and wall-clock metrics are its job too. internal/
			// faultinject is deliberately NOT exempt — fault plans must
			// stay deterministic like every other simulation input.
			"nondeterminism": {"cmd/", "examples/", "internal/runner/", "internal/service/"},
			"panicmsg":       {"cmd/", "examples/"},
			"exporteddoc":    {"cmd/", "examples/"},
		},
		FloatcmpAllowZero: true,
		FloatcmpApproved: []string{
			"maxwe/internal/stats.ApproxEqual",
			"maxwe/internal/stats.ApproxEqualRel",
		},
		ErrdropAllow: []string{
			"fmt.Print",
			"fmt.Fprint",
			"(*strings.Builder).",
			"(*bytes.Buffer).",
		},
	}
}

// Analyzers resolves the Enable/Disable selections against the registry.
// Unknown names in either list produce an error so typos fail loudly.
func (c *Config) Analyzers() ([]*Analyzer, error) {
	disabled := make(map[string]bool, len(c.Disable))
	for _, name := range c.Disable {
		if ByName(name) == nil {
			return nil, fmt.Errorf("lint: unknown rule %q in disable list", name)
		}
		disabled[name] = true
	}
	var selected []*Analyzer
	if len(c.Enable) == 0 {
		selected = All()
	} else {
		for _, name := range c.Enable {
			a := ByName(name)
			if a == nil {
				return nil, fmt.Errorf("lint: unknown rule %q in enable list", name)
			}
			selected = append(selected, a)
		}
	}
	out := selected[:0]
	for _, a := range selected {
		if !disabled[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// exempt reports whether rule must stay silent about relFile.
func (c *Config) exempt(rule, relFile string) bool {
	relFile = path.Clean(strings.ReplaceAll(relFile, "\\", "/"))
	for _, key := range []string{rule, "*"} {
		for _, prefix := range c.Exempt[key] {
			if strings.HasPrefix(relFile, prefix) {
				return true
			}
		}
	}
	return false
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Pkg is the loaded package under analysis.
	Pkg *Package
	// Cfg is the active configuration (never nil).
	Cfg *Config

	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless the file is exempt from the
// running rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	rel := p.Pkg.relFile(position.Filename)
	if p.Cfg.exempt(p.rule, rel) {
		return
	}
	position.Filename = rel
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  position,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// inspectFiles walks every file of the pass's package with fn, the
// shared traversal all rules use.
func (p *Pass) inspectFiles(fn func(file *ast.File, n ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool { return fn(f, n) })
	}
}

// Run loads every package matched by patterns under the module root and
// applies the analyzers selected by cfg, returning diagnostics sorted by
// file, line and column. A nil cfg means DefaultConfig.
func Run(root string, patterns []string, cfg *Config) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	analyzers, err := cfg.Analyzers()
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadPackage(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		diags = append(diags, analyze(loader.Fset, pkg, cfg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// analyze applies every analyzer to one loaded package.
func analyze(fset *token.FileSet, pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkg: pkg, Cfg: cfg, rule: a.Name, diags: &diags}
		a.Run(pass)
	}
	return diags
}

// sortDiagnostics orders diagnostics by file, then line, column, rule.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
