// Package lint implements maxwelint, the repository's static-analysis
// gate. It is built entirely on the standard library (go/ast, go/parser,
// go/token, go/types) and enforces the invariants the reproduction
// depends on:
//
//   - nondeterminism — simulation packages must not read wall-clock time,
//     the process environment, or math/rand global state; all randomness
//     flows through internal/xrand so every run is bit-for-bit
//     reproducible (see DESIGN.md, "Determinism invariant").
//   - floatcmp — floating-point values must not be compared with == / !=
//     outside the approved tolerance helpers in internal/stats.
//   - panicmsg — panic messages follow the "pkg: message" convention used
//     across the internal packages.
//   - exporteddoc — exported identifiers carry doc comments.
//   - errdrop — error return values must be handled or explicitly
//     discarded with "_ =".
//   - dettaint — map-iteration-, clock- and randomness-derived values
//     must not flow into json/gob/xml serialization (the determinism
//     surface: checkpoints, fingerprints, result documents).
//   - ctxprop — in goroutine-spawning packages, blocking channel
//     operations and Wait calls in context-reached functions must be
//     selectable on the context, so shutdown cannot hang.
//   - mutexblocking — no channel operations, HTTP round trips, file I/O
//     or sleeps while a sync.Mutex/RWMutex is held.
//   - jsonschema — every struct field reachable from the configured
//     marshal roots carries an explicit json tag, and the rendered
//     schema matches its golden file.
//   - durablewrite — raw os.WriteFile / os.Rename are forbidden outside
//     internal/atomicio; durable state goes through atomicio.WriteFile
//     so a crash can never tear a committed file.
//
// There are no directory-level waivers: a finding is silenced only by a
// line-level directive, //lint:allow <rule> "reason", whose reason is
// mandatory (see directive.go).
//
// The Run driver loads packages with Loader (full go/types information,
// module-local imports type-checked from source, standard library via
// export data), applies every enabled Analyzer, and returns diagnostics
// formatted as "file:line: [rule] message". cmd/maxwelint is the
// command-line front end; RunGolden is the analysistest-style harness
// the rule tests use.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	// Pos locates the finding. Filename is relative to the module root
	// when the package was loaded through Run.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic in the canonical
// "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, configuration and
	// the command line ("nondeterminism", "floatcmp", ...).
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run applies the rule to pass.Pkg.
	Run func(pass *Pass)
}

// All returns every registered analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, Floatcmp, Panicmsg, Exporteddoc, Errdrop,
		Dettaint, Ctxprop, Mutexblocking, Jsonschema, Durablewrite,
	}
}

// ByName returns the analyzer registered under name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Config selects which rules run and where they are allowed to report.
type Config struct {
	// Enable lists rule names to run. Empty means every registered rule.
	Enable []string
	// Disable lists rule names to skip; it takes precedence over Enable.
	Disable []string
	// Exempt maps a rule name to slash-separated path prefixes (relative
	// to the module root) whose files that rule must not report on. The
	// pseudo-rule "*" exempts a prefix from every rule.
	Exempt map[string][]string
	// FloatcmpAllowZero permits == / != against an exact constant zero,
	// the idiomatic division-by-zero guard.
	FloatcmpAllowZero bool
	// FloatcmpApproved lists tolerance helpers whose bodies may compare
	// floats exactly. Entries are matched as suffixes of the fully
	// qualified function name (for example
	// "maxwe/internal/stats.ApproxEqual").
	FloatcmpApproved []string
	// ErrdropAllow lists fully qualified callee prefixes whose discarded
	// error results are tolerated (for example "fmt.Print", which covers
	// Print, Printf and Println).
	ErrdropAllow []string
	// SchemaRoots maps package import paths to the named types whose
	// json-marshal closure the jsonschema rule checks for explicit tags.
	SchemaRoots map[string][]string
	// SchemaGolden maps "<import path>.<Type>" schema roots to the golden
	// schema file (relative to the module root) their rendered schema
	// must match. Regenerate with WriteSchemaGolden (make lint-schema).
	SchemaGolden map[string]string
}

// DefaultConfig returns the repository policy: every rule enabled and no
// directory-level exemptions — every waiver in the tree is a line-level
// //lint:allow directive with a mandatory reason, so each one is visible
// and justified at the exact site it covers (the concurrent supervisor
// and daemon packages carry a handful; the simulation packages carry
// none). Zero-guards are allowed in float comparisons, stats.ApproxEqual
// is the approved tolerance helper, fmt printing and never-failing
// buffer writers may drop errors, and the jsonschema rule pins the nvmd
// job-spec/result/checkpoint marshal closures.
func DefaultConfig() *Config {
	return &Config{
		// Exempt is empty by policy. The field (and the -exempt flag)
		// remains for ad-hoc investigation runs only; the committed
		// configuration must not use it.
		Exempt:            map[string][]string{},
		FloatcmpAllowZero: true,
		FloatcmpApproved: []string{
			"maxwe/internal/stats.ApproxEqual",
			"maxwe/internal/stats.ApproxEqualRel",
		},
		ErrdropAllow: []string{
			"fmt.Print",
			"fmt.Fprint",
			"(*strings.Builder).",
			"(*bytes.Buffer).",
		},
		SchemaRoots: map[string][]string{
			// JobSpec is hashed into the checkpoint fingerprint; JobResult
			// is the byte-exact result document; checkpoint is the
			// runner's resume file. Everything their marshaling reaches
			// must have deliberate wire names.
			"maxwe/internal/service": {"JobSpec", "JobResult"},
			"maxwe/internal/runner":  {"checkpoint"},
		},
		SchemaGolden: map[string]string{
			"maxwe/internal/service.JobSpec": "internal/lint/testdata/schema/jobspec.golden",
		},
	}
}

// Analyzers resolves the Enable/Disable selections against the registry.
// Unknown names in either list produce an error so typos fail loudly.
func (c *Config) Analyzers() ([]*Analyzer, error) {
	disabled := make(map[string]bool, len(c.Disable))
	for _, name := range c.Disable {
		if ByName(name) == nil {
			return nil, fmt.Errorf("lint: unknown rule %q in disable list", name)
		}
		disabled[name] = true
	}
	var selected []*Analyzer
	if len(c.Enable) == 0 {
		selected = All()
	} else {
		for _, name := range c.Enable {
			a := ByName(name)
			if a == nil {
				return nil, fmt.Errorf("lint: unknown rule %q in enable list", name)
			}
			selected = append(selected, a)
		}
	}
	out := selected[:0]
	for _, a := range selected {
		if !disabled[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// exempt reports whether rule must stay silent about relFile.
func (c *Config) exempt(rule, relFile string) bool {
	relFile = path.Clean(strings.ReplaceAll(relFile, "\\", "/"))
	for _, key := range []string{rule, "*"} {
		for _, prefix := range c.Exempt[key] {
			if strings.HasPrefix(relFile, prefix) {
				return true
			}
		}
	}
	return false
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Pkg is the loaded package under analysis.
	Pkg *Package
	// Cfg is the active configuration (never nil).
	Cfg *Config

	rule  string
	diags *[]Diagnostic
	allow allowSet
}

// Reportf records a finding at pos unless the file is exempt from the
// running rule or a //lint:allow directive waives the rule on that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	rel := p.Pkg.relFile(position.Filename)
	if p.Cfg.exempt(p.rule, rel) {
		return
	}
	if p.allow.allows(rel, position.Line, p.rule) {
		return
	}
	position.Filename = rel
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  position,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// inspectFiles walks every file of the pass's package with fn, the
// shared traversal all rules use.
func (p *Pass) inspectFiles(fn func(file *ast.File, n ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool { return fn(f, n) })
	}
}

// Run loads every package matched by patterns under the module root and
// applies the analyzers selected by cfg, returning diagnostics sorted by
// file, line and column. A nil cfg means DefaultConfig.
func Run(root string, patterns []string, cfg *Config) ([]Diagnostic, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	analyzers, err := cfg.Analyzers()
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadPackage(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		diags = append(diags, analyze(loader.Fset, pkg, cfg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// analyze applies every analyzer to one loaded package. Suppression
// directives are collected once per package; malformed directives are
// findings in their own right (DirectiveRule) and suppress nothing.
func analyze(fset *token.FileSet, pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	allows, diags := collectDirectives(fset, pkg)
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkg: pkg, Cfg: cfg, rule: a.Name, diags: &diags, allow: allows}
		a.Run(pass)
	}
	return diags
}

// sortDiagnostics orders diagnostics by file, then line, column, rule.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
