package lint

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// Jsonschema is the serialized-schema stability rule. For each
// configured root type (Config.SchemaRoots — by default service.JobSpec,
// service.JobResult and the runner checkpoint document) it walks every
// struct field reachable through json marshaling and requires an
// explicit `json` tag: wire names, and therefore checkpoint bytes and
// spec fingerprints, must be deliberate decisions visible in the diff,
// never accidents of Go field naming.
//
// Roots listed in Config.SchemaGolden additionally pin their rendered
// schema to a golden file: adding, removing or re-tagging a reachable
// field fails lint until the golden is regenerated (make lint-schema)
// and the diff reviewed — a fingerprint-breaking change becomes a
// reviewed event instead of a silently corrupted resume.
var Jsonschema = &Analyzer{
	Name: "jsonschema",
	Doc: "require explicit json tags on every struct field reachable from " +
		"the configured marshal roots (job specs, results, checkpoints) and " +
		"pin their rendered schema to a golden file, so wire-format and " +
		"fingerprint changes are deliberate, reviewed diffs",
	Run: runJsonschema,
}

func runJsonschema(p *Pass) {
	if p.Pkg.Types == nil {
		return
	}
	roots := p.Cfg.SchemaRoots[p.Pkg.Types.Path()]
	for _, name := range roots {
		obj := p.Pkg.Types.Scope().Lookup(name)
		if obj == nil {
			p.Reportf(p.Pkg.Files[0].Name.Pos(),
				"schema root %s.%s does not exist; update Config.SchemaRoots", p.Pkg.Types.Path(), name)
			continue
		}
		w := &schemaWalker{pass: p, seen: make(map[string]*types.Struct)}
		w.visit(obj.Type())
		key := p.Pkg.Types.Path() + "." + name
		golden, ok := p.Cfg.SchemaGolden[key]
		if !ok {
			continue
		}
		rendered := w.render(key)
		data, err := os.ReadFile(filepath.Join(p.Pkg.root, filepath.FromSlash(golden)))
		if err != nil {
			p.Reportf(obj.Pos(), "golden schema %s for %s is unreadable (%v); run `make lint-schema` and review the generated file",
				golden, key, err)
			continue
		}
		if string(data) != rendered {
			p.Reportf(obj.Pos(), "serialized schema of %s drifted from %s; wire names and fingerprints change with it — "+
				"if deliberate, run `make lint-schema` and review the diff", key, golden)
		}
	}
}

// schemaWalker accumulates the named structs reachable from a root
// through json marshaling, reporting untagged fields as it goes.
type schemaWalker struct {
	pass *Pass
	// seen maps qualified struct names to their struct types, and doubles
	// as the visited set.
	seen map[string]*types.Struct
}

// visit recursively walks t's marshal closure.
func (w *schemaWalker) visit(t types.Type) {
	switch v := t.(type) {
	case *types.Pointer:
		w.visit(v.Elem())
	case *types.Slice:
		w.visit(v.Elem())
	case *types.Array:
		w.visit(v.Elem())
	case *types.Map:
		w.visit(v.Elem())
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() == nil || !w.inModule(obj.Pkg()) {
			// Standard-library and foreign types (time.Time,
			// json.RawMessage) own their wire format; stop at the module
			// boundary.
			return
		}
		st, ok := v.Underlying().(*types.Struct)
		if !ok {
			return
		}
		key := obj.Pkg().Path() + "." + obj.Name()
		if _, done := w.seen[key]; done {
			return
		}
		w.seen[key] = st
		w.visitStruct(key, st)
	case *types.Struct:
		// Anonymous struct: check fields in place, no schema entry.
		w.visitStruct("", v)
	}
}

// visitStruct checks every marshaled field of st and recurses into field
// types. Unexported fields are invisible to encoding/json and skipped;
// fields tagged json:"-" terminate their branch.
func (w *schemaWalker) visitStruct(key string, st *types.Struct) {
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			continue
		}
		tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json")
		if !ok || tag == "" {
			w.pass.Reportf(field.Pos(), "field %s reaches a marshal root without an explicit json tag; "+
				"name its wire field (or json:\"-\") so checkpoint and fingerprint bytes are deliberate",
				fieldRef(key, field))
			// Still recurse: the field marshals under its Go name today.
			w.visit(field.Type())
			continue
		}
		if tagName(tag) == "-" {
			continue
		}
		w.visit(field.Type())
	}
}

// inModule reports whether pkg belongs to the module under analysis.
func (w *schemaWalker) inModule(pkg *types.Package) bool {
	mod := w.pass.Pkg.modpath
	return pkg.Path() == mod || strings.HasPrefix(pkg.Path(), mod+"/")
}

// fieldRef renders a field reference for diagnostics.
func fieldRef(key string, field *types.Var) string {
	if key == "" {
		return field.Name()
	}
	return key + "." + field.Name()
}

// tagName extracts the wire name part of a json tag value.
func tagName(tag string) string {
	if i := strings.IndexByte(tag, ','); i >= 0 {
		return tag[:i]
	}
	return tag
}

// render produces the canonical schema document for a walked root: every
// reachable named struct sorted by qualified name, fields in declaration
// order with wire tag and type. The format is line-oriented so golden
// diffs read naturally in review.
func (w *schemaWalker) render(root string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# maxwelint jsonschema golden for %s\n", root)
	b.WriteString("# Regenerate with `make lint-schema`; review the diff — these are wire bytes.\n")
	names := make([]string, 0, len(w.seen))
	for name := range w.seen {
		names = append(names, name)
	}
	sort.Strings(names)
	qual := func(p *types.Package) string { return p.Path() }
	for _, name := range names {
		st := w.seen[name]
		fmt.Fprintf(&b, "\nstruct %s\n", name)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !field.Exported() {
				continue
			}
			tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json")
			wire := field.Name()
			switch {
			case !ok || tag == "":
				wire = field.Name() + " (UNTAGGED)"
			case tagName(tag) == "-":
				wire = "(omitted)"
			default:
				wire = tag
			}
			fmt.Fprintf(&b, "  %-16s %-28s %s\n", field.Name(), wire, types.TypeString(field.Type(), qual))
		}
	}
	return b.String()
}

// WriteSchemaGolden renders the schema of every root in
// cfg.SchemaGolden and writes the golden files (relative to the module
// root), returning the paths written. cmd/maxwelint -write-schema and
// `make lint-schema` call this; the written diff is the reviewable
// record of a wire-format change. A nil cfg means DefaultConfig.
func WriteSchemaGolden(root string, cfg *Config) ([]string, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	var written []string
	for pkgPath, names := range cfg.SchemaRoots {
		for _, name := range names {
			key := pkgPath + "." + name
			golden, ok := cfg.SchemaGolden[key]
			if !ok {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, loader.modpath), "/")
			if rel == "" {
				rel = "."
			}
			pkg, err := loader.LoadPackage(rel)
			if err != nil {
				return written, err
			}
			if pkg == nil || pkg.Types == nil {
				return written, fmt.Errorf("lint: schema root package %s has no Go files", pkgPath)
			}
			obj := pkg.Types.Scope().Lookup(name)
			if obj == nil {
				return written, fmt.Errorf("lint: schema root %s not found", key)
			}
			pass := &Pass{Fset: loader.Fset, Pkg: pkg, Cfg: cfg, rule: Jsonschema.Name, diags: new([]Diagnostic)}
			w := &schemaWalker{pass: pass, seen: make(map[string]*types.Struct)}
			w.visit(obj.Type())
			path := filepath.Join(root, filepath.FromSlash(golden))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return written, fmt.Errorf("lint: create schema dir: %w", err)
			}
			//lint:allow durablewrite "developer-run golden regeneration (make lint-schema); the file is reviewed and committed, not crash-recovered"
			if err := os.WriteFile(path, []byte(w.render(key)), 0o644); err != nil {
				return written, fmt.Errorf("lint: write schema golden: %w", err)
			}
			written = append(written, golden)
		}
	}
	sort.Strings(written)
	return written, nil
}
