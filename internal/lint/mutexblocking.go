package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Mutexblocking flags slow or blocking operations performed while a
// sync.Mutex or sync.RWMutex is provably held: channel operations, HTTP
// round trips, file-system calls and sleeps. A lock held across I/O
// serializes every other path through that lock behind the slowest disk
// or network peer — in the nvmd daemon that turns one stuck request into
// a frozen API.
//
// "Provably held" is per function scope, where each function literal is
// its own scope (a deferred unlock runs when the closure returns, not
// when the enclosing declaration does): a region opens at recv.Lock() /
// recv.RLock() and closes at the matching unlock — deferred unlocks
// extend the region to the end of the scope; otherwise the region runs
// to the last recv.Unlock() before the next lock of the same receiver
// (or the end of the scope when none follows). Lock regions do not
// follow calls: a helper that performs I/O inside a caller's lock
// region is the documented false-negative edge. Operations inside a
// select that has a default case are non-blocking and not reported.
var Mutexblocking = &Analyzer{
	Name: "mutexblocking",
	Doc: "flag channel operations, HTTP round trips, file I/O and sleeps " +
		"performed while a sync.Mutex/RWMutex is held (lock and unlock in " +
		"the same function body); move the slow work outside the critical " +
		"section",
	Run: runMutexblocking,
}

// lockCalls and unlockCalls classify the sync locking methods.
var lockCalls = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}
var unlockCalls = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// blockingCallPkgs flags every callee from these packages as blocking.
var blockingCallPkgs = map[string]string{
	"net/http": "an HTTP round trip",
}

// blockingCallNames flags specific fully qualified callees.
var blockingCallNames = map[string]string{
	"os.Open":               "file I/O",
	"os.OpenFile":           "file I/O",
	"os.Create":             "file I/O",
	"os.ReadFile":           "file I/O",
	"os.WriteFile":          "file I/O",
	"os.ReadDir":            "file I/O",
	"os.Remove":             "file I/O",
	"os.RemoveAll":          "file I/O",
	"os.Rename":             "file I/O",
	"os.Mkdir":              "file I/O",
	"os.MkdirAll":           "file I/O",
	"os.Stat":               "file I/O",
	"os.Lstat":              "file I/O",
	"(*os.File).Read":       "file I/O",
	"(*os.File).Write":      "file I/O",
	"(*os.File).Close":      "file I/O",
	"(*os.File).Sync":       "file I/O",
	"path/filepath.Glob":    "file I/O",
	"path/filepath.WalkDir": "file I/O",
	"path/filepath.Walk":    "file I/O",
	"io.Copy":               "stream I/O",
	"io.ReadAll":            "stream I/O",
	"time.Sleep":            "a sleep",
}

// lockEvent is one lock/unlock call found in a body, in source order.
type lockEvent struct {
	pos      token.Pos
	unlock   bool
	deferred bool
}

// lockRegion is one [from, to] span in which a receiver's lock is held.
type lockRegion struct {
	from, to token.Pos
}

func runMutexblocking(p *Pass) {
	for _, body := range funcScopes(p) {
		regions := lockRegions(p, body)
		if len(regions) == 0 {
			continue
		}
		nonBlockingSelect := nonBlockingSelectOps(body)
		inspectScope(body, func(n ast.Node) bool {
			pos, what := blockingOp(p, n, nonBlockingSelect)
			if what == "" {
				return true
			}
			for _, r := range regions {
				if pos >= r.from && pos <= r.to {
					p.Reportf(pos, "%s while a mutex is held; release the lock first "+
						"(snapshot under the lock, then do the slow work)", what)
					break
				}
			}
			return true
		})
	}
}

// blockingOp classifies a node as a blocking operation, returning its
// position and a description, or "" when the node is not one.
func blockingOp(p *Pass, n ast.Node, nonBlocking map[ast.Node]bool) (token.Pos, string) {
	switch v := n.(type) {
	case *ast.SendStmt:
		if !nonBlocking[v] {
			return v.Arrow, "a channel send"
		}
	case *ast.UnaryExpr:
		if v.Op == token.ARROW && !nonBlocking[v] {
			return v.OpPos, "a channel receive"
		}
	case *ast.CallExpr:
		full := calleeFullName(p, v)
		if what, ok := blockingCallNames[full]; ok {
			return v.Pos(), what + " (" + full + ")"
		}
		if what, ok := blockingCallPkgs[calleePkgPath(p, v)]; ok {
			return v.Pos(), what + " (" + full + ")"
		}
	}
	return token.NoPos, ""
}

// nonBlockingSelectOps collects the communication operations of selects
// that have a default case — those never block.
func nonBlockingSelectOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ops[cc.Comm] = true
			switch comm := cc.Comm.(type) {
			case *ast.ExprStmt:
				ops[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					ops[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})
	return ops
}

// lockRegions computes the held spans for every mutex receiver used in
// the body, keyed by the receiver expression's object identity.
func lockRegions(p *Pass, body *ast.BlockStmt) []lockRegion {
	events := make(map[types.Object][]lockEvent)
	inspectScope(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch v := n.(type) {
		case *ast.DeferStmt:
			call = v.Call
			deferred = true
		case *ast.CallExpr:
			call = v
		default:
			return true
		}
		full := calleeFullName(p, call)
		isLock, isUnlock := lockCalls[full], unlockCalls[full]
		if !isLock && !isUnlock {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := rootObject(p, sel.X)
		if recv == nil {
			return true
		}
		events[recv] = append(events[recv], lockEvent{
			pos: call.Pos(), unlock: isUnlock, deferred: deferred,
		})
		return true
	})

	var regions []lockRegion
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		for i, ev := range evs {
			if ev.unlock {
				continue
			}
			// A deferred unlock anywhere holds the lock to the end of the
			// body; otherwise the region closes at the last plain unlock
			// before the next lock (branches unlock on different paths),
			// or runs to the end when none follows.
			to := body.End()
			sawDeferred := false
			for j := i + 1; j < len(evs); j++ {
				next := evs[j]
				if !next.unlock {
					break
				}
				if next.deferred {
					sawDeferred = true
					break
				}
				to = next.pos
			}
			if sawDeferred {
				to = body.End()
			}
			regions = append(regions, lockRegion{from: ev.pos, to: to})
		}
	}
	return regions
}
