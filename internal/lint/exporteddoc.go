package lint

import (
	"go/ast"
	"go/token"
)

// Exporteddoc requires a doc comment on every exported top-level
// identifier: functions, methods on exported receivers, types, constants
// and variables. A grouped const/var/type declaration is satisfied by
// either a group-level doc comment or a per-spec doc comment; trailing
// line comments do not count. The wording is not checked — only that the
// next reader gets something.
var Exporteddoc = &Analyzer{
	Name: "exporteddoc",
	Doc: "require doc comments on exported identifiers in library " +
		"packages so godoc stays complete",
	Run: runExporteddoc,
}

func runExporteddoc(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, decl)
			case *ast.GenDecl:
				checkGenDoc(p, decl)
			}
		}
	}
}

// checkFuncDoc flags undocumented exported functions and methods.
// Methods whose receiver type is unexported are skipped: they are not
// reachable through godoc.
func checkFuncDoc(p *Pass, decl *ast.FuncDecl) {
	if !decl.Name.IsExported() || decl.Doc != nil {
		return
	}
	kind := "function"
	if decl.Recv != nil {
		recv := receiverName(decl.Recv)
		if recv != "" && !token.IsExported(recv) {
			return
		}
		kind = "method"
	}
	p.Reportf(decl.Name.Pos(), "exported %s %s is undocumented", kind, decl.Name.Name)
}

// checkGenDoc flags undocumented exported names in const, var and type
// declarations. decl.Doc covers every spec in a grouped declaration.
func checkGenDoc(p *Pass, decl *ast.GenDecl) {
	if decl.Doc != nil {
		return
	}
	kind := decl.Tok.String()
	for _, spec := range decl.Specs {
		switch spec := spec.(type) {
		case *ast.TypeSpec:
			if spec.Name.IsExported() && spec.Doc == nil {
				p.Reportf(spec.Name.Pos(), "exported type %s is undocumented", spec.Name.Name)
			}
		case *ast.ValueSpec:
			if spec.Doc != nil {
				continue
			}
			for _, name := range spec.Names {
				if name.IsExported() {
					p.Reportf(name.Pos(), "exported %s %s is undocumented", kind, name.Name)
				}
			}
		}
	}
}

// receiverName returns the base type name of a method receiver
// ("Corrector" for (c *Corrector)), or "" when it cannot be determined.
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
