package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Floatcmp flags == and != between floating-point expressions. Exact
// float equality is almost never what the analytic model (Eq. 3-8) or
// the experiment harness means; comparisons belong in the approved
// tolerance helpers (stats.ApproxEqual and friends), whose bodies are
// exempt. Comparisons against an exact constant zero — the idiomatic
// guard before a division — are allowed when Config.FloatcmpAllowZero is
// set, as it is in the default policy.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag == / != between floating-point expressions outside the " +
		"approved tolerance helpers; use stats.ApproxEqual or an explicit " +
		"tolerance instead",
	Run: runFloatcmp,
}

func runFloatcmp(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && p.floatcmpApproved(fd) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(p, bin.X) && !isFloat(p, bin.Y) {
					return true
				}
				if p.Cfg.FloatcmpAllowZero && (isZeroConst(p, bin.X) || isZeroConst(p, bin.Y)) {
					return true
				}
				p.Reportf(bin.OpPos, "floating-point %s comparison; use stats.ApproxEqual or an explicit tolerance", bin.Op)
				return true
			})
		}
	}
}

// floatcmpApproved reports whether fd is one of the configured tolerance
// helpers, matched by suffix of its fully qualified name.
func (p *Pass) floatcmpApproved(fd *ast.FuncDecl) bool {
	fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	for _, approved := range p.Cfg.FloatcmpApproved {
		if full == approved || strings.HasSuffix(full, approved) {
			return true
		}
	}
	return false
}

// isFloat reports whether e has floating-point type.
func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to zero.
func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
