package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxprop is the context-propagation rule for goroutine-spawning
// packages (any package containing a go statement). In a function that a
// context.Context reaches — as a parameter, a derived local, or a
// captured field — every potentially-unbounded blocking point must be
// selectable on that context, or daemon shutdown can hang behind it:
//
//   - a channel send or receive outside a select;
//   - a range loop over a channel;
//   - sync.WaitGroup.Wait and sync.Cond.Wait.
//
// Blocking points inside a select are assumed multiplexed (the known
// false-negative edge: a select whose every case blocks forever still
// passes). Functions with no context in scope are not reported — the
// rule enforces propagation of a context you have, not invention of one
// you don't. Deliberate terminal waits (draining workers after
// cancellation) are waived per line with //lint:allow ctxprop "reason".
var Ctxprop = &Analyzer{
	Name: "ctxprop",
	Doc: "in goroutine-spawning packages, blocking channel operations and " +
		"Wait calls in functions reached by a context.Context must be " +
		"selectable on it (select with <-ctx.Done()), so shutdown cannot " +
		"hang behind them",
	Run: runCtxprop,
}

// blockingWaits lists Wait-style calls that cannot be interrupted by
// context cancellation.
var blockingWaits = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
}

func runCtxprop(p *Pass) {
	if !packageSpawnsGoroutines(p) {
		return
	}
	for _, fb := range packageFuncs(p) {
		if !contextReaches(p, fb) {
			continue
		}
		// A select's communication operations are multiplexed by
		// definition; remember them so the walk below skips exactly
		// those statements (case bodies stay covered).
		selectComms := make(map[ast.Stmt]bool)
		ast.Inspect(fb.body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					selectComms[cc.Comm] = true
				}
			}
			return true
		})
		ast.Inspect(fb.body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SendStmt:
				if !selectComms[s] {
					p.Reportf(s.Arrow, "blocking channel send outside a select in a function a "+
						"context reaches; make it selectable on <-ctx.Done() so shutdown cannot hang")
				}
			case *ast.AssignStmt:
				if selectComms[s] {
					return true
				}
				for _, rhs := range s.Rhs {
					reportBlockingRecv(p, rhs)
				}
			case *ast.ExprStmt:
				if selectComms[s] {
					return true
				}
				reportBlockingRecv(p, s.X)
			case *ast.RangeStmt:
				if isChanType(p, s.X) {
					p.Reportf(s.For, "range over a channel blocks until the channel closes; in a "+
						"function a context reaches, receive in a select with <-ctx.Done() instead")
				}
			case *ast.CallExpr:
				if name := calleeFullName(p, s); blockingWaits[name] {
					p.Reportf(s.Pos(), "%s cannot be interrupted by context cancellation; bound the "+
						"wait (close channels on ctx.Done, or wait in a goroutine and select on the result)", name)
				}
			}
			return true
		})
	}
}

// reportBlockingRecv flags a top-level channel receive expression. Only
// the outermost expression is considered: a receive nested deeper is
// part of a larger computation and still blocks, but the outer statement
// is where the fix goes, so one finding per statement is enough.
func reportBlockingRecv(p *Pass, e ast.Expr) {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return
	}
	p.Reportf(u.OpPos, "blocking channel receive outside a select in a function a "+
		"context reaches; make it selectable on <-ctx.Done() so shutdown cannot hang")
}

// packageSpawnsGoroutines reports whether any file of the package
// contains a go statement — the gate that keeps this rule out of the
// purely sequential simulation packages.
func packageSpawnsGoroutines(p *Pass) bool {
	found := false
	p.inspectFiles(func(_ *ast.File, n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// contextReaches reports whether a context.Context is in scope anywhere
// in the function: a parameter, a local (ctx := ...), or a struct field
// read (m.baseCtx). Closures count through the identifiers they capture.
func contextReaches(p *Pass, fb funcBody) bool {
	found := false
	ast.Inspect(fb.decl, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}
