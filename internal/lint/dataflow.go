// dataflow.go is the small intra-procedural dataflow approximation the
// type-aware rules share. It deliberately trades precision for
// predictability:
//
//   - taint propagates through assignments, short variable declarations,
//     composite literals and same-package call results (one fixpoint over
//     the package's function set), but not through fields of distinct
//     variables, channels, or cross-package calls;
//   - the analysis is flow-insensitive: a variable tainted anywhere in a
//     function body is tainted everywhere in it;
//   - a variable passed to a sort function is treated as order-clean for
//     the whole function, because sorting is how map-iteration results
//     are canonicalized in this repository.
//
// The known false-negative edges are documented in DESIGN.md ("Type-aware
// lint driver").
package lint

import (
	"go/ast"
	"go/types"
)

// funcBody pairs one analyzable function-like body with its declaration
// name (empty for function literals).
type funcBody struct {
	name string
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
	file *ast.File
}

// packageFuncs returns every declared function body in the package, in
// file/declaration order. Function literals are not split out: they are
// part of their enclosing declaration's body, which is the right scope
// for closure-based dataflow.
func packageFuncs(p *Pass) []funcBody {
	var out []funcBody
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcBody{name: fd.Name.Name, decl: fd, body: fd.Body, file: file})
		}
	}
	return out
}

// funcScopes returns every function body in the package as its own
// scope: declaration bodies plus the body of every function literal.
// Rules whose state is lexically scoped to one activation — lock
// regions, where a deferred unlock runs when the *closure* returns, not
// the enclosing declaration — analyze scopes, not packageFuncs bodies.
func funcScopes(p *Pass) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, fb := range packageFuncs(p) {
		out = append(out, fb.body)
		ast.Inspect(fb.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				out = append(out, lit.Body)
			}
			return true
		})
	}
	return out
}

// inspectScope walks body with fn but does not descend into nested
// function literals, so each scope from funcScopes sees only its own
// statements.
func inspectScope(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// rootObject resolves the variable object an lvalue or channel expression
// ultimately names: x, x.F, x[i], *x and (x) all root at x. It returns
// nil for expressions with no identifiable root (call results, literals).
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.ObjectOf(v); obj != nil {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			// Method values and qualified identifiers root at the
			// selection's receiver/package; plain field access keeps
			// unwrapping.
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isMapType reports whether e ranges over (or is) a map.
func isMapType(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChanType reports whether e has channel type.
func isChanType(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeFullName returns the fully qualified name of the function or
// method a call statically invokes ("time.Now",
// "(*sync.WaitGroup).Wait"), or "" when it cannot be resolved.
func calleeFullName(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// calleePkgPath returns the import path of the package whose function or
// method a call statically invokes, or "" for builtins, conversions and
// unresolved callees.
func calleePkgPath(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
