package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Nondeterminism enforces the reproducibility invariant: simulation code
// must not import math/rand (use internal/xrand), must not call the
// wall clock or read the process environment, and must not introduce its
// own concurrency (sync imports, go statements) — the worker pool in
// internal/runner is the only sanctioned parallelism, and it is exempted
// by path in DefaultConfig. Every run of the simulator must be a pure
// function of its explicit configuration and seed.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbid math/rand imports, time.Now/os.Getenv-style calls, and " +
		"sync/goroutine concurrency in simulation packages; all randomness " +
		"must flow through internal/xrand, all configuration through explicit " +
		"values, and all parallelism through internal/runner",
	Run: runNondeterminism,
}

// bannedImports maps forbidden import paths to the reason they break
// reproducibility.
var bannedImports = map[string]string{
	"math/rand":    "global PRNG state breaks bit-for-bit reproducibility; use internal/xrand",
	"math/rand/v2": "global PRNG state breaks bit-for-bit reproducibility; use internal/xrand",
	"sync":         "scheduler-dependent interleaving breaks reproducibility; parallelism belongs to internal/runner's worker pool",
	"sync/atomic":  "scheduler-dependent interleaving breaks reproducibility; parallelism belongs to internal/runner's worker pool",
}

// bannedCalls maps fully qualified function names to the reason calling
// them from simulation code is forbidden.
var bannedCalls = map[string]string{
	"time.Now":     "wall-clock reads make runs irreproducible; plumb times through explicitly",
	"time.Since":   "wall-clock reads make runs irreproducible; plumb durations through explicitly",
	"time.Until":   "wall-clock reads make runs irreproducible; plumb durations through explicitly",
	"os.Getenv":    "environment reads hide configuration; plumb options through Config values",
	"os.LookupEnv": "environment reads hide configuration; plumb options through Config values",
	"os.Environ":   "environment reads hide configuration; plumb options through Config values",
	"os.ExpandEnv": "environment reads hide configuration; plumb options through Config values",
}

func runNondeterminism(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if reason, ok := bannedImports[path]; ok {
				p.Reportf(imp.Pos(), "import of %s: %s", path, reason)
			}
		}
	}
	p.inspectFiles(func(_ *ast.File, n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			p.Reportf(g.Pos(), "go statement: scheduler-dependent interleaving breaks reproducibility; parallelism belongs to internal/runner's worker pool")
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		if reason, ok := bannedCalls[fn.FullName()]; ok {
			p.Reportf(call.Pos(), "call to %s: %s", fn.FullName(), reason)
		}
		return true
	})
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil when it cannot be determined (function values, builtins,
// conversions).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}
