package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop flags call statements that silently discard an error result:
// a call whose results include an error used as a bare statement (also
// via defer or go). Assigning the error to "_" is treated as an
// intentional, visible discard and is not flagged. Callees matched by a
// Config.ErrdropAllow prefix (fmt printing, strings.Builder and
// bytes.Buffer writers, which cannot fail) are exempt.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error return values; handle the error or assign " +
		"it to _ explicitly",
	Run: runErrdrop,
}

func runErrdrop(p *Pass) {
	p.inspectFiles(func(_ *ast.File, n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		}
		if call == nil {
			return true
		}
		if !returnsError(p, call) {
			return true
		}
		name := calleeName(p, call)
		if p.errdropAllowed(name) {
			return true
		}
		p.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign to _", name)
		return true
	})
}

// returnsError reports whether call's result tuple includes an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Pkg.Info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the error interface (or a named type
// whose underlying type is it).
func isErrorType(t types.Type) bool {
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// calleeName renders the called function for diagnostics and allowlist
// matching: the fully qualified name when statically known
// ("fmt.Println", "(*bytes.Buffer).WriteString"), else a best-effort
// rendering of the call expression.
func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.FullName()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// errdropAllowed reports whether the callee matches a configured
// allowlist prefix.
func (p *Pass) errdropAllowed(name string) bool {
	for _, prefix := range p.Cfg.ErrdropAllow {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
