package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestGolden runs every rule against its golden package and requires the
// diagnostics to line up with the // want expectations exactly — each
// rule has positive and negative cases in its testdata file.
func TestGolden(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		dir      string
		analyzer *Analyzer
		cfg      func() *Config
	}{
		{"nondet", Nondeterminism, nil},
		{"concurrent", Nondeterminism, nil},
		{"floatcmp", Floatcmp, func() *Config {
			cfg := DefaultConfig()
			cfg.FloatcmpApproved = append(cfg.FloatcmpApproved, "floatcmp.approxEqual")
			return cfg
		}},
		{"panicmsg", Panicmsg, nil},
		{"exporteddoc", Exporteddoc, nil},
		{"errdrop", Errdrop, nil},
		{"dettaint", Dettaint, nil},
		{"ctxprop", Ctxprop, nil},
		{"mutexblocking", Mutexblocking, nil},
		{"jsonschema", Jsonschema, func() *Config {
			cfg := DefaultConfig()
			cfg.SchemaRoots = map[string][]string{
				"maxwe/internal/lint/testdata/src/jsonschema": {"Root"},
			}
			cfg.SchemaGolden = map[string]string{}
			return cfg
		}},
		{"durablewrite", Durablewrite, nil},
		{"allow", Nondeterminism, nil},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			var cfg *Config
			if tc.cfg != nil {
				cfg = tc.cfg()
			}
			dir := filepath.Join("internal", "lint", "testdata", "src", tc.dir)
			failures, err := RunGolden(root, dir, []*Analyzer{tc.analyzer}, cfg)
			if err != nil {
				t.Fatalf("RunGolden: %v", err)
			}
			for _, f := range failures {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestGoldenDetectsMisses makes sure the harness itself fails loudly:
// running the wrong analyzer over a golden package must produce both
// "unexpected diagnostic" (none here) and "no diagnostic matched"
// failures rather than a silent pass.
func TestGoldenDetectsMisses(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join("internal", "lint", "testdata", "src", "floatcmp")
	failures, err := RunGolden(root, dir, []*Analyzer{Errdrop}, nil)
	if err != nil {
		t.Fatalf("RunGolden: %v", err)
	}
	if len(failures) == 0 {
		t.Fatal("expected unmatched-expectation failures, got none")
	}
	for _, f := range failures {
		if !strings.Contains(f, "no diagnostic matched") {
			t.Errorf("unexpected failure kind: %s", f)
		}
	}
}

// TestRunOnOwnPackage lints internal/lint with the full rule set; the
// linter must hold itself to the repository policy.
func TestRunOnOwnPackage(t *testing.T) {
	root := moduleRoot(t)
	diags, err := Run(root, []string{"internal/lint"}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("self-lint: %s", d)
	}
}

// TestNoDirectoryExemptions pins the suppression policy: the committed
// configuration carries zero directory-level waivers — internal/runner
// and internal/service lost their historical blanket exemptions, so every
// sanctioned concurrency site in the tree is a line-level //lint:allow
// directive with a mandatory reason.
func TestNoDirectoryExemptions(t *testing.T) {
	cfg := DefaultConfig()
	if n := len(cfg.Exempt); n != 0 {
		t.Fatalf("DefaultConfig carries %d directory exemption entries; the policy is zero", n)
	}
	for _, f := range []string{
		"internal/runner/parallel.go",
		"internal/service/manager.go",
		"internal/service/client/client.go",
		"internal/sim/sim.go",
		"internal/spare/spare.go",
	} {
		if cfg.exempt("nondeterminism", f) {
			t.Errorf("%s is directory-exempt from nondeterminism; only //lint:allow may waive findings", f)
		}
	}
}

// TestRepoIsClean runs the full default rule set over the whole module
// and requires zero findings — the exact gate CI enforces. Every waiver
// in the tree must therefore be a reasoned line-level //lint:allow
// directive, and the jsonschema goldens must be current.
func TestRepoIsClean(t *testing.T) {
	root := moduleRoot(t)
	diags, err := Run(root, []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo lint: %s", d)
	}
}

// TestGoldenFailsWithRuleDisabled proves each new corpus actually
// exercises its rule: with the analyzer absent, every // want marker in
// the corpus must go unmatched.
func TestGoldenFailsWithRuleDisabled(t *testing.T) {
	root := moduleRoot(t)
	for _, dir := range []string{"dettaint", "ctxprop", "mutexblocking", "jsonschema", "durablewrite"} {
		t.Run(dir, func(t *testing.T) {
			path := filepath.Join("internal", "lint", "testdata", "src", dir)
			failures, err := RunGolden(root, path, nil, nil)
			if err != nil {
				t.Fatalf("RunGolden: %v", err)
			}
			if len(failures) == 0 {
				t.Fatalf("corpus %s passed with its rule disabled; the markers test nothing", dir)
			}
			for _, f := range failures {
				if !strings.Contains(f, "no diagnostic matched") {
					t.Errorf("unexpected failure kind: %s", f)
				}
			}
		})
	}
}

// TestLoaderSkipsConstrainedFiles proves the loader honors //go:build
// constraints: the allow corpus contains a deliberately unparseable file
// behind an always-false build tag, and loading the package must succeed
// without it.
func TestLoaderSkipsConstrainedFiles(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadPackage(filepath.Join("internal", "lint", "testdata", "src", "allow"))
	if err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	if pkg == nil {
		t.Fatal("LoadPackage returned no package")
	}
	for _, f := range pkg.Files {
		name := filepath.Base(loader.Fset.Position(f.Pos()).Filename)
		if name == "broken.go" {
			t.Error("loader parsed broken.go despite its always-false build constraint")
		}
	}
}

// TestParseDirective covers the directive grammar: rule registry check,
// mandatory quoted reason, and the exact acceptance of a well-formed
// tail.
func TestParseDirective(t *testing.T) {
	tests := []struct {
		tail        string
		wantRule    string
		wantProblem string // substring of the problem, "" for accepted
	}{
		{` nondeterminism "the pool is sanctioned"`, "nondeterminism", ""},
		{` floatcmp "zero guard"`, "floatcmp", ""},
		{``, "", "needs a rule and a quoted reason"},
		{` nosuchrule "reason"`, "", "is not a registered rule"},
		{` nondeterminism`, "", "needs a quoted reason"},
		{` nondeterminism ""`, "", "must not be empty"},
		{` nondeterminism "   "`, "", "must not be empty"},
		{` nondeterminism unquoted reason`, "", "must be one quoted string"},
	}
	for _, tc := range tests {
		rule, problem := parseDirective(tc.tail)
		if tc.wantProblem == "" {
			if problem != "" || rule != tc.wantRule {
				t.Errorf("parseDirective(%q) = (%q, %q), want accepted rule %q", tc.tail, rule, problem, tc.wantRule)
			}
			continue
		}
		if problem == "" || !strings.Contains(problem, tc.wantProblem) {
			t.Errorf("parseDirective(%q) problem = %q, want containing %q", tc.tail, problem, tc.wantProblem)
		}
	}
}

// TestDiagnosticString pins the canonical output format the Makefile and
// CI grep for.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "floatcmp", Msg: "bad comparison"}
	d.Pos.Filename = "internal/stats/stats.go"
	d.Pos.Line = 42
	got := d.String()
	want := "internal/stats/stats.go:42: [floatcmp] bad comparison"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestConfigAnalyzers covers enable/disable resolution and typo
// detection.
func TestConfigAnalyzers(t *testing.T) {
	cfg := DefaultConfig()
	all, err := cfg.Analyzers()
	if err != nil {
		t.Fatalf("Analyzers: %v", err)
	}
	if len(all) != len(All()) {
		t.Errorf("default config selected %d rules, want %d", len(all), len(All()))
	}

	cfg.Enable = []string{"floatcmp", "errdrop"}
	cfg.Disable = []string{"errdrop"}
	selected, err := cfg.Analyzers()
	if err != nil {
		t.Fatalf("Analyzers: %v", err)
	}
	if len(selected) != 1 || selected[0].Name != "floatcmp" {
		t.Errorf("enable/disable resolution wrong: got %d rules", len(selected))
	}

	cfg = DefaultConfig()
	cfg.Enable = []string{"nosuchrule"}
	if _, err := cfg.Analyzers(); err == nil {
		t.Error("unknown rule in Enable did not error")
	}
	cfg = DefaultConfig()
	cfg.Disable = []string{"nosuchrule"}
	if _, err := cfg.Analyzers(); err == nil {
		t.Error("unknown rule in Disable did not error")
	}
}

// TestExempt covers per-rule and wildcard path exemptions.
func TestExempt(t *testing.T) {
	cfg := &Config{Exempt: map[string][]string{
		"panicmsg": {"cmd/"},
		"*":        {"gen/"},
	}}
	tests := []struct {
		rule, file string
		want       bool
	}{
		{"panicmsg", "cmd/figures/main.go", true},
		{"panicmsg", "internal/sim/sim.go", false},
		{"errdrop", "cmd/figures/main.go", false},
		{"errdrop", "gen/gen.go", true},
		{"panicmsg", "gen/gen.go", true},
	}
	for _, tc := range tests {
		if got := cfg.exempt(tc.rule, tc.file); got != tc.want {
			t.Errorf("exempt(%s, %s) = %v, want %v", tc.rule, tc.file, got, tc.want)
		}
	}
}

// TestExpandSkipsTestdata ensures ./... expansion never descends into
// testdata (the golden packages must not be linted as part of the tree).
func TestExpandSkipsTestdata(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand found no packages")
	}
	foundLint := false
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "testdata") {
			t.Errorf("Expand descended into testdata: %s", d)
		}
		if filepath.ToSlash(d) == filepath.ToSlash(filepath.Join(root, "internal", "lint")) {
			foundLint = true
		}
	}
	if !foundLint {
		t.Error("Expand missed internal/lint")
	}
}

// TestSplitPatterns covers the want-marker pattern scanner.
func TestSplitPatterns(t *testing.T) {
	got, err := splitPatterns("\"a b\" `c\\d` \"e\\\"f\"")
	if err != nil {
		t.Fatalf("splitPatterns: %v", err)
	}
	want := []string{"a b", `c\d`, `e"f`}
	if len(got) != len(want) {
		t.Fatalf("got %d patterns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pattern %d = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := splitPatterns(`"unterminated`); err == nil {
		t.Error("unterminated pattern did not error")
	}
	if _, err := splitPatterns(`"ok" junk`); err == nil {
		t.Error("trailing junk did not error")
	}
}
