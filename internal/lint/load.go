package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Dir is the package directory relative to the module root, using
	// forward slashes ("internal/sim"; "." for the root package).
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files holds the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type information rules consult. Type-check errors
	// leave entries missing rather than aborting, so rules must tolerate
	// nil types.
	Info *types.Info
	// TypeErrors collects any errors the type checker reported; a
	// buildable tree produces none.
	TypeErrors []error

	root    string
	modpath string
}

// relFile returns filename relative to the module root (slash-separated)
// when possible, else the name unchanged.
func (p *Package) relFile(filename string) string {
	if p.root == "" {
		return filename
	}
	rel, err := filepath.Rel(p.root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// Loader parses and type-checks packages using only the standard
// library. Module-local imports resolve against the module root and are
// checked from source (function bodies skipped); standard-library imports
// go through the compiler's export data via go/importer.
type Loader struct {
	// Fset maps positions for every file the loader parses.
	Fset *token.FileSet

	root    string
	modpath string
	std     types.Importer
	cache   map[string]*types.Package
	build   build.Context
}

// NewLoader builds a loader for the Go module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving module root: %w", err)
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		root:    abs,
		modpath: modpath,
		std:     importer.Default(),
		cache:   make(map[string]*types.Package),
		build:   build.Default,
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import resolves an import path for the type checker. It implements
// types.Importer so a Loader can be handed to types.Config directly.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if importPath == l.modpath || strings.HasPrefix(importPath, l.modpath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modpath), "/")
		if rel == "" {
			rel = "."
		}
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		pkg, _, err := l.check(importPath, dir, true)
		if err != nil {
			return nil, err
		}
		l.cache[importPath] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(importPath)
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", importPath, err)
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

// LoadPackage parses and fully type-checks the package in dir (absolute,
// or relative to the module root). It returns nil, nil when the
// directory holds no non-test Go files.
func (l *Loader) LoadPackage(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.root, dir)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	name := files[0].Name.Name
	for _, f := range files {
		if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: multiple packages %s and %s", dir, name, f.Name.Name)
		}
	}
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		rel = dir
	}
	rel = filepath.ToSlash(rel)
	importPath := l.modpath
	if rel != "." {
		importPath = l.modpath + "/" + rel
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrors []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrors = append(typeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	return &Package{
		Dir:        rel,
		Name:       name,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrors,
		root:       l.root,
		modpath:    l.modpath,
	}, nil
}

// check parses dir and type-checks it as importPath. With ignoreBodies
// set only declarations are checked, which is all importers need.
func (l *Loader) check(importPath, dir string, ignoreBodies bool) (*types.Package, []*ast.File, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s for import %s", dir, importPath)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: ignoreBodies,
		Error:            func(error) {},
	}
	pkg, err := conf.Check(importPath, l.Fset, files, nil)
	if pkg == nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return pkg, files, nil
}

// parseDir parses every non-test Go file in dir that the build context
// selects, in filename order. Files excluded by a //go:build constraint
// or a GOOS/GOARCH filename suffix are skipped before they ever reach
// the parser, so golden corpora can hold intentionally-broken Go files
// behind an always-false build tag.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := l.build.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: matching %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves package patterns into package directories relative to
// the module root. A pattern ending in "/..." matches the prefix
// directory and everything below it; other patterns name one directory.
// Directories named testdata or vendor, and hidden directories, are
// skipped during recursive expansion.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pattern := range patterns {
		pattern = filepath.ToSlash(pattern)
		recursive := false
		if strings.HasSuffix(pattern, "...") {
			recursive = true
			pattern = strings.TrimSuffix(pattern, "...")
			pattern = strings.TrimSuffix(pattern, "/")
			if pattern == "" || pattern == "." {
				pattern = "."
			}
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pattern, "./")))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
				continue
			}
			return nil, fmt.Errorf("lint: no Go files in %s", pattern)
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pattern, err)
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
