package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// wantRe matches the expectation marker. The quoted strings that follow
// are extracted by quotedRe.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// expectation is one parsed "// want" marker: a diagnostic matching re
// must be reported on line of file.
type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// RunGolden type-checks the package in dir, applies analyzers under cfg,
// and compares the diagnostics against the "// want" expectations in the
// source files, analysistest-style. Each marker holds one or more quoted
// regular expressions:
//
//	rand.Seed(1) // want `call to .*` "breaks bit-for-bit"
//
// (backquoted strings are accepted too). A pattern is matched against
// the rendered "[rule] message" of diagnostics reported on the marker's
// line. RunGolden returns one human-readable failure per unexpected
// diagnostic and per unmatched expectation; an empty slice means the
// golden file and the analyzers agree. A nil cfg means DefaultConfig.
func RunGolden(root, dir string, analyzers []*Analyzer, cfg *Config) ([]string, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.LoadPackage(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in golden dir %s", dir)
	}
	expectations, err := parseExpectations(loader.Fset, pkg)
	if err != nil {
		return nil, err
	}
	diags := analyze(loader.Fset, pkg, cfg, analyzers)
	sortDiagnostics(diags)

	var failures []string
	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Msg)
		found := false
		for _, exp := range expectations {
			if exp.matched || exp.file != d.Pos.Filename || exp.line != d.Pos.Line {
				continue
			}
			if exp.re.MatchString(rendered) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, exp := range expectations {
		if !exp.matched {
			failures = append(failures,
				fmt.Sprintf("%s:%d: no diagnostic matched %q", exp.file, exp.line, exp.pattern))
		}
	}
	return failures, nil
}

// parseExpectations collects every "// want" marker in the package,
// sorted by position.
func parseExpectations(fset *token.FileSet, pkg *Package) ([]*expectation, error) {
	var exps []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, comment := range group.List {
				m := wantRe.FindStringSubmatch(comment.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(comment.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("lint: %s:%d: %w", pos.Filename, pos.Line, err)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("lint: %s:%d: want marker without patterns", pos.Filename, pos.Line)
				}
				for _, pattern := range patterns {
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("lint: %s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					exps = append(exps, &expectation{
						file:    pkg.relFile(pos.Filename),
						line:    pos.Line,
						pattern: pattern,
						re:      re,
					})
				}
			}
		}
	}
	sort.Slice(exps, func(i, j int) bool {
		if exps[i].file != exps[j].file {
			return exps[i].file < exps[j].file
		}
		return exps[i].line < exps[j].line
	})
	return exps, nil
}

// splitPatterns extracts the quoted or backquoted regular expressions
// from the text after the want keyword.
func splitPatterns(text string) ([]string, error) {
	var patterns []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		switch rest[0] {
		case '"':
			loc := quotedRe.FindStringIndex(rest)
			if loc == nil || loc[0] != 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", rest)
			}
			s, err := strconv.Unquote(rest[:loc[1]])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern %q: %w", rest[:loc[1]], err)
			}
			patterns = append(patterns, s)
			rest = strings.TrimSpace(rest[loc[1]:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", rest)
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		default:
			return nil, fmt.Errorf("unexpected text %q after want patterns", rest)
		}
	}
	return patterns, nil
}
