package lint

import (
	"go/ast"
)

// Durablewrite enforces the crash-consistency discipline: durable state
// must reach disk through internal/atomicio (temp file → write → fsync →
// rename → fsync parent), so a raw os.WriteFile or os.Rename anywhere
// else is a torn-write hazard waiting for a power cut. Only
// internal/atomicio itself — the one place the discipline is implemented
// — may call them; a sanctioned advisory write elsewhere carries a
// line-level //lint:allow durablewrite directive with its reason.
var Durablewrite = &Analyzer{
	Name: "durablewrite",
	Doc: "forbid raw os.WriteFile / os.Rename outside internal/atomicio; " +
		"durable state goes through atomicio.WriteFile (or the atomicio.FS " +
		"interface) so every write is atomic and fsynced in the right order",
	Run: runDurablewrite,
}

// atomicioDir is the one package whose job is issuing raw writes and
// renames in the durable order; the rule does not report inside it.
const atomicioDir = "internal/atomicio"

// durableBannedCalls maps fully qualified function names to the hazard a
// raw call creates.
var durableBannedCalls = map[string]string{
	"os.WriteFile": "a torn write on crash leaves a partial file with no previous generation; use atomicio.WriteFile",
	"os.Rename":    "a rename without the temp-write-fsync prelude can publish unsynced bytes; use atomicio.WriteFile or the atomicio.FS interface",
}

func runDurablewrite(p *Pass) {
	if p.Pkg.Dir == atomicioDir {
		return
	}
	p.inspectFiles(func(_ *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		if reason, ok := durableBannedCalls[fn.FullName()]; ok {
			p.Reportf(call.Pos(), "call to %s: %s", fn.FullName(), reason)
		}
		return true
	})
}
