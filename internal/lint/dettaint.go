package lint

import (
	"go/ast"
	"go/types"
)

// Dettaint is the determinism-taint rule: it flags values whose bytes
// depend on map iteration order, the wall clock, or global randomness
// when those values flow into a serialization call (encoding/json,
// encoding/gob, encoding/xml). Serialized bytes are this repository's
// determinism surface — checkpoints, spec fingerprints and result
// documents must be bit-identical across runs and restarts — so an
// order- or clock-dependent value reaching an encoder is a correctness
// bug even in packages where concurrency itself is sanctioned.
//
// The dataflow is the intra-procedural approximation described in
// dataflow.go, extended one level across same-package calls: a function
// that returns a tainted value taints its call sites. Sorting a variable
// (sort.Strings and friends) marks it order-clean for the whole
// function, which is how legitimate map-to-slice canonicalization
// passes.
var Dettaint = &Analyzer{
	Name: "dettaint",
	Doc: "flag map-iteration-, wall-clock- and randomness-derived values " +
		"that flow into json/gob/xml serialization; serialized bytes are the " +
		"determinism surface (checkpoints, fingerprints, results) and must " +
		"not depend on iteration order or time",
	Run: runDettaint,
}

// taintSources maps fully qualified callees to the origin description
// used in diagnostics.
var taintSources = map[string]string{
	"time.Now":     "the wall clock (time.Now)",
	"time.Since":   "the wall clock (time.Since)",
	"time.Until":   "the wall clock (time.Until)",
	"os.Getenv":    "the process environment (os.Getenv)",
	"os.LookupEnv": "the process environment (os.LookupEnv)",
	"os.Environ":   "the process environment (os.Environ)",
}

// taintSourcePkgs maps callee package paths whose every function is a
// taint source to an origin description.
var taintSourcePkgs = map[string]string{
	"math/rand":    "global randomness (math/rand)",
	"math/rand/v2": "global randomness (math/rand/v2)",
}

// taintSinks lists serialization entry points; a tainted argument to any
// of them is a finding.
var taintSinks = map[string]bool{
	"encoding/json.Marshal":           true,
	"encoding/json.MarshalIndent":     true,
	"(*encoding/json.Encoder).Encode": true,
	"(*encoding/gob.Encoder).Encode":  true,
	"encoding/xml.Marshal":            true,
	"encoding/xml.MarshalIndent":      true,
	"(*encoding/xml.Encoder).Encode":  true,
}

// taintSanitizers lists functions that establish a deterministic order
// on their first argument; a variable passed to one is order-clean for
// the whole function body.
var taintSanitizers = map[string]bool{
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

func runDettaint(p *Pass) {
	funcs := packageFuncs(p)

	// Fixpoint over the package: discover functions whose results carry
	// taint, so same-package helper calls propagate it. Three rounds
	// bound call chains deeper than the repository ever nests.
	taintedFuncs := make(map[types.Object]string)
	for round := 0; round < 3; round++ {
		changed := false
		for _, fb := range funcs {
			ft := newFuncTaint(p, fb, taintedFuncs)
			origin := ft.returnOrigin()
			if origin == "" {
				continue
			}
			obj := p.Pkg.Info.ObjectOf(fb.decl.Name)
			if obj != nil && taintedFuncs[obj] == "" {
				taintedFuncs[obj] = origin
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Report taint reaching serialization sinks.
	for _, fb := range funcs {
		ft := newFuncTaint(p, fb, taintedFuncs)
		ast.Inspect(fb.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !taintSinks[calleeFullName(p, call)] {
				return true
			}
			for _, arg := range call.Args {
				if origin := ft.exprOrigin(arg); origin != "" {
					p.Reportf(call.Pos(), "value derived from %s is serialized by %s; "+
						"serialized bytes must be deterministic (sort map-derived data, plumb times explicitly)",
						origin, calleeFullName(p, call))
					break
				}
			}
			return true
		})
	}
}

// funcTaint holds the per-function taint state.
type funcTaint struct {
	p            *Pass
	fb           funcBody
	taintedFuncs map[types.Object]string
	tainted      map[types.Object]string // var -> origin
	sanitized    map[types.Object]bool
}

// newFuncTaint runs the assignment walk to fixpoint for one function.
func newFuncTaint(p *Pass, fb funcBody, taintedFuncs map[types.Object]string) *funcTaint {
	ft := &funcTaint{
		p:            p,
		fb:           fb,
		taintedFuncs: taintedFuncs,
		tainted:      make(map[types.Object]string),
		sanitized:    make(map[types.Object]bool),
	}
	// Pre-scan: sanitized variables are order-clean everywhere.
	ast.Inspect(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !taintSanitizers[calleeFullName(p, call)] {
			return true
		}
		if obj := rootObject(p, call.Args[0]); obj != nil {
			ft.sanitized[obj] = true
		}
		return true
	})
	// Flow-insensitive propagation to fixpoint (bounded: each round can
	// only add objects, and bodies are finite).
	for round := 0; round < 10; round++ {
		if !ft.propagate() {
			break
		}
	}
	return ft
}

// propagate performs one pass over the body, tainting range variables
// over maps and assignment targets of tainted right-hand sides. It
// reports whether anything new was tainted.
func (ft *funcTaint) propagate() bool {
	changed := false
	mark := func(e ast.Expr, origin string) {
		obj := rootObject(ft.p, e)
		if obj == nil || ft.tainted[obj] != "" {
			return
		}
		ft.tainted[obj] = origin
		changed = true
	}
	ast.Inspect(ft.fb.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if isMapType(ft.p, s.X) {
				const origin = "map iteration order"
				if s.Key != nil {
					mark(s.Key, origin)
				}
				if s.Value != nil {
					mark(s.Value, origin)
				}
			}
		case *ast.AssignStmt:
			origin := ""
			for _, rhs := range s.Rhs {
				if o := ft.exprOrigin(rhs); o != "" {
					origin = o
					break
				}
			}
			if origin != "" {
				for _, lhs := range s.Lhs {
					mark(lhs, origin)
				}
			}
		case *ast.ValueSpec:
			origin := ""
			for _, v := range s.Values {
				if o := ft.exprOrigin(v); o != "" {
					origin = o
					break
				}
			}
			if origin != "" {
				for _, name := range s.Names {
					mark(name, origin)
				}
			}
		}
		return true
	})
	return changed
}

// exprOrigin returns the taint origin of an expression, or "" when the
// expression is clean. An expression is tainted when any subexpression
// reads a tainted variable or calls a taint source (or a same-package
// function with tainted results).
func (ft *funcTaint) exprOrigin(e ast.Expr) string {
	origin := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if origin != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			obj := ft.p.Pkg.Info.ObjectOf(v)
			if obj == nil || ft.sanitized[obj] {
				return true
			}
			if o := ft.tainted[obj]; o != "" {
				origin = o
			}
		case *ast.CallExpr:
			if o := ft.callOrigin(v); o != "" {
				origin = o
				return false
			}
		}
		return true
	})
	return origin
}

// callOrigin classifies a call as a taint source: a listed source
// function, anything from a source package, or a same-package function
// whose returns were found tainted.
func (ft *funcTaint) callOrigin(call *ast.CallExpr) string {
	full := calleeFullName(ft.p, call)
	if o, ok := taintSources[full]; ok {
		return o
	}
	if o, ok := taintSourcePkgs[calleePkgPath(ft.p, call)]; ok {
		return o
	}
	fn := calleeFunc(ft.p, call)
	if fn != nil {
		if o := ft.taintedFuncs[types.Object(fn)]; o != "" {
			return o + " (via " + fn.Name() + ")"
		}
	}
	return ""
}

// returnOrigin reports the origin of the first tainted return value of
// the function, or "" when every return is clean. Function literals
// inside the body return to their own callers, not this function's, so
// only returns lexically outside any literal count.
func (ft *funcTaint) returnOrigin() string {
	origin := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if origin != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if o := ft.exprOrigin(res); o != "" {
					origin = o
					break
				}
			}
		}
		return true
	}
	ast.Inspect(ft.fb.body, walk)
	return origin
}
