// Package atomicio is the single durable-write primitive of the
// repository. Every file that must survive a crash — runner checkpoints,
// the nvmd job store (spec/ckpt/state/result) — is written through
// WriteFile, which follows the full crash-consistency discipline:
//
//  1. write the document to a temporary file next to the target;
//  2. fsync the temporary file, so its bytes are on stable storage
//     before anything points at them;
//  3. rename the temporary file over the target, the atomic commit
//     point (readers see the old generation or the new one, never a
//     mix);
//  4. fsync the parent directory, so the rename itself survives a
//     power failure.
//
// A crash before step 3 leaves the previous generation intact (plus at
// most a stray .tmp file that the next write truncates); a crash after
// step 3 leaves the fully synced new generation. There is no window in
// which the target names torn data.
//
// The syscalls are abstracted behind the small FS interface so the
// chaos harness (internal/diskfault) can inject torn writes, failed
// fsyncs, pre-rename crashes and ENOSPC deterministically. Production
// code passes OS (or nil, which selects OS).
//
// The maxwelint durablewrite rule enforces the discipline statically:
// raw os.WriteFile/os.Rename calls outside this package are findings.
package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// File is the write handle WriteFile drives. Close does not imply Sync:
// data reaches stable storage only through an explicit Sync, exactly
// like a POSIX file descriptor.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	// Close releases the handle without flushing.
	Close() error
}

// FS abstracts the filesystem operations the durable-write sequence
// composes. Implementations: OS (the real filesystem) and the fault
// filesystems in internal/diskfault.
type FS interface {
	// OpenFileWrite opens path for writing, creating it if missing and
	// truncating it otherwise.
	OpenFileWrite(path string) (File, error)
	// ReadFile returns the contents of path. A missing file reports an
	// error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir flushes dir's entry metadata, making renames within it
	// durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFileWrite(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	// Some filesystems refuse fsync on a directory handle; that is the
	// platform's strongest guarantee, not a caller error.
	if serr != nil && !errors.Is(serr, syscall.EINVAL) {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("atomicio: close dir %s: %w", dir, cerr)
	}
	return nil
}

// TempSuffix is appended to the target path to name the in-flight
// temporary file. A crash can strand one; the next WriteFile to the same
// target truncates and reuses it, so strays never accumulate per target.
const TempSuffix = ".tmp"

// WriteFile durably replaces the contents of path with data through
// fsys (nil selects OS): temp file → write → fsync file → rename →
// fsync parent directory. On any error the previous generation of path
// is untouched and the temporary file is removed best-effort.
func WriteFile(fsys FS, path string, data []byte) error {
	if fsys == nil {
		fsys = OS
	}
	tmp := path + TempSuffix
	f, err := fsys.OpenFileWrite(tmp)
	if err != nil {
		return fmt.Errorf("atomicio: create %s: %w", tmp, err)
	}
	if err := writeAll(f, data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("atomicio: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("atomicio: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("atomicio: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("atomicio: commit %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("atomicio: commit %s: %w", path, err)
	}
	return nil
}

// writeAll writes data fully, converting a silent short write into an
// error so no partial document is ever fsynced as if complete.
func writeAll(f File, data []byte) error {
	n, err := f.Write(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return io.ErrShortWrite
	}
	return nil
}
