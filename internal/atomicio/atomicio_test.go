package atomicio_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"maxwe/internal/atomicio"
)

// TestWriteFileRoundTrip writes two generations and checks each one is
// readable, complete, and leaves no temporary file behind.
func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	for _, gen := range []string{`{"gen":1}`, `{"gen":2}`} {
		if err := atomicio.WriteFile(nil, path, []byte(gen)); err != nil {
			t.Fatalf("WriteFile(%q): %v", gen, err)
		}
		got, err := atomicio.OS.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, []byte(gen)) {
			t.Fatalf("ReadFile = %q, want %q", got, gen)
		}
	}
	if _, err := os.Stat(path + atomicio.TempSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file still present after commit: %v", err)
	}
}

// TestReadFileMissing pins the os.ErrNotExist contract callers (runner
// checkpoint load, manager state load) rely on.
func TestReadFileMissing(t *testing.T) {
	_, err := atomicio.OS.ReadFile(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile(missing) = %v, want ErrNotExist", err)
	}
}

// failStep selects which operation of the write sequence the stub FS
// fails.
type failStep int

const (
	failNone failStep = iota
	failOpen
	failWrite
	failShortWrite
	failSync
	failClose
	failRename
)

// stubFS delegates to the real filesystem but fails one chosen step, and
// records Remove calls so tests can check temp-file cleanup.
type stubFS struct {
	fail    failStep
	removed []string
}

var errStub = errors.New("stub failure")

func (s *stubFS) OpenFileWrite(path string) (atomicio.File, error) {
	if s.fail == failOpen {
		return nil, errStub
	}
	f, err := atomicio.OS.OpenFileWrite(path)
	if err != nil {
		return nil, err
	}
	return &stubFile{File: f, fs: s}, nil
}

func (s *stubFS) ReadFile(path string) ([]byte, error) { return atomicio.OS.ReadFile(path) }

func (s *stubFS) Rename(oldpath, newpath string) error {
	if s.fail == failRename {
		return errStub
	}
	return atomicio.OS.Rename(oldpath, newpath)
}

func (s *stubFS) Remove(path string) error {
	s.removed = append(s.removed, path)
	return atomicio.OS.Remove(path)
}

func (s *stubFS) SyncDir(dir string) error { return atomicio.OS.SyncDir(dir) }

type stubFile struct {
	atomicio.File
	fs *stubFS
}

func (f *stubFile) Write(p []byte) (int, error) {
	switch f.fs.fail {
	case failWrite:
		return 0, errStub
	case failShortWrite:
		return f.File.Write(p[:len(p)/2])
	}
	return f.File.Write(p)
}

func (f *stubFile) Sync() error {
	if f.fs.fail == failSync {
		return errStub
	}
	return f.File.Sync()
}

func (f *stubFile) Close() error {
	if f.fs.fail == failClose {
		_ = f.File.Close()
		return errStub
	}
	return f.File.Close()
}

// TestWriteFilePreservesPreviousGeneration fails every step of the
// sequence in turn and checks the invariant the whole store depends on:
// a failed write leaves the previous generation byte-identical and
// cleans up its temporary file.
func TestWriteFilePreservesPreviousGeneration(t *testing.T) {
	prev := []byte(`{"gen":"previous"}`)
	steps := []struct {
		name string
		fail failStep
	}{
		{"open", failOpen}, {"write", failWrite}, {"short-write", failShortWrite},
		{"sync", failSync}, {"close", failClose}, {"rename", failRename},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.json")
			if err := atomicio.WriteFile(nil, path, prev); err != nil {
				t.Fatalf("seed generation: %v", err)
			}
			fs := &stubFS{fail: tc.fail}
			err := atomicio.WriteFile(fs, path, []byte(`{"gen":"next"}`))
			if err == nil {
				t.Fatal("WriteFile succeeded despite injected failure")
			}
			got, rerr := atomicio.OS.ReadFile(path)
			if rerr != nil {
				t.Fatalf("previous generation unreadable: %v", rerr)
			}
			if !bytes.Equal(got, prev) {
				t.Fatalf("previous generation mangled: %q", got)
			}
			if tc.fail != failOpen && len(fs.removed) == 0 {
				t.Fatal("temporary file was not cleaned up")
			}
		})
	}
}

// TestWriteFileShortWriteDetected pins that a short write surfaces as an
// error rather than fsync-ing a truncated document.
func TestWriteFileShortWriteDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	fs := &stubFS{fail: failShortWrite}
	if err := atomicio.WriteFile(fs, path, []byte("0123456789")); err == nil {
		t.Fatal("short write went undetected")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("target exists after failed first write: %v", err)
	}
}
