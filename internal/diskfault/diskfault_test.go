package diskfault_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"maxwe/internal/atomicio"
	"maxwe/internal/diskfault"
)

// mustNew builds a fault FS over the real filesystem or fails the test.
func mustNew(t *testing.T, cfg diskfault.Config) *diskfault.FS {
	t.Helper()
	fs, err := diskfault.New(nil, cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return fs
}

func TestConfigValidate(t *testing.T) {
	if _, err := diskfault.New(nil, diskfault.Config{Class: diskfault.Class(99)}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := diskfault.New(nil, diskfault.Config{WriteIndex: 0, Class: diskfault.ClassPreRenameCrash}); err == nil {
		t.Fatal("pre-rename-crash without Crash accepted")
	}
	// Counting-only plans may name any class; nothing ever fires.
	if _, err := diskfault.New(nil, diskfault.Config{WriteIndex: -1, Class: diskfault.ClassPreRenameCrash}); err != nil {
		t.Fatalf("counting-only plan rejected: %v", err)
	}
}

func TestClassStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range diskfault.Classes() {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("class %d has empty or duplicate name %q", int(c), s)
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Classes() = %d entries, want 4", len(seen))
	}
}

// TestCountingPass pins the measurement mode: WriteIndex < 0 injects
// nothing and Writes() reports how many durable writes the workload
// issued.
func TestCountingPass(t *testing.T) {
	dir := t.TempDir()
	fs := mustNew(t, diskfault.Config{WriteIndex: -1})
	for i, name := range []string{"a.json", "b.json", "c.json"} {
		if err := atomicio.WriteFile(fs, filepath.Join(dir, name), []byte{byte(i)}); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
	}
	if got := fs.Writes(); got != 3 {
		t.Fatalf("Writes() = %d, want 3", got)
	}
	if fs.Counters().Any() {
		t.Fatalf("counting pass injected faults: %+v", fs.Counters())
	}
	if fs.Crashed() {
		t.Fatal("counting pass crashed")
	}
}

// TestFaultsPreservePreviousGeneration drives atomicio.WriteFile into
// every non-crash fault class and checks the previous generation of the
// target survives byte-identical.
func TestFaultsPreservePreviousGeneration(t *testing.T) {
	prev := []byte(`{"gen":"previous"}`)
	cases := []struct {
		class diskfault.Class
		want  error
	}{
		{diskfault.ClassTornWrite, diskfault.ErrTornWrite},
		{diskfault.ClassSyncFail, diskfault.ErrSyncFail},
		{diskfault.ClassNoSpace, diskfault.ErrNoSpace},
	}
	for _, tc := range cases {
		t.Run(tc.class.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.json")
			if err := atomicio.WriteFile(nil, path, prev); err != nil {
				t.Fatalf("seed generation: %v", err)
			}
			fs := mustNew(t, diskfault.Config{Seed: 11, WriteIndex: 0, Class: tc.class})
			err := atomicio.WriteFile(fs, path, []byte(`{"gen":"next, much longer than before"}`))
			if !errors.Is(err, tc.want) {
				t.Fatalf("WriteFile error = %v, want %v", err, tc.want)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(got, prev) {
				t.Fatalf("previous generation mangled: %q, %v", got, rerr)
			}
			if _, serr := os.Stat(path + atomicio.TempSuffix); !errors.Is(serr, os.ErrNotExist) {
				t.Fatalf("temp file left behind: %v", serr)
			}
			if !fs.Counters().Any() {
				t.Fatal("no fault counted")
			}
			if fs.Crashed() {
				t.Fatal("non-crash plan crashed")
			}
		})
	}
}

// TestPreRenameCrash checks the crash lands after the temp file is
// durable but before the commit: the target keeps its previous
// generation and every later operation reports ErrCrashed.
func TestPreRenameCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	prev := []byte(`{"gen":"previous"}`)
	if err := atomicio.WriteFile(nil, path, prev); err != nil {
		t.Fatalf("seed generation: %v", err)
	}
	fs := mustNew(t, diskfault.Config{Seed: 5, WriteIndex: 0, Class: diskfault.ClassPreRenameCrash, Crash: true})
	err := atomicio.WriteFile(fs, path, []byte(`{"gen":"next"}`))
	if !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("WriteFile error = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after pre-rename crash")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || !bytes.Equal(got, prev) {
		t.Fatalf("previous generation mangled: %q, %v", got, rerr)
	}
	// The fully synced temp file survives the crash intact; only the
	// rename is lost. The next boot's write truncates and replaces it.
	if _, err := os.Stat(path + atomicio.TempSuffix); err != nil {
		t.Fatalf("durable temp file missing after crash: %v", err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("ReadFile after crash = %v, want ErrCrashed", err)
	}
	if err := atomicio.WriteFile(fs, path, []byte("x")); !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("WriteFile after crash = %v, want ErrCrashed", err)
	}
	c := fs.Counters()
	if c.PreRenameCrashes != 1 || c.OpsAfterCrash == 0 {
		t.Fatalf("counters = %+v, want 1 pre-rename crash and refused ops", c)
	}
}

// TestCrashJoinsClassError pins that a crashing torn write satisfies
// errors.Is for both the class error and ErrCrashed.
func TestCrashJoinsClassError(t *testing.T) {
	dir := t.TempDir()
	fs := mustNew(t, diskfault.Config{Seed: 3, WriteIndex: 0, Class: diskfault.ClassTornWrite, Crash: true})
	err := atomicio.WriteFile(fs, filepath.Join(dir, "f.json"), []byte("0123456789"))
	if !errors.Is(err, diskfault.ErrTornWrite) || !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("error = %v, want both ErrTornWrite and ErrCrashed", err)
	}
}

// brokenWrite commits one generation of path with the rename-before-fsync
// write order (via NoSyncFS) over the given fault FS.
func brokenWrite(t *testing.T, fs *diskfault.FS, path string, data []byte) error {
	t.Helper()
	return atomicio.WriteFile(diskfault.NoSyncFS(fs), path, data)
}

// TestCrashTearsUnsyncedRenames is the teeth of the whole layer: a
// writer that renames before fsync leaves its committed target torn by
// the crash, while the correct discipline keeps it byte-identical.
func TestCrashTearsUnsyncedRenames(t *testing.T) {
	payload := bytes.Repeat([]byte("durability is a promise, not a hope. "), 40)

	// Broken writer: target A is committed by rename but never synced.
	// The crash (fired by write #1 against target B) truncates it.
	dirBroken := t.TempDir()
	a := filepath.Join(dirBroken, "a.json")
	fsBroken := mustNew(t, diskfault.Config{Seed: 21, WriteIndex: 1, Class: diskfault.ClassPreRenameCrash, Crash: true})
	if err := brokenWrite(t, fsBroken, a, payload); err != nil {
		t.Fatalf("broken commit of a.json: %v", err)
	}
	if err := brokenWrite(t, fsBroken, filepath.Join(dirBroken, "b.json"), payload); !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("second write = %v, want ErrCrashed", err)
	}
	gotBroken, err := os.ReadFile(a)
	if err != nil {
		t.Fatalf("read a.json: %v", err)
	}
	if len(gotBroken) >= len(payload) {
		t.Fatalf("unsynced renamed target survived the crash whole (%d bytes); the broken write order went unpunished", len(gotBroken))
	}
	if !bytes.HasPrefix(payload, gotBroken) {
		t.Fatal("surviving bytes are not a prefix of the written data")
	}
	if fsBroken.Counters().TruncatedFiles == 0 {
		t.Fatalf("counters = %+v, want truncated files", fsBroken.Counters())
	}

	// Correct writer, same plan and seed: A was fsynced before its
	// rename, so the crash cannot touch it.
	dirGood := t.TempDir()
	ag := filepath.Join(dirGood, "a.json")
	fsGood := mustNew(t, diskfault.Config{Seed: 21, WriteIndex: 1, Class: diskfault.ClassPreRenameCrash, Crash: true})
	if err := atomicio.WriteFile(fsGood, ag, payload); err != nil {
		t.Fatalf("commit of a.json: %v", err)
	}
	if err := atomicio.WriteFile(fsGood, filepath.Join(dirGood, "b.json"), payload); !errors.Is(err, diskfault.ErrCrashed) {
		t.Fatalf("second write = %v, want ErrCrashed", err)
	}
	gotGood, err := os.ReadFile(ag)
	if err != nil || !bytes.Equal(gotGood, payload) {
		t.Fatalf("synced committed target damaged by crash: %d bytes, %v", len(gotGood), err)
	}
}

// TestDeterminism runs the same plan over the same operation sequence
// twice and checks the surviving bytes and counters are identical.
func TestDeterminism(t *testing.T) {
	run := func(dir string) ([]byte, diskfault.Counters) {
		fs := mustNew(t, diskfault.Config{Seed: 99, WriteIndex: 1, Class: diskfault.ClassPreRenameCrash, Crash: true})
		a := filepath.Join(dir, "a.json")
		payload := bytes.Repeat([]byte("0123456789abcdef"), 32)
		if err := brokenWrite(t, fs, a, payload); err != nil {
			t.Fatalf("first write: %v", err)
		}
		if err := brokenWrite(t, fs, filepath.Join(dir, "b.json"), payload); !errors.Is(err, diskfault.ErrCrashed) {
			t.Fatalf("second write = %v, want ErrCrashed", err)
		}
		got, err := os.ReadFile(a)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		return got, fs.Counters()
	}
	b1, c1 := run(t.TempDir())
	b2, c2 := run(t.TempDir())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("surviving bytes differ across identical runs: %d vs %d", len(b1), len(b2))
	}
	if c1 != c2 {
		t.Fatalf("counters differ across identical runs: %+v vs %+v", c1, c2)
	}
}

// TestTornWriteIsStrictPrefix pins that the injected torn write always
// loses at least one byte — otherwise it would not be torn.
func TestTornWriteIsStrictPrefix(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "f.json")
		fs := mustNew(t, diskfault.Config{Seed: seed, WriteIndex: 0, Class: diskfault.ClassTornWrite})
		err := atomicio.WriteFile(fs, path, []byte("0123456789"))
		if !errors.Is(err, diskfault.ErrTornWrite) {
			t.Fatalf("seed %d: error = %v", seed, err)
		}
	}
}
