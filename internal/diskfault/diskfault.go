// Package diskfault is the disk edition of internal/faultinject: a
// deterministic fault injector for the durable-write path. Where
// faultinject perturbs simulated NVM lines, diskfault perturbs the
// daemon's own store — the checkpoint, spec, state and result files
// written through internal/atomicio — with seeded plans covering the
// crash points a real machine exposes:
//
//   - torn write: the write transfers only a seeded prefix of its data;
//   - failed fsync: the file sync reports an error, and any unsynced
//     data is lost if the plan also crashes;
//   - pre-rename crash: the temporary file is fully durable but the
//     crash lands before the rename commits it;
//   - no space: the write fails like ENOSPC after a seeded prefix.
//
// A plan targets one durable write (the Nth atomicio.WriteFile issued
// through the FS) and optionally crashes the filesystem there. A crash
// models power loss honestly: every subsequent operation fails with
// ErrCrashed, and — the part that makes fsync matter — data written but
// never synced is truncated away (a seeded amount may survive, like
// partially flushed page cache). A writer that renames before syncing
// therefore leaves torn targets behind a crash, which is exactly what
// the chaos harness exists to catch; NoSyncFS packages that broken
// writer so the harness can prove it bites.
//
// Like every fault layer in this repository, a plan is a pure function
// of its Config: the same seed over the same operation sequence injects
// the same faults and keeps the same surviving bytes.
package diskfault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync" //lint:allow nondeterminism "the fault filesystem is called from the daemon's HTTP and worker goroutines; injection decisions stay a pure function of (seed, operation sequence)"

	"maxwe/internal/atomicio"
	"maxwe/internal/xrand"
)

// Class enumerates the injectable crash-point classes.
type Class int

// The crash-point classes, in matrix order.
const (
	// ClassTornWrite makes the targeted write transfer only a seeded
	// strict prefix of its data.
	ClassTornWrite Class = iota
	// ClassSyncFail makes the targeted write's file fsync report failure.
	ClassSyncFail
	// ClassPreRenameCrash crashes after the temporary file is durable but
	// before the rename commits it (always a crash).
	ClassPreRenameCrash
	// ClassNoSpace makes the targeted write fail like ENOSPC after a
	// seeded prefix.
	ClassNoSpace
	numClasses
)

// Classes returns every class in matrix order, for harness iteration.
func Classes() []Class {
	return []Class{ClassTornWrite, ClassSyncFail, ClassPreRenameCrash, ClassNoSpace}
}

// String names the class for subtest labels and logs.
func (c Class) String() string {
	switch c {
	case ClassTornWrite:
		return "torn-write"
	case ClassSyncFail:
		return "sync-fail"
	case ClassPreRenameCrash:
		return "pre-rename-crash"
	case ClassNoSpace:
		return "no-space"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Injected error values. ErrCrashed is joined onto the class error when
// the plan crashes, so errors.Is works for both.
var (
	// ErrCrashed reports an operation issued after (or at) the injected
	// crash: the simulated machine is off.
	ErrCrashed = errors.New("diskfault: filesystem crashed (injected)")
	// ErrTornWrite reports the injected short write.
	ErrTornWrite = errors.New("diskfault: torn write (injected)")
	// ErrSyncFail reports the injected fsync failure.
	ErrSyncFail = errors.New("diskfault: fsync failed (injected)")
	// ErrNoSpace reports the injected out-of-space write failure.
	ErrNoSpace = errors.New("diskfault: no space left on device (injected)")
)

// Config parameterizes one fault plan.
type Config struct {
	// Seed drives every seeded choice: torn-write prefix lengths and how
	// much unsynced data survives a crash.
	Seed uint64 `json:"Seed"`
	// WriteIndex is the 0-based index of the durable write to hit (each
	// atomicio.WriteFile opens exactly one file for writing, so the index
	// counts OpenFileWrite calls). Negative disables injection entirely —
	// the FS only counts, for measuring a run's write sequence.
	WriteIndex int `json:"WriteIndex"`
	// Class selects the crash-point class injected at WriteIndex.
	Class Class `json:"Class"`
	// Crash, when set, turns the injection into a power failure: every
	// later operation fails with ErrCrashed and unsynced data is
	// truncated to a seeded surviving prefix. ClassPreRenameCrash implies
	// Crash.
	Crash bool `json:"Crash"`
}

func (c Config) validate() error {
	if c.Class < 0 || c.Class >= numClasses {
		return fmt.Errorf("diskfault: unknown class %d", int(c.Class))
	}
	if c.Class == ClassPreRenameCrash && c.WriteIndex >= 0 && !c.Crash {
		return fmt.Errorf("diskfault: %v without Crash is meaningless", c.Class)
	}
	return nil
}

// Counters aggregates injected faults per class over one FS lifetime.
type Counters struct {
	// TornWrites, SyncFails, PreRenameCrashes and NoSpaceFaults count
	// injections per class (at most one each per plan).
	TornWrites       int64 `json:"TornWrites"`
	SyncFails        int64 `json:"SyncFails"`
	PreRenameCrashes int64 `json:"PreRenameCrashes"`
	NoSpaceFaults    int64 `json:"NoSpaceFaults"`
	// OpsAfterCrash counts operations refused because the filesystem had
	// already crashed.
	OpsAfterCrash int64 `json:"OpsAfterCrash"`
	// TruncatedFiles counts files that lost unsynced data at the crash.
	TruncatedFiles int64 `json:"TruncatedFiles"`
}

// Any reports whether any fault was injected.
func (c Counters) Any() bool { return c != (Counters{}) }

// fileState tracks one file written through the FS: how many bytes were
// written and how many of them are known durable (synced).
type fileState struct {
	path   string
	size   int64
	synced int64
	fired  bool
}

// FS wraps an inner atomicio.FS with one seeded fault plan. Construct
// with New; safe for concurrent use.
type FS struct {
	inner atomicio.FS
	cfg   Config

	mu      sync.Mutex
	src     *xrand.Source
	writes  int
	crashed bool
	armed   *fileState
	files   map[string]*fileState
	count   Counters
}

// New validates cfg and wraps inner (nil selects atomicio.OS) with the
// plan it describes.
func New(inner atomicio.FS, cfg Config) (*FS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = atomicio.OS
	}
	return &FS{
		inner: inner,
		cfg:   cfg,
		src:   xrand.New(cfg.Seed),
		files: make(map[string]*fileState),
	}, nil
}

// Writes returns how many durable writes have been opened through the
// FS — the measurement a counting pass (WriteIndex < 0) exposes so a
// harness can enumerate every crash point of a workload.
func (fs *FS) Writes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Crashed reports whether the injected crash has fired.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Counters snapshots the per-class injection counters.
func (fs *FS) Counters() Counters {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.count
}

// refuseLocked reports (and counts) an operation on a crashed FS. The
// caller must hold fs.mu.
func (fs *FS) refuseLocked() error {
	if !fs.crashed {
		return nil
	}
	fs.count.OpsAfterCrash++
	return ErrCrashed
}

// truncation is one crash-time data-loss action, applied outside the
// lock.
type truncation struct {
	path string
	keep int64
}

// crashLocked marks the FS crashed and computes, per file with unsynced
// data, the seeded surviving prefix — some unsynced bytes may have been
// flushed opportunistically, most are lost. Paths are visited in sorted
// order so the draws are deterministic. The caller must hold fs.mu and
// apply the returned truncations after unlocking.
func (fs *FS) crashLocked() []truncation {
	fs.crashed = true
	paths := make([]string, 0, len(fs.files))
	for p, st := range fs.files {
		if st.size > st.synced {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	truncs := make([]truncation, 0, len(paths))
	for _, p := range paths {
		st := fs.files[p]
		unsynced := st.size - st.synced
		survives := int64(fs.src.Intn(int(unsynced))) // strict: at least one unsynced byte is lost
		truncs = append(truncs, truncation{path: p, keep: st.synced + survives})
		fs.count.TruncatedFiles++
	}
	return truncs
}

// apply executes crash-time truncations against the real directory; it
// must be called without holding fs.mu.
func (fs *FS) apply(truncs []truncation) {
	for _, tr := range truncs {
		// Best-effort, like a power failure: a file that vanished in the
		// meantime simply has nothing left to lose.
		_ = os.Truncate(tr.path, tr.keep)
	}
}

// OpenFileWrite opens path for writing through the plan, arming the
// injection when this is the targeted durable write.
func (fs *FS) OpenFileWrite(path string) (atomicio.File, error) {
	fs.mu.Lock()
	if err := fs.refuseLocked(); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	idx := fs.writes
	fs.writes++
	st := &fileState{path: path}
	fs.files[path] = st
	if fs.cfg.WriteIndex >= 0 && idx == fs.cfg.WriteIndex {
		fs.armed = st
	}
	fs.mu.Unlock()

	f, err := fs.inner.OpenFileWrite(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, st: st, real: f}, nil
}

// ReadFile reads path; a crashed FS refuses, like the dead process it
// models.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	err := fs.refuseLocked()
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return fs.inner.ReadFile(path)
}

// Rename commits oldpath over newpath, firing the pre-rename crash when
// the plan targets this write.
func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	if err := fs.refuseLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	st := fs.files[oldpath]
	if st != nil && st == fs.armed && !st.fired && fs.cfg.Class == ClassPreRenameCrash {
		st.fired = true
		fs.count.PreRenameCrashes++
		truncs := fs.crashLocked()
		fs.mu.Unlock()
		fs.apply(truncs)
		return ErrCrashed
	}
	if st != nil {
		// The tracked bytes (synced or not) now live under the new name.
		delete(fs.files, oldpath)
		st.path = newpath
		fs.files[newpath] = st
	}
	fs.mu.Unlock()
	return fs.inner.Rename(oldpath, newpath)
}

// Remove deletes path (refused after the crash, so a cleanup that would
// not have happened on the real machine does not happen here either).
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	if err := fs.refuseLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	delete(fs.files, path)
	fs.mu.Unlock()
	return fs.inner.Remove(path)
}

// SyncDir flushes dir through the inner FS (or refuses after a crash).
// Rename durability is modeled conservatively — committed renames are
// never rolled back — so SyncDir only needs to pass through.
func (fs *FS) SyncDir(dir string) error {
	fs.mu.Lock()
	err := fs.refuseLocked()
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	return fs.inner.SyncDir(dir)
}

// file is one tracked write handle.
type file struct {
	fs   *FS
	st   *fileState
	real atomicio.File
}

// Write transfers p, injecting the torn-write or no-space fault when
// this handle is armed for one.
func (f *file) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if err := fs.refuseLocked(); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	fire := f.st == fs.armed && !f.st.fired && len(p) > 0 &&
		(fs.cfg.Class == ClassTornWrite || fs.cfg.Class == ClassNoSpace)
	var keep int
	var classErr error
	if fire {
		f.st.fired = true
		keep = fs.src.Intn(len(p)) // a strict prefix reaches the disk
		switch fs.cfg.Class {
		case ClassTornWrite:
			fs.count.TornWrites++
			classErr = ErrTornWrite
		case ClassNoSpace:
			fs.count.NoSpaceFaults++
			classErr = ErrNoSpace
		}
	}
	fs.mu.Unlock()

	if !fire {
		n, err := f.real.Write(p)
		fs.mu.Lock()
		f.st.size += int64(n)
		fs.mu.Unlock()
		return n, err
	}
	n, _ := f.real.Write(p[:keep])
	fs.mu.Lock()
	f.st.size += int64(n)
	var truncs []truncation
	if fs.cfg.Crash {
		truncs = fs.crashLocked()
		classErr = errors.Join(classErr, ErrCrashed)
	}
	fs.mu.Unlock()
	fs.apply(truncs)
	return n, classErr
}

// Sync flushes the handle, injecting the fsync failure when armed for
// one; a successful sync marks the written bytes durable.
func (f *file) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if err := fs.refuseLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	if f.st == fs.armed && !f.st.fired && fs.cfg.Class == ClassSyncFail {
		f.st.fired = true
		fs.count.SyncFails++
		classErr := error(ErrSyncFail)
		var truncs []truncation
		if fs.cfg.Crash {
			truncs = fs.crashLocked()
			classErr = errors.Join(classErr, ErrCrashed)
		}
		fs.mu.Unlock()
		fs.apply(truncs)
		return classErr
	}
	fs.mu.Unlock()
	if err := f.real.Sync(); err != nil {
		return err
	}
	fs.mu.Lock()
	f.st.synced = f.st.size
	fs.mu.Unlock()
	return nil
}

// Close releases the real handle. The file descriptor is freed even
// after a crash (the kernel of the dead machine is gone, the test
// process's resources are not), but the crash is still reported.
func (f *file) Close() error {
	err := f.real.Close()
	fs := f.fs
	fs.mu.Lock()
	crashed := fs.crashed
	fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return err
}

// NoSyncFS wraps inner with a writer that lies about durability: file
// Sync and directory SyncDir report success without syncing anything, so
// every rename commits data the disk never promised to keep — the
// "rename before fsync" write order. It exists so the chaos harness can
// prove it detects the broken discipline; never use it in production
// code.
func NoSyncFS(inner atomicio.FS) atomicio.FS { return noSyncFS{inner: inner} }

type noSyncFS struct{ inner atomicio.FS }

func (n noSyncFS) OpenFileWrite(path string) (atomicio.File, error) {
	f, err := n.inner.OpenFileWrite(path)
	if err != nil {
		return nil, err
	}
	return noSyncFile{File: f}, nil
}

func (n noSyncFS) ReadFile(path string) ([]byte, error) { return n.inner.ReadFile(path) }
func (n noSyncFS) Rename(oldpath, newpath string) error { return n.inner.Rename(oldpath, newpath) }
func (n noSyncFS) Remove(path string) error             { return n.inner.Remove(path) }
func (n noSyncFS) SyncDir(string) error                 { return nil }

type noSyncFile struct{ atomicio.File }

// Sync lies: it reports success without flushing anything.
func (noSyncFile) Sync() error { return nil }
