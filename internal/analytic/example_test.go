package analytic_test

import (
	"fmt"

	"maxwe/internal/analytic"
)

// Reproduce the paper's Section 4.3 headline: at a 10% spare budget and
// 50x endurance variation, Max-WE achieves 38.1% of the ideal lifetime
// against 22.2% for PCD/PS and 20.8% for the PS worst case.
func Example() {
	par := analytic.FromPQ(1e6, 0.1, 50)
	fmt.Printf("max-we   %.1f%%\n", par.NormalizedMaxWE()*100)
	fmt.Printf("pcd/ps   %.1f%%\n", par.NormalizedPCDPS()*100)
	fmt.Printf("ps-worst %.1f%%\n", par.NormalizedPSWorst()*100)
	// Output:
	// max-we   38.1%
	// pcd/ps   22.2%
	// ps-worst 20.8%
}

// Equation 5: with EH = 50x EL, the uniform address attack reduces the
// device to 3.9% of its ideal lifetime.
func ExampleParams_UAARatio() {
	par := analytic.FromPQ(1e6, 0, 50)
	fmt.Printf("%.1f%%\n", par.UAARatio()*100)
	// Output:
	// 3.9%
}
