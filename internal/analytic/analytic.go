// Package analytic implements the paper's closed-form lifetime analysis
// under the tractable linear endurance model (Sections 3.1 and 4.3):
// the N memory lines have endurance linearly distributed between the
// minimum EL and maximum EH, and the Uniform Address Attack writes every
// line once per round.
//
// Equations (numbering follows the paper):
//
//	(3) L_ideal    = N*(EH-EL)/2 + N*EL
//	(4) L_UAA      = N*EL
//	(5) L_UAA/L_ideal = 2*EL / (EH+EL)
//	(6) L_MaxWE    = (N-S) * (EL + 2*S*(EH-EL)/N)
//	(7) L_PCD/PS   = S*(N-S/2)*(EH-EL)/N + N*EL
//	(8) L_PS-worst = (N-S) * (EL + S*(EH-EL)/N)
//
// The package also produces the data series behind Figure 1 (the
// endurance-distribution areas) and Figure 5 (the lifetime surface over
// the spare fraction p and the variation degree q).
package analytic

import "fmt"

// Params are the inputs of the linear model. N is the total number of
// lines, S the number of spare lines, EL/EH the minimum/maximum line
// endurance.
type Params struct {
	N  float64
	S  float64
	EL float64
	EH float64
}

// Validate reports whether the parameters are in the model's domain.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("analytic: N = %v must be positive", p.N)
	case p.S < 0 || p.S >= p.N:
		return fmt.Errorf("analytic: S = %v must be in [0, N)", p.S)
	case p.EL <= 0:
		return fmt.Errorf("analytic: EL = %v must be positive", p.EL)
	case p.EH < p.EL:
		return fmt.Errorf("analytic: EH = %v must be >= EL = %v", p.EH, p.EL)
	}
	return nil
}

// FromPQ builds Params from the paper's normalized knobs: p = S/N (spare
// fraction) and q = EH/EL (degree of process variation), with EL fixed to
// 1 so all lifetimes are in units of EL-writes.
func FromPQ(n, pFrac, q float64) Params {
	return Params{N: n, S: pFrac * n, EL: 1, EH: q}
}

// Ideal returns Equation 3, the area under the endurance distribution:
// every line is written exactly to its endurance.
func (p Params) Ideal() float64 {
	return p.N*(p.EH-p.EL)/2 + p.N*p.EL
}

// UAA returns Equation 4: under the uniform address attack with no
// protection the device dies when the weakest line dies, after N*EL
// writes.
func (p Params) UAA() float64 {
	return p.N * p.EL
}

// UAARatio returns Equation 5, L_UAA / L_ideal = 2EL/(EH+EL).
func (p Params) UAARatio() float64 {
	return 2 * p.EL / (p.EH + p.EL)
}

// MaxWE returns Equation 6: with the weakest S lines reserved as spares
// and weak-strong matching, lifetime is governed by the (2S+1)-th weakest
// line, endured by the N-S working lines.
func (p Params) MaxWE() float64 {
	return (p.N - p.S) * (p.EL + 2*p.S*(p.EH-p.EL)/p.N)
}

// PCDPS returns Equation 7, the lifetime of Physical Capacity Degradation,
// which the paper (after Ferreira et al.) also uses for the average case
// of Physical Sparing: write traffic spreads over the whole space and the
// device survives the first S failures.
func (p Params) PCDPS() float64 {
	return p.S*(p.N-p.S/2)*(p.EH-p.EL)/p.N + p.N*p.EL
}

// PSWorst returns Equation 8, the worst case of Physical Sparing where the
// spares are taken from strong lines: lifetime is governed by the (S+1)-th
// weakest line.
func (p Params) PSWorst() float64 {
	return (p.N - p.S) * (p.EL + p.S*(p.EH-p.EL)/p.N)
}

// NormalizedMaxWE returns MaxWE()/Ideal(), a z value of Figure 5.
func (p Params) NormalizedMaxWE() float64 { return p.MaxWE() / p.Ideal() }

// NormalizedPCDPS returns PCDPS()/Ideal(), a z value of Figure 5.
func (p Params) NormalizedPCDPS() float64 { return p.PCDPS() / p.Ideal() }

// NormalizedPSWorst returns PSWorst()/Ideal(), a z value of Figure 5.
func (p Params) NormalizedPSWorst() float64 { return p.PSWorst() / p.Ideal() }

// Fig1Point is one x position of Figure 1: lines sorted by descending
// endurance, with the endurance value and the EL floor that bounds the
// UAA-reachable writes.
type Fig1Point struct {
	// LineRank is the position in the descending endurance order,
	// normalized to [0, 1].
	LineRank float64
	// Endurance is the line's endurance under the linear model.
	Endurance float64
	// UAAFloor is EL — the per-line writes UAA achieves before death.
	UAAFloor float64
}

// Fig1Series samples Figure 1's endurance-distribution diagonal at points
// positions. The area under Endurance is L_ideal/N; the area under
// UAAFloor is L_UAA/N.
func (p Params) Fig1Series(points int) []Fig1Point {
	if points < 2 {
		panic("analytic: Fig1Series needs at least 2 points")
	}
	out := make([]Fig1Point, points)
	for i := range out {
		frac := float64(i) / float64(points-1)
		out[i] = Fig1Point{
			LineRank:  frac,
			Endurance: p.EH - (p.EH-p.EL)*frac,
			UAAFloor:  p.EL,
		}
	}
	return out
}

// SurfacePoint is one (p, q) cell of Figure 5 with the three normalized
// lifetimes.
type SurfacePoint struct {
	P       float64 // spare fraction S/N
	Q       float64 // variation degree EH/EL
	MaxWE   float64 // normalized lifetime, Equation 6 / Equation 3
	PCDPS   float64 // Equation 7 / Equation 3
	PSWorst float64 // Equation 8 / Equation 3
}

// Fig5Surface evaluates the Figure 5 comparison over pSteps values of
// p in [pMin, pMax] and qSteps values of q in [qMin, qMax], row-major in
// p then q. The paper's axes are 0.1 <= p <= 0.3 and 10 <= q <= 100.
func Fig5Surface(pMin, pMax float64, pSteps int, qMin, qMax float64, qSteps int) []SurfacePoint {
	if pSteps < 2 || qSteps < 2 {
		panic("analytic: Fig5Surface needs at least 2 steps per axis")
	}
	if pMin <= 0 || pMax >= 1 || pMin > pMax || qMin < 1 || qMin > qMax {
		panic("analytic: Fig5Surface parameter range out of domain")
	}
	out := make([]SurfacePoint, 0, pSteps*qSteps)
	for i := 0; i < pSteps; i++ {
		pf := pMin + (pMax-pMin)*float64(i)/float64(pSteps-1)
		for j := 0; j < qSteps; j++ {
			q := qMin + (qMax-qMin)*float64(j)/float64(qSteps-1)
			par := FromPQ(1, pf, q)
			out = append(out, SurfacePoint{
				P:       pf,
				Q:       q,
				MaxWE:   par.NormalizedMaxWE(),
				PCDPS:   par.NormalizedPCDPS(),
				PSWorst: par.NormalizedPSWorst(),
			})
		}
	}
	return out
}
