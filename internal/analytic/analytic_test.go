package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestPaperHeadlineNumbers(t *testing.T) {
	// Section 4.3: "Assuming that p = 0.1 and q = 50, Max-WE, PCD/PS and
	// PS-worst can achieve 38.1%, 22.2% and 20.8% of the ideal lifetime."
	par := FromPQ(1e6, 0.1, 50)
	approx(t, "MaxWE", par.NormalizedMaxWE(), 0.381, 0.002)
	approx(t, "PCDPS", par.NormalizedPCDPS(), 0.222, 0.002)
	approx(t, "PSWorst", par.NormalizedPSWorst(), 0.208, 0.002)
}

func TestEq5FiftyX(t *testing.T) {
	// Section 3.1: "If EH is 50 times more than EL, L_UAA will be only
	// 3.9% of the ideal lifetime."
	par := FromPQ(1e6, 0, 50)
	approx(t, "UAARatio(q=50)", par.UAARatio(), 0.039, 0.0005)
}

func TestIdealDecomposition(t *testing.T) {
	par := Params{N: 1000, S: 0, EL: 10, EH: 100}
	// Triangle + rectangle decomposition of Equation 3.
	want := 1000*(100-10)/2.0 + 1000*10
	approx(t, "Ideal", par.Ideal(), want, 1e-9)
	approx(t, "UAA", par.UAA(), 10000, 1e-9)
}

func TestUAARatioConsistent(t *testing.T) {
	par := Params{N: 5000, EL: 7, EH: 300}
	approx(t, "ratio identity", par.UAARatio(), par.UAA()/par.Ideal(), 1e-12)
}

func TestNoVariationDegenerate(t *testing.T) {
	// With q = 1 (EH == EL) UAA achieves the ideal lifetime.
	par := FromPQ(1e5, 0, 1)
	approx(t, "UAARatio(q=1)", par.UAARatio(), 1, 1e-12)
}

func TestZeroSpareCollapse(t *testing.T) {
	// With S = 0 all three protected schemes reduce to the UAA floor.
	par := FromPQ(1e6, 0, 50)
	approx(t, "MaxWE(S=0)", par.MaxWE(), par.UAA(), 1e-6)
	approx(t, "PCDPS(S=0)", par.PCDPS(), par.UAA(), 1e-6)
	approx(t, "PSWorst(S=0)", par.PSWorst(), par.UAA(), 1e-6)
}

func TestValidate(t *testing.T) {
	good := Params{N: 10, S: 1, EL: 1, EH: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{N: 0, S: 0, EL: 1, EH: 2},
		{N: 10, S: -1, EL: 1, EH: 2},
		{N: 10, S: 10, EL: 1, EH: 2},
		{N: 10, S: 1, EL: 0, EH: 2},
		{N: 10, S: 1, EL: 3, EH: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

// Property (the paper's Figure 5 claim): Max-WE always outperforms both
// PCD/PS and PS-worst across the full plotted domain.
func TestMaxWEDominatesProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		pf := 0.1 + 0.2*float64(a)/65535.0 // p in [0.1, 0.3]
		q := 10 + 90*float64(b)/65535.0    // q in [10, 100]
		par := FromPQ(1e6, pf, q)
		return par.MaxWE() >= par.PCDPS() && par.MaxWE() >= par.PSWorst()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: PCD/PS >= PS-worst on the plotted domain (the paper's ordering).
func TestPCDPSBeatsPSWorstProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		pf := 0.1 + 0.2*float64(a)/65535.0
		q := 10 + 90*float64(b)/65535.0
		par := FromPQ(1e6, pf, q)
		return par.PCDPS() >= par.PSWorst()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every scheme's lifetime is bounded by the ideal lifetime and
// at least the unprotected UAA lifetime... PS-worst can dip toward UAA but
// never below it for S >= 0.
func TestLifetimeBoundsProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		pf := 0.3 * float64(a) / 65535.0 // p in [0, 0.3]
		q := 1 + 99*float64(b)/65535.0   // q in [1, 100]
		par := FromPQ(1e6, pf, q)
		ideal := par.Ideal()
		for _, l := range []float64{par.MaxWE(), par.PCDPS(), par.PSWorst()} {
			if l > ideal+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: lifetimes increase monotonically with the spare fraction.
func TestMonotoneInSpares(t *testing.T) {
	for q := 10.0; q <= 100; q += 10 {
		prevM, prevP, prevW := -1.0, -1.0, -1.0
		for pf := 0.0; pf <= 0.31; pf += 0.01 {
			par := FromPQ(1e6, pf, q)
			if par.MaxWE() < prevM || par.PCDPS() < prevP || par.PSWorst() < prevW {
				t.Fatalf("lifetime decreased when adding spares at p=%v q=%v", pf, q)
			}
			prevM, prevP, prevW = par.MaxWE(), par.PCDPS(), par.PSWorst()
		}
	}
}

func TestFig1Series(t *testing.T) {
	par := FromPQ(1000, 0, 50)
	s := par.Fig1Series(101)
	if len(s) != 101 {
		t.Fatalf("got %d points", len(s))
	}
	if s[0].Endurance != par.EH || s[100].Endurance != par.EL {
		t.Fatalf("series endpoints wrong: %v .. %v", s[0].Endurance, s[100].Endurance)
	}
	// Riemann sum over the diagonal must approximate L_ideal / N.
	sum := 0.0
	for i := 1; i < len(s); i++ {
		dx := s[i].LineRank - s[i-1].LineRank
		sum += dx * (s[i].Endurance + s[i-1].Endurance) / 2
	}
	approx(t, "area under diagonal", sum, par.Ideal()/par.N, par.Ideal()/par.N*0.001)
	// Area under the UAA floor must equal L_UAA / N.
	approx(t, "UAA floor area", s[0].UAAFloor, par.UAA()/par.N, 1e-9)
}

func TestFig1SeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fig1Series(1) did not panic")
		}
	}()
	FromPQ(10, 0, 2).Fig1Series(1)
}

func TestFig5SurfaceShapeAndCorner(t *testing.T) {
	s := Fig5Surface(0.1, 0.3, 5, 10, 100, 10)
	if len(s) != 50 {
		t.Fatalf("surface has %d points, want 50", len(s))
	}
	// Find the p=0.1, q=50 column via the paper's corner check.
	for _, pt := range s {
		if math.Abs(pt.P-0.1) < 1e-9 && math.Abs(pt.Q-50) < 1e-9 {
			approx(t, "surface MaxWE@(0.1,50)", pt.MaxWE, 0.381, 0.002)
			return
		}
	}
	t.Fatal("surface did not sample (p=0.1, q=50)")
}

func TestFig5SurfacePanics(t *testing.T) {
	cases := []func(){
		func() { Fig5Surface(0.1, 0.3, 1, 10, 100, 10) },
		func() { Fig5Surface(0.1, 0.3, 5, 10, 100, 1) },
		func() { Fig5Surface(0, 0.3, 5, 10, 100, 5) },
		func() { Fig5Surface(0.3, 0.1, 5, 10, 100, 5) },
		func() { Fig5Surface(0.1, 0.3, 5, 0.5, 100, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFromPQ(t *testing.T) {
	par := FromPQ(1000, 0.25, 40)
	if par.N != 1000 || par.S != 250 || par.EL != 1 || par.EH != 40 {
		t.Fatalf("FromPQ produced %+v", par)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}
