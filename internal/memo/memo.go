// Package memo is the content-addressed cell-result cache. A key is the
// full, human-readable identity of a computation — canonical spec plus
// engine schema version (see Fingerprint) — and the cached value is the
// canonical JSON of its result. Because every simulation in this
// repository is deterministic and bit-exact (the property the runner's
// checkpoint machinery already relies on), two computations with equal
// keys produce byte-identical values, which is what makes serving a hit
// safe: a hit is indistinguishable from recomputing.
//
// The cache is two-tiered:
//
//   - an in-process LRU (bounded by Options.MaxEntries) absorbs repeat
//     lookups within one process with no I/O;
//   - a durable on-disk store (Options.Dir; one file per key, named by
//     the SHA-256 of the key) persists results across processes and is
//     shared cluster-wide when nvmd points every job at the same
//     directory.
//
// Disk entries are written through internal/atomicio, so a crash never
// leaves a torn entry behind, and each file carries a self-describing
// envelope {key, value}: a read validates that the envelope's key equals
// the requested key (defending the one-in-2^128 hash collision and, more
// practically, files shuffled between directories). An entry that fails
// to parse or validate is quarantined — renamed to <name>.corrupt, like
// the service's checkpoint quarantine — counted in Stats, and reported
// as a miss so the caller recomputes. Corrupt entries are never served.
//
// GetOrCompute adds singleflight dedup: concurrent callers with the same
// key compute once — the first becomes the leader, the rest wait and
// share its value. A leader failure (including its own context
// cancellation) is never cached; each waiter then retries and may become
// the leader under its own context, so one canceled job cannot poison a
// cell for another.
//
// The cache is an optimization, never a correctness dependency: a failed
// disk write degrades the cache (counted in Stats.WriteErrors) without
// failing the computation that produced the value.
package memo

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync" //lint:allow nondeterminism "the cache is shared mutable state across runner workers and nvmd jobs; values are content-addressed and bit-exact, so lookup order cannot change any served byte"

	"maxwe/internal/atomicio"
)

// Fingerprint derives a content-address for v: scope, a slash, and the
// hex SHA-256 of v's canonical JSON. Scope names what kind of value is
// addressed and carries the version that invalidates it (e.g.
// "maxwe-config/v1"); keys with different scopes can never collide.
func Fingerprint(scope string, v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Only unmarshalable types (channels, funcs) reach here — a
		// programming error at the call site, not an input condition.
		panic(fmt.Errorf("memo: fingerprint %s: %w", scope, err))
	}
	sum := sha256.Sum256(raw)
	return scope + "/" + hex.EncodeToString(sum[:])
}

// Peer is a remote cache another node exposes — in the nvmd federation,
// a coordinator's /v1/cluster/cache surface. A peer is consulted only
// after both local tiers miss, and exclusively as an optimization: any
// fetch failure (network, timeout, peer down) must be reported as a
// plain miss so the caller computes locally. Implementations must be
// safe for concurrent use.
type Peer interface {
	// Fetch returns the peer's value for key; ok is false on a miss or
	// on any transport failure.
	Fetch(key string) (val []byte, ok bool)
}

// Options configures Open. The zero value is a memory-only cache with
// the default LRU bound.
type Options struct {
	// Dir, when non-empty, roots the durable tier: one file per key,
	// created on demand. Empty disables the disk tier (memory only).
	Dir string
	// MaxEntries bounds the in-process LRU (0 selects 4096). When the
	// bound is reached the least recently used entry is evicted from
	// memory; its disk file, if any, remains.
	MaxEntries int
	// FS is the filesystem the disk tier writes through. Nil selects the
	// real filesystem (atomicio.OS); the chaos harness can pass a
	// fault-injecting implementation.
	FS atomicio.FS
	// Peer, when non-nil, adds a third lookup tier behind memory and
	// disk: a remote cache (another nvmd's cluster cache surface) probed
	// on a local miss. A peer hit is written through to both local tiers
	// so it is served locally from then on; a peer failure is a miss.
	Peer Peer
}

// Stats is a point-in-time snapshot of the cache counters, served by
// nvmd as GET /v1/cache/stats and folded into /metrics.
type Stats struct {
	// Hits counts lookups served without computing: memory, disk, and
	// singleflight (dedup) hits combined.
	Hits int64 `json:"hits"`
	// MemHits and DiskHits break Hits down by serving tier.
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	// DedupHits counts GetOrCompute callers served by a concurrent
	// leader's computation instead of their own.
	DedupHits int64 `json:"dedup_hits"`
	// Misses counts lookups that found nothing and (for GetOrCompute)
	// led the caller to compute.
	Misses int64 `json:"misses"`
	// Puts counts values stored (one per unique computation).
	Puts int64 `json:"puts"`
	// Corrupt counts disk entries quarantined to <name>.corrupt because
	// they failed to parse or validate. A quarantined entry is recomputed,
	// never served.
	Corrupt int64 `json:"corrupt"`
	// WriteErrors counts disk writes that failed; the value was still
	// returned to the caller (the cache degrades, the computation does
	// not fail).
	WriteErrors int64 `json:"write_errors"`
	// BytesRead and BytesWritten count disk-tier traffic.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// PeerHits counts lookups served by the configured peer (a remote
	// cache probed after both local tiers missed); PeerMisses counts
	// peer probes that found nothing (transport failures included), and
	// PeerBytes the bytes fetched from the peer. All zero when no peer
	// is configured.
	PeerHits   int64 `json:"peer_hits"`
	PeerMisses int64 `json:"peer_misses"`
	PeerBytes  int64 `json:"peer_bytes"`
	// Entries is the current in-memory LRU population.
	Entries int `json:"entries"`
}

// envelope is the on-disk document: the key makes each entry
// self-describing, so a read can prove the file holds the value it was
// asked for before serving it.
type envelope struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Cache is the two-tier content-addressed store. All methods are safe
// for concurrent use. Values handed in and out are aliased, not copied
// — callers must treat them as immutable.
type Cache struct {
	dir        string
	maxEntries int
	fs         atomicio.FS
	peer       Peer

	mu      sync.Mutex
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *entry
	flights map[string]*flight
	stats   Stats
}

// entry is one in-memory LRU record.
type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation waiters can join. done is closed
// after val/err are set, which publishes them to every waiter.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Open creates a cache. With Options.Dir set, the directory is created
// if missing.
func Open(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.FS == nil {
		opts.FS = atomicio.OS
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: create cache dir: %w", err)
		}
	}
	return &Cache{
		dir:        opts.Dir,
		maxEntries: opts.MaxEntries,
		fs:         opts.FS,
		peer:       opts.Peer,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}, nil
}

// path names the disk file for key: the hex SHA-256 of the key plus
// ".json". Hashing keeps arbitrary key strings (slashes, percent signs)
// out of file names while the envelope preserves the readable key.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the cached value for key, consulting memory then disk.
// A disk hit is promoted into memory. ok is false on a miss (including
// a quarantined corrupt entry).
func (c *Cache) Get(key string) (val []byte, ok bool) {
	val, tier := c.lookup(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.countLocked(tier, len(val))
	return val, tier != tierMiss
}

// tiers classify where lookup found (or did not find) a value.
const (
	tierMiss = iota
	tierMem
	tierDisk
	tierPeer
)

// countLocked folds one lookup outcome into the stats. Caller holds
// c.mu. Peer-probe accounting (PeerMisses) happens in lookup itself,
// because a peer miss still ends as an overall miss here.
func (c *Cache) countLocked(tier, size int) {
	switch tier {
	case tierMem:
		c.stats.Hits++
		c.stats.MemHits++
	case tierDisk:
		c.stats.Hits++
		c.stats.DiskHits++
	case tierPeer:
		c.stats.Hits++
		c.stats.PeerHits++
		c.stats.PeerBytes += int64(size)
	default:
		c.stats.Misses++
	}
}

// lookup is Get without the stats accounting (GetOrCompute does its own:
// one outcome per call, however many internal probes the singleflight
// loop makes).
func (c *Cache) lookup(key string) ([]byte, int) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, tierMem
	}
	c.mu.Unlock()
	if val, ok := c.lookupDisk(key); ok {
		return val, tierDisk
	}
	if val, ok := c.lookupPeer(key); ok {
		return val, tierPeer
	}
	return nil, tierMiss
}

// lookupDisk probes the durable tier and promotes a hit into memory.
func (c *Cache) lookupDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	// Disk probe outside the lock: file I/O must never serialize the
	// memory tier.
	path := c.path(key)
	data, err := c.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false
	}
	if err != nil {
		// An unreadable entry (permissions, I/O error) is a miss, not a
		// failure: the caller recomputes.
		return nil, false
	}
	var env envelope
	if uerr := json.Unmarshal(data, &env); uerr != nil || env.Key != key || len(env.Value) == 0 {
		c.quarantine(path)
		return nil, false
	}
	c.mu.Lock()
	c.stats.BytesRead += int64(len(data))
	c.insertLocked(key, []byte(env.Value))
	c.mu.Unlock()
	return []byte(env.Value), true
}

// lookupPeer probes the configured remote peer (the peer-fill path of
// the nvmd federation). A hit is written through to both local tiers so
// the entry is served locally from then on; a probe failure — or a peer
// value that is not valid JSON — is a miss, never an error, because the
// peer is an optimization the caller can always compute around.
func (c *Cache) lookupPeer(key string) ([]byte, bool) {
	if c.peer == nil {
		return nil, false
	}
	// Network probe outside the lock, like the disk tier.
	val, ok := c.peer.Fetch(key)
	if !ok || len(val) == 0 || !json.Valid(val) {
		c.mu.Lock()
		c.stats.PeerMisses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	// Write-through so a restart hits the disk tier instead of the
	// network; a write failure only degrades (counted in WriteErrors).
	_ = c.writeDisk(key, val)
	return val, true
}

// quarantine renames a corrupt disk entry aside (<name>.corrupt) so it
// is never read again, mirroring the service's checkpoint quarantine.
func (c *Cache) quarantine(path string) {
	// Best effort: if the rename fails the entry still parses as corrupt
	// on every read and is never served.
	_ = c.fs.Rename(path, path+".corrupt")
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
}

// insertLocked records key→val in the memory tier, evicting the least
// recently used entry over the bound. Caller holds c.mu.
func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.maxEntries {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
	}
}

// Put stores val under key in both tiers. A disk-tier write failure is
// returned after the memory tier is updated, but callers may ignore it:
// the value is served from memory either way, and Stats.WriteErrors
// records the degradation.
func (c *Cache) Put(key string, val []byte) error {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.stats.Puts++
	c.mu.Unlock()
	return c.writeDisk(key, val)
}

// writeDisk persists one entry through atomicio (temp → fsync → rename
// → fsync dir), so a crash can only leave the previous generation or
// the complete new one.
func (c *Cache) writeDisk(key string, val []byte) error {
	if c.dir == "" {
		return nil
	}
	data, err := json.Marshal(envelope{Key: key, Value: json.RawMessage(val)})
	if err != nil {
		// val is not valid JSON — a call-site bug, surfaced not cached.
		return fmt.Errorf("memo: entry %q is not valid JSON: %w", key, err)
	}
	if err := atomicio.WriteFile(c.fs, c.path(key), data); err != nil {
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return fmt.Errorf("memo: write entry %q: %w", key, err)
	}
	c.mu.Lock()
	c.stats.BytesWritten += int64(len(data))
	c.mu.Unlock()
	return nil
}

// Discard drops key from both tiers, quarantining the disk file if one
// exists. Used when a served value turns out not to decode as the type
// the caller expected — the entry is poisoned for that fingerprint and
// must be recomputed, never served again.
func (c *Cache) Discard(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	path := c.path(key)
	if _, err := c.fs.ReadFile(path); err == nil {
		c.quarantine(path)
	}
}

// GetOrCompute returns the value for key, computing it with compute on
// a miss. Concurrent calls with the same key are deduplicated: one
// caller (the leader) runs compute, the rest wait on its result. hit
// reports whether the value was served without this caller computing
// it (cache hit or dedup hit).
//
// A compute error is returned to the leader and never cached; waiting
// callers then retry the whole sequence and may become the leader
// themselves, so a leader canceled by its own context cannot poison the
// key for callers whose contexts are still live. ctx bounds only the
// wait on a concurrent leader — compute receives whatever context it
// closed over.
//
// A disk-tier write failure after a successful compute is absorbed
// (counted in Stats.WriteErrors): the computation's value is always
// returned.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	for {
		if val, tier := c.lookup(key); tier != tierMiss {
			c.mu.Lock()
			c.countLocked(tier, len(val))
			c.mu.Unlock()
			return val, true, nil
		}
		c.mu.Lock()
		if fl, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err == nil {
				c.mu.Lock()
				c.stats.Hits++
				c.stats.DedupHits++
				c.mu.Unlock()
				return fl.val, true, nil
			}
			// The leader failed — possibly its own cancellation. Loop:
			// re-probe the cache, then race to become the new leader.
			continue
		}
		fl := &flight{done: make(chan struct{})}
		c.flights[key] = fl
		c.stats.Misses++
		c.mu.Unlock()

		val, err := compute()
		if err == nil {
			// Write-error degradation only: the counter records it, the
			// value is still returned and served from memory.
			_ = c.Put(key, val)
		}
		fl.val, fl.err = val, err
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		// Closing after the delete publishes val/err to waiters and
		// guarantees a retrying waiter sees either the cached value or
		// an empty flight slot.
		close(fl.done)
		return val, false, err
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}
