package memo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"maxwe/internal/atomicio"
)

func mustOpen(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFingerprintGolden(t *testing.T) {
	type spec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	got := Fingerprint("test/v1", spec{A: 7, B: "x"})
	// sha256(`{"a":7,"b":"x"}`), pinned so the key derivation cannot
	// silently drift and serve stale entries.
	want := "test/v1/7ee9d42da7f0b0669b113d9af6cc6d40f896c8881c637cbf6248eaf91f9cea64"
	if got != want {
		t.Fatalf("Fingerprint = %s, want %s", got, want)
	}
	if got2 := Fingerprint("test/v2", spec{A: 7, B: "x"}); strings.HasSuffix(got2, got[len("test/v1/"):]) == false {
		t.Fatalf("same value under another scope must keep the same hash, got %s", got2)
	} else if got2 == got {
		t.Fatal("different scopes must yield different fingerprints")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	c := mustOpen(t, Options{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("k")
	if !ok || string(v) != `{"v":1}` {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.MemHits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1 := mustOpen(t, Options{Dir: dir})
	if err := c1.Put("cells/v1/foo", []byte(`{"lifetime":42}`)); err != nil {
		t.Fatal(err)
	}
	// A fresh Cache over the same directory models a new process (or a
	// second nvmd job): the hit must come from disk and be promoted.
	c2 := mustOpen(t, Options{Dir: dir})
	v, ok := c2.Get("cells/v1/foo")
	if !ok || string(v) != `{"lifetime":42}` {
		t.Fatalf("disk Get = %q, %v", v, ok)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.BytesRead == 0 {
		t.Fatalf("stats after disk hit = %+v", s)
	}
	// Promoted: the second Get is a memory hit.
	if _, ok := c2.Get("cells/v1/foo"); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("stats after promotion = %+v", s)
	}
}

func TestCorruptEntryQuarantinedNeverServed(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	if err := c.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := c.path("k")
	// Corrupt the entry on disk behind the cache's back (a torn write
	// from a non-atomic writer, bit rot, truncation).
	if err := os.WriteFile(path, []byte(`{"key":"k","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := mustOpen(t, Options{Dir: dir})
	if _, ok := fresh.Get("k"); ok {
		t.Fatal("corrupt entry was served")
	}
	if s := fresh.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	// The slot is reusable: a recompute stores and serves normally.
	if err := fresh.Put("k", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, Options{Dir: dir})
	if v, ok := reopened.Get("k"); !ok || string(v) != `{"v":2}` {
		t.Fatalf("recomputed entry = %q, %v", v, ok)
	}
}

func TestEnvelopeKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	if err := c.Put("other-key", []byte(`{"v":9}`)); err != nil {
		t.Fatal(err)
	}
	// Plant other-key's file where "victim" would live: a valid envelope
	// for the wrong key (a shuffled or copied cache dir).
	data, err := os.ReadFile(c.path("other-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("victim"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := mustOpen(t, Options{Dir: dir})
	if _, ok := fresh.Get("victim"); ok {
		t.Fatal("entry with mismatched envelope key was served")
	}
	if s := fresh.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictsToBoundDiskRemains(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir, MaxEntries: 2})
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	// k0 was evicted from memory but must still hit via disk.
	v, ok := c.Get("k0")
	if !ok || string(v) != `{"v":0}` {
		t.Fatalf("evicted entry from disk = %q, %v", v, ok)
	}
	if s := c.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetOrComputeSingleflightDedup(t *testing.T) {
	c := mustOpen(t, Options{})
	const callers = 16
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	hits := make([]bool, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], hits[i], errs[i] = c.GetOrCompute(context.Background(), "cell", func() ([]byte, error) {
				computes.Add(1)
				<-release // hold the flight open so every caller overlaps
				return []byte(`{"v":1}`), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	misses := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(vals[i], []byte(`{"v":1}`)) {
			t.Fatalf("caller %d value = %q", i, vals[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers computed (hit=false), want exactly the leader", misses)
	}
	s := c.Stats()
	if s.Puts != 1 || s.Hits != callers-1 || s.DedupHits+s.MemHits != callers-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetOrComputeLeaderErrorNotCached(t *testing.T) {
	c := mustOpen(t, Options{})
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is not cached: the next caller computes and succeeds.
	v, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte(`{"v":2}`), nil
	})
	if err != nil || hit || string(v) != `{"v":2}` {
		t.Fatalf("retry = %q, hit=%v, err=%v", v, hit, err)
	}
}

func TestGetOrComputeWaiterSurvivesLeaderCancellation(t *testing.T) {
	c := mustOpen(t, Options{})
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return nil, context.Canceled // the leader's own job died
		})
	}()
	<-leaderIn // the waiter joins only after the leader holds the flight
	waitDone := make(chan struct{})
	var v []byte
	var hit bool
	var err error
	go func() {
		defer close(waitDone)
		v, hit, err = c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			return []byte(`{"v":3}`), nil
		})
	}()
	close(release)
	wg.Wait()
	<-waitDone
	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v", leaderErr)
	}
	// The waiter retried, became leader under its own context, computed.
	if err != nil || hit || string(v) != `{"v":3}` {
		t.Fatalf("waiter = %q, hit=%v, err=%v", v, hit, err)
	}
}

func TestGetOrComputeWaitBoundedByCtx(t *testing.T) {
	c := mustOpen(t, Options{})
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte(`{}`), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", func() ([]byte, error) {
		t.Error("canceled waiter must not compute")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// failFS refuses all writes: the disk behind the cache is full or gone.
type failFS struct{ atomicio.FS }

func (failFS) OpenFileWrite(string) (atomicio.File, error) {
	return nil, errors.New("disk full")
}

func TestWriteFailureDegradesNotFails(t *testing.T) {
	c := mustOpen(t, Options{Dir: t.TempDir(), FS: failFS{atomicio.OS}})
	v, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte(`{"v":4}`), nil
	})
	if err != nil || hit || string(v) != `{"v":4}` {
		t.Fatalf("GetOrCompute = %q, hit=%v, err=%v", v, hit, err)
	}
	if s := c.Stats(); s.WriteErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The value is still served from memory despite the dead disk.
	if v, ok := c.Get("k"); !ok || string(v) != `{"v":4}` {
		t.Fatalf("memory fallback = %q, %v", v, ok)
	}
}

func TestDiscardQuarantines(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir})
	if err := c.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	c.Discard("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("discarded entry served")
	}
	if _, err := os.Stat(c.path("k") + ".corrupt"); err != nil {
		t.Fatalf("discarded entry not quarantined: %v", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 0 {
		t.Fatalf("live entries after discard: %v (err %v)", names, err)
	}
}

// mapPeer is an in-memory Peer for tests, with a probe counter and a
// switch to simulate a down peer.
type mapPeer struct {
	mu      sync.Mutex
	entries map[string][]byte
	probes  int
	down    bool
}

func (p *mapPeer) Fetch(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes++
	if p.down {
		return nil, false
	}
	v, ok := p.entries[key]
	return v, ok
}

func TestPeerFill(t *testing.T) {
	peer := &mapPeer{entries: map[string][]byte{"k": []byte(`{"v":42}`)}}
	dir := t.TempDir()
	c := mustOpen(t, Options{Dir: dir, Peer: peer})

	v, ok := c.Get("k")
	if !ok || string(v) != `{"v":42}` {
		t.Fatalf("Get = %q, %v; want peer value", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.PeerHits != 1 || s.PeerBytes != int64(len(`{"v":42}`)) {
		t.Fatalf("after peer fill, stats = %+v", s)
	}
	if s.Misses != 0 || s.PeerMisses != 0 {
		t.Fatalf("peer hit counted as a miss: %+v", s)
	}

	// The fill wrote through to both local tiers: the next Get is a
	// memory hit and a fresh cache over the same dir hits disk — neither
	// probes the peer again.
	if v, ok := c.Get("k"); !ok || string(v) != `{"v":42}` {
		t.Fatalf("second Get = %q, %v", v, ok)
	}
	if got := c.Stats(); got.MemHits != 1 || got.PeerHits != 1 {
		t.Fatalf("second Get should be a memory hit: %+v", got)
	}
	c2 := mustOpen(t, Options{Dir: dir, Peer: peer})
	if v, ok := c2.Get("k"); !ok || string(v) != `{"v":42}` {
		t.Fatalf("fresh cache Get = %q, %v", v, ok)
	}
	if got := c2.Stats(); got.DiskHits != 1 || got.PeerHits != 0 {
		t.Fatalf("fresh cache should hit disk, not peer: %+v", got)
	}
	peer.mu.Lock()
	probes := peer.probes
	peer.mu.Unlock()
	if probes != 1 {
		t.Fatalf("peer probed %d times, want exactly 1", probes)
	}
}

func TestPeerMissAndDownPeer(t *testing.T) {
	peer := &mapPeer{entries: map[string][]byte{}}
	c := mustOpen(t, Options{Peer: peer})
	if _, ok := c.Get("absent"); ok {
		t.Fatal("miss everywhere reported a hit")
	}
	peer.mu.Lock()
	peer.down = true
	peer.mu.Unlock()
	if _, ok := c.Get("absent"); ok {
		t.Fatal("down peer reported a hit")
	}
	s := c.Stats()
	if s.Misses != 2 || s.PeerMisses != 2 || s.PeerHits != 0 {
		t.Fatalf("stats = %+v; want 2 misses, 2 peer misses", s)
	}
}

func TestPeerInvalidValueIsMiss(t *testing.T) {
	peer := &mapPeer{entries: map[string][]byte{"k": []byte(`{"truncated`)}}
	c := mustOpen(t, Options{Peer: peer})
	if _, ok := c.Get("k"); ok {
		t.Fatal("non-JSON peer value must be a miss, never served")
	}
	if s := c.Stats(); s.PeerMisses != 1 || s.PeerHits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetOrComputePeerHitSkipsCompute(t *testing.T) {
	peer := &mapPeer{entries: map[string][]byte{"k": []byte(`{"v":1}`)}}
	c := mustOpen(t, Options{Peer: peer})
	computed := 0
	v, hit, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		computed++
		return []byte(`{"v":1}`), nil
	})
	if err != nil || !hit || string(v) != `{"v":1}` {
		t.Fatalf("GetOrCompute = %q, hit=%v, err=%v", v, hit, err)
	}
	if computed != 0 {
		t.Fatalf("peer hit still computed %d times", computed)
	}
	if s := c.Stats(); s.PeerHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
