package guarded

import (
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/stats"
	"maxwe/internal/xrand"
)

// window is the default monitor window size (detect.Config zero value).
const window = 1024

// driveUAA feeds n sequential writes (the UAA pattern).
func driveUAA(t *testing.T, g *Stack, n int) {
	t.Helper()
	a := attack.NewUAA()
	for i := 0; i < n; i++ {
		if !g.Write(a.Next(g.LogicalLines())) {
			t.Fatal("device failed during the attack phase")
		}
	}
}

// driveBenign feeds n uniform-random writes (never flagged).
func driveBenign(t *testing.T, g *Stack, n int, src *xrand.Source) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !g.Write(src.Intn(g.LogicalLines())) {
			t.Fatal("device failed during the benign phase")
		}
	}
}

func TestZeroRecoveryWindowsNeverRecovers(t *testing.T) {
	g, err := New(newStepper(t), detect.Config{},
		Policy{NormalRate: 1e6, ThrottledRate: 1e4, RecoveryWindows: 0})
	if err != nil {
		t.Fatal(err)
	}
	driveUAA(t, g, 3*window)
	if !g.Throttled() {
		t.Fatal("UAA not detected after 3 windows")
	}
	// However much benign traffic follows, RecoveryWindows: 0 keeps the
	// throttle engaged forever.
	driveBenign(t, g, 32*window, xrand.New(7))
	if !g.Throttled() {
		t.Fatal("RecoveryWindows: 0 recovered from throttling")
	}
}

func TestThrottleReentersAfterRecovery(t *testing.T) {
	g, err := New(newStepper(t), detect.Config{},
		Policy{NormalRate: 1e6, ThrottledRate: 1e4, RecoveryWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	driveUAA(t, g, 3*window)
	if !g.Throttled() {
		t.Fatal("UAA not detected after 3 windows")
	}
	firstDetection := g.DetectedAt()
	if firstDetection < 0 {
		t.Fatal("detection time not recorded")
	}

	// Enough clean windows lift the throttle (the first window after the
	// phase switch is mixed and may still be flagged, hence the slack).
	driveBenign(t, g, 5*window, xrand.New(7))
	if g.Throttled() {
		t.Fatal("throttle not lifted after clean windows")
	}

	// The attacker returns: the throttle must re-engage, and the recorded
	// detection time must remain the FIRST detection.
	driveUAA(t, g, 3*window)
	if !g.Throttled() {
		t.Fatal("throttle did not re-engage on renewed attack")
	}
	if !stats.ApproxEqual(g.DetectedAt(), firstDetection, 0) {
		t.Fatalf("re-detection overwrote first detection time: %v -> %v",
			firstDetection, g.DetectedAt())
	}
}

func TestSecondsMatchShadowAccounting(t *testing.T) {
	// Cross-check the stack's wall-clock accounting against an external
	// tally: every admitted write costs 1/rate at the admission rate in
	// force when it entered.
	pol := Policy{NormalRate: 1e6, ThrottledRate: 2e4, RecoveryWindows: 2}
	g, err := New(newStepper(t), detect.Config{}, pol)
	if err != nil {
		t.Fatal(err)
	}

	var expect float64
	write := func(lla int) bool {
		rate := pol.NormalRate
		if g.Throttled() {
			rate = pol.ThrottledRate
		}
		expect += 1 / rate
		return g.Write(lla)
	}

	// Attack, recover, re-attack, then run to failure — the accounting
	// must hold across every throttle transition.
	a := attack.NewUAA()
	for i := 0; i < 3*window; i++ {
		if !write(a.Next(g.LogicalLines())) {
			t.Fatal("device failed early")
		}
	}
	src := xrand.New(9)
	for i := 0; i < 5*window; i++ {
		if !write(src.Intn(g.LogicalLines())) {
			t.Fatal("device failed early")
		}
	}
	for write(a.Next(g.LogicalLines())) {
	}

	if !stats.ApproxEqualRel(g.Seconds(), expect, 1e-9) {
		t.Fatalf("stack reports %.9g simulated seconds, shadow accounting %.9g",
			g.Seconds(), expect)
	}
	if res := g.Result(); !res.Failed {
		t.Fatalf("run ended without device failure: %+v", res)
	}
}
