// Package guarded combines the write-pattern monitor with a throttling
// response — the dynamic defense the static Max-WE provisioning leaves on
// the table. Throttling cannot change how many writes the device can
// absorb (that is physics), but it changes how fast an attacker can spend
// them: once the monitor flags a window, admission drops to the throttled
// rate, stretching the wall-clock time to failure by the rate ratio while
// benign traffic (never flagged) runs at full speed.
//
// The stack therefore tracks simulated wall-clock time: every admitted
// write advances time by 1/rate at the current admission rate.
package guarded

import (
	"fmt"

	"maxwe/internal/detect"
	"maxwe/internal/sim"
)

// Policy sets the admission rates in writes per second.
type Policy struct {
	// NormalRate applies while the stream looks benign.
	NormalRate float64
	// ThrottledRate applies from the first flagged window on (sticky
	// until RecoveryWindows consecutive benign windows pass).
	ThrottledRate float64
	// RecoveryWindows is how many consecutive benign windows lift the
	// throttle (0 = never recover).
	RecoveryWindows int
}

// DefaultPolicy throttles 50x on detection and recovers after 16 clean
// windows.
func DefaultPolicy(rate float64) Policy {
	return Policy{NormalRate: rate, ThrottledRate: rate / 50, RecoveryWindows: 16}
}

func (p Policy) validate() error {
	if p.NormalRate <= 0 || p.ThrottledRate <= 0 || p.ThrottledRate > p.NormalRate {
		return fmt.Errorf("guarded: rates must satisfy 0 < throttled <= normal, got %+v", p)
	}
	if p.RecoveryWindows < 0 {
		return fmt.Errorf("guarded: negative recovery windows")
	}
	return nil
}

// Stack is a monitored, throttled, trace-driven NVM stack.
type Stack struct {
	st     *sim.Stepper
	mon    *detect.Monitor
	policy Policy

	throttled    bool
	cleanStreak  int
	seconds      float64
	flaggedAt    float64 // seconds at first detection, -1 before
	everThrottle bool
}

// New builds a guarded stack over a stepper. The monitor config may be
// zero-valued for defaults.
func New(st *sim.Stepper, monCfg detect.Config, policy Policy) (*Stack, error) {
	if st == nil {
		return nil, fmt.Errorf("guarded: nil stepper")
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}
	mon, err := detect.NewMonitor(monCfg)
	if err != nil {
		return nil, err
	}
	return &Stack{st: st, mon: mon, policy: policy, flaggedAt: -1}, nil
}

// Write admits one user write to logical line lla, advancing simulated
// time at the current admission rate. It returns false once the device
// has failed.
func (g *Stack) Write(lla int) bool {
	rate := g.policy.NormalRate
	if g.throttled {
		rate = g.policy.ThrottledRate
	}
	g.seconds += 1 / rate

	if v, done := g.mon.Observe(lla); done {
		if v != detect.Benign {
			if !g.throttled {
				g.throttled = true
				g.everThrottle = true
				if g.flaggedAt < 0 {
					g.flaggedAt = g.seconds
				}
			}
			g.cleanStreak = 0
		} else if g.throttled && g.policy.RecoveryWindows > 0 {
			g.cleanStreak++
			if g.cleanStreak >= g.policy.RecoveryWindows {
				g.throttled = false
				g.cleanStreak = 0
			}
		}
	}
	return g.st.Write(lla)
}

// Failed reports whether the device has failed.
func (g *Stack) Failed() bool { return g.st.Failed() }

// LogicalLines returns the stack's logical space size.
func (g *Stack) LogicalLines() int { return g.st.LogicalLines() }

// Seconds returns the simulated wall-clock time elapsed.
func (g *Stack) Seconds() float64 { return g.seconds }

// Throttled reports whether the stack is currently throttled.
func (g *Stack) Throttled() bool { return g.throttled }

// DetectedAt returns the simulated time of first detection, or -1 if the
// stream was never flagged.
func (g *Stack) DetectedAt() float64 { return g.flaggedAt }

// Result returns the underlying lifetime summary.
func (g *Stack) Result() sim.Result { return g.st.Result() }
