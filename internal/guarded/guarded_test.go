package guarded

import (
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/detect"
	"maxwe/internal/endurance"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

func newStepper(t *testing.T) *sim.Stepper {
	t.Helper()
	p := endurance.Linear(64, 8, 40, 2000).Shuffled(xrand.New(1))
	st, err := sim.NewStepper(sim.Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestValidation(t *testing.T) {
	st := newStepper(t)
	if _, err := New(nil, detect.Config{}, DefaultPolicy(1e6)); err == nil {
		t.Fatal("nil stepper accepted")
	}
	bad := []Policy{
		{NormalRate: 0, ThrottledRate: 1},
		{NormalRate: 1, ThrottledRate: 0},
		{NormalRate: 1, ThrottledRate: 2},
		{NormalRate: 2, ThrottledRate: 1, RecoveryWindows: -1},
	}
	for i, p := range bad {
		if _, err := New(st, detect.Config{}, p); err == nil {
			t.Fatalf("bad policy %d accepted", i)
		}
	}
	if _, err := New(st, detect.Config{WindowSize: 1}, DefaultPolicy(1e6)); err == nil {
		t.Fatal("bad monitor config accepted")
	}
}

func TestThrottlingStretchesAttackTime(t *testing.T) {
	// Run UAA to failure through a guarded and an unguarded stack; both
	// absorb the same number of writes, but the guarded one takes ~50x
	// the wall-clock time once throttled.
	const rate = 1e6

	unguarded, err := New(newStepper(t), detect.Config{},
		Policy{NormalRate: rate, ThrottledRate: rate}) // throttle = no-op
	if err != nil {
		t.Fatal(err)
	}
	a := attack.NewUAA()
	for unguarded.Write(a.Next(unguarded.LogicalLines())) {
	}

	guardedStack, err := New(newStepper(t), detect.Config{}, DefaultPolicy(rate))
	if err != nil {
		t.Fatal(err)
	}
	a = attack.NewUAA()
	for guardedStack.Write(a.Next(guardedStack.LogicalLines())) {
	}

	if unguarded.Result().UserWrites != guardedStack.Result().UserWrites {
		t.Fatalf("write budgets differ: %d vs %d",
			unguarded.Result().UserWrites, guardedStack.Result().UserWrites)
	}
	stretch := guardedStack.Seconds() / unguarded.Seconds()
	if stretch < 20 {
		t.Fatalf("guard stretched attack time only %.1fx, want >= 20x", stretch)
	}
	if guardedStack.DetectedAt() < 0 {
		t.Fatal("attack never detected")
	}
	if !guardedStack.Throttled() {
		t.Fatal("stack not throttled at failure")
	}
}

func TestBenignTrafficRunsAtFullRate(t *testing.T) {
	g, err := New(newStepper(t), detect.Config{}, DefaultPolicy(1e6))
	if err != nil {
		t.Fatal(err)
	}
	hc := attack.NewHotCold(g.LogicalLines(), 1.1, xrand.New(2))
	const writes = 20_000
	for i := 0; i < writes && !g.Failed(); i++ {
		g.Write(hc.Next(g.LogicalLines()))
	}
	if g.Throttled() {
		t.Fatal("benign traffic throttled")
	}
	wantSeconds := float64(writes) / 1e6
	if g.Seconds() > wantSeconds*1.01 {
		t.Fatalf("benign time %.6fs, want ~%.6fs", g.Seconds(), wantSeconds)
	}
	if g.DetectedAt() >= 0 {
		t.Fatal("benign traffic flagged")
	}
}

func TestRecoveryAfterAttackStops(t *testing.T) {
	g, err := New(newStepper(t), detect.Config{WindowSize: 256},
		Policy{NormalRate: 1e6, ThrottledRate: 1e4, RecoveryWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Attack phase: get flagged.
	a := attack.NewUAA()
	for i := 0; i < 512; i++ {
		g.Write(a.Next(g.LogicalLines()))
	}
	if !g.Throttled() {
		t.Fatal("attack phase not throttled")
	}
	// Benign phase: after 2 clean windows the throttle lifts.
	hc := attack.NewHotCold(g.LogicalLines(), 1.1, xrand.New(3))
	for i := 0; i < 256*3 && g.Throttled(); i++ {
		g.Write(hc.Next(g.LogicalLines()))
	}
	if g.Throttled() {
		t.Fatal("throttle never recovered after the attack stopped")
	}
}

func TestWriteAfterFailureRejected(t *testing.T) {
	p := endurance.Uniform(1, 2, 1)
	st, err := sim.NewStepper(sim.Config{Profile: p, Scheme: spare.NewNone(p.Lines())})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(st, detect.Config{}, DefaultPolicy(100))
	if err != nil {
		t.Fatal(err)
	}
	if g.Write(0) {
		t.Fatal("first write should kill the 1-endurance device")
	}
	if g.Write(1) {
		t.Fatal("write accepted after failure")
	}
}
