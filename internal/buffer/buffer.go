// Package buffer models the small off-chip DRAM last-level buffer of
// Section 3.3.2: a set-associative write-back cache in front of the
// NVM-based main memory. Its purpose here is to demonstrate the paper's
// vulnerability argument: the buffer absorbs hot/cold traffic but is
// useless against UAA's uniform sweep, whose working set exceeds any
// realistic buffer and turns every write into a miss plus a dirty
// eviction.
package buffer

// Cache is a set-associative write-back cache over line addresses.
// Construct with New; the zero value is not usable.
type Cache struct {
	sets int
	ways int
	// tags[set][way] holds the cached line address, -1 when invalid.
	tags [][]int
	// dirty[set][way] marks lines needing write-back on eviction.
	dirty [][]bool
	// lru[set][way] holds recency counters (higher = more recent).
	lru   [][]int64
	clock int64

	hits       int64
	misses     int64
	writeBacks int64
}

// New builds a cache with the given number of sets and ways. Both must be
// positive; sets should be a power of two for uniform indexing but any
// positive value works (modulo indexing).
func New(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("buffer: New needs positive sets and ways")
	}
	c := &Cache{sets: sets, ways: ways}
	c.tags = make([][]int, sets)
	c.dirty = make([][]bool, sets)
	c.lru = make([][]int64, sets)
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]int, ways)
		c.dirty[s] = make([]bool, ways)
		c.lru[s] = make([]int64, ways)
		for w := 0; w < ways; w++ {
			c.tags[s][w] = -1
		}
	}
	return c
}

// Capacity returns the number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Write inserts line into the cache, marking it dirty. If the insertion
// evicts a dirty victim, Write returns that victim's address and true —
// the caller must perform the NVM write-back. Clean evictions and hits
// return (0, false).
func (c *Cache) Write(line int) (evicted int, writeBack bool) {
	if line < 0 {
		panic("buffer: negative line address")
	}
	set := line % c.sets
	c.clock++
	// Hit?
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == line {
			c.hits++
			c.dirty[set][w] = true
			c.lru[set][w] = c.clock
			return 0, false
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == -1 {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	evictedLine := c.tags[set][victim]
	evictedDirty := c.dirty[set][victim] && evictedLine != -1
	c.tags[set][victim] = line
	c.dirty[set][victim] = true
	c.lru[set][victim] = c.clock
	if evictedDirty {
		c.writeBacks++
		return evictedLine, true
	}
	return 0, false
}

// Flush evicts every dirty line and returns their addresses (the caller
// performs the write-backs). The cache is left clean but still populated.
func (c *Cache) Flush() []int {
	var out []int
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if c.tags[s][w] != -1 && c.dirty[s][w] {
				out = append(out, c.tags[s][w])
				c.dirty[s][w] = false
				c.writeBacks++
			}
		}
	}
	return out
}

// Hits returns the number of write hits.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of write misses.
func (c *Cache) Misses() int64 { return c.misses }

// WriteBacks returns the number of dirty evictions (including Flush).
func (c *Cache) WriteBacks() int64 { return c.writeBacks }

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
