package buffer

import (
	"testing"

	"maxwe/internal/xrand"
)

func TestHitOnRewrite(t *testing.T) {
	c := New(4, 2)
	if _, wb := c.Write(5); wb {
		t.Fatal("cold write caused write-back")
	}
	if _, wb := c.Write(5); wb {
		t.Fatal("hit caused write-back")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(1, 2) // fully associative, 2 entries, one set
	c.Write(0)
	c.Write(1)
	// Third distinct line evicts the LRU dirty line 0.
	ev, wb := c.Write(2)
	if !wb || ev != 0 {
		t.Fatalf("eviction = (%d,%v), want (0,true)", ev, wb)
	}
	if c.WriteBacks() != 1 {
		t.Fatalf("WriteBacks = %d", c.WriteBacks())
	}
}

func TestLRUOrderRespectsRecency(t *testing.T) {
	c := New(1, 2)
	c.Write(0)
	c.Write(1)
	c.Write(0) // refresh 0; LRU is now 1
	ev, wb := c.Write(2)
	if !wb || ev != 1 {
		t.Fatalf("evicted %d, want 1 (LRU)", ev)
	}
}

func TestSetIndexing(t *testing.T) {
	c := New(4, 1)
	// Lines 0 and 4 collide in set 0; lines 1,2,3 do not interfere.
	c.Write(0)
	c.Write(1)
	c.Write(2)
	c.Write(3)
	ev, wb := c.Write(4)
	if !wb || ev != 0 {
		t.Fatalf("set collision evicted (%d,%v), want (0,true)", ev, wb)
	}
}

func TestFlush(t *testing.T) {
	c := New(2, 2)
	c.Write(0)
	c.Write(1)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("Flush returned %d lines, want 2", len(dirty))
	}
	// Second flush: nothing dirty.
	if len(c.Flush()) != 0 {
		t.Fatal("double flush returned lines")
	}
	// Lines are still cached: rewriting hits.
	if _, wb := c.Write(0); wb {
		t.Fatal("post-flush rewrite missed")
	}
	if c.Hits() != 1 {
		t.Fatalf("hits = %d", c.Hits())
	}
}

func TestHitRate(t *testing.T) {
	c := New(2, 2)
	if c.HitRate() != 0 {
		t.Fatal("fresh cache hit rate nonzero")
	}
	c.Write(7)
	c.Write(7)
	c.Write(7)
	c.Write(8)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(1, 0) },
		func() { New(1, 1).Write(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// The paper's Section 3.3.2 argument, quantified: a buffer that absorbs a
// Zipf workload is useless against UAA.
func TestUAADefeatsBufferHotColdDoesNot(t *testing.T) {
	const memLines = 4096
	cacheLines := 256 // 1/16 of memory
	// Hot/cold: Zipf(1.2) concentrates on few lines -> high hit rate.
	hot := New(cacheLines/8, 8)
	z := xrand.NewZipf(memLines, 1.2)
	src := xrand.New(3)
	for i := 0; i < 100000; i++ {
		hot.Write(z.Draw(src))
	}
	if hot.HitRate() < 0.5 {
		t.Fatalf("hot/cold hit rate = %v, expected locality capture", hot.HitRate())
	}
	// UAA: sequential sweep of all lines -> every access misses after
	// warmup.
	uaa := New(cacheLines/8, 8)
	for i := 0; i < 100000; i++ {
		uaa.Write(i % memLines)
	}
	if uaa.HitRate() > 0.01 {
		t.Fatalf("UAA hit rate = %v, expected ~0", uaa.HitRate())
	}
	// And nearly every miss causes an NVM write-back once warm.
	if float64(uaa.WriteBacks()) < 0.9*float64(uaa.Misses()) {
		t.Fatalf("write-backs %d ≪ misses %d", uaa.WriteBacks(), uaa.Misses())
	}
}

func TestCapacity(t *testing.T) {
	if New(8, 4).Capacity() != 32 {
		t.Fatal("capacity wrong")
	}
}
