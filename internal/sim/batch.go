// batch.go is the struct-of-arrays batched write engine. Instead of one
// interface-call chain per write (attack → leveler → scheme → device),
// the loops here pull address batches from attack.BatchAttack, translate
// them through a cached slot→line binding, and index the device.Core
// slices directly. Wear-out checks are amortized: while the minimum
// remaining budget across the bound lines guarantees no line can die
// within an epoch, the inner loop degenerates to a counter increment.
//
// Exactness contract: every loop in this file must produce bit-identical
// Results to the per-write reference engine (see crossval_test.go). The
// load-bearing invariants are documented on spare.Scheme.Access (bindings
// are pure lookups that change only inside OnWearOut, and only for the
// worn slot) and attack.BatchAttack (NextBatch ≡ repeated Next). Fault
// configurations break the binding invariant via metadata corruption and
// never enter these loops.
package sim

import (
	"maxwe/internal/attack"
	"maxwe/internal/device"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
)

// epochSize is the batch length of the SoA loops. It equals the
// cancellation-polling granularity of the per-write loops (1024 writes)
// so epoch boundaries land on exactly the user-write indexes where the
// reference loops poll Config.Done.
const epochSize = 1024

// newSlotLine snapshots scheme.Access for every user slot into a flat
// reverse map. Valid until the next OnWearOut, which rebinds only the
// worn slot — the caller refreshes that single entry.
func newSlotLine(scheme spare.Scheme, userLines int) []int32 {
	sl := make([]int32, userLines)
	for u := 0; u < userLines; u++ {
		sl[u] = int32(scheme.Access(u))
	}
	return sl
}

// safeWrites returns how many further writes — however they distribute
// over the slots — are guaranteed to wear out no bound line: one less
// than the minimum remaining budget. Recomputed only after wear-outs;
// callers decrement it as epochs retire.
func safeWrites(core *device.Core, slotLine []int32) int64 {
	if len(slotLine) == 0 {
		return 0
	}
	min := int64(1)<<62 - 1
	for _, line := range slotLine {
		if rem := core.Endurance[line] - core.Writes[line]; rem < min {
			min = rem
		}
	}
	return min - 1
}

// runBatchedDirect is the unleveled, fault-free SoA loop for capacity-
// stable schemes (everything but PCD). Epochs of at most epochSize
// addresses are pulled in one NextBatch call; quiescent epochs run an
// unchecked increment-only loop, the rest replicate Device.Write inline.
func runBatchedDirect(cfg Config, dev *device.Device, e *engine, att attack.BatchAttack) (userWrites int64, interrupted bool) {
	scheme := e.scheme
	core := dev.Core()
	maxWrites := cfg.MaxUserWrites
	done := cfg.Done
	userLines := scheme.UserLines()
	if userLines == 0 {
		e.failed = true
		return 0, false
	}
	slotLine := newSlotLine(scheme, userLines)
	quiescent := safeWrites(core, slotLine)
	batch := make([]int, epochSize)
	for {
		if maxWrites > 0 && userWrites >= maxWrites {
			return userWrites, false
		}
		// userWrites is a multiple of epochSize at every epoch start (a
		// short final epoch only happens at the MaxUserWrites boundary,
		// which returns above), so this polls at exactly the reference
		// loops' userWrites&1023 == 0 indexes.
		if done != nil {
			select {
			case <-done:
				return userWrites, true
			default:
			}
		}
		size := epochSize
		if maxWrites > 0 && maxWrites-userWrites < int64(size) {
			size = int(maxWrites - userWrites)
		}
		b := batch[:size]
		att.NextBatch(userLines, b)
		if quiescent >= int64(size) {
			// No bound line can reach its budget within this epoch: skip
			// the wear-out compare entirely.
			for _, u := range b {
				core.Writes[slotLine[u]]++
			}
			core.Total += int64(size)
			userWrites += int64(size)
			quiescent -= int64(size)
			continue
		}
		wore := false
		for _, u := range b {
			line := slotLine[u]
			core.Writes[line]++
			core.Total++
			userWrites++
			if !core.Worn[line] && core.Writes[line] >= core.Endurance[line] {
				core.Worn[line] = true
				core.WornLines++
				wore = true
				e.rebinds++
				if !scheme.OnWearOut(u) {
					e.failed = true
					return userWrites, false
				}
				slotLine[u] = int32(scheme.Access(u))
			}
		}
		if wore {
			quiescent = safeWrites(core, slotLine)
		} else {
			// Still a valid lower bound: each write spends at most one
			// unit of any line's remaining budget.
			quiescent -= int64(size)
		}
	}
}

// cachedMover routes wear-leveling movement writes through the SoA core
// while keeping the batched loop's slot→line cache coherent across the
// replacements those writes can trigger. It is the batched twin of
// engine.WriteSlot.
type cachedMover struct {
	e        *engine
	core     *device.Core
	slotLine []int32
}

var _ wearlevel.Mover = (*cachedMover)(nil)

// WriteSlot implements wearlevel.Mover with the cached binding.
func (m *cachedMover) WriteSlot(u int) bool {
	if m.core.Write(int(m.slotLine[u])) {
		m.e.rebinds++
		if !m.e.scheme.OnWearOut(u) {
			m.e.failed = true
			return false
		}
		m.slotLine[u] = int32(m.e.scheme.Access(u))
	}
	return true
}

// runBatchedLeveled is the leveled, fault-free SoA loop. Addresses are
// batched; translation and remap scheduling stay per-write (they are
// stateful), but the two hottest leveler families are devirtualized: the
// randomized swap schemes run on wearlevel.SwapWL's shared perm/credit
// state with only the rare relocation paying a call, and Identity
// translates with no call at all. Leveled epochs always run the checked
// loop — movement writes make a cheap per-write compare simpler than
// accounting relocation traffic against a quiescence budget.
func runBatchedLeveled(cfg Config, dev *device.Device, e *engine, att attack.BatchAttack) (userWrites int64, interrupted bool) {
	scheme := e.scheme
	core := dev.Core()
	lev := cfg.Leveler
	logicalLines := lev.LogicalLines()
	maxWrites := cfg.MaxUserWrites
	done := cfg.Done
	slotLine := newSlotLine(scheme, scheme.UserLines())
	mov := &cachedMover{e: e, core: core, slotLine: slotLine}
	batch := make([]int, epochSize)

	// Devirtualize the two hot leveler families; every other leveler runs
	// the same loop through the interface calls.
	var swap *wearlevel.SwapWL
	var perm, credit []int
	ident := false
	switch l := lev.(type) {
	case *wearlevel.SwapWL:
		swap = l
		perm, credit = l.HotState()
	case *wearlevel.Identity:
		ident = true
	}

	for {
		if maxWrites > 0 && userWrites >= maxWrites {
			return userWrites, false
		}
		// See runBatchedDirect: epoch starts are exactly the reference
		// polling indexes.
		if done != nil {
			select {
			case <-done:
				return userWrites, true
			default:
			}
		}
		size := epochSize
		if maxWrites > 0 && maxWrites-userWrites < int64(size) {
			size = int(maxWrites - userWrites)
		}
		b := batch[:size]
		att.NextBatch(logicalLines, b)
		// One specialized inner loop per leveler family: the dispatch
		// runs once per epoch, not once per write.
		switch {
		case swap != nil:
			for _, lla := range b {
				u := perm[lla]
				line := slotLine[u]
				core.Writes[line]++
				core.Total++
				userWrites++
				if core.Writes[line] >= core.Endurance[line] && !core.Worn[line] {
					if !e.batchWearOut(slotLine, u) {
						return userWrites, false
					}
				}
				credit[lla]--
				if credit[lla] <= 0 {
					if !swap.Relocate(lla, mov) {
						return userWrites, false
					}
				}
			}
		case ident:
			for _, u := range b {
				line := slotLine[u]
				core.Writes[line]++
				core.Total++
				userWrites++
				if core.Writes[line] >= core.Endurance[line] && !core.Worn[line] {
					if !e.batchWearOut(slotLine, u) {
						return userWrites, false
					}
				}
			}
		default:
			for _, lla := range b {
				u := lev.Translate(lla)
				line := slotLine[u]
				core.Writes[line]++
				core.Total++
				userWrites++
				if core.Writes[line] >= core.Endurance[line] && !core.Worn[line] {
					if !e.batchWearOut(slotLine, u) {
						return userWrites, false
					}
				}
				if !lev.OnWrite(lla, mov) {
					return userWrites, false
				}
			}
		}
	}
}

// batchWearOut is the rare-path half of the inlined write: mark the slot's
// line worn, run the replacement procedure, and refresh the cached
// binding. Returns false on device failure (e.failed is set).
func (e *engine) batchWearOut(slotLine []int32, u int) bool {
	core := e.dev.Core()
	line := slotLine[u]
	core.Worn[line] = true
	core.WornLines++
	e.rebinds++
	if !e.scheme.OnWearOut(u) {
		e.failed = true
		return false
	}
	slotLine[u] = int32(e.scheme.Access(u))
	return true
}
