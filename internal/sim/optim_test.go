// optim_test.go cross-validates the optimized hot paths against reference
// implementations that replicate the pre-optimization code: the boxed
// container/heap event queue, the map-based reverse maps in the UAA fast
// path, and the single generic RunDetailed loop that routed every write
// through engine.WriteSlot. The optimized paths must produce *identical*
// Results — not merely close ones — on golden seeds.
package sim

import (
	"container/heap"
	"math"
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/device"
	"maxwe/internal/endurance"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// ---------------------------------------------------------------------------
// Reference implementations (pre-optimization behavior)

// boxedEventHeap is the original container/heap-backed event queue.
type boxedEventHeap []slotEvent

func (h boxedEventHeap) Len() int            { return len(h) }
func (h boxedEventHeap) Less(i, j int) bool  { return h[i].deathRound < h[j].deathRound }
func (h boxedEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedEventHeap) Push(x interface{}) { *h = append(*h, x.(slotEvent)) }
func (h *boxedEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// referenceUAAFast is the original RunUAAFast: boxed heap, map reverse maps,
// per-event UserLines() interface calls.
func referenceUAAFast(p *endurance.Profile, scheme spare.Scheme) (Result, error) {
	if p == nil {
		return Result{}, errNilProfile
	}
	if scheme == nil {
		return Result{}, errNilScheme
	}
	h := &boxedEventHeap{}
	lineSlot := make(map[int]int, scheme.UserLines())
	worn := make(map[int]bool)
	for u := 0; u < scheme.UserLines(); u++ {
		line := scheme.Access(u)
		lineSlot[line] = u
		heap.Push(h, slotEvent{deathRound: p.LineEndurance(line), line: line})
	}

	var userWrites, lastRound int64
	failed := false
	wornLines := 0
	for h.Len() > 0 {
		ev := heap.Pop(h).(slotEvent)
		if worn[ev.line] {
			continue
		}
		u, inService := lineSlot[ev.line]
		if !inService {
			continue
		}
		userWrites += (ev.deathRound - lastRound) * int64(scheme.UserLines())
		lastRound = ev.deathRound
		worn[ev.line] = true
		wornLines++
		delete(lineSlot, ev.line)
		if !scheme.OnWearOut(u) {
			failed = true
			break
		}
		if _, pcd := scheme.(*spare.PCDScheme); pcd {
			if u < scheme.UserLines() {
				lineSlot[scheme.Access(u)] = u
			}
			continue
		}
		newLine := scheme.Access(u)
		lineSlot[newLine] = u
		heap.Push(h, slotEvent{deathRound: lastRound + p.LineEndurance(newLine), line: newLine})
	}

	return Result{
		UserWrites:         userWrites,
		DeviceWrites:       userWrites,
		NormalizedLifetime: float64(userWrites) / p.Sum(),
		WriteAmplification: 1,
		WornLines:          wornLines,
		SparesUsed:         scheme.SpareLinesUsed(),
		Failed:             failed,
	}, nil
}

// referenceRunDetailed is the original single RunDetailed loop: every write
// routed through engine.WriteSlot, UserLines()/LogicalLines() re-read per
// iteration.
func referenceRunDetailed(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	dev := device.New(cfg.Profile)
	e := newEngine(cfg, dev)
	var userWrites int64
	interrupted := false
	for {
		if cfg.MaxUserWrites > 0 && userWrites >= cfg.MaxUserWrites {
			break
		}
		if cfg.Done != nil && userWrites&1023 == 0 {
			select {
			case <-cfg.Done:
				interrupted = true
			default:
			}
			if interrupted {
				break
			}
		}
		if cfg.Leveler == nil {
			if cfg.Scheme.UserLines() == 0 {
				e.failed = true
				break
			}
			u := cfg.Attack.Next(cfg.Scheme.UserLines())
			ok := e.WriteSlot(u)
			userWrites++
			if !ok {
				break
			}
			continue
		}
		lla := cfg.Attack.Next(cfg.Leveler.LogicalLines())
		u := cfg.Leveler.Translate(lla)
		ok := e.WriteSlot(u)
		userWrites++
		if !ok {
			break
		}
		if !cfg.Leveler.OnWrite(lla, e) {
			break
		}
	}
	return buildResult(cfg, dev, userWrites, e, interrupted), nil
}

// ---------------------------------------------------------------------------
// Cross-validation

func optimProfile() *endurance.Profile {
	return endurance.DefaultModel().Sample(40, 8, xrand.New(30)).
		ScaleToMean(120).Shuffled(xrand.New(31))
}

// buildScheme covers all four spare schemes (plus Max-WE's geometry
// extremes and both deterministic PS policies).
func buildScheme(p *endurance.Profile, kind string) spare.Scheme {
	switch kind {
	case "none":
		return spare.NewNone(p.Lines())
	case "maxwe":
		return spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
	case "maxwe-allswr":
		o := spare.DefaultMaxWEOptions()
		o.SWRFraction = 1
		return spare.NewMaxWE(p, o)
	case "maxwe-alldyn":
		o := spare.DefaultMaxWEOptions()
		o.SWRFraction = 0
		return spare.NewMaxWE(p, o)
	case "ps-worst":
		return spare.NewPS(p, p.Lines()/10, spare.PSWorst, nil)
	case "ps-best":
		return spare.NewPS(p, p.Lines()/10, spare.PSBest, nil)
	case "ps-random":
		return spare.NewPS(p, p.Lines()/10, spare.PSRandom, xrand.New(33))
	case "pcd":
		return spare.NewPCD(p.Lines(), p.Lines()-p.Lines()/10)
	}
	panic("unknown kind")
}

var allSchemeKinds = []string{"none", "maxwe", "maxwe-allswr", "maxwe-alldyn",
	"ps-worst", "ps-best", "ps-random", "pcd"}

func TestRunUAAFastMatchesReferenceExactly(t *testing.T) {
	p := optimProfile()
	for _, kind := range allSchemeKinds {
		got, err := RunUAAFast(p, buildScheme(p, kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		want, err := referenceUAAFast(p, buildScheme(p, kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got != want {
			t.Fatalf("%s: optimized %+v != reference %+v", kind, got, want)
		}
	}
}

func TestRunDetailedMatchesReferenceExactly(t *testing.T) {
	p := optimProfile()
	// Each case constructs fresh stateful components per run. The unleveled
	// rows exercise the devirtualized runDirect loop across all four spare
	// schemes; the leveled rows pin the general loop (and its hoisted
	// LogicalLines) across all four levelers.
	build := func(kind, lev string, attackSeed uint64) Config {
		cfg := Config{Profile: p, Scheme: buildScheme(p, kind)}
		if attackSeed == 0 {
			cfg.Attack = attack.NewUAA()
		} else {
			cfg.Attack = attack.DefaultBPA(xrand.New(attackSeed))
		}
		n := cfg.Scheme.UserLines()
		switch lev {
		case "":
		case "identity":
			cfg.Leveler = wearlevel.NewIdentity(n)
		case "start-gap":
			cfg.Leveler = wearlevel.NewStartGap(n, 8)
		case "tlsr":
			cfg.Leveler = wearlevel.NewTLSR(n, 16, xrand.New(41))
		case "wawl":
			metrics := make([]float64, n)
			for u := range metrics {
				metrics[u] = p.RegionMetric(p.RegionOf(cfg.Scheme.BaseLine(u)))
			}
			cfg.Leveler = wearlevel.NewWAWL(n, metrics, 32, xrand.New(42))
		default:
			panic("unknown leveler")
		}
		return cfg
	}
	cases := []struct {
		kind, lev  string
		attackSeed uint64
	}{
		{"none", "", 0}, {"maxwe", "", 0}, {"ps-random", "", 0}, {"pcd", "", 0},
		{"none", "identity", 0}, {"none", "start-gap", 0},
		{"maxwe", "tlsr", 51}, {"maxwe", "wawl", 52},
		{"ps-worst", "tlsr", 53}, {"ps-random", "wawl", 54},
	}
	for _, tc := range cases {
		name := tc.kind + "/" + tc.lev
		got, _, err := RunDetailed(build(tc.kind, tc.lev, tc.attackSeed))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := referenceRunDetailed(build(tc.kind, tc.lev, tc.attackSeed))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: optimized %+v != reference %+v", name, got, want)
		}
	}
}

func TestEventHeapMatchesContainerHeap(t *testing.T) {
	// Interleaved pushes and pops with heavily duplicated keys: the
	// hand-rolled heap must pop the same event as container/heap at every
	// step, since equal-key pop order feeds back into scheme state.
	src := xrand.New(99)
	var a eventHeap
	b := &boxedEventHeap{}
	for i := 0; i < 2000; i++ {
		ev := slotEvent{deathRound: int64(src.Intn(17)), line: i}
		a.push(ev)
		heap.Push(b, ev)
		if src.Intn(3) == 0 {
			got, want := a.pop(), heap.Pop(b).(slotEvent)
			if got != want {
				t.Fatalf("step %d: pop %+v, container/heap popped %+v", i, got, want)
			}
		}
	}
	for len(a) > 0 {
		got, want := a.pop(), heap.Pop(b).(slotEvent)
		if got != want {
			t.Fatalf("drain: pop %+v, container/heap popped %+v", got, want)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("heaps diverged in size: reference still holds %d", b.Len())
	}
}

// TestRunUAAFastPCDLastSlotWearOut is the regression test for the PCD
// reverse-map edge: when the slot that wears out is the *last* slot of the
// current user space, PCD's shrink leaves u == UserLines() and no binding
// moves — the fast path must not rebind anything (an out-of-range Access
// would panic, a stale rebind would corrupt the event stream). The profile
// below forces that edge twice in a row (lines 7 then 6 are the weakest,
// each the last slot of its round), follows with a genuine middle-slot
// relocation, and ends at the capacity floor.
func TestRunUAAFastPCDLastSlotWearOut(t *testing.T) {
	lines := []int64{40, 50, 60, 70, 80, 90, 10, 5}
	p := endurance.FromLines(4, lines)
	newScheme := func() spare.Scheme { return spare.NewPCD(len(lines), 5) }

	fast, err := RunUAAFast(p, newScheme())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := referenceUAAFast(p, newScheme())
	if err != nil {
		t.Fatal(err)
	}
	if fast != ref {
		t.Fatalf("fast %+v != reference %+v", fast, ref)
	}

	// Cross-validate against the per-write engine: whole-round accounting
	// differs by less than one round, wear-out count exactly.
	slow, _, err := RunDetailed(Config{Profile: p, Scheme: newScheme(), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(float64(slow.UserWrites - fast.UserWrites)); diff > float64(len(lines))+1 {
		t.Fatalf("discrete %d vs fast %d differ by more than a round", slow.UserWrites, fast.UserWrites)
	}
	if slow.WornLines != fast.WornLines || slow.Failed != fast.Failed {
		t.Fatalf("discrete %+v vs fast %+v", slow, fast)
	}
	// The scenario actually exercised the edge: lines 7 and 6 (the two
	// last-slot deaths) plus enough further deaths to hit the floor.
	if fast.WornLines < 3 || !fast.Failed {
		t.Fatalf("scenario did not reach the capacity floor: %+v", fast)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: optimized fast path vs its pre-optimization reference on the
// same profile, so `make bench` records what the slice reverse maps and the
// unboxed heap buy in ns/op and allocs/op (BENCH_PR4.json).

// benchUAAProfile matches the root bench_test.go scale: 256x16 lines,
// mean endurance 1000.
func benchUAAProfile() *endurance.Profile {
	m := endurance.DefaultModel()
	return m.Sample(256, 16, xrand.New(9)).ScaleToMean(1000).Shuffled(xrand.New(10))
}

// BenchmarkUAAFastOptimized measures RunUAAFast after the PR 4 hot-path
// work (slice reverse maps, value heap, hoisted UserLines).
func BenchmarkUAAFastOptimized(b *testing.B) {
	p := benchUAAProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
		if _, err := RunUAAFast(p, sch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUAAFastReference measures the pre-optimization implementation
// (map reverse maps, boxed container/heap, per-event UserLines calls) on
// the identical workload — the baseline the optimized numbers compare to.
func BenchmarkUAAFastReference(b *testing.B) {
	p := benchUAAProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
		if _, err := referenceUAAFast(p, sch); err != nil {
			b.Fatal(err)
		}
	}
}
