// fastforward.go generalizes the analytic fast-forward beyond RunUAAFast.
// Any attack whose stream is periodic and state-neutral (attack.
// CyclicAttack: UAA, partial UAA, repeated hammer, targeted sweep)
// admits quiescent-phase detection against any scheme: given the per-slot
// write counts of one period, the number of whole periods until the first
// possible wear-out is
//
//	S = min over attacked slots u of floor((remaining(line(u)) - 1) / counts[u])
//
// Those S periods contain no wear-out, so no binding changes, no scheme
// state changes, and — because periods are state-neutral — no observable
// attack-state change either. They collapse into O(attacked slots) slice
// additions instead of S·period individual writes. The following period
// is processed write-by-write through the exact per-write semantics (it
// must contain a wear-out unless a cap intervenes), after which the cycle
// re-derives. PCD's shrinking capacity is handled by breaking the tail as
// soon as the user space changes and re-deriving the cycle at the new
// size.
//
// Unlike RunUAAFast — which rounds lifetime to whole UAA rounds — this
// path is exact: it reproduces the per-write reference Result bit for bit
// (crossval_test.go), including MaxUserWrites truncation, so RunDetailed
// routes every no-leveler, no-fault, no-Done cyclic configuration here.
package sim

import (
	"maxwe/internal/attack"
	"maxwe/internal/device"
)

// runCyclic is the generalized analytic fast-forward loop.
func runCyclic(cfg Config, dev *device.Device, e *engine, att attack.CyclicAttack) (userWrites int64, interrupted bool) {
	scheme := e.scheme
	core := dev.Core()
	maxWrites := cfg.MaxUserWrites
	for {
		if maxWrites > 0 && userWrites >= maxWrites {
			return userWrites, false
		}
		n := scheme.UserLines()
		if n == 0 {
			e.failed = true
			return userWrites, false
		}
		period, counts := att.Cycle(n)
		if period <= 0 {
			// Defensive: a CyclicAttack must describe a positive period;
			// degrade to the plain per-write loop rather than spin.
			uw, intr := runDirect(cfg, dev, e)
			return userWrites + uw, intr
		}

		// Quiescent phase: how many whole periods can pass before any
		// bound line could reach its budget?
		skip := int64(-1)
		for u := 0; u < n; u++ {
			c := counts[u]
			if c == 0 {
				continue
			}
			line := scheme.Access(u)
			rem := core.Endurance[line] - core.Writes[line]
			if s := (rem - 1) / c; skip < 0 || s < skip {
				skip = s
				if s == 0 {
					break
				}
			}
		}
		if skip < 0 {
			skip = 0
		}
		if maxWrites > 0 {
			if left := (maxWrites - userWrites) / period; left < skip {
				skip = left
			}
		}
		if skip > 0 {
			for u := 0; u < n; u++ {
				if c := counts[u]; c != 0 {
					core.Writes[scheme.Access(u)] += skip * c
				}
			}
			core.Total += skip * period
			userWrites += skip * period
		}

		// Tail: at most one period, write-by-write with the exact
		// per-write semantics. Unless MaxUserWrites truncates it, it
		// contains the run's next wear-out.
		for i := int64(0); i < period; i++ {
			if maxWrites > 0 && userWrites >= maxWrites {
				return userWrites, false
			}
			u := att.Next(n)
			userWrites++
			if core.Write(scheme.Access(u)) {
				e.rebinds++
				if !scheme.OnWearOut(u) {
					e.failed = true
					return userWrites, false
				}
				if scheme.UserLines() != n {
					// PCD shrank the space: the cycle description is
					// stale. State-neutral periods hold from any attack
					// state, so re-deriving mid-period stays exact.
					break
				}
			}
		}
	}
}
