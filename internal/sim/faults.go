// faults.go is the engine's fault-injection write path. When a Config
// carries an enabled faultinject.Plan, every physical write — user traffic
// and wear-leveling movement alike — first draws a fault outcome from the
// plan and the engine responds:
//
//   - metadata faults corrupt one RMT/LMT entry of a scheme that exposes
//     corruptible metadata (Max-WE), then run the integrity scrub that
//     detects the damage and rebuilds the entry from its journal copy;
//   - stuck-at faults kill the target line before its endurance budget is
//     spent, feeding the scheme's replacement procedure early;
//   - transient faults fail the initial write attempt (which still wears
//     the cells) and force retries: each retry re-issues the physical
//     write and charges a bounded exponential backoff delay; a write
//     still failing after RetryPolicy.MaxRetries is escalated to a
//     permanent line failure and replaced.
//
// With no plan armed the engine never touches this file, keeping the
// fault layer a strict no-op for fault-free configurations.
package sim

import "maxwe/internal/xrand"

// MetadataFaulter is implemented by spare schemes whose mapping metadata
// can be corrupted and scrubbed (Max-WE's hybrid RMT/LMT tables). Schemes
// without it silently ignore metadata fault events.
type MetadataFaulter interface {
	// CorruptMetadata injects one metadata fault, returning false when
	// there is no metadata to corrupt.
	CorruptMetadata(src *xrand.Source) bool
	// ScrubMetadata detects and rebuilds corrupted entries, returning how
	// many were repaired.
	ScrubMetadata() int
}

// writeSlotFaulty is WriteSlot with the fault layer armed.
func (e *engine) writeSlotFaulty(u int) bool {
	f := e.faults.Draw()

	if f.Metadata {
		if mf, ok := e.scheme.(MetadataFaulter); ok && mf.CorruptMetadata(e.faults.Src()) {
			e.ctr.MetadataFaults++
			e.ctr.MetadataRepairs += int64(mf.ScrubMetadata())
		}
	}

	line := e.scheme.Access(u)
	if f.StuckAt {
		// A stuck-at fault is discovered by a write attempt, so the
		// attempt is charged to the device before the line is retired
		// early. In the rare case that very attempt exhausts the line's
		// budget it is an ordinary wear-out, not a stuck-at kill.
		natural := e.dev.Write(line)
		if !natural && e.dev.ForceWear(line) {
			e.ctr.StuckAtFaults++
			natural = true
		}
		if natural {
			if u, line = e.rebind(u); e.failed {
				return false
			}
		}
	}

	if f.TransientRetries > 0 {
		e.ctr.TransientFaults++
		// The initial attempt fails transiently but still wears the
		// cells; it can itself be the write that exhausts the line.
		if e.dev.Write(line) {
			if u, line = e.rebind(u); e.failed {
				return false
			}
		}
		demanded := f.TransientRetries
		escalate := demanded > e.retry.MaxRetries
		if escalate {
			demanded = e.retry.MaxRetries
		}
		for i := 0; i < demanded; i++ {
			e.ctr.Retries++
			e.ctr.BackoffUnits += e.retry.Backoff(i)
			// Failed retries wear the cells just like the initial attempt.
			if e.dev.Write(line) {
				if u, line = e.rebind(u); e.failed {
					return false
				}
			}
		}
		if escalate {
			// The write never succeeded within the retry budget: the line
			// is treated as hard-failed and replaced before the final
			// attempt (which targets the fresh spare).
			e.ctr.Escalations++
			if e.dev.ForceWear(line) {
				if u, line = e.rebind(u); e.failed {
					return false
				}
			}
		}
	}

	if e.dev.Write(line) {
		e.rebinds++
		if !e.scheme.OnWearOut(u) {
			e.failed = true
			return false
		}
	}
	return true
}

// rebind runs the scheme's replacement procedure for slot u's dead
// backing line and re-resolves the slot. On spare exhaustion it marks the
// engine failed. Under PCD the dying slot can be the last one, shrinking
// the user space past u; the in-flight write then folds modulo the new
// capacity, mirroring the Stepper's address folding.
func (e *engine) rebind(u int) (slot, line int) {
	e.rebinds++
	if !e.scheme.OnWearOut(u) {
		e.failed = true
		return u, 0
	}
	if n := e.scheme.UserLines(); u >= n {
		if n == 0 {
			e.failed = true
			return u, 0
		}
		u %= n
	}
	return u, e.scheme.Access(u)
}
