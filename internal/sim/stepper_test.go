package sim

import (
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

func TestStepperMatchesRunUnderUAA(t *testing.T) {
	p := endurance.Linear(16, 8, 20, 1000).Shuffled(xrand.New(1))

	ran, err := Run(Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		Attack:  attack.NewUAA(),
	})
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStepper(Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	lla := 0
	for st.Write(lla) {
		lla++
		if lla >= st.LogicalLines() {
			lla = 0
		}
	}
	stepped := st.Result()
	if stepped.UserWrites != ran.UserWrites {
		t.Fatalf("stepper served %d writes, Run served %d", stepped.UserWrites, ran.UserWrites)
	}
	if stepped.NormalizedLifetime != ran.NormalizedLifetime {
		t.Fatal("normalized lifetimes differ")
	}
	if !stepped.Failed {
		t.Fatal("stepper result not marked failed")
	}
}

func TestStepperRejectsAfterFailure(t *testing.T) {
	p := endurance.Uniform(1, 2, 1)
	st, err := NewStepper(Config{Profile: p, Scheme: spare.NewNone(p.Lines())})
	if err != nil {
		t.Fatal(err)
	}
	if st.Write(0) {
		t.Fatal("write at budget-1 endurance should fail the unprotected device")
	}
	if !st.Failed() {
		t.Fatal("Failed() false after failure")
	}
	if st.Write(1) {
		t.Fatal("write accepted after device failure")
	}
	// The post-failure attempt must not be counted.
	if st.Result().UserWrites != 1 {
		t.Fatalf("UserWrites = %d, want 1", st.Result().UserWrites)
	}
}

func TestStepperWithLeveler(t *testing.T) {
	p := endurance.Uniform(4, 8, 100)
	lev := wearlevel.NewStartGap(p.Lines(), 4)
	st, err := NewStepper(Config{
		Profile: p,
		Scheme:  spare.NewNone(p.Lines()),
		Leveler: lev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalLines() != p.Lines()-1 {
		t.Fatalf("LogicalLines = %d", st.LogicalLines())
	}
	for i := 0; i < 500; i++ {
		if !st.Write(i % st.LogicalLines()) {
			break
		}
	}
	res := st.Result()
	if res.WriteAmplification <= 1 {
		t.Fatalf("amplification = %v with start-gap", res.WriteAmplification)
	}
	if st.Device().TotalWrites() != res.DeviceWrites {
		t.Fatal("Device() inconsistent with Result()")
	}
}

func TestStepperValidation(t *testing.T) {
	if _, err := NewStepper(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	p := endurance.Uniform(2, 2, 10)
	if _, err := NewStepper(Config{Profile: p, Scheme: spare.NewPCD(4, 2),
		Leveler: wearlevel.NewIdentity(4)}); err == nil {
		t.Fatal("PCD+leveler accepted")
	}
}

func TestStepperWrapsAddresses(t *testing.T) {
	p := endurance.Uniform(2, 4, 50)
	st, err := NewStepper(Config{Profile: p, Scheme: spare.NewNone(p.Lines())})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range logical addresses fold modulo the space instead of
	// panicking (the caller may be replaying a trace larger than the
	// device).
	if !st.Write(12345) {
		t.Fatal("folded write failed")
	}
}
