// crossval_test.go cross-validates the struct-of-arrays batched engine
// (batch.go) and the generalized cyclic fast-forward (fastforward.go)
// against the pre-refactor per-write engine, kept in-test as
// referenceRunDetailed (optim_test.go). The bar is exact Result equality
// — bit-identical, not approximate — across the full attack × scheme ×
// leveler matrix, MaxUserWrites truncation edges, cancellation, and
// per-line device state.
package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/faultinject"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

// plainAttack hides an attack's BatchAttack/CyclicAttack extensions so a
// config is forced onto the legacy per-write loops (runDirect/runGeneral)
// — the second way, besides referenceRunDetailed, to obtain pre-refactor
// behavior, and the only one that exposes the final device for per-line
// comparison through the public API.
type plainAttack struct{ inner attack.Attack }

func (a plainAttack) Name() string   { return a.inner.Name() }
func (a plainAttack) Next(n int) int { return a.inner.Next(n) }

var crossvalAttacks = []string{
	"uaa", "partial-uaa", "bpa", "repeated", "targeted-sweep", "hotcold", "random",
}

var crossvalLevelers = []string{
	"", "identity", "start-gap", "stress-aware", "tlsr", "pcm-s", "bwl", "wawl", "twl",
}

func buildAttack(kind string, logical int, seed uint64) attack.Attack {
	switch kind {
	case "uaa":
		return attack.NewUAA()
	case "partial-uaa":
		return attack.NewPartialUAA(0.4)
	case "bpa":
		return attack.NewBPA(8, 5000, xrand.New(seed))
	case "repeated":
		return attack.NewRepeated(7)
	case "targeted-sweep":
		return attack.NewTargetedSweep([]int{1, 5, 5, 19, 400, 3})
	case "hotcold":
		return attack.NewHotCold(logical, 1.1, xrand.New(seed))
	case "random":
		return attack.NewRandomUniform(xrand.New(seed))
	}
	panic("unknown attack kind")
}

func buildLeveler(kind string, sch spare.Scheme, p *endurance.Profile, seed uint64) wearlevel.Leveler {
	n := sch.UserLines()
	metrics := func(slots int) []float64 {
		ms := make([]float64, slots)
		for u := range ms {
			ms[u] = p.RegionMetric(p.RegionOf(sch.BaseLine(u)))
		}
		return ms
	}
	switch kind {
	case "":
		return nil
	case "identity":
		return wearlevel.NewIdentity(n)
	case "start-gap":
		return wearlevel.NewStartGap(n, 8)
	case "stress-aware":
		return wearlevel.NewStressAware(n, 8)
	case "tlsr":
		return wearlevel.NewTLSR(n, 16, xrand.New(seed))
	case "pcm-s":
		return wearlevel.NewPCMS(n, 16, xrand.New(seed))
	case "bwl":
		return wearlevel.NewBWL(n, metrics(n), 16, xrand.New(seed))
	case "wawl":
		return wearlevel.NewWAWL(n, metrics(n), 16, xrand.New(seed))
	case "twl":
		even := n - n%2 // TWL bonds slot pairs; drop a trailing odd slot
		return wearlevel.NewTWL(even, metrics(even), xrand.New(seed))
	}
	panic("unknown leveler kind")
}

// buildCrossval assembles one fresh config; every call constructs new
// stateful components so a config can be built twice for the two engines.
func buildCrossval(p *endurance.Profile, ak, sk, lk string, maxWrites int64) Config {
	cfg := Config{Profile: p, Scheme: buildScheme(p, sk), MaxUserWrites: maxWrites}
	cfg.Leveler = buildLeveler(lk, cfg.Scheme, p, 61)
	logical := cfg.Scheme.UserLines()
	if cfg.Leveler != nil {
		logical = cfg.Leveler.LogicalLines()
	}
	cfg.Attack = buildAttack(ak, logical, 62)
	return cfg
}

// TestBatchedEngineFullMatrix runs every attack × scheme × leveler
// combination (PCD only unleveled, as validate requires) through the
// refactored RunDetailed and the pre-refactor reference, demanding exact
// Result equality. This is a superset of every combination optim_test.go
// exercises and covers all three new paths: runCyclic (uaa/partial-uaa/
// repeated/targeted-sweep unleveled), runBatchedDirect (bpa/hotcold/
// random on capacity-stable schemes), and runBatchedLeveled (every
// leveled row, including the SwapWL and Identity devirtualizations and
// the generic interface fallback).
func TestBatchedEngineFullMatrix(t *testing.T) {
	p := optimProfile()
	for _, ak := range crossvalAttacks {
		for _, sk := range allSchemeKinds {
			for _, lk := range crossvalLevelers {
				if sk == "pcd" && lk != "" {
					continue // PCD's shrinking capacity forbids levelers
				}
				name := ak + "/" + sk + "/" + lk
				got, _, err := RunDetailed(buildCrossval(p, ak, sk, lk, 0))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := referenceRunDetailed(buildCrossval(p, ak, sk, lk, 0))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got != want {
					t.Fatalf("%s: refactored %+v != reference %+v", name, got, want)
				}
			}
		}
	}
}

// TestCyclicFastForwardCapEdges sweeps MaxUserWrites across period
// boundaries, epoch boundaries, and the exact failure write of every
// cyclic attack × scheme pair: the fast-forward's bulk skip and tail must
// truncate at precisely the same write as the per-write reference.
func TestCyclicFastForwardCapEdges(t *testing.T) {
	p := optimProfile()
	for _, ak := range []string{"uaa", "partial-uaa", "repeated", "targeted-sweep"} {
		for _, sk := range allSchemeKinds {
			full, _, err := RunDetailed(buildCrossval(p, ak, sk, "", 0))
			if err != nil {
				t.Fatal(err)
			}
			caps := []int64{1, 2, 319, 320, 321, 1023, 1024, 1025,
				full.UserWrites - 1, full.UserWrites, full.UserWrites + 1}
			for _, maxW := range caps {
				if maxW <= 0 {
					continue
				}
				name := ak + "/" + sk
				got, _, err := RunDetailed(buildCrossval(p, ak, sk, "", maxW))
				if err != nil {
					t.Fatalf("%s cap %d: %v", name, maxW, err)
				}
				want, err := referenceRunDetailed(buildCrossval(p, ak, sk, "", maxW))
				if err != nil {
					t.Fatalf("%s cap %d: %v", name, maxW, err)
				}
				if got != want {
					t.Fatalf("%s cap %d: refactored %+v != reference %+v", name, maxW, got, want)
				}
			}
		}
	}
}

// TestBatchedDoneSemantics pins the cancellation contract of the batched
// loops: a Done channel closed before the run stops both engines at the
// first poll with zero writes served, and an open Done channel must not
// change the result relative to no channel at all (the polls land on the
// same 1024-write boundaries as the reference loop's).
func TestBatchedDoneSemantics(t *testing.T) {
	p := optimProfile()
	closed := make(chan struct{})
	close(closed)
	open := make(chan struct{})
	cases := []struct{ ak, sk, lk string }{
		{"uaa", "maxwe", ""},      // cyclic attack forced onto the batched path by Done
		{"bpa", "maxwe", "tlsr"},  // batched leveled
		{"random", "ps-best", ""}, // batched direct
	}
	for _, tc := range cases {
		name := tc.ak + "/" + tc.sk + "/" + tc.lk
		cfg := buildCrossval(p, tc.ak, tc.sk, tc.lk, 0)
		cfg.Done = closed
		res, _, err := RunDetailed(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Interrupted || res.UserWrites != 0 {
			t.Fatalf("%s: pre-closed Done served %d writes, interrupted=%v",
				name, res.UserWrites, res.Interrupted)
		}
		cfg = buildCrossval(p, tc.ak, tc.sk, tc.lk, 0)
		cfg.Done = open
		withOpen, _, err := RunDetailed(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		noDone, _, err := RunDetailed(buildCrossval(p, tc.ak, tc.sk, tc.lk, 0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if withOpen != noDone {
			t.Fatalf("%s: open Done changed the result: %+v != %+v", name, withOpen, noDone)
		}
	}
}

// TestBatchedPerLineStateMatchesPerWrite compares the refactored engine
// against the legacy loops at per-line granularity: same Result AND the
// same writes counter and worn flag on every physical line. plainAttack
// strips the batch/cyclic interfaces so the second run takes the old
// runDirect/runGeneral path through the public API, which returns its
// device for inspection.
func TestBatchedPerLineStateMatchesPerWrite(t *testing.T) {
	p := optimProfile()
	cases := []struct{ ak, sk, lk string }{
		{"uaa", "maxwe", ""}, {"uaa", "pcd", ""}, {"repeated", "none", ""},
		{"partial-uaa", "ps-random", ""}, {"targeted-sweep", "pcd", ""},
		{"bpa", "maxwe", "tlsr"}, {"bpa", "ps-worst", "wawl"},
		{"random", "maxwe", "identity"}, {"hotcold", "maxwe", "start-gap"},
	}
	for _, tc := range cases {
		name := tc.ak + "/" + tc.sk + "/" + tc.lk
		gotRes, gotDev, err := RunDetailed(buildCrossval(p, tc.ak, tc.sk, tc.lk, 0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		legacy := buildCrossval(p, tc.ak, tc.sk, tc.lk, 0)
		legacy.Attack = plainAttack{inner: legacy.Attack}
		wantRes, wantDev, err := RunDetailed(legacy)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gotRes != wantRes {
			t.Fatalf("%s: refactored %+v != legacy %+v", name, gotRes, wantRes)
		}
		for line := 0; line < p.Lines(); line++ {
			if gotDev.Writes(line) != wantDev.Writes(line) || gotDev.Worn(line) != wantDev.Worn(line) {
				t.Fatalf("%s: line %d diverged: %d/%v vs %d/%v", name, line,
					gotDev.Writes(line), gotDev.Worn(line),
					wantDev.Writes(line), wantDev.Worn(line))
			}
		}
	}
}

// FuzzEngineCrossValidation is the satellite property test: arbitrary
// (attack, scheme, leveler, fault-plan, cap) configurations must produce
// byte-identical Result JSON from the pre-refactor reference loop and the
// refactored engine. Fault plans route both engines through runGeneral,
// so the fuzz also pins the hoisted-UserLines fix against the old
// re-read-every-write behavior.
func FuzzEngineCrossValidation(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(1), uint8(4), uint16(0), uint16(0))
	f.Add(uint64(2), uint8(2), uint8(7), uint8(0), uint16(0), uint16(900))
	f.Add(uint64(3), uint8(3), uint8(0), uint8(0), uint16(37), uint16(0))
	f.Add(uint64(4), uint8(5), uint8(1), uint8(7), uint16(0), uint16(2048))
	f.Add(uint64(5), uint8(6), uint8(4), uint8(2), uint16(403), uint16(1025))
	f.Fuzz(func(t *testing.T, seed uint64, ak, sk, lk uint8, faultPM, maxW uint16) {
		akind := crossvalAttacks[int(ak)%len(crossvalAttacks)]
		skind := allSchemeKinds[int(sk)%len(allSchemeKinds)]
		lkind := crossvalLevelers[int(lk)%len(crossvalLevelers)]
		if skind == "pcd" {
			lkind = ""
		}
		p := endurance.Linear(8, 8, 5, 250).Shuffled(xrand.New(seed))
		// Every stateful component — the fault plan's RNG included — must
		// be constructed fresh per engine run, or the first run's draws
		// would skew the second's.
		build := func() Config {
			cfg := buildCrossval(p, akind, skind, lkind, int64(maxW))
			cfg.Attack = buildAttack(akind, logicalOf(cfg), seed+3)
			if faultPM > 0 {
				plan, err := faultinject.NewPlan(faultinject.Config{
					Seed:                seed + 9,
					TransientProb:       float64(faultPM%97) / 1000,
					StuckAtProb:         float64(faultPM%53) / 5000,
					MetadataProb:        float64(faultPM%31) / 5000,
					MaxTransientRetries: int(faultPM%7) + 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = plan
			}
			return cfg
		}
		got, _, err := RunDetailed(build())
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceRunDetailed(build())
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s/%s/%s cap %d faults %d:\nrefactored %s\nreference  %s",
				akind, skind, lkind, maxW, faultPM, gotJSON, wantJSON)
		}
	})
}

// logicalOf returns the logical space an attack addresses under cfg.
func logicalOf(cfg Config) int {
	if cfg.Leveler != nil {
		return cfg.Leveler.LogicalLines()
	}
	return cfg.Scheme.UserLines()
}

// ---------------------------------------------------------------------------
// Fig7-cell benchmark: the acceptance workload for the SoA refactor. It
// replicates one cell of the root BenchmarkFig7SWRPercentBPA grid (the
// 90%-SWR Max-WE × TLSR × default BPA cell at the bench scale: 256×16
// lines, mean endurance 1000, Psi 32, seeds derived from 20190602 exactly
// as experiments.Setup does) without importing internal/experiments,
// which would cycle.

func fig7CellProfile() *endurance.Profile {
	const mean, q = 1000.0, 50.0
	el := 2 * mean / (1 + q)
	return endurance.Linear(256, 16, el, el*q).ScaleToMean(mean).Shuffled(xrand.New(20190603))
}

func fig7CellConfig(p *endurance.Profile) Config {
	opts := spare.DefaultMaxWEOptions()
	opts.SWRFraction = 0.9
	sch := spare.NewMaxWE(p, opts)
	return Config{
		Profile: p,
		Scheme:  sch,
		Leveler: wearlevel.NewTLSR(sch.UserLines(), 32, xrand.New(20190604)),
		Attack:  attack.DefaultBPA(xrand.New(20190605)),
	}
}

func TestFig7CellBatchedMatchesReference(t *testing.T) {
	p := fig7CellProfile()
	got, _, err := RunDetailed(fig7CellConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	want, err := referenceRunDetailed(fig7CellConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("refactored %+v != reference %+v", got, want)
	}
}

// BenchmarkFig7CellBatched measures the refactored engine on the Fig7
// acceptance cell (routes through runBatchedLeveled with the SwapWL
// devirtualization and the slot→line cache).
func BenchmarkFig7CellBatched(b *testing.B) {
	p := fig7CellProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunDetailed(fig7CellConfig(p)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7CellReference measures the pre-refactor per-write engine
// on the identical workload — the baseline the ≥5× acceptance criterion
// compares against.
func BenchmarkFig7CellReference(b *testing.B) {
	p := fig7CellProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceRunDetailed(fig7CellConfig(p)); err != nil {
			b.Fatal(err)
		}
	}
}
