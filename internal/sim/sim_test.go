package sim

import (
	"math"
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
	"maxwe/internal/xrand"
)

func TestValidation(t *testing.T) {
	p := endurance.Uniform(2, 4, 10)
	good := Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Scheme: spare.NewNone(8), Attack: attack.NewUAA()},
		{Profile: p, Attack: attack.NewUAA()},
		{Profile: p, Scheme: spare.NewNone(8)},
		{Profile: p, Scheme: spare.NewNone(8), Attack: attack.NewUAA(), MaxUserWrites: -1},
		{Profile: p, Scheme: spare.NewPCD(8, 4), Attack: attack.NewUAA(),
			Leveler: wearlevel.NewIdentity(8)},
		{Profile: p, Scheme: spare.NewNone(8), Attack: attack.NewUAA(),
			Leveler: wearlevel.NewIdentity(9)},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestUAAWithoutProtectionDiesAtWeakestLine(t *testing.T) {
	// 16 lines with endurance 5..95: UAA kills the device after
	// 16 * 5 = 80 writes (Equation 4 exactly, since the weakest line is
	// line 0, written first in each round... the failing round is partial).
	p := endurance.Linear(4, 4, 5, 95)
	res, err := Run(Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("device did not fail")
	}
	// The weakest line (0) dies on its 5th write, which is write 4*16+1.
	if res.UserWrites != 4*16+1 {
		t.Fatalf("UserWrites = %d, want %d", res.UserWrites, 4*16+1)
	}
	if res.WornLines != 1 {
		t.Fatalf("WornLines = %d", res.WornLines)
	}
	if math.Abs(res.WriteAmplification-1) > 1e-9 {
		t.Fatalf("amplification = %v without leveler", res.WriteAmplification)
	}
}

func TestNormalizedLifetimeMatchesEq5(t *testing.T) {
	// Linear profile with q = EH/EL: normalized UAA lifetime must be
	// close to 2EL/(EH+EL) (Equation 5). Use q=50.
	p := endurance.Linear(64, 32, 100, 5000)
	res, err := Run(Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 100 / (5000 + 100) // 0.0392
	if math.Abs(res.NormalizedLifetime-want) > 0.002 {
		t.Fatalf("normalized lifetime = %v, want ~%v", res.NormalizedLifetime, want)
	}
}

func TestIdealDeviceReachesFullLifetime(t *testing.T) {
	// With zero variation, UAA is the ideal workload: normalized lifetime
	// approaches 1.0 under no protection (the first failure forfeits the
	// rest of the final round, bounding it at ~1 - 1/E).
	p := endurance.Uniform(8, 8, 1000)
	res, err := Run(Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NormalizedLifetime-1.0) > 0.01 {
		t.Fatalf("normalized lifetime = %v, want ~1.0", res.NormalizedLifetime)
	}
}

func TestMaxUserWritesCap(t *testing.T) {
	p := endurance.Uniform(2, 4, 1000)
	res, err := Run(Config{
		Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA(),
		MaxUserWrites: 123,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.UserWrites != 123 {
		t.Fatalf("cap not honored: failed=%v writes=%d", res.Failed, res.UserWrites)
	}
}

func TestSparesExtendLifetime(t *testing.T) {
	p := endurance.Linear(16, 8, 50, 2500).Shuffled(xrand.New(2))
	none, err := Run(Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	maxwe, err := Run(Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		Attack:  attack.NewUAA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxwe.NormalizedLifetime <= 2*none.NormalizedLifetime {
		t.Fatalf("Max-WE %v did not clearly beat unprotected %v",
			maxwe.NormalizedLifetime, none.NormalizedLifetime)
	}
}

func TestMaxWEBeatsBaselinesUnderUAA(t *testing.T) {
	// Section 5.3.1's ordering: Max-WE > PCD/PS > PS-worst under UAA at
	// 10% spares.
	p := endurance.DefaultModel().Sample(128, 16, xrand.New(7)).
		ScaleToMean(300).Shuffled(xrand.New(8))
	spareLines := p.Lines() / 10

	mw, err := Run(Config{Profile: p,
		Scheme: spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Run(Config{Profile: p,
		Scheme: spare.NewPS(p, spareLines, spare.PSRandom, xrand.New(9)),
		Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Run(Config{Profile: p,
		Scheme: spare.NewPS(p, spareLines, spare.PSWorst, nil),
		Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	if !(mw.NormalizedLifetime > ps.NormalizedLifetime) {
		t.Fatalf("Max-WE %v <= PS %v", mw.NormalizedLifetime, ps.NormalizedLifetime)
	}
	if !(ps.NormalizedLifetime > worst.NormalizedLifetime) {
		t.Fatalf("PS %v <= PS-worst %v", ps.NormalizedLifetime, worst.NormalizedLifetime)
	}
}

func TestPCDUnderUAA(t *testing.T) {
	// PCD with a 10% budget must land near Equation 7's prediction for a
	// linear profile.
	p := endurance.Linear(32, 16, 100, 5000).Shuffled(xrand.New(3))
	n := p.Lines()
	res, err := Run(Config{Profile: p,
		Scheme: spare.NewPCD(n, n-n/10),
		Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	// Eq 7 normalized at p=0.1, q=50 is ~0.222.
	if math.Abs(res.NormalizedLifetime-0.222) > 0.03 {
		t.Fatalf("PCD normalized lifetime = %v, want ~0.222", res.NormalizedLifetime)
	}
}

func TestLevelerAmplifiesWrites(t *testing.T) {
	p := endurance.Uniform(8, 8, 500)
	lev := wearlevel.NewTLSR(p.Lines(), 16, xrand.New(4))
	res, err := Run(Config{
		Profile:       p,
		Scheme:        spare.NewNone(p.Lines()),
		Leveler:       lev,
		Attack:        attack.NewUAA(),
		MaxUserWrites: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteAmplification <= 1.0 {
		t.Fatalf("amplification = %v, want > 1 with swaps", res.WriteAmplification)
	}
	// With psi=16, roughly one swap (2 writes) per 16 user writes:
	// amplification ≈ 1.125.
	if res.WriteAmplification > 1.3 {
		t.Fatalf("amplification = %v unreasonably high", res.WriteAmplification)
	}
}

func TestRemapAggravatesWearUnderUAA(t *testing.T) {
	// Section 3.3.1: wear leveling under UAA can only hurt. Compare
	// lifetime with and without TLSR on the same profile.
	p := endurance.Linear(16, 8, 50, 2500).Shuffled(xrand.New(5))
	plain, err := Run(Config{Profile: p, Scheme: spare.NewNone(p.Lines()), Attack: attack.NewUAA()})
	if err != nil {
		t.Fatal(err)
	}
	leveled, err := Run(Config{
		Profile: p,
		Scheme:  spare.NewNone(p.Lines()),
		Leveler: wearlevel.NewTLSR(p.Lines(), 8, xrand.New(6)),
		Attack:  attack.NewUAA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if leveled.UserWrites > plain.UserWrites*11/10 {
		t.Fatalf("wear leveling helped UAA: %d vs %d", leveled.UserWrites, plain.UserWrites)
	}
}

func TestStartGapRuns(t *testing.T) {
	p := endurance.Uniform(4, 8, 200)
	lev := wearlevel.NewStartGap(p.Lines(), 8)
	res, err := Run(Config{
		Profile: p, Scheme: spare.NewNone(p.Lines()),
		Leveler: lev, Attack: attack.NewUAA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.UserWrites == 0 {
		t.Fatal("start-gap run did not complete")
	}
}

func TestBPAOnMaxWEWithWAWL(t *testing.T) {
	p := endurance.DefaultModel().Sample(64, 16, xrand.New(11)).
		ScaleToMean(200).Shuffled(xrand.New(12))
	scheme := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
	metrics := make([]float64, scheme.UserLines())
	for u := range metrics {
		metrics[u] = p.RegionMetric(p.RegionOf(scheme.BaseLine(u)))
	}
	lev := wearlevel.NewWAWL(scheme.UserLines(), metrics, 32, xrand.New(13))
	res, err := Run(Config{
		Profile: p, Scheme: scheme, Leveler: lev,
		Attack: attack.DefaultBPA(xrand.New(14)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("BPA run did not finish")
	}
	if res.NormalizedLifetime < 0.2 {
		t.Fatalf("WAWL+Max-WE lifetime %v suspiciously low under BPA", res.NormalizedLifetime)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		p := endurance.DefaultModel().Sample(32, 8, xrand.New(20)).ScaleToMean(150)
		scheme := spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
		res, err := Run(Config{
			Profile: p, Scheme: scheme,
			Leveler: wearlevel.NewTLSR(scheme.UserLines(), 16, xrand.New(21)),
			Attack:  attack.DefaultBPA(xrand.New(22)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

// Cross-validation: the event-driven UAA fast path must agree with the
// per-write engine within one round of writes, across schemes.
func TestFastPathMatchesDiscrete(t *testing.T) {
	build := func(p *endurance.Profile, kind string) spare.Scheme {
		switch kind {
		case "none":
			return spare.NewNone(p.Lines())
		case "maxwe":
			return spare.NewMaxWE(p, spare.DefaultMaxWEOptions())
		case "maxwe-allswr":
			o := spare.DefaultMaxWEOptions()
			o.SWRFraction = 1
			return spare.NewMaxWE(p, o)
		case "maxwe-alldyn":
			o := spare.DefaultMaxWEOptions()
			o.SWRFraction = 0
			return spare.NewMaxWE(p, o)
		case "ps-worst":
			return spare.NewPS(p, p.Lines()/10, spare.PSWorst, nil)
		case "ps-random":
			return spare.NewPS(p, p.Lines()/10, spare.PSRandom, xrand.New(33))
		case "pcd":
			return spare.NewPCD(p.Lines(), p.Lines()-p.Lines()/10)
		}
		panic("unknown kind")
	}
	p := endurance.DefaultModel().Sample(40, 8, xrand.New(30)).
		ScaleToMean(120).Shuffled(xrand.New(31))
	for _, kind := range []string{"none", "maxwe", "maxwe-allswr", "maxwe-alldyn",
		"ps-worst", "ps-random", "pcd"} {
		slow, err := Run(Config{Profile: p, Scheme: build(p, kind), Attack: attack.NewUAA()})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		fast, err := RunUAAFast(p, build(p, kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		diff := math.Abs(float64(slow.UserWrites - fast.UserWrites))
		if diff > float64(p.Lines())+1 {
			t.Fatalf("%s: discrete %d vs fast %d differ by more than a round",
				kind, slow.UserWrites, fast.UserWrites)
		}
		if slow.WornLines != fast.WornLines {
			t.Fatalf("%s: worn lines %d vs %d", kind, slow.WornLines, fast.WornLines)
		}
	}
}

func TestRunUAAFastValidation(t *testing.T) {
	p := endurance.Uniform(2, 2, 5)
	if _, err := RunUAAFast(nil, spare.NewNone(4)); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := RunUAAFast(p, nil); err == nil {
		t.Fatal("nil scheme accepted")
	}
}
