package sim

import (
	"testing"

	"maxwe/internal/endurance"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

// FuzzStepperInvariants feeds arbitrary write streams through the full
// Max-WE stack and checks the global accounting invariants: served user
// writes never exceed device writes, the device never over-consumes its
// total budget by more than one write per line, and the run terminates
// consistently.
func FuzzStepperInvariants(f *testing.F) {
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(42), uint16(5000))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		p := endurance.Linear(8, 8, 5, 250).Shuffled(xrand.New(seed))
		st, err := NewStepper(Config{
			Profile: p,
			Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		})
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(seed + 1)
		for i := 0; i < int(steps); i++ {
			if !st.Write(src.Intn(st.LogicalLines())) {
				break
			}
		}
		res := st.Result()
		if res.DeviceWrites < res.UserWrites {
			t.Fatalf("device writes %d < user writes %d", res.DeviceWrites, res.UserWrites)
		}
		if res.NormalizedLifetime < 0 || res.NormalizedLifetime > 1 {
			t.Fatalf("normalized lifetime %v out of [0, 1]", res.NormalizedLifetime)
		}
		// Worn lines can never exceed the device's line count, and spare
		// usage can never exceed the provisioned budget by construction.
		if res.WornLines > p.Lines() {
			t.Fatalf("worn lines %d > device lines %d", res.WornLines, p.Lines())
		}
		// Every device write lands on a then-unworn line, so total
		// device writes are bounded by the total budget plus one
		// wear-out transition per line.
		if float64(res.DeviceWrites) > p.Sum()+float64(p.Lines()) {
			t.Fatalf("device writes %d exceed total budget %v", res.DeviceWrites, p.Sum())
		}
	})
}
