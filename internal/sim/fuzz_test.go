package sim

import (
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/faultinject"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

// FuzzStepperInvariants feeds arbitrary write streams through the full
// Max-WE stack and checks the global accounting invariants: served user
// writes never exceed device writes, the device never over-consumes its
// total budget by more than one write per line, and the run terminates
// consistently.
func FuzzStepperInvariants(f *testing.F) {
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(42), uint16(5000))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		p := endurance.Linear(8, 8, 5, 250).Shuffled(xrand.New(seed))
		st, err := NewStepper(Config{
			Profile: p,
			Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		})
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(seed + 1)
		for i := 0; i < int(steps); i++ {
			if !st.Write(src.Intn(st.LogicalLines())) {
				break
			}
		}
		res := st.Result()
		if res.DeviceWrites < res.UserWrites {
			t.Fatalf("device writes %d < user writes %d", res.DeviceWrites, res.UserWrites)
		}
		if res.NormalizedLifetime < 0 || res.NormalizedLifetime > 1 {
			t.Fatalf("normalized lifetime %v out of [0, 1]", res.NormalizedLifetime)
		}
		// Worn lines can never exceed the device's line count, and spare
		// usage can never exceed the provisioned budget by construction.
		if res.WornLines > p.Lines() {
			t.Fatalf("worn lines %d > device lines %d", res.WornLines, p.Lines())
		}
		// Every device write lands on a then-unworn line, so total
		// device writes are bounded by the total budget plus one
		// wear-out transition per line.
		if float64(res.DeviceWrites) > p.Sum()+float64(p.Lines()) {
			t.Fatalf("device writes %d exceed total budget %v", res.DeviceWrites, p.Sum())
		}
	})
}

// FuzzFaultPlan runs full lifetimes under arbitrary seeded fault plans and
// checks that every plan completes or fails cleanly: no panic, device
// writes cover user traffic plus retries, retries stay within the policy
// bound, and metadata scrubbing repairs every corruption it is handed.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint16(200), uint16(10), uint16(10), uint8(3))
	f.Add(uint64(7), uint64(11), uint16(1000), uint16(0), uint16(50), uint8(1))
	f.Add(uint64(3), uint64(5), uint16(0), uint16(0), uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed, faultSeed uint64, transPM, stuckPM, metaPM uint16, maxRetries uint8) {
		// Per-mille rates keep the fuzzed probabilities inside [0, 1)
		// while still reaching aggressive fault densities.
		plan, err := faultinject.NewPlan(faultinject.Config{
			Seed:                faultSeed,
			TransientProb:       float64(transPM%1000) / 1000,
			StuckAtProb:         float64(stuckPM%1000) / 1000,
			MetadataProb:        float64(metaPM%1000) / 1000,
			MaxTransientRetries: int(maxRetries%16) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := endurance.Linear(8, 8, 5, 250).Shuffled(xrand.New(seed))
		res, err := Run(Config{
			Profile: p,
			Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
			Attack:  attack.NewUAA(),
			Faults:  plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed {
			t.Fatal("uncapped run ended without device failure")
		}
		if res.DeviceWrites < res.UserWrites {
			t.Fatalf("device writes %d < user writes %d", res.DeviceWrites, res.UserWrites)
		}
		if res.DeviceWrites < res.UserWrites+res.Faults.Retries {
			t.Fatalf("device writes %d do not cover user writes %d + retries %d",
				res.DeviceWrites, res.UserWrites, res.Faults.Retries)
		}
		pol := faultinject.DefaultRetryPolicy()
		if res.Faults.Retries > res.Faults.TransientFaults*int64(pol.MaxRetries) {
			t.Fatalf("retries %d exceed %d per transient fault",
				res.Faults.Retries, pol.MaxRetries)
		}
		if res.Faults.Escalations > res.Faults.TransientFaults {
			t.Fatalf("escalations %d exceed transient faults %d",
				res.Faults.Escalations, res.Faults.TransientFaults)
		}
		if res.Faults.MetadataRepairs != res.Faults.MetadataFaults {
			t.Fatalf("metadata repairs %d != faults %d",
				res.Faults.MetadataRepairs, res.Faults.MetadataFaults)
		}
	})
}
