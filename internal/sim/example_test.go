package sim_test

import (
	"fmt"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/sim"
	"maxwe/internal/spare"
)

// Run the uniform address attack against an unprotected device with 50x
// endurance variation: the lifetime collapses to the Equation 5 floor.
func ExampleRun() {
	p := endurance.Linear(64, 16, 100, 5000) // EL=100, EH=5000
	res, err := sim.Run(sim.Config{
		Profile: p,
		Scheme:  spare.NewNone(p.Lines()),
		Attack:  attack.NewUAA(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("failed: %v, lifetime: %.3f of ideal\n", res.Failed, res.NormalizedLifetime)
	// Output:
	// failed: true, lifetime: 0.039 of ideal
}

// Drive the stack from an external write source instead of a built-in
// attack.
func ExampleStepper() {
	p := endurance.Uniform(4, 4, 10)
	st, err := sim.NewStepper(sim.Config{
		Profile: p,
		Scheme:  spare.NewNone(p.Lines()),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	writes := 0
	for st.Write(writes % st.LogicalLines()) {
		writes++
	}
	fmt.Printf("served %d writes before failure\n", st.Result().UserWrites)
	// Output:
	// served 145 writes before failure
}
