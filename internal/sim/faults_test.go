package sim

import (
	"reflect"
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/endurance"
	"maxwe/internal/faultinject"
	"maxwe/internal/spare"
	"maxwe/internal/xrand"
)

func maxWEConfig(seed uint64) (Config, *endurance.Profile) {
	p := endurance.Linear(32, 8, 10, 500).Shuffled(xrand.New(seed))
	return Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		Attack:  attack.NewUAA(),
	}, p
}

func TestZeroFaultPlanIsBitIdentical(t *testing.T) {
	// A run with a disabled (all-zero) fault plan must produce the exact
	// Result of a run with no fault layer at all.
	base, _ := maxWEConfig(3)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPlan, _ := maxWEConfig(3)
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	withPlan.Faults = plan
	got, err := Run(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("zero fault plan changed the result:\nref %+v\ngot %+v", ref, got)
	}
	if got.Faults.Any() {
		t.Fatalf("zero fault plan injected faults: %+v", got.Faults)
	}
}

func TestFaultRunIsDeterministic(t *testing.T) {
	run := func() Result {
		cfg, _ := maxWEConfig(5)
		plan, err := faultinject.NewPlan(faultinject.Config{
			Seed: 17, TransientProb: 0.02, StuckAtProb: 0.001, MetadataProb: 0.001,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestTransientFaultsChargeRetries(t *testing.T) {
	cfg, _ := maxWEConfig(7)
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 1, TransientProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.MaxUserWrites = 20_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TransientFaults == 0 {
		t.Fatal("10% transient probability injected nothing over 20k writes")
	}
	if res.Faults.Retries < res.Faults.TransientFaults {
		t.Fatalf("retries %d < transient faults %d", res.Faults.Retries, res.Faults.TransientFaults)
	}
	// Every retry is a real device write on top of the user write.
	if res.DeviceWrites < res.UserWrites+res.Faults.Retries {
		t.Fatalf("device writes %d do not cover %d user writes + %d retries",
			res.DeviceWrites, res.UserWrites, res.Faults.Retries)
	}
	pol := faultinject.DefaultRetryPolicy()
	if res.Faults.Retries > res.Faults.TransientFaults*int64(pol.MaxRetries) {
		t.Fatalf("retries %d exceed policy bound %d per fault",
			res.Faults.Retries, pol.MaxRetries)
	}
	if res.Faults.BackoffUnits < res.Faults.Retries {
		t.Fatalf("backoff %d < retries %d with base 1", res.Faults.BackoffUnits, res.Faults.Retries)
	}
}

func TestStuckAtKillsLinesEarly(t *testing.T) {
	cfg, p := maxWEConfig(11)
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 2, StuckAtProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	res, dev, err := RunDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.StuckAtFaults == 0 {
		t.Fatal("1% stuck-at probability killed no lines")
	}
	// Stuck-at lines die with budget remaining, so the total wear spent
	// is strictly below what pure wear-out would need for this many worn
	// lines; spot-check that at least one worn line kept unspent budget.
	early := 0
	for l := 0; l < dev.Lines(); l++ {
		if dev.Worn(l) && dev.Writes(l) < p.LineEndurance(l) {
			early++
		}
	}
	if early == 0 {
		t.Fatal("no worn line retained unspent budget despite stuck-at faults")
	}
	// Early deaths consume the spare budget faster than clean wear-out:
	// the run must still fail cleanly with consistent accounting.
	if !res.Failed {
		t.Fatal("run with stuck-at faults did not fail")
	}
	if res.DeviceWrites < res.UserWrites {
		t.Fatalf("device writes %d < user writes %d", res.DeviceWrites, res.UserWrites)
	}
}

func TestMetadataFaultsDetectedAndRebuilt(t *testing.T) {
	cfg, _ := maxWEConfig(13)
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 4, MetadataProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.MetadataFaults == 0 {
		t.Fatal("1% metadata probability corrupted nothing (Max-WE boots with RMT pairs)")
	}
	if res.Faults.MetadataRepairs != res.Faults.MetadataFaults {
		t.Fatalf("repairs %d != faults %d: scrub missed corruption",
			res.Faults.MetadataRepairs, res.Faults.MetadataFaults)
	}
}

func TestMetadataFaultsIgnoredWithoutMetadata(t *testing.T) {
	// PS has no mapping tables; metadata events must be no-ops.
	p := endurance.Linear(16, 8, 10, 500).Shuffled(xrand.New(1))
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 4, MetadataProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Profile: p,
		Scheme:  spare.NewPS(p, 12, spare.PSWorst, nil),
		Attack:  attack.NewUAA(),
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.MetadataFaults != 0 || res.Faults.MetadataRepairs != 0 {
		t.Fatalf("metadata counters %+v nonzero for a scheme without metadata", res.Faults)
	}
}

func TestEscalationPromotesToPermanentFault(t *testing.T) {
	// Demand more retries than the policy allows on every write: every
	// transient fault escalates and the device burns spares quickly.
	cfg, _ := maxWEConfig(17)
	plan, err := faultinject.NewPlan(faultinject.Config{
		Seed: 6, TransientProb: 0.05, MaxTransientRetries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.Retry = faultinject.RetryPolicy{MaxRetries: 2, BackoffBase: 1, BackoffCap: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Escalations == 0 {
		t.Fatal("retry demands beyond the bound never escalated")
	}
	if res.Faults.Retries > res.Faults.TransientFaults*2 {
		t.Fatalf("retries %d exceed the tightened bound of 2 per fault", res.Faults.Retries)
	}
}

func TestDoneChannelInterruptsRun(t *testing.T) {
	cfg, _ := maxWEConfig(19)
	done := make(chan struct{})
	close(done)
	cfg.Done = done
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("closed Done channel did not interrupt the run")
	}
	if res.Failed {
		t.Fatal("interrupted run reported device failure")
	}
	if res.UserWrites != 0 {
		t.Fatalf("pre-closed Done served %d writes, want 0", res.UserWrites)
	}
	// A nil Done leaves the run uncancelable and uninterrupted.
	cfg.Done = nil
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || !res.Failed {
		t.Fatalf("uncancelable run: %+v", res)
	}
}

func TestStepperEnforcesMaxUserWrites(t *testing.T) {
	p := endurance.Uniform(4, 8, 1000)
	st, err := NewStepper(Config{
		Profile:       p,
		Scheme:        spare.NewNone(p.Lines()),
		MaxUserWrites: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for i := 0; i < 100; i++ {
		if st.Write(i % st.LogicalLines()) {
			served++
		}
	}
	if served != 10 {
		t.Fatalf("stepper served %d writes past a cap of 10", served)
	}
	res := st.Result()
	if res.UserWrites != 10 {
		t.Fatalf("result counts %d user writes, want 10", res.UserWrites)
	}
	if res.Failed {
		t.Fatal("capped stepper reported device failure")
	}
	if st.Failed() {
		t.Fatal("cap must not mark the device failed")
	}
}

func TestStepperWithFaultPlan(t *testing.T) {
	p := endurance.Linear(16, 8, 10, 500).Shuffled(xrand.New(2))
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 9, TransientProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(Config{
		Profile: p,
		Scheme:  spare.NewMaxWE(p, spare.DefaultMaxWEOptions()),
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; st.Write(i % st.LogicalLines()); i++ {
	}
	res := st.Result()
	if res.Faults.TransientFaults == 0 {
		t.Fatal("stepper with fault plan injected nothing over a full lifetime")
	}
	if res.DeviceWrites < res.UserWrites+res.Faults.Retries {
		t.Fatalf("device writes %d do not cover user writes %d + retries %d",
			res.DeviceWrites, res.UserWrites, res.Faults.Retries)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg, _ := maxWEConfig(1)
	plan, err := faultinject.NewPlan(faultinject.Config{Seed: 1, TransientProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.Retry = faultinject.RetryPolicy{MaxRetries: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid retry policy accepted")
	}
}
