// stepper.go provides the trace-driven counterpart of Run: instead of an
// Attack generating addresses internally, the caller feeds logical write
// addresses one at a time. This is how external workloads (file traces, a
// DRAM buffer's write-backs, a fuzzer) drive the simulated stack.
package sim

import "maxwe/internal/device"

// Stepper drives the device + leveler + scheme stack one user write at a
// time. Construct with NewStepper; the Config's Attack field is ignored —
// the caller controls the write stream. Config.MaxUserWrites is honored
// exactly as in Run: once the cap is reached, Write rejects further
// writes, so external drivers cannot overrun truncated experiments.
type Stepper struct {
	cfg        Config
	dev        *device.Device
	e          *engine
	userWrites int64
}

// NewStepper validates the configuration (Attack excepted) and assembles
// a fresh stack.
func NewStepper(cfg Config) (*Stepper, error) {
	check := cfg
	if check.Attack == nil {
		// Satisfy validation; the attack is never used.
		check.Attack = nopAttack{}
	}
	if err := check.validate(); err != nil {
		return nil, err
	}
	dev := device.New(cfg.Profile)
	return &Stepper{
		cfg: cfg,
		dev: dev,
		e:   newEngine(cfg, dev),
	}, nil
}

type nopAttack struct{}

func (nopAttack) Name() string   { return "external" }
func (nopAttack) Next(n int) int { return 0 }

// LogicalLines returns the current size of the logical address space the
// caller should draw addresses from (it shrinks under PCD).
func (s *Stepper) LogicalLines() int {
	if s.cfg.Leveler != nil {
		return s.cfg.Leveler.LogicalLines()
	}
	return s.cfg.Scheme.UserLines()
}

// Failed reports whether the device has failed; further writes are
// rejected.
func (s *Stepper) Failed() bool { return s.e.failed }

// Write performs one user write to logical line lla. It returns false
// once the device has failed (including when this very write triggered
// the unrecoverable wear-out — the write itself still counted, matching
// Run's accounting) or once Config.MaxUserWrites writes have been served.
func (s *Stepper) Write(lla int) bool {
	if s.e.failed {
		return false
	}
	if s.cfg.MaxUserWrites > 0 && s.userWrites >= s.cfg.MaxUserWrites {
		return false
	}
	if s.cfg.Leveler == nil {
		n := s.cfg.Scheme.UserLines()
		if n == 0 {
			s.e.failed = true
			return false
		}
		ok := s.e.WriteSlot(lla % n)
		s.userWrites++
		return ok
	}
	lla %= s.cfg.Leveler.LogicalLines()
	u := s.cfg.Leveler.Translate(lla)
	ok := s.e.WriteSlot(u)
	s.userWrites++
	if !ok {
		return false
	}
	return s.cfg.Leveler.OnWrite(lla, s.e)
}

// Result summarizes the writes served so far (callable at any point).
func (s *Stepper) Result() Result {
	return buildResult(s.cfg, s.dev, s.userWrites, s.e, false)
}

// Device exposes the underlying device for wear inspection.
func (s *Stepper) Device() *device.Device { return s.dev }
