// Package sim is the NVMsim reproduction: the discrete lifetime simulator
// the paper evaluates with (Section 5.1). It couples an attack's logical
// write stream, a wear-leveling substrate, a spare-line replacement scheme
// and the physical device, and measures how many user writes the stack
// serves before the device fails.
//
// The primary engine simulates every write. Because lifetime is reported
// normalized (user writes / Σ line endurance) it is scale-invariant, so
// experiments run on scaled-down profiles (tens of thousands of lines,
// thousands of writes per line) that the per-write engine handles in
// milliseconds to seconds.
//
// For the Uniform Address Attack with no wear leveling the package also
// provides an O(E log N) event-driven fast path (RunUAAFast) that
// processes only wear-out events; tests cross-validate it against the
// per-write engine.
package sim

import (
	"errors"
	"fmt"

	"maxwe/internal/attack"
	"maxwe/internal/device"
	"maxwe/internal/endurance"
	"maxwe/internal/faultinject"
	"maxwe/internal/spare"
	"maxwe/internal/wearlevel"
)

// EngineSchemaVersion versions the observable semantics of the
// simulation engine — the mapping from a configuration to its bit-exact
// result. It is baked into every content-addressed cache key
// (internal/memo), so bump it whenever a change alters any computed
// result (engine algorithms, scheme or leveler behavior, RNG streams,
// result fields): stale entries then miss instead of being served.
// Pure refactors that keep results bit-identical — the norm in this
// repository, enforced by the cross-validation tests — do not bump it.
const EngineSchemaVersion = 1

// Config assembles one simulation run. Profile, Scheme and Attack are
// mandatory. Leveler is optional: nil means no wear leveling, with the
// attack addressing the scheme's (possibly shrinking) user space directly —
// the only mode that supports the PCD scheme, whose capacity changes over
// time.
type Config struct {
	Profile *endurance.Profile
	Scheme  spare.Scheme
	Leveler wearlevel.Leveler
	Attack  attack.Attack

	// MaxUserWrites caps the run (0 = no cap). The engine terminates
	// regardless because every user write consumes at least one unit of
	// finite device budget; the cap exists for truncated experiments.
	MaxUserWrites int64

	// Faults, when non-nil and enabled, injects the configured fault plan
	// into every physical write (see internal/faultinject and faults.go).
	// A nil or all-zero plan is a strict no-op: the engine takes the
	// exact pre-fault write path.
	Faults *faultinject.Plan
	// Retry bounds the engine's response to transient write failures.
	// The zero value selects faultinject.DefaultRetryPolicy. Ignored
	// unless Faults is enabled.
	Retry faultinject.RetryPolicy

	// Done, when non-nil, makes the run cancelable: the engine polls the
	// channel every 1024 user writes and stops early once it is closed,
	// returning the partial result with Interrupted set. Leave nil for
	// the uncancelable (and marginally faster) loop.
	Done <-chan struct{}
}

// Result reports one lifetime measurement. Results are checkpointed and
// fingerprinted as JSON by the runner and nvmd, so every field pins its
// wire name explicitly (the maxwelint jsonschema rule enforces this).
type Result struct {
	// UserWrites is the number of user writes served before failure.
	UserWrites int64 `json:"UserWrites"`
	// DeviceWrites counts all physical writes, including wear-leveling
	// movement and replacement redirections.
	DeviceWrites int64 `json:"DeviceWrites"`
	// NormalizedLifetime is UserWrites / Σ line endurance — the paper's
	// lifetime metric.
	NormalizedLifetime float64 `json:"NormalizedLifetime"`
	// WriteAmplification is DeviceWrites / UserWrites (1.0 when no
	// leveler runs).
	WriteAmplification float64 `json:"WriteAmplification"`
	// WornLines is how many physical lines wore out.
	WornLines int `json:"WornLines"`
	// SparesUsed is how many spare allocations the scheme performed.
	SparesUsed int `json:"SparesUsed"`
	// Failed is true when the device actually failed; false when the run
	// stopped at MaxUserWrites.
	Failed bool `json:"Failed"`
	// Interrupted is true when the run was canceled through Config.Done
	// before failing or reaching MaxUserWrites.
	Interrupted bool `json:"Interrupted"`
	// Faults counts injected faults per class (all zero when no fault
	// plan ran).
	Faults faultinject.Counters `json:"Faults"`
}

var (
	errNilProfile = errors.New("sim: Config.Profile is nil")
	errNilScheme  = errors.New("sim: Config.Scheme is nil")
	errNilAttack  = errors.New("sim: Config.Attack is nil")
)

func (c Config) validate() error {
	if c.Profile == nil {
		return errNilProfile
	}
	if c.Scheme == nil {
		return errNilScheme
	}
	if c.Attack == nil {
		return errNilAttack
	}
	if c.Leveler != nil {
		if _, pcd := c.Scheme.(*spare.PCDScheme); pcd {
			return errors.New("sim: PCD's shrinking capacity requires Leveler == nil")
		}
		if c.Leveler.LogicalLines() > c.Scheme.UserLines() {
			return fmt.Errorf("sim: leveler logical space %d exceeds scheme user space %d",
				c.Leveler.LogicalLines(), c.Scheme.UserLines())
		}
	}
	if c.MaxUserWrites < 0 {
		return errors.New("sim: MaxUserWrites must be >= 0")
	}
	if c.Faults.Enabled() && c.Retry != (faultinject.RetryPolicy{}) {
		if err := c.Retry.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// engine wires the device and scheme together; it implements
// wearlevel.Mover so relocation traffic flows through the same wear-out
// handling as user traffic.
type engine struct {
	dev    *device.Device
	scheme spare.Scheme
	failed bool

	// rebinds counts OnWearOut invocations made through the engine. Loops
	// that hoist scheme state which is only invalidated by a replacement
	// (user capacity, slot→line bindings) compare it against a snapshot to
	// refresh exactly across wear-outs instead of per write.
	rebinds int64

	// Fault layer (nil faults = the exact pre-fault write path; see
	// faults.go).
	faults *faultinject.Plan
	retry  faultinject.RetryPolicy
	ctr    faultinject.Counters
}

var _ wearlevel.Mover = (*engine)(nil)

// newEngine assembles the write engine, arming the fault layer only when
// the config carries an enabled plan.
func newEngine(cfg Config, dev *device.Device) *engine {
	e := &engine{dev: dev, scheme: cfg.Scheme}
	if cfg.Faults.Enabled() {
		e.faults = cfg.Faults
		e.retry = cfg.Retry
		if e.retry == (faultinject.RetryPolicy{}) {
			e.retry = faultinject.DefaultRetryPolicy()
		}
	}
	return e
}

// WriteSlot performs one physical write backing user slot u. On a wear-out
// transition it runs the scheme's replacement procedure; if the scheme is
// out of spares the device has failed and WriteSlot returns false.
func (e *engine) WriteSlot(u int) bool {
	if e.faults != nil {
		return e.writeSlotFaulty(u)
	}
	line := e.scheme.Access(u)
	if e.dev.Write(line) {
		e.rebinds++
		if !e.scheme.OnWearOut(u) {
			e.failed = true
			return false
		}
	}
	return true
}

// Run executes the configured simulation until device failure or the
// user-write cap.
func Run(cfg Config) (Result, error) {
	res, _, err := RunDetailed(cfg)
	return res, err
}

// RunDetailed is Run plus the simulated device in its final wear state,
// for analyses that need per-line wear (histograms, spread metrics).
func RunDetailed(cfg Config) (Result, *device.Device, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, nil, err
	}
	dev := device.New(cfg.Profile)
	e := newEngine(cfg, dev)

	var userWrites int64
	var interrupted bool
	switch {
	case cfg.Faults.Enabled():
		// Metadata faults can corrupt slot→line bindings behind the
		// scheme's back, so fault runs stay on the uncached general loop.
		userWrites, interrupted = runGeneral(cfg, e)
	case cfg.Leveler == nil:
		_, pcd := cfg.Scheme.(*spare.PCDScheme)
		ca, cyclic := cfg.Attack.(attack.CyclicAttack)
		ba, batch := cfg.Attack.(attack.BatchAttack)
		switch {
		case cyclic && cfg.Done == nil:
			// Periodic state-neutral streams: skip whole quiescent periods
			// analytically (fastforward.go). Handles PCD's shrinking space
			// by re-deriving the cycle after every wear-out. Excluded when
			// Done is set so the 1024-write cancellation polls land at the
			// exact same write indexes as the per-write loops.
			userWrites, interrupted = runCyclic(cfg, dev, e, ca)
		case batch && !pcd:
			// Capacity-stable schemes: epoch-batched struct-of-arrays loop
			// with cached bindings and amortized wear-out checks (batch.go).
			userWrites, interrupted = runBatchedDirect(cfg, dev, e, ba)
		default:
			userWrites, interrupted = runDirect(cfg, dev, e)
		}
	default:
		if ba, ok := cfg.Attack.(attack.BatchAttack); ok {
			userWrites, interrupted = runBatchedLeveled(cfg, dev, e, ba)
		} else {
			userWrites, interrupted = runGeneral(cfg, e)
		}
	}
	return buildResult(cfg, dev, userWrites, e, interrupted), dev, nil
}

// runDirect is the no-leveler, no-fault inner loop — the hot path of every
// unleveled sweep. The per-write engine indirection is removed: the scheme
// lookup, device write and wear-out hook run inline, and the user capacity
// is hoisted into a local. Capacity is loop-invariant except across a
// wear-out (only PCD shrinks, and only inside OnWearOut), so it is
// refreshed exactly there instead of being an interface call per write.
func runDirect(cfg Config, dev *device.Device, e *engine) (userWrites int64, interrupted bool) {
	scheme := e.scheme
	att := cfg.Attack
	maxWrites := cfg.MaxUserWrites
	done := cfg.Done
	userLines := scheme.UserLines()
	for {
		if maxWrites > 0 && userWrites >= maxWrites {
			return userWrites, false
		}
		if done != nil && userWrites&1023 == 0 {
			select {
			case <-done:
				return userWrites, true
			default:
			}
		}
		if userLines == 0 {
			e.failed = true
			return userWrites, false
		}
		// The write that exhausts a line's budget still completes (the
		// replacement procedure runs afterwards), so it counts as served
		// even when the device fails to recover from it.
		u := att.Next(userLines)
		userWrites++
		if dev.Write(scheme.Access(u)) {
			if !scheme.OnWearOut(u) {
				e.failed = true
				return userWrites, false
			}
			userLines = scheme.UserLines()
		}
	}
}

// runGeneral handles the leveled and fault-injecting configurations, where
// writes must flow through engine.WriteSlot (and relocation traffic through
// the Mover interface). The logical address space never changes size, so it
// is hoisted out of the loop. The unleveled user capacity is also hoisted:
// as in runDirect, it can only change inside a wear-out replacement (PCD's
// shrink, or a fault-path rebind), so it is refreshed exactly when the
// engine's rebind counter moves instead of being two interface calls per
// write.
func runGeneral(cfg Config, e *engine) (userWrites int64, interrupted bool) {
	logicalLines := 0
	if cfg.Leveler != nil {
		logicalLines = cfg.Leveler.LogicalLines()
	}
	userLines := cfg.Scheme.UserLines()
	rebinds := e.rebinds
	for {
		if cfg.MaxUserWrites > 0 && userWrites >= cfg.MaxUserWrites {
			return userWrites, false
		}
		if cfg.Done != nil && userWrites&1023 == 0 {
			select {
			case <-cfg.Done:
				return userWrites, true
			default:
			}
		}
		// See runDirect: the exhausting write still counts as served.
		if cfg.Leveler == nil {
			if userLines == 0 {
				e.failed = true
				return userWrites, false
			}
			u := cfg.Attack.Next(userLines)
			ok := e.WriteSlot(u)
			userWrites++
			if !ok {
				return userWrites, false
			}
			if e.rebinds != rebinds {
				rebinds = e.rebinds
				userLines = cfg.Scheme.UserLines()
			}
			continue
		}
		lla := cfg.Attack.Next(logicalLines)
		u := cfg.Leveler.Translate(lla)
		ok := e.WriteSlot(u)
		userWrites++
		if !ok {
			return userWrites, false
		}
		if !cfg.Leveler.OnWrite(lla, e) {
			return userWrites, false
		}
	}
}

func buildResult(cfg Config, dev *device.Device, userWrites int64, e *engine, interrupted bool) Result {
	r := Result{
		UserWrites:         userWrites,
		DeviceWrites:       dev.TotalWrites(),
		NormalizedLifetime: float64(userWrites) / cfg.Profile.Sum(),
		WornLines:          dev.WornCount(),
		SparesUsed:         cfg.Scheme.SpareLinesUsed(),
		Failed:             e.failed,
		Interrupted:        interrupted,
		Faults:             e.ctr,
	}
	if userWrites > 0 {
		r.WriteAmplification = float64(dev.TotalWrites()) / float64(userWrites)
	}
	return r
}

// ---------------------------------------------------------------------------
// Event-driven fast path for UAA

// slotEvent is a pending wear-out: the line backing a slot dies at the end
// of round deathRound (rounds are full UAA sweeps over the user space).
type slotEvent struct {
	deathRound int64
	line       int
}

// eventHeap is a hand-rolled binary min-heap of slotEvents keyed on
// deathRound, replacing the earlier container/heap implementation whose
// Push/Pop boxed every event in an interface{} allocation. The sift-up and
// sift-down loops mirror container/heap's algorithm exactly — including
// which of two equal-keyed events pops first, an order the schemes' state
// (and therefore Result) depends on.
type eventHeap []slotEvent

func (h *eventHeap) push(ev slotEvent) {
	s := append(*h, ev)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s[i].deathRound <= s[j].deathRound {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *eventHeap) pop() slotEvent {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].deathRound < s[j].deathRound {
			j = j2
		}
		if s[i].deathRound <= s[j].deathRound {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	ev := s[n]
	*h = s[:n]
	return ev
}

// RunUAAFast computes the UAA lifetime (no wear leveling) by processing
// wear-out events instead of individual writes: under UAA every in-service
// line receives exactly one write per round, so the line backing a slot
// dies a fixed number of rounds after it enters service. The result's
// UserWrites counts whole rounds (each round = current user capacity
// writes), which differs from the per-write engine by less than one round.
//
// The scheme must be freshly constructed; it is consumed by the run.
func RunUAAFast(p *endurance.Profile, scheme spare.Scheme) (Result, error) {
	if p == nil {
		return Result{}, errNilProfile
	}
	if scheme == nil {
		return Result{}, errNilScheme
	}

	// Dense slices replace the earlier map-based reverse maps: line ids are
	// bounded by the profile, so lineSlot[line] (-1 = out of service) and
	// worn[line] give allocation-free O(1) lookups in the event loop.
	userLines := scheme.UserLines()
	_, isPCD := scheme.(*spare.PCDScheme)
	h := make(eventHeap, 0, userLines+1)
	lineSlot := make([]int, p.Lines())
	for i := range lineSlot {
		lineSlot[i] = -1
	}
	worn := make([]bool, p.Lines())
	for u := 0; u < userLines; u++ {
		line := scheme.Access(u)
		lineSlot[line] = u
		h.push(slotEvent{deathRound: p.LineEndurance(line), line: line})
	}

	var userWrites int64
	var lastRound int64
	failed := false
	wornLines := 0
	for len(h) > 0 {
		ev := h.pop()
		if worn[ev.line] {
			continue
		}
		u := lineSlot[ev.line]
		if u < 0 { // not in service
			continue
		}
		// Advance time: every round writes every in-service line once.
		userWrites += (ev.deathRound - lastRound) * int64(userLines)
		lastRound = ev.deathRound
		worn[ev.line] = true
		wornLines++
		lineSlot[ev.line] = -1

		if !scheme.OnWearOut(u) {
			failed = true
			break
		}
		if isPCD {
			// PCD moved the former last slot's line into u and shrank; the
			// reverse map entry for that line must follow it. When u itself
			// was the last slot it simply fell off the end of the shrunk
			// space and no binding moved.
			userLines = scheme.UserLines()
			if u < userLines {
				lineSlot[scheme.Access(u)] = u
			}
			// Bindings of the other surviving slots are untouched, so no
			// further reverse-map maintenance is needed.
			continue
		}
		newLine := scheme.Access(u)
		lineSlot[newLine] = u
		h.push(slotEvent{
			deathRound: lastRound + p.LineEndurance(newLine),
			line:       newLine,
		})
	}

	res := Result{
		UserWrites:         userWrites,
		DeviceWrites:       userWrites,
		NormalizedLifetime: float64(userWrites) / p.Sum(),
		WriteAmplification: 1,
		WornLines:          wornLines,
		SparesUsed:         scheme.SpareLinesUsed(),
		Failed:             failed,
	}
	return res, nil
}
