// Package perfmodel estimates the access-latency cost of the simulated
// memory stack. The paper stores RMT and LMT in SRAM precisely to keep
// the address-translation path fast (Section 4.1); this model quantifies
// that argument: every user write pays the NVM program latency, a
// translation cost that depends on the mapping organization, and its
// share of the wear-leveling movement traffic.
//
// The numbers are first-order architectural estimates (fixed per-step
// latencies, no queuing), which is the granularity the comparison needs:
// hybrid-vs-flat mapping differs in SRAM macro size, and wear-leveling
// differs in movement stalls.
package perfmodel

import (
	"fmt"
	"math"
)

// Params are the technology constants of the model. Defaults follow the
// common PCM-era architectural literature.
type Params struct {
	// NVMWriteNs is the cell program latency per line write.
	NVMWriteNs float64
	// SRAMLookupNsPerMB scales lookup latency with the table macro size:
	// bigger SRAM macros are slower. Lookup cost is
	// BaseLookupNs + SRAMLookupNsPerMB * tableMB.
	SRAMLookupNsPerMB float64
	// BaseLookupNs is the floor cost of any table lookup.
	BaseLookupNs float64
}

// DefaultParams returns PCM-era constants: 150 ns writes, 1 ns lookup
// floor, +2 ns per MB of SRAM macro.
func DefaultParams() Params {
	return Params{
		NVMWriteNs:        150,
		SRAMLookupNsPerMB: 2,
		BaseLookupNs:      1,
	}
}

func (p Params) validate() error {
	if p.NVMWriteNs <= 0 || p.BaseLookupNs < 0 || p.SRAMLookupNsPerMB < 0 {
		return fmt.Errorf("perfmodel: invalid params %+v", p)
	}
	return nil
}

// Inputs describe one configuration's measured behaviour plus its
// mapping-table sizes.
type Inputs struct {
	// UserWrites and DeviceWrites come from the simulation result; their
	// ratio is the write amplification whose movement share stalls user
	// writes.
	UserWrites   int64
	DeviceWrites int64
	// TableMB is the total mapping-table SRAM (hybrid or flat).
	TableMB float64
	// LookupsPerAccess is how many table lookups one access performs
	// (the hybrid path checks LMT then RMT: 2; a flat table: 1).
	LookupsPerAccess int
}

func (in Inputs) validate() error {
	switch {
	case in.UserWrites <= 0:
		return fmt.Errorf("perfmodel: UserWrites %d must be positive", in.UserWrites)
	case in.DeviceWrites < in.UserWrites:
		return fmt.Errorf("perfmodel: DeviceWrites %d below UserWrites %d", in.DeviceWrites, in.UserWrites)
	case in.TableMB < 0:
		return fmt.Errorf("perfmodel: negative TableMB")
	case in.LookupsPerAccess < 0:
		return fmt.Errorf("perfmodel: negative LookupsPerAccess")
	}
	return nil
}

// Estimate is the model output.
type Estimate struct {
	// TranslationNs is the table-lookup cost per user write.
	TranslationNs float64
	// MovementNs is the amortized wear-leveling/replacement movement
	// stall per user write.
	MovementNs float64
	// TotalNsPerWrite is NVM write + translation + movement.
	TotalNsPerWrite float64
	// Overhead is TotalNsPerWrite / NVMWriteNs - 1: the fractional
	// latency cost of the protection stack.
	Overhead float64
}

// Projection scales a scaled-simulation result back to a physical device
// and converts it to wall-clock time — the paper's "an NVM device will
// fail within seconds without protection" framing.
type Projection struct {
	// WritesToFailure is the projected user-write count on the physical
	// device.
	WritesToFailure float64
	// Seconds is the wall-clock time to failure at the given write rate.
	Seconds float64
}

// Project converts a normalized lifetime (user writes / Σ endurance) to a
// physical device with `lines` lines of `meanEndurance` average budget,
// attacked or used at writesPerSecond line-writes per second.
func Project(normalizedLifetime float64, lines int64, meanEndurance, writesPerSecond float64) (Projection, error) {
	switch {
	case normalizedLifetime < 0 || normalizedLifetime > 1:
		return Projection{}, fmt.Errorf("perfmodel: normalized lifetime %v outside [0,1]", normalizedLifetime)
	case lines <= 0:
		return Projection{}, fmt.Errorf("perfmodel: lines %d must be positive", lines)
	case meanEndurance <= 0:
		return Projection{}, fmt.Errorf("perfmodel: meanEndurance %v must be positive", meanEndurance)
	case writesPerSecond <= 0:
		return Projection{}, fmt.Errorf("perfmodel: writesPerSecond %v must be positive", writesPerSecond)
	}
	writes := normalizedLifetime * float64(lines) * meanEndurance
	return Projection{
		WritesToFailure: writes,
		Seconds:         writes / writesPerSecond,
	}, nil
}

// FormatDuration renders seconds humanely across the enormous range the
// projections span (seconds to centuries).
func FormatDuration(seconds float64) string {
	switch {
	case seconds < 120:
		return fmt.Sprintf("%.1f seconds", seconds)
	case seconds < 2*3600:
		return fmt.Sprintf("%.1f minutes", seconds/60)
	case seconds < 2*86400:
		return fmt.Sprintf("%.1f hours", seconds/3600)
	case seconds < 2*365.25*86400:
		return fmt.Sprintf("%.1f days", seconds/86400)
	default:
		return fmt.Sprintf("%.1f years", seconds/(365.25*86400))
	}
}

// Evaluate runs the model.
func Evaluate(p Params, in Inputs) (Estimate, error) {
	if err := p.validate(); err != nil {
		return Estimate{}, err
	}
	if err := in.validate(); err != nil {
		return Estimate{}, err
	}
	lookup := p.BaseLookupNs + p.SRAMLookupNsPerMB*in.TableMB
	translation := float64(in.LookupsPerAccess) * lookup
	amplification := float64(in.DeviceWrites) / float64(in.UserWrites)
	movement := (amplification - 1) * p.NVMWriteNs
	total := p.NVMWriteNs + translation + movement
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return Estimate{}, fmt.Errorf("perfmodel: degenerate inputs %+v", in)
	}
	return Estimate{
		TranslationNs:   translation,
		MovementNs:      movement,
		TotalNsPerWrite: total,
		Overhead:        total/p.NVMWriteNs - 1,
	}, nil
}
