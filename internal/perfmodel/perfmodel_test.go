package perfmodel

import (
	"math"
	"testing"
)

func TestEvaluateComposition(t *testing.T) {
	p := DefaultParams()
	in := Inputs{
		UserWrites:       1000,
		DeviceWrites:     1100, // amplification 1.1
		TableMB:          0.155,
		LookupsPerAccess: 2,
	}
	e, err := Evaluate(p, in)
	if err != nil {
		t.Fatal(err)
	}
	wantLookup := 2 * (1 + 2*0.155)
	if math.Abs(e.TranslationNs-wantLookup) > 1e-9 {
		t.Fatalf("translation = %v, want %v", e.TranslationNs, wantLookup)
	}
	wantMove := 0.1 * 150
	if math.Abs(e.MovementNs-wantMove) > 1e-9 {
		t.Fatalf("movement = %v, want %v", e.MovementNs, wantMove)
	}
	if math.Abs(e.TotalNsPerWrite-(150+wantLookup+wantMove)) > 1e-9 {
		t.Fatal("total does not compose")
	}
	if e.Overhead <= 0 {
		t.Fatal("protection stack reported free")
	}
}

func TestNoAmplificationNoMovement(t *testing.T) {
	e, err := Evaluate(DefaultParams(), Inputs{
		UserWrites: 10, DeviceWrites: 10, TableMB: 0, LookupsPerAccess: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.MovementNs != 0 || e.TranslationNs != 0 {
		t.Fatalf("bare device has overheads: %+v", e)
	}
	if e.Overhead != 0 {
		t.Fatalf("overhead = %v, want 0", e.Overhead)
	}
}

func TestHybridCheaperThanFlatTable(t *testing.T) {
	// The paper's §4.1 argument quantified: the hybrid table (0.155 MB,
	// 2 lookups) translates faster than the flat table (1.1 MB, 1
	// lookup) once SRAM size dominates lookup latency.
	p := DefaultParams()
	hybrid, err := Evaluate(p, Inputs{UserWrites: 1, DeviceWrites: 1,
		TableMB: 0.155, LookupsPerAccess: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Evaluate(p, Inputs{UserWrites: 1, DeviceWrites: 1,
		TableMB: 1.1, LookupsPerAccess: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.TranslationNs >= flat.TranslationNs {
		t.Fatalf("hybrid translation %v not below flat %v",
			hybrid.TranslationNs, flat.TranslationNs)
	}
}

func TestProjectScales(t *testing.T) {
	// 4Mi lines x 1e8 endurance at 1e8 writes/s (PCM-scale bandwidth):
	// the unprotected 4% lifetime lasts days; Max-WE's 37% lasts months.
	p, err := Project(0.04, 1<<22, 1e8, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	wantWrites := 0.04 * float64(int64(1)<<22) * 1e8
	if math.Abs(p.WritesToFailure-wantWrites)/wantWrites > 1e-12 {
		t.Fatalf("writes = %v, want %v", p.WritesToFailure, wantWrites)
	}
	if math.Abs(p.Seconds-wantWrites/1e8)/p.Seconds > 1e-12 {
		t.Fatal("seconds inconsistent with rate")
	}
	// Ten times the lifetime, ten times the time.
	p10, err := Project(0.4, 1<<22, 1e8, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p10.Seconds/p.Seconds-10) > 1e-9 {
		t.Fatal("projection not linear in lifetime")
	}
}

func TestProjectValidation(t *testing.T) {
	cases := []struct {
		nl, e, w float64
		lines    int64
	}{
		{-0.1, 1, 1, 1},
		{1.1, 1, 1, 1},
		{0.5, 0, 1, 1},
		{0.5, 1, 0, 1},
		{0.5, 1, 1, 0},
	}
	for i, c := range cases {
		if _, err := Project(c.nl, c.lines, c.e, c.w); err == nil {
			t.Fatalf("bad projection %d accepted", i)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{30, "30.0 seconds"},
		{300, "5.0 minutes"},
		{7200, "2.0 hours"},
		{86400 * 3, "3.0 days"},
		{365.25 * 86400 * 2, "2.0 years"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.s); got != c.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestValidation(t *testing.T) {
	good := Inputs{UserWrites: 1, DeviceWrites: 1, TableMB: 0, LookupsPerAccess: 1}
	if _, err := Evaluate(DefaultParams(), good); err != nil {
		t.Fatal(err)
	}
	badParams := []Params{
		{NVMWriteNs: 0, BaseLookupNs: 1, SRAMLookupNsPerMB: 1},
		{NVMWriteNs: 100, BaseLookupNs: -1, SRAMLookupNsPerMB: 1},
		{NVMWriteNs: 100, BaseLookupNs: 1, SRAMLookupNsPerMB: -1},
	}
	for i, p := range badParams {
		if _, err := Evaluate(p, good); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	badInputs := []Inputs{
		{UserWrites: 0, DeviceWrites: 1},
		{UserWrites: 2, DeviceWrites: 1},
		{UserWrites: 1, DeviceWrites: 1, TableMB: -1},
		{UserWrites: 1, DeviceWrites: 1, LookupsPerAccess: -1},
	}
	for i, in := range badInputs {
		if _, err := Evaluate(DefaultParams(), in); err == nil {
			t.Fatalf("bad inputs %d accepted", i)
		}
	}
}
