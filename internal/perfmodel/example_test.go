package perfmodel_test

import (
	"fmt"

	"maxwe/internal/perfmodel"
)

// Project a normalized simulation result onto a physical 1 GB PCM module
// under a saturating attacker — the paper's wall-clock framing of why the
// 4% baseline is catastrophic and the 37% defense is livable.
func ExampleProject() {
	const lines = 1 << 22 // 1 GiB / 256 B
	const enduranceMean = 1e8
	const attackRate = 1e8 // line-writes per second

	unprotected, _ := perfmodel.Project(0.04, lines, enduranceMean, attackRate)
	protected, _ := perfmodel.Project(0.37, lines, enduranceMean, attackRate)
	fmt.Println("unprotected:", perfmodel.FormatDuration(unprotected.Seconds))
	fmt.Println("max-we:     ", perfmodel.FormatDuration(protected.Seconds))
	// Output:
	// unprotected: 46.6 hours
	// max-we:      18.0 days
}
