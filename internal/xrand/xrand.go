// Package xrand provides the deterministic random-number substrate used by
// every stochastic component of the simulator (endurance sampling, attack
// address streams, wear-leveling randomization).
//
// The simulator needs reproducible runs: the same seed must yield the same
// endurance profile, the same attack stream and the same remapping
// decisions, on every platform and independently of math/rand's global
// state or Go-version-dependent algorithm changes. xrand therefore
// implements its own generators:
//
//   - splitmix64 for seeding and cheap stateless hashing, and
//   - xoshiro256** as the general-purpose stream generator,
//
// plus the handful of distributions the models need (uniform integers
// without modulo bias, normal via Box-Muller, Zipf, permutations).
package xrand

import "math"

// splitmix64 advances a 64-bit state and returns the next output of the
// SplitMix64 sequence. It is used to expand a single user seed into the
// four xoshiro words and for one-shot hashing.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 deterministically mixes x into a well-distributed 64-bit value.
// It is the stateless companion of Source, used where a keyed hash is
// needed (for example the security-refresh address scrambler).
func Hash64(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

// Source is a seedable xoshiro256** PRNG. The zero value is not valid;
// construct one with New.
type Source struct {
	s [4]uint64

	// spare normal deviate from Box-Muller (one of each pair is cached).
	hasSpare bool
	spare    float64
}

// New returns a Source seeded from seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator to the state derived from seed, discarding
// any cached normal deviate.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed is
	// nonzero with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
	r.spare = 0
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire rejection sampling: multiply 64x64 -> 128 and use the high
	// word, rejecting the small biased region of the low word.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			// Fast path: -n % n == (2^64 - n) % n, the bias threshold.
			return hi
		}
	}
}

// mul64 computes the 128-bit product of a and b without math/bits so the
// package stays dependency-free beyond math (bits is also stdlib; this is
// explicit for clarity of the bias argument).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal deviate (mean 0, stddev 1) using
// the Box-Muller transform. One deviate of each generated pair is cached.
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// produced by an inside-out Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap uniformly at random.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1 is
// not required; this implementation supports any s > 0 (s == 1 gives the
// classic harmonic law) via inverse-CDF on a precomputed table. Use
// NewZipf to amortize the table across draws.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s.
// Probability of rank k is proportional to 1/(k+1)^s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a rank in [0, N()) using randomness from src.
func (z *Zipf) Draw(src *Source) int {
	u := src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChooser samples indices proportionally to a fixed non-negative
// weight vector. It is used by the endurance-aware wear-leveling models
// (BWL, WAWL) to direct traffic toward strong regions.
type WeightedChooser struct {
	cdf []float64
}

// NewWeightedChooser builds a sampler over len(weights) indices. Weights
// must be non-negative and not all zero; it panics otherwise.
func NewWeightedChooser(weights []float64) *WeightedChooser {
	if len(weights) == 0 {
		panic("xrand: NewWeightedChooser with empty weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewWeightedChooser with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: NewWeightedChooser with all-zero weights")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &WeightedChooser{cdf: cdf}
}

// N returns the number of choices.
func (w *WeightedChooser) N() int { return len(w.cdf) }

// Draw samples an index with probability proportional to its weight.
func (w *WeightedChooser) Draw(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
