package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReseedDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	a.Reseed(42)
	c := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("reseeded stream diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero xoshiro state")
	}
	_ = r.Uint64()
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

// TestIntnUniform checks a coarse chi-squared-style bound on small-n
// uniformity: with 8 buckets and 80k draws each bucket expects 10k; allow
// 5% relative deviation (far beyond ~3.3 sigma).
func TestIntnUniform(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.05*draws/n {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", b, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 256} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	seen := map[int]bool{}
	for _, v := range s {
		got += v
		seen[v] = true
	}
	if got != sum || len(seen) != len(s) {
		t.Fatalf("shuffle corrupted slice: %v", s)
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64(1) == Hash64(2): suspicious collision")
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(21)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := New(8)
	var first10, rest int
	for i := 0; i < 50000; i++ {
		k := z.Draw(r)
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		if k < 10 {
			first10++
		} else {
			rest++
		}
	}
	if first10 <= rest {
		t.Fatalf("Zipf(s=1) not skewed: first10=%d rest=%d", first10, rest)
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	z := NewZipf(4, 0)
	r := New(9)
	var counts [4]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/4) > 0.06*draws/4 {
			t.Fatalf("Zipf(s=0) bucket %d count %d not uniform", b, c)
		}
	}
}

func TestWeightedChooserProportions(t *testing.T) {
	w := NewWeightedChooser([]float64{1, 0, 3})
	r := New(10)
	var counts [3]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[w.Draw(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio 3 sampled as %v", ratio)
	}
}

func TestWeightedChooserPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeightedChooser(%v) did not panic", c)
				}
			}()
			NewWeightedChooser(c)
		}()
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(2048)
	}
}
