package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

type row struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

func sweep(n int) []Cell[row] {
	cells := make([]Cell[row], n)
	for i := 0; i < n; i++ {
		key := string(rune('a' + i))
		v := float64(i) * 1.5
		cells[i] = Cell[row]{Key: key, Run: func(ctx context.Context) (row, error) {
			return row{Key: key, Value: v}, nil
		}}
	}
	return cells
}

func TestRunCollectsAllCells(t *testing.T) {
	rep, err := Run(context.Background(), Config{}, sweep(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 || len(rep.Failed) != 0 || rep.Resumed != 0 || rep.Interrupted {
		t.Fatalf("report %+v", rep)
	}
	if got := rep.Results["c"]; got.Value != 3 {
		t.Fatalf("cell c = %+v", got)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Retries: -1}, sweep(1)); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := Run(ctx, Config{CellTimeout: -time.Second}, sweep(1)); err == nil {
		t.Fatal("negative timeout accepted")
	}
	if _, err := Run(ctx, Config{CheckpointPath: "x.json"}, sweep(1)); err == nil {
		t.Fatal("checkpoint without fingerprint accepted")
	}
	dup := []Cell[row]{{Key: "a", Run: nil}, {Key: "a", Run: nil}}
	if _, err := Run(ctx, Config{}, dup); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := Run(ctx, Config{}, []Cell[row]{{Key: ""}}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestFailedCellDoesNotAbortSweep(t *testing.T) {
	cells := sweep(3)
	cells[1].Run = func(ctx context.Context) (row, error) {
		return row{}, errors.New("boom")
	}
	rep, err := Run(context.Background(), Config{}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results %+v", rep.Results)
	}
	if rep.Failed["b"] != "boom" {
		t.Fatalf("failed %+v", rep.Failed)
	}
}

func TestBoundedRetrySucceedsDeterministically(t *testing.T) {
	attempts := 0
	cells := []Cell[row]{{Key: "flaky", Run: func(ctx context.Context) (row, error) {
		attempts++
		if attempts < 3 {
			return row{}, errors.New("transient")
		}
		return row{Key: "flaky", Value: 7}, nil
	}}}
	rep, err := Run(context.Background(), Config{Retries: 2}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("ran %d attempts, want 3", attempts)
	}
	if rep.Results["flaky"].Value != 7 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	attempts := 0
	cells := []Cell[row]{{Key: "dead", Run: func(ctx context.Context) (row, error) {
		attempts++
		return row{}, errors.New("always")
	}}}
	var events []Event
	rep, err := Run(context.Background(), Config{Retries: 2, Progress: func(ev Event) {
		events = append(events, ev)
	}}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("ran %d attempts, want 3 (1 + 2 retries)", attempts)
	}
	if rep.Failed["dead"] != "always" {
		t.Fatalf("failed %+v", rep.Failed)
	}
	var seq []Status
	for _, ev := range events {
		seq = append(seq, ev.Status)
	}
	want := []Status{StatusStart, StatusRetry, StatusStart, StatusRetry, StatusStart, StatusFailed}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("event sequence %v, want %v", seq, want)
	}
}

func TestPanicBecomesRecordedError(t *testing.T) {
	cells := sweep(2)
	cells[0].Run = func(ctx context.Context) (row, error) {
		panic("cell exploded")
	}
	rep, err := Run(context.Background(), Config{}, cells)
	if err != nil {
		t.Fatal(err)
	}
	msg := rep.Failed["a"]
	if !strings.Contains(msg, "cell exploded") || !strings.Contains(msg, "panicked") {
		t.Fatalf("panic not captured: %q", msg)
	}
	if len(rep.Results) != 1 {
		t.Fatal("surviving cell did not run")
	}
}

func TestCellTimeoutFailsOnlyThatCell(t *testing.T) {
	cells := sweep(2)
	cells[0].Run = func(ctx context.Context) (row, error) {
		<-ctx.Done()
		return row{}, ctx.Err()
	}
	rep, err := Run(context.Background(), Config{CellTimeout: 10 * time.Millisecond}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Failed["a"], context.DeadlineExceeded.Error()) {
		t.Fatalf("failed %+v", rep.Failed)
	}
	if _, ok := rep.Results["b"]; !ok {
		t.Fatal("sweep did not continue past the timed-out cell")
	}
	if rep.Interrupted {
		t.Fatal("cell deadline must not mark the sweep interrupted")
	}
}

func TestCancellationInterruptsAndPreservesPartials(t *testing.T) {
	// Parallelism 1 pins the sequential cut line: cells after the
	// cancellation point must not have started. (A parallel pool may have
	// later cells legitimately in flight; see parallel_test.go.)
	ctx, cancel := context.WithCancel(context.Background())
	cells := sweep(4)
	base := cells[1].Run
	cells[1].Run = func(c context.Context) (row, error) {
		cancel() // the sweep learns mid-cell that the user hit Ctrl-C
		return base(c)
	}
	rep, err := Run(ctx, Config{Parallelism: 1}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("canceled sweep not marked interrupted")
	}
	if _, ok := rep.Results["a"]; !ok {
		t.Fatal("completed cell lost on interruption")
	}
	// The in-flight cell completed despite racing the cancellation: its
	// result is kept, not discarded or recorded as failed.
	if _, ok := rep.Results["b"]; !ok {
		t.Fatal("successfully completed in-flight cell discarded")
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed %+v", rep.Failed)
	}
	if _, ok := rep.Results["c"]; ok {
		t.Fatal("cell after cancellation still ran")
	}
}

func ckptConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		CheckpointPath: filepath.Join(t.TempDir(), "ckpt.json"),
		Fingerprint:    "sweep-v1",
	}
}

func TestCheckpointResumeIsBitIdentical(t *testing.T) {
	// Reference: uninterrupted sweep.
	ref, err := Run(context.Background(), Config{}, sweep(5))
	if err != nil {
		t.Fatal(err)
	}

	cfg := ckptConfig(t)
	// First run: a cell panics after two successes, simulating a crash —
	// the checkpoint must survive with the completed prefix.
	cells := sweep(5)
	cells[2].Run = func(ctx context.Context) (row, error) {
		panic("simulated crash")
	}
	rep1, err := Run(context.Background(), cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Results) != 4 || len(rep1.Failed) != 1 {
		t.Fatalf("first pass %+v", rep1)
	}

	// Second run: same sweep, healthy cells. Completed cells come from
	// the checkpoint; only the crashed one is recomputed.
	ran := 0
	cells = sweep(5)
	for i := range cells {
		base := cells[i].Run
		cells[i].Run = func(ctx context.Context) (row, error) {
			ran++
			return base(ctx)
		}
	}
	rep2, err := Run(context.Background(), cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("resume recomputed %d cells, want 1", ran)
	}
	if rep2.Resumed != 4 {
		t.Fatalf("resumed %d cells, want 4", rep2.Resumed)
	}
	if !reflect.DeepEqual(ref.Results, rep2.Results) {
		t.Fatalf("resumed sweep diverged:\nref %+v\ngot %+v", ref.Results, rep2.Results)
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	cfg := ckptConfig(t)
	if _, err := Run(context.Background(), cfg, sweep(2)); err != nil {
		t.Fatal(err)
	}
	cfg.Fingerprint = "sweep-v2"
	_, err := Run(context.Background(), cfg, sweep(2))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") &&
		!strings.Contains(err.Error(), "belongs to sweep") {
		t.Fatalf("fingerprint mismatch accepted: %v", err)
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	// A valid checkpoint truncated mid-document simulates a writer killed
	// mid-write (only a non-atomic writer can produce this; ours renames,
	// but the file may come from anywhere). Every corruption flavor must
	// surface ErrCorruptCheckpoint and name the offending file so the
	// caller can quarantine it.
	valid := ckptConfig(t)
	if _, err := Run(context.Background(), valid, sweep(3)); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(valid.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	for name, contents := range map[string][]byte{
		"garbage":   []byte("{not json"),
		"empty":     {},
		"truncated": whole[:len(whole)/2],
	} {
		cfg := ckptConfig(t)
		if err := os.WriteFile(cfg.CheckpointPath, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Run(context.Background(), cfg, sweep(1))
		if err == nil {
			t.Fatalf("%s checkpoint accepted", name)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("%s checkpoint error %v does not wrap ErrCorruptCheckpoint", name, err)
		}
		if !strings.Contains(err.Error(), cfg.CheckpointPath) {
			t.Fatalf("%s checkpoint error %v does not name the file", name, err)
		}
	}
}

func TestCheckpointSurvivesProcessBoundary(t *testing.T) {
	// The checkpoint is plain JSON on disk: a fresh Run (standing in for
	// a fresh process) with the same fingerprint must pick it up.
	// Parallelism 1 pins which cells complete before the cancellation.
	cfg := ckptConfig(t)
	cfg.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	cells := sweep(3)
	base := cells[0].Run
	cells[0].Run = func(c context.Context) (row, error) {
		cancel()
		return base(c)
	}
	rep, err := Run(ctx, cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted || len(rep.Results) != 1 {
		t.Fatalf("interrupted pass %+v", rep)
	}

	rep2, err := Run(context.Background(), cfg, sweep(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 1 || len(rep2.Results) != 3 || rep2.Interrupted {
		t.Fatalf("second pass %+v", rep2)
	}
}

func TestCachedCellsEmitProgress(t *testing.T) {
	cfg := ckptConfig(t)
	if _, err := Run(context.Background(), cfg, sweep(2)); err != nil {
		t.Fatal(err)
	}
	var cached int
	cfg.Progress = func(ev Event) {
		if ev.Status == StatusCached {
			cached++
		}
	}
	if _, err := Run(context.Background(), cfg, sweep(2)); err != nil {
		t.Fatal(err)
	}
	if cached != 2 {
		t.Fatalf("saw %d cached events, want 2", cached)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusStart: "start", StatusDone: "done", StatusRetry: "retry",
		StatusFailed: "failed", StatusCached: "cached", Status(99): "status(99)",
	} {
		if got := s.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
