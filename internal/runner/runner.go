// Package runner is the resilient sweep supervisor for the experiment
// harness. A sweep is a list of independent cells (one simulation
// configuration each); the runner executes them sequentially under a
// shared context, survives individual cell failures, and checkpoints
// completed cells to a JSON file so an interrupted sweep resumes where it
// left off instead of recomputing hours of simulation.
//
// Resilience mechanisms, per cell:
//
//   - panic recovery: a panicking cell is converted to a recorded error
//     (with stack) instead of killing the sweep;
//   - per-cell deadline: Config.CellTimeout bounds each attempt through a
//     derived context;
//   - bounded deterministic retry: a failed cell is retried immediately up
//     to Config.Retries times — no sleeps, no jitter, so a retried sweep
//     is reproducible;
//   - checkpoint/resume: each completed cell is appended to an atomic
//     JSON checkpoint (write-to-temp then rename) guarded by a sweep
//     fingerprint; a rerun with the same fingerprint loads completed
//     cells instead of recomputing them.
//
// Cancellation is cooperative: when the parent context is canceled the
// runner stops between cells (and in-flight cells observe the same
// context), saves the checkpoint, and returns the partial report with
// Interrupted set — it does not return an error, so callers can always
// print partial results.
//
// Cells are scheduled across a bounded worker pool (Config.Parallelism;
// the default is one worker per available CPU). Because every cell is an
// independent, self-seeded simulation, parallel execution changes nothing
// observable about the sweep's outcome: results, failure reports and
// checkpoint contents are bit-identical at every parallelism level —
// completed cells are committed (recorded and checkpointed) strictly in
// cell order by a single collector, and only the interleaving of
// StatusStart/StatusRetry progress events and the exact set of cells
// completed at an interruption differ. Parallelism 1 runs the plain
// sequential loop.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"maxwe/internal/atomicio"
	"maxwe/internal/memo"
)

// Cell is one unit of sweep work. Key must be unique within the sweep and
// stable across runs — it names the cell in checkpoints, progress events
// and failure reports.
type Cell[T any] struct {
	// Key identifies the cell (e.g. "fig8/start-gap/maxwe").
	Key string
	// Fingerprint, when non-empty, content-addresses the cell's result
	// for Config.Cache: any two cells with equal fingerprints — in this
	// sweep, another sweep, or another process sharing the cache
	// directory — must compute byte-identical values. Empty opts the
	// cell out of caching. Ignored when Config.Cache is nil.
	Fingerprint string
	// Run computes the cell's result. It must honor ctx cancellation for
	// the per-cell deadline and sweep interruption to work.
	Run func(ctx context.Context) (T, error)
}

// Config tunes the supervisor. The zero value runs cells once each with
// no deadline and no checkpointing.
type Config struct {
	// CellTimeout bounds each attempt of each cell (0 = no deadline).
	CellTimeout time.Duration
	// Retries is how many additional attempts a failed cell gets before
	// its error is recorded (0 = single attempt). Retries are immediate
	// and deterministic.
	Retries int
	// CheckpointPath, when non-empty, enables checkpoint/resume: completed
	// cells are persisted there after every cell, and an existing
	// checkpoint with a matching Fingerprint seeds the run.
	CheckpointPath string
	// Fingerprint identifies the sweep configuration. A checkpoint written
	// under a different fingerprint is rejected rather than silently mixed
	// into unrelated results. Required when CheckpointPath is set.
	Fingerprint string
	// Progress, when non-nil, receives one event per cell state change.
	// With Parallelism > 1 it is called from multiple goroutines but never
	// concurrently (the runner serializes invocations), so the callback
	// needs no locking of its own.
	Progress func(Event)
	// Parallelism bounds how many cells run concurrently. 0 selects
	// runtime.GOMAXPROCS(0) (one worker per available CPU); 1 runs the
	// exact sequential path. Results, Failed and checkpoint contents are
	// bit-identical across parallelism levels; see the package comment.
	Parallelism int
	// FS is the filesystem checkpoints are read and written through. Nil
	// selects the real filesystem (atomicio.OS); the chaos harness passes
	// a fault-injecting implementation.
	FS atomicio.FS
	// Cache, when non-nil, memoizes cell results by Cell.Fingerprint: a
	// hit (StatusMemo) skips the computation entirely, and concurrently
	// identical cells — across workers and across sweeps sharing the
	// cache — compute once via singleflight. Hits commit in sweep order
	// exactly like computed cells, and both results and checkpoint bytes
	// are identical to a cache-off run (the bit-exactness the checkpoint
	// machinery already guarantees is what makes hits safe to serve).
	Cache *memo.Cache
}

// fs resolves the configured filesystem, defaulting to the real one.
func (c Config) fs() atomicio.FS {
	if c.FS != nil {
		return c.FS
	}
	return atomicio.OS
}

// parallelism resolves the configured worker count: the 0 default means
// one worker per available CPU.
func (c Config) parallelism() int {
	if c.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

// Status classifies a progress event.
type Status int

// Progress event states, in the order a cell moves through them.
const (
	// StatusStart fires when an attempt of a cell begins.
	StatusStart Status = iota
	// StatusDone fires when a cell completes successfully.
	StatusDone
	// StatusRetry fires when an attempt failed and another follows.
	StatusRetry
	// StatusFailed fires when a cell's last attempt failed.
	StatusFailed
	// StatusCached fires when a cell is satisfied from the checkpoint.
	StatusCached
	// StatusMemo fires when a cell is satisfied from the memo cache
	// (Config.Cache) — a content-addressed hit or a singleflight share
	// of a concurrent identical computation.
	StatusMemo
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusStart:
		return "start"
	case StatusDone:
		return "done"
	case StatusRetry:
		return "retry"
	case StatusFailed:
		return "failed"
	case StatusCached:
		return "cached"
	case StatusMemo:
		return "memo"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Event reports one cell state change to Config.Progress.
type Event struct {
	// Key is the cell's key.
	Key string
	// Index is the cell's position in the sweep (0-based); Total is the
	// sweep size.
	Index, Total int
	// Status is the state the cell moved to.
	Status Status
	// Attempt is the 1-based attempt number (0 for StatusCached and
	// StatusMemo).
	Attempt int
	// Err carries the failure message for StatusRetry and StatusFailed.
	Err string
}

// Report is the outcome of a sweep.
type Report[T any] struct {
	// Results maps completed cell keys to their values (checkpointed and
	// freshly computed alike).
	Results map[string]T
	// Failed maps cell keys to the error message of their final attempt.
	Failed map[string]string
	// Resumed is how many cells were satisfied from the checkpoint.
	Resumed int
	// Interrupted is true when the sweep stopped early because the parent
	// context was canceled; Results then holds the cells completed so far.
	Interrupted bool
}

// checkpoint is the JSON document persisted at Config.CheckpointPath.
type checkpoint struct {
	Fingerprint string                     `json:"fingerprint"`
	Completed   map[string]json.RawMessage `json:"completed"`
}

// ErrCorruptCheckpoint marks a checkpoint file whose contents are not a
// complete JSON checkpoint document — typically a file truncated by a
// crash or written by something else entirely. Callers that own the file
// (like the nvmd service) can detect it with errors.Is, quarantine the
// file, and restart the sweep from scratch instead of failing forever.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

func (c Config) validate() error {
	if c.CellTimeout < 0 {
		return errors.New("runner: Config.CellTimeout must be >= 0")
	}
	if c.Retries < 0 {
		return errors.New("runner: Config.Retries must be >= 0")
	}
	if c.CheckpointPath != "" && c.Fingerprint == "" {
		return errors.New("runner: Config.Fingerprint is required with CheckpointPath")
	}
	if c.Parallelism < 0 {
		return errors.New("runner: Config.Parallelism must be >= 0")
	}
	return nil
}

// Run executes the sweep. Cell failures do not abort the sweep — they are
// collected in Report.Failed. Run itself errors only on invalid
// configuration, duplicate cell keys, or checkpoint I/O problems.
func Run[T any](ctx context.Context, cfg Config, cells []Cell[T]) (Report[T], error) {
	rep := Report[T]{
		Results: make(map[string]T, len(cells)),
		Failed:  make(map[string]string),
	}
	if err := cfg.validate(); err != nil {
		return rep, err
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if c.Key == "" {
			return rep, errors.New("runner: cell with empty key")
		}
		if seen[c.Key] {
			return rep, fmt.Errorf("runner: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}

	ckpt, err := loadCheckpoint(cfg)
	if err != nil {
		return rep, err
	}

	if cfg.parallelism() > 1 {
		err = runParallel(ctx, cfg, cells, ckpt, &rep)
		return rep, err
	}

	for i, c := range cells {
		if raw, ok := ckpt.Completed[c.Key]; ok {
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				return rep, fmt.Errorf("runner: checkpoint entry %q: %w", c.Key, err)
			}
			rep.Results[c.Key] = v
			rep.Resumed++
			cfg.emit(Event{Key: c.Key, Index: i, Total: len(cells), Status: StatusCached})
			continue
		}
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}

		v, memoHit, cellErr := runCell(ctx, cfg, c, i, len(cells), cfg.emit)
		if cellErr != nil {
			if ctx.Err() != nil {
				// The failure reflects cancellation, not the cell: leave
				// it incomplete so a resumed sweep recomputes it.
				rep.Interrupted = true
				break
			}
			rep.Failed[c.Key] = cellErr.Error()
			cfg.emit(Event{Key: c.Key, Index: i, Total: len(cells),
				Status: StatusFailed, Attempt: cfg.Retries + 1, Err: cellErr.Error()})
			continue
		}
		rep.Results[c.Key] = v
		cfg.emit(Event{Key: c.Key, Index: i, Total: len(cells), Status: doneStatus(memoHit)})
		if err := saveCheckpoint(cfg, ckpt, c.Key, v); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// doneStatus picks the completion event for a successful cell: memo hits
// report StatusMemo, computed cells StatusDone.
func doneStatus(memoHit bool) Status {
	if memoHit {
		return StatusMemo
	}
	return StatusDone
}

func (c Config) emit(ev Event) {
	if c.Progress != nil {
		c.Progress(ev)
	}
}

// runCell executes one cell through the memo cache when one is
// configured, falling back to the plain retry loop otherwise. memoHit
// reports that the value was served without computing (cache hit or
// singleflight share). The computed path returns the exact value
// c.Run produced — never a marshal/unmarshal round trip of it — so with
// no hits the sweep is byte-for-byte the cache-off sweep; the hit path
// decodes the cached canonical JSON, whose round-trip exactness is the
// same property checkpoint resume already relies on.
func runCell[T any](ctx context.Context, cfg Config, c Cell[T], idx, total int, emit func(Event)) (T, bool, error) {
	if cfg.Cache == nil || c.Fingerprint == "" {
		v, err := runWithRetry(ctx, cfg, c, idx, total, emit)
		return v, false, err
	}
	var computed T
	didCompute := false
	raw, _, err := cfg.Cache.GetOrCompute(ctx, c.Fingerprint, func() ([]byte, error) {
		v, err := runWithRetry(ctx, cfg, c, idx, total, emit)
		if err != nil {
			return nil, err
		}
		buf, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("runner: marshal cell %q for memo: %w", c.Key, err)
		}
		computed, didCompute = v, true
		return buf, nil
	})
	if err != nil {
		var zero T
		return zero, false, err
	}
	if didCompute {
		return computed, false, nil
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		// The entry does not decode as this sweep's result type: the
		// fingerprint addressed a value of a different shape. Poison it
		// (quarantine on disk, drop from memory) and compute normally —
		// a corrupt entry is recomputed, never served.
		cfg.Cache.Discard(c.Fingerprint)
		v2, err2 := runWithRetry(ctx, cfg, c, idx, total, emit)
		if err2 != nil {
			return v2, false, err2
		}
		if buf, merr := json.Marshal(v2); merr == nil {
			// Heal the slot best-effort so later runs hit again.
			_ = cfg.Cache.Put(c.Fingerprint, buf)
		}
		return v2, false, nil
	}
	return v, true, nil
}

// runWithRetry drives one cell through its attempts, reporting state
// changes through emit (which must be safe for the calling goroutine).
func runWithRetry[T any](ctx context.Context, cfg Config, c Cell[T], idx, total int, emit func(Event)) (T, error) {
	var (
		v   T
		err error
	)
	for attempt := 1; attempt <= cfg.Retries+1; attempt++ {
		emit(Event{Key: c.Key, Index: idx, Total: total, Status: StatusStart, Attempt: attempt})
		v, err = runOnce(ctx, cfg, c)
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			// Parent cancellation: retrying cannot help and would spin.
			return v, err
		}
		if attempt <= cfg.Retries {
			emit(Event{Key: c.Key, Index: idx, Total: total,
				Status: StatusRetry, Attempt: attempt, Err: err.Error()})
		}
	}
	return v, err
}

// runOnce performs a single attempt under the per-cell deadline,
// converting panics into errors.
func runOnce[T any](ctx context.Context, cfg Config, c Cell[T]) (v T, err error) {
	if cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.CellTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: cell %q panicked: %v\n%s", c.Key, r, debug.Stack())
		}
	}()
	return c.Run(ctx)
}

// loadCheckpoint reads the checkpoint file if configured and present. A
// missing file is a fresh start, not an error; a fingerprint mismatch is
// an error, because silently recomputing (or worse, reusing) cells from a
// different sweep would corrupt results.
func loadCheckpoint(cfg Config) (checkpoint, error) {
	ckpt := checkpoint{Completed: make(map[string]json.RawMessage)}
	if cfg.CheckpointPath == "" {
		return ckpt, nil
	}
	data, err := cfg.fs().ReadFile(cfg.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		ckpt.Fingerprint = cfg.Fingerprint
		return ckpt, nil
	}
	if err != nil {
		return ckpt, fmt.Errorf("runner: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(data, &ckpt); err != nil {
		// Truncated or garbage contents (a crash mid-write of a non-atomic
		// writer, a stray file): surface the file name and the sentinel so
		// callers can quarantine it deliberately.
		return ckpt, fmt.Errorf("runner: checkpoint %s is truncated or corrupt (%v): %w",
			cfg.CheckpointPath, err, ErrCorruptCheckpoint)
	}
	if ckpt.Fingerprint != cfg.Fingerprint {
		return ckpt, fmt.Errorf("runner: checkpoint %s belongs to sweep %q, want %q",
			cfg.CheckpointPath, ckpt.Fingerprint, cfg.Fingerprint)
	}
	if ckpt.Completed == nil {
		ckpt.Completed = make(map[string]json.RawMessage)
	}
	return ckpt, nil
}

// saveCheckpoint records one completed cell and durably rewrites the
// checkpoint file through atomicio.WriteFile (temp file, fsync, rename,
// fsync parent directory), so a crash mid-write never leaves a truncated
// checkpoint behind and a completed rename survives power loss.
func saveCheckpoint[T any](cfg Config, ckpt checkpoint, key string, v T) error {
	if cfg.CheckpointPath == "" {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: marshal cell %q: %w", key, err)
	}
	ckpt.Completed[key] = raw
	data, err := json.MarshalIndent(ckpt, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: marshal checkpoint: %w", err)
	}
	if err := atomicio.WriteFile(cfg.fs(), cfg.CheckpointPath, data); err != nil {
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	return nil
}
