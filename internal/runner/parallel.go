// parallel.go is the worker-pool execution path of the sweep supervisor.
//
// Determinism argument: every cell is an independent simulation that
// derives all of its state (profile, scheme, attack, randomness) from its
// own configuration, so cells may execute in any order and on any
// goroutine without affecting their values. What must stay ordered is the
// *commitment* of outcomes: results are recorded, StatusDone/StatusFailed/
// StatusCached events emitted, and checkpoint snapshots written by a
// single collector that walks the cells strictly in sweep order, waiting
// for each cell's outcome before moving on. The sequence of checkpoint
// file states a parallel sweep writes is therefore exactly the sequence
// the sequential loop writes (restricted, under cancellation, to the
// cells that completed), and Report.Results/Failed are bit-identical at
// every parallelism level.
//
// Cancellation differs from the sequential loop in one documented way:
// the sequential loop stops at the first cell it observes canceled, while
// the pool lets every in-flight cell finish (or observe the cancellation
// itself) and commits all successful outcomes, so an interrupted parallel
// sweep may checkpoint cells the sequential loop would not have reached.
// Either way the checkpoint holds only bit-exact completed cells, so a
// resumed sweep — sequential or parallel — converges to the identical
// final report.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sync" //lint:allow nondeterminism "the worker pool is the sanctioned parallelism site; the ordered collector keeps committed bytes identical at every parallelism level"
)

// outcome carries one computed cell from a worker to the collector.
type outcome[T any] struct {
	v       T
	err     error
	memoHit bool
}

// runParallel executes the non-checkpointed cells on a bounded worker
// pool and commits outcomes in sweep order. It mutates rep in place and
// returns the first checkpoint I/O or decode error, like the sequential
// loop.
func runParallel[T any](ctx context.Context, cfg Config, cells []Cell[T], ckpt checkpoint, rep *Report[T]) error {
	runCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	// On every exit: stop the feeder and workers, then wait for in-flight
	// cells, so no goroutine outlives Run (and no Progress callback fires
	// after Run returns).
	defer wg.Wait() //lint:allow ctxprop "bounded: the deferred cancel below runs first, which stops the feeder and drains the workers"
	defer cancel()

	var progressMu sync.Mutex
	emit := func(ev Event) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		cfg.Progress(ev)
	}

	// One buffered outcome slot per pending (non-checkpointed) cell: a
	// worker never blocks handing over a result, and the collector can
	// still drain outcomes that landed after cancellation.
	pending := make([]int, 0, len(cells))
	outcomes := make([]chan outcome[T], len(cells))
	for i, c := range cells {
		if _, ok := ckpt.Completed[c.Key]; !ok {
			pending = append(pending, i)
			outcomes[i] = make(chan outcome[T], 1)
		}
	}
	workers := cfg.parallelism()
	if workers > len(pending) {
		workers = len(pending)
	}

	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //lint:allow nondeterminism "worker goroutine of the sanctioned pool; outcome commitment stays in sweep order"
			defer wg.Done()
			for i := range work { //lint:allow ctxprop "bounded: the feeder closes work when runCtx is canceled, ending this range"
				v, memoHit, err := runCell(runCtx, cfg, cells[i], i, len(cells), emit)
				outcomes[i] <- outcome[T]{v: v, err: err, memoHit: memoHit} //lint:allow ctxprop "never blocks: outcomes[i] has capacity 1 and exactly one send"
			}
		}()
	}
	wg.Add(1)
	go func() { //lint:allow nondeterminism "feeder goroutine of the sanctioned pool; sends are already selectable on runCtx.Done"
		defer wg.Done()
		defer close(work)
		for _, i := range pending {
			select {
			case work <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	// idle closes once every worker has exited — after cancellation this
	// is the signal that no further outcomes can arrive.
	idle := make(chan struct{})
	go func() { //lint:allow nondeterminism "idle-closer goroutine of the sanctioned pool"
		wg.Wait() //lint:allow ctxprop "this wait IS the ctx-bounding: it converts pool shutdown into the selectable idle channel"
		close(idle)
	}()

	for i, c := range cells {
		if raw, ok := ckpt.Completed[c.Key]; ok {
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				return fmt.Errorf("runner: checkpoint entry %q: %w", c.Key, err)
			}
			rep.Results[c.Key] = v
			rep.Resumed++
			emit(Event{Key: c.Key, Index: i, Total: len(cells), Status: StatusCached})
			continue
		}
		var out outcome[T]
		select {
		case out = <-outcomes[i]:
		case <-idle:
			// The pool shut down (cancellation). The cell's outcome may
			// still have been buffered just before the workers exited.
			select {
			case out = <-outcomes[i]:
			default:
				rep.Interrupted = true
				continue
			}
		}
		if out.err != nil {
			if ctx.Err() != nil {
				// The failure reflects cancellation, not the cell: leave
				// it incomplete so a resumed sweep recomputes it.
				rep.Interrupted = true
				continue
			}
			rep.Failed[c.Key] = out.err.Error()
			emit(Event{Key: c.Key, Index: i, Total: len(cells),
				Status: StatusFailed, Attempt: cfg.Retries + 1, Err: out.err.Error()})
			continue
		}
		rep.Results[c.Key] = out.v
		emit(Event{Key: c.Key, Index: i, Total: len(cells), Status: doneStatus(out.memoHit)})
		if err := saveCheckpoint(cfg, ckpt, c.Key, out.v); err != nil {
			return err
		}
	}
	return nil
}
