package runner

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"maxwe/internal/memo"
)

// memoResult is a stand-in cell value with enough structure to catch a
// lossy cache round trip.
type memoResult struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// memoCells builds n fingerprinted cells that count their computations.
func memoCells(n int, computes *atomic.Int64) []Cell[memoResult] {
	cells := make([]Cell[memoResult], n)
	for i := range cells {
		key := string(rune('a' + i))
		cells[i] = Cell[memoResult]{
			Key:         key,
			Fingerprint: "test/v1/" + key,
			Run: func(ctx context.Context) (memoResult, error) {
				computes.Add(1)
				return memoResult{Key: key, Value: float64(i) * 1.5}, nil
			},
		}
	}
	return cells
}

func newMemoCache(t *testing.T, dir string) *memo.Cache {
	t.Helper()
	c, err := memo.Open(memo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunMemoWarmRunServesEveryCell(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		var computes atomic.Int64
		cache := newMemoCache(t, t.TempDir())
		cfg := Config{Parallelism: parallelism, Cache: cache}

		cold, err := Run(context.Background(), cfg, memoCells(6, &computes))
		if err != nil {
			t.Fatal(err)
		}
		if n := computes.Load(); n != 6 {
			t.Fatalf("parallelism %d: cold run computed %d cells, want 6", parallelism, n)
		}

		var events []Status
		cfg.Progress = func(ev Event) { events = append(events, ev.Status) }
		warm, err := Run(context.Background(), cfg, memoCells(6, &computes))
		if err != nil {
			t.Fatal(err)
		}
		if n := computes.Load(); n != 6 {
			t.Fatalf("parallelism %d: warm run recomputed (%d total computes)", parallelism, n)
		}
		if !reflect.DeepEqual(cold.Results, warm.Results) {
			t.Fatalf("parallelism %d: warm results differ:\ncold %+v\nwarm %+v",
				parallelism, cold.Results, warm.Results)
		}
		memos := 0
		for _, s := range events {
			switch s {
			case StatusMemo:
				memos++
			case StatusStart, StatusDone:
				t.Fatalf("parallelism %d: warm run emitted %v", parallelism, s)
			}
		}
		if memos != 6 {
			t.Fatalf("parallelism %d: %d StatusMemo events, want 6", parallelism, memos)
		}
	}
}

func TestRunMemoResultsIdenticalToCacheOff(t *testing.T) {
	var computes atomic.Int64
	baseline, err := Run(context.Background(), Config{Parallelism: 1}, memoCells(5, &computes))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold, err := Run(context.Background(), Config{Parallelism: 1, Cache: newMemoCache(t, dir)},
		memoCells(5, &computes))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same dir: every hit decodes from disk.
	warm, err := Run(context.Background(), Config{Parallelism: 1, Cache: newMemoCache(t, dir)},
		memoCells(5, &computes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Results, cold.Results) {
		t.Fatalf("cold cached results differ from cache-off:\n%+v\n%+v", baseline.Results, cold.Results)
	}
	if !reflect.DeepEqual(baseline.Results, warm.Results) {
		t.Fatalf("disk-served results differ from cache-off:\n%+v\n%+v", baseline.Results, warm.Results)
	}
}

func TestRunMemoCheckpointBytesIdentical(t *testing.T) {
	var computes atomic.Int64
	run := func(dir string, cache *memo.Cache) []byte {
		t.Helper()
		path := filepath.Join(dir, "sweep.ckpt")
		cfg := Config{Parallelism: 1, CheckpointPath: path, Fingerprint: "sweep", Cache: cache}
		if _, err := Run(context.Background(), cfg, memoCells(4, &computes)); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	plain := run(t.TempDir(), nil)

	cache := newMemoCache(t, t.TempDir())
	cold := run(t.TempDir(), cache)
	warm := run(t.TempDir(), cache) // every cell is a memo hit
	if string(plain) != string(cold) {
		t.Fatalf("cold cached checkpoint differs from cache-off:\n%s\n%s", plain, cold)
	}
	if string(plain) != string(warm) {
		t.Fatalf("memo-hit checkpoint differs from cache-off:\n%s\n%s", plain, warm)
	}
}

func TestRunMemoConcurrentSweepsComputeOnce(t *testing.T) {
	cache := newMemoCache(t, t.TempDir())
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	cell := func(key string, first bool) []Cell[memoResult] {
		return []Cell[memoResult]{{
			Key:         key,
			Fingerprint: "shared/v1/cell",
			Run: func(ctx context.Context) (memoResult, error) {
				computes.Add(1)
				if first {
					close(started)
					<-release
				}
				return memoResult{Key: "shared", Value: 7}, nil
			},
		}}
	}
	var wg sync.WaitGroup
	var rep1, rep2 Report[memoResult]
	var err1, err2 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep1, err1 = Run(context.Background(), Config{Parallelism: 1, Cache: cache}, cell("first", true))
	}()
	<-started
	// The first sweep is mid-compute and holds the singleflight slot; the
	// second sweep either joins that flight (dedup hit) or, if it arrives
	// after the release below, hits the populated cache. Both ways the
	// cell computes exactly once across both sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep2, err2 = Run(context.Background(), Config{Parallelism: 1, Cache: cache}, cell("second", false))
	}()
	close(release)
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times across concurrent sweeps, want 1", n)
	}
	if got := rep2.Results["second"]; !reflect.DeepEqual(got, rep1.Results["first"]) {
		t.Fatalf("shared cell values differ: %+v vs %+v", rep1.Results["first"], got)
	}
}

func TestRunMemoUndecodableEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	cache := newMemoCache(t, dir)
	// Poison the fingerprint with valid JSON that does not decode as
	// memoResult — a foreign sweep's value behind a colliding key.
	if err := cache.Put("test/v1/a", []byte(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	rep, err := Run(context.Background(), Config{Parallelism: 1, Cache: cache}, memoCells(1, &computes))
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1 (recompute after discard)", n)
	}
	if got := rep.Results["a"]; got != (memoResult{Key: "a", Value: 0}) {
		t.Fatalf("recomputed value = %+v", got)
	}
	// The poisoned entry was quarantined and the slot healed: a fresh
	// cache over the dir serves the recomputed value.
	fresh := newMemoCache(t, dir)
	rep2, err := Run(context.Background(), Config{Parallelism: 1, Cache: fresh}, memoCells(1, &computes))
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("healed entry not served: %d computes", n)
	}
	if !reflect.DeepEqual(rep.Results, rep2.Results) {
		t.Fatalf("healed results differ: %+v vs %+v", rep.Results, rep2.Results)
	}
}
