package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
)

// deterministicSweep builds n cells whose values are pure functions of
// their index, with every index in fail computing an error instead.
func deterministicSweep(n int, fail map[int]bool) []Cell[row] {
	cells := make([]Cell[row], n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cell-%03d", i)
		v := float64(i)*2.5 + 1
		shouldFail := fail[i]
		cells[i] = Cell[row]{Key: key, Run: func(ctx context.Context) (row, error) {
			if shouldFail {
				return row{}, errors.New("deterministic failure")
			}
			return row{Key: key, Value: v}, nil
		}}
	}
	return cells
}

func TestParallelValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Parallelism: -1}, sweep(1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestParallelMatchesSequentialBitIdentical(t *testing.T) {
	fail := map[int]bool{3: true, 11: true}
	ref, err := Run(context.Background(), Config{Parallelism: 1}, deterministicSweep(16, fail))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 4, 16, 32} {
		rep, err := Run(context.Background(), Config{Parallelism: par}, deterministicSweep(16, fail))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(ref.Results, rep.Results) {
			t.Fatalf("parallelism %d: results diverged from sequential", par)
		}
		if !reflect.DeepEqual(ref.Failed, rep.Failed) {
			t.Fatalf("parallelism %d: failures diverged from sequential", par)
		}
		if rep.Interrupted || rep.Resumed != 0 {
			t.Fatalf("parallelism %d: report %+v", par, rep)
		}
	}
}

func TestParallelCheckpointBytesMatchSequential(t *testing.T) {
	runWith := func(par int) []byte {
		cfg := ckptConfig(t)
		cfg.Parallelism = par
		if _, err := Run(context.Background(), cfg, deterministicSweep(9, nil)); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(cfg.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := runWith(1), runWith(8)
	if string(seq) != string(par) {
		t.Fatalf("checkpoint files differ:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

func TestParallelDoneEventsArriveInSweepOrder(t *testing.T) {
	// The collector commits in cell order regardless of completion order,
	// so Done events carry strictly increasing indices. The non-atomic
	// counter below doubles as a race-detector probe that Progress is
	// never invoked concurrently.
	var calls int
	lastDone := -1
	cfg := Config{Parallelism: 4, Progress: func(ev Event) {
		calls++
		if ev.Status == StatusDone {
			if ev.Index <= lastDone {
				t.Errorf("Done for cell %d after cell %d", ev.Index, lastDone)
			}
			lastDone = ev.Index
		}
	}}
	if _, err := Run(context.Background(), cfg, deterministicSweep(12, nil)); err != nil {
		t.Fatal(err)
	}
	if lastDone != 11 {
		t.Fatalf("last Done index %d, want 11", lastDone)
	}
	if calls < 24 { // 12 Start + 12 Done at minimum
		t.Fatalf("saw %d progress events, want >= 24", calls)
	}
}

func TestParallelRetryAndPanicSemantics(t *testing.T) {
	var mu sync.Mutex
	attempts := map[string]int{}
	cells := deterministicSweep(6, nil)
	cells[2].Run = func(ctx context.Context) (row, error) {
		mu.Lock()
		attempts["flaky"]++
		n := attempts["flaky"]
		mu.Unlock()
		if n < 3 {
			return row{}, errors.New("transient")
		}
		return row{Key: "cell-002", Value: 42}, nil
	}
	cells[4].Run = func(ctx context.Context) (row, error) {
		panic("parallel cell exploded")
	}
	rep, err := Run(context.Background(), Config{Parallelism: 3, Retries: 2}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if attempts["flaky"] != 3 {
		t.Fatalf("flaky cell ran %d attempts, want 3", attempts["flaky"])
	}
	if rep.Results["cell-002"].Value != 42 {
		t.Fatalf("retried cell result %+v", rep.Results["cell-002"])
	}
	if msg := rep.Failed["cell-004"]; msg == "" ||
		!reflect.DeepEqual(len(rep.Failed), 1) {
		t.Fatalf("panic not recorded: %+v", rep.Failed)
	}
}

// TestParallelInterruptCheckpointResumesBitIdentical is the SIGINT-style
// scenario: a parallel sweep is canceled mid-run, checkpoints whatever
// completed, and a later run (sequential here, the strictest reference)
// resumes from that checkpoint and converges to results bit-identical to
// an uninterrupted sequential sweep.
func TestParallelInterruptCheckpointResumesBitIdentical(t *testing.T) {
	ref, err := Run(context.Background(), Config{Parallelism: 1}, deterministicSweep(10, nil))
	if err != nil {
		t.Fatal(err)
	}

	cfg := ckptConfig(t)
	cfg.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	cells := deterministicSweep(10, nil)
	base := cells[5].Run
	cells[5].Run = func(c context.Context) (row, error) {
		cancel() // SIGINT arrives while the pool is mid-sweep
		return base(c)
	}
	rep1, err := Run(ctx, cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Interrupted && len(rep1.Results) != 10 {
		t.Fatalf("interrupted pass %+v", rep1)
	}
	for key, v := range rep1.Results {
		if ref.Results[key] != v {
			t.Fatalf("interrupted pass computed %q = %+v, reference %+v",
				key, v, ref.Results[key])
		}
	}

	cfg.Parallelism = 1
	recomputed := 0
	cells = deterministicSweep(10, nil)
	for i := range cells {
		base := cells[i].Run
		cells[i].Run = func(c context.Context) (row, error) {
			recomputed++
			return base(c)
		}
	}
	rep2, err := Run(context.Background(), cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(rep1.Results) {
		t.Fatalf("resumed %d cells, checkpoint held %d", rep2.Resumed, len(rep1.Results))
	}
	if recomputed != 10-len(rep1.Results) {
		t.Fatalf("recomputed %d cells, want %d", recomputed, 10-len(rep1.Results))
	}
	if !reflect.DeepEqual(ref.Results, rep2.Results) {
		t.Fatalf("resumed sweep diverged:\nref %+v\ngot %+v", ref.Results, rep2.Results)
	}
}

func TestParallelResumesFromSequentialCheckpoint(t *testing.T) {
	// Checkpoints are interchangeable across parallelism levels: a file
	// written by a sequential run seeds a parallel rerun and vice versa.
	cfg := ckptConfig(t)
	cfg.Parallelism = 1
	if _, err := Run(context.Background(), cfg, deterministicSweep(6, nil)); err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	rep, err := Run(context.Background(), cfg, deterministicSweep(6, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 6 || len(rep.Results) != 6 {
		t.Fatalf("parallel resume %+v", rep)
	}
}
