// Package ecp models Error-Correcting Pointers (Schechter et al.,
// ISCA'10), the salvaging baseline of Section 2.2.2: each line carries k
// replacement pointers, each able to permanently repair one failed bit
// cell. A line survives up to k cell failures and dies on the (k+1)-th.
//
// The paper's argument against relying on salvaging alone: under
// endurance-variation-aware attacks, hundreds of cells of a weak line can
// fail close together, exceeding any per-line correction budget. The
// package exposes the per-line budget and the canonical storage-overhead
// figure (ECP-6 costs 11.9% for 512-bit lines).
package ecp

import (
	"fmt"
	"math"
)

// Corrector tracks per-line ECP budgets.
type Corrector struct {
	k      int
	failed []int
	dead   int
}

// New builds a corrector for lines lines with k pointers per line.
func New(lines, k int) *Corrector {
	if lines <= 0 {
		panic("ecp: New needs positive line count")
	}
	if k < 0 {
		panic("ecp: New needs non-negative k")
	}
	return &Corrector{k: k, failed: make([]int, lines)}
}

// K returns the per-line pointer budget.
func (c *Corrector) K() int { return c.k }

// FailCell records one cell failure in line and reports whether the line
// is still correctable. The failure that exceeds the budget kills the
// line; further failures on a dead line keep reporting false.
func (c *Corrector) FailCell(line int) bool {
	if line < 0 || line >= len(c.failed) {
		panic(fmt.Sprintf("ecp: line %d out of range [0,%d)", line, len(c.failed)))
	}
	c.failed[line]++
	if c.failed[line] == c.k+1 {
		c.dead++
	}
	return c.failed[line] <= c.k
}

// FailedCells returns the number of recorded cell failures in line.
func (c *Corrector) FailedCells(line int) int {
	if line < 0 || line >= len(c.failed) {
		panic(fmt.Sprintf("ecp: line %d out of range [0,%d)", line, len(c.failed)))
	}
	return c.failed[line]
}

// Remaining returns how many more failures line can absorb (zero when
// dead).
func (c *Corrector) Remaining(line int) int {
	r := c.k - c.FailedCells(line)
	if r < 0 {
		return 0
	}
	return r
}

// DeadLines returns the number of lines beyond repair.
func (c *Corrector) DeadLines() int { return c.dead }

// Overhead returns the storage cost of ECP-k on lines of lineBits data
// bits, as a fraction of the data size: k pointers of ceil(log2(lineBits))
// bits each plus one replacement cell per pointer plus one full bit.
// Overhead(512, 6) reproduces the paper-cited 11.9%.
func Overhead(lineBits, k int) float64 {
	if lineBits <= 1 {
		panic("ecp: Overhead needs lineBits > 1")
	}
	if k < 0 {
		panic("ecp: Overhead needs non-negative k")
	}
	ptr := int(math.Ceil(math.Log2(float64(lineBits))))
	total := k*(ptr+1) + 1
	return float64(total) / float64(lineBits)
}
