package ecp

import (
	"testing"

	"maxwe/internal/endurance"
	"maxwe/internal/xrand"
)

func TestLineEnduranceWithECPOrderStatistic(t *testing.T) {
	cells := []int64{50, 10, 40, 30, 20}
	if got := LineEnduranceWithECP(cells, 0); got != 10 {
		t.Fatalf("k=0: %d, want weakest cell 10", got)
	}
	if got := LineEnduranceWithECP(cells, 2); got != 30 {
		t.Fatalf("k=2: %d, want 3rd weakest 30", got)
	}
	if got := LineEnduranceWithECP(cells, 10); got != 50 {
		t.Fatalf("k>=cells: %d, want strongest 50", got)
	}
	// Input not mutated.
	if cells[0] != 50 || cells[1] != 10 {
		t.Fatal("input mutated")
	}
}

func TestLineEnduranceWithECPPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LineEnduranceWithECP(nil, 0) },
		func() { LineEnduranceWithECP([]int64{1}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBoostProfileMonotoneInK(t *testing.T) {
	base := endurance.Uniform(8, 8, 1000)
	prevMean := 0.0
	for k := 0; k <= 6; k += 2 {
		b := BoostProfile(base, 64, k, 0.25, xrand.New(7))
		if b.Lines() != base.Lines() {
			t.Fatal("boosted profile shape changed")
		}
		mean := b.Mean()
		if mean <= prevMean {
			t.Fatalf("k=%d mean %v not above k-2 mean %v", k, mean, prevMean)
		}
		prevMean = mean
	}
}

func TestBoostProfileK0Weaker(t *testing.T) {
	base := endurance.Uniform(4, 16, 1000)
	b := BoostProfile(base, 64, 0, 0.25, xrand.New(8))
	// With 64 cells and no correction, the weakest cell governs: the
	// boosted mean must fall well below nominal.
	if b.Mean() >= base.Mean()*0.9 {
		t.Fatalf("k=0 mean %v not clearly below nominal %v", b.Mean(), base.Mean())
	}
}

func TestBoostProfileZeroSigmaIdentity(t *testing.T) {
	base := endurance.Linear(4, 8, 100, 1000)
	b := BoostProfile(base, 16, 3, 0, xrand.New(9))
	for i := 0; i < base.Lines(); i++ {
		if b.LineEndurance(i) != base.LineEndurance(i) {
			t.Fatalf("line %d changed with zero cell variation", i)
		}
	}
}

func TestBoostProfileDeterministic(t *testing.T) {
	base := endurance.Uniform(2, 8, 500)
	a := BoostProfile(base, 32, 2, 0.2, xrand.New(10))
	b := BoostProfile(base, 32, 2, 0.2, xrand.New(10))
	for i := 0; i < a.Lines(); i++ {
		if a.LineEndurance(i) != b.LineEndurance(i) {
			t.Fatal("BoostProfile not deterministic")
		}
	}
}

func TestBoostProfilePanics(t *testing.T) {
	base := endurance.Uniform(2, 2, 10)
	for _, f := range []func(){
		func() { BoostProfile(base, 0, 1, 0.1, xrand.New(1)) },
		func() { BoostProfile(base, 4, -1, 0.1, xrand.New(1)) },
		func() { BoostProfile(base, 4, 1, -0.1, xrand.New(1)) },
		func() { BoostProfile(base, 4, 1, 0.1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
