package ecp

import (
	"math"
	"testing"
)

func TestBudgetAndDeath(t *testing.T) {
	c := New(4, 2)
	if c.K() != 2 {
		t.Fatal("K wrong")
	}
	if !c.FailCell(0) || !c.FailCell(0) {
		t.Fatal("correctable failures reported fatal")
	}
	if c.Remaining(0) != 0 {
		t.Fatalf("Remaining = %d", c.Remaining(0))
	}
	if c.FailCell(0) {
		t.Fatal("third failure still correctable with k=2")
	}
	if c.DeadLines() != 1 {
		t.Fatalf("DeadLines = %d", c.DeadLines())
	}
	// Dead stays dead, counter keeps counting, dead count does not double.
	if c.FailCell(0) {
		t.Fatal("dead line revived")
	}
	if c.DeadLines() != 1 {
		t.Fatalf("DeadLines double-counted: %d", c.DeadLines())
	}
	if c.FailedCells(0) != 4 {
		t.Fatalf("FailedCells = %d", c.FailedCells(0))
	}
	// Other lines unaffected.
	if c.FailedCells(1) != 0 || c.Remaining(1) != 2 {
		t.Fatal("cross-line contamination")
	}
}

func TestZeroPointers(t *testing.T) {
	c := New(2, 0)
	if c.FailCell(1) {
		t.Fatal("k=0 corrected a failure")
	}
	if c.DeadLines() != 1 {
		t.Fatal("death not recorded")
	}
}

func TestOverheadPaperFigure(t *testing.T) {
	// Section 2.2.2: "ECP can correct six hard failures per line with
	// 11.9% capacity overhead" (512-bit line).
	got := Overhead(512, 6)
	if math.Abs(got-0.119) > 0.001 {
		t.Fatalf("ECP-6 overhead = %v, want ~0.119", got)
	}
}

func TestOverheadMonotoneInK(t *testing.T) {
	prev := -1.0
	for k := 0; k <= 12; k++ {
		o := Overhead(512, k)
		if o <= prev {
			t.Fatalf("overhead not increasing at k=%d", k)
		}
		prev = o
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(1, -1) },
		func() { New(1, 1).FailCell(1) },
		func() { New(1, 1).FailedCells(-1) },
		func() { Overhead(1, 1) },
		func() { Overhead(512, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// The paper's argument: a burst of failures in one weak line exceeds any
// per-line budget even when the device-wide budget looks generous.
func TestBurstExceedsPerLineBudget(t *testing.T) {
	lines, k := 1024, 6
	c := New(lines, k)
	// 100 cell failures land in one weak line: dead after k+1, even
	// though the device-wide pointer budget (1024*6) dwarfs the burst.
	dead := false
	for i := 0; i < 100; i++ {
		if !c.FailCell(7) {
			dead = true
		}
	}
	if !dead || c.DeadLines() != 1 {
		t.Fatal("burst did not kill the weak line")
	}
}
