// boost.go connects the ECP correction model to the endurance model: a
// line built from many cells fails when its (k+1)-th cell fails, so ECP-k
// turns a line's endurance from the minimum cell endurance into the
// (k+1)-th order statistic of the cell endurances. This is how the
// salvaging baseline of Section 2.2.2 is evaluated against (and combined
// with) spare-line replacement.
package ecp

import (
	"math"
	"sort"

	"maxwe/internal/endurance"
	"maxwe/internal/xrand"
)

// LineEnduranceWithECP returns the write count at which a line with the
// given per-cell endurances fails under ECP-k: the (k+1)-th smallest cell
// endurance (the budget runs out on the k+1-th cell failure). If k >=
// len(cells)-1 the line survives until its strongest cell dies. The input
// slice is not modified.
func LineEnduranceWithECP(cells []int64, k int) int64 {
	if len(cells) == 0 {
		panic("ecp: LineEnduranceWithECP needs at least one cell")
	}
	if k < 0 {
		panic("ecp: LineEnduranceWithECP needs non-negative k")
	}
	s := append([]int64(nil), cells...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := k
	if idx > len(s)-1 {
		idx = len(s) - 1
	}
	return s[idx]
}

// BoostProfile derives an ECP-k line-endurance profile from a nominal
// profile: each line's budget is re-derived from cellsPerLine simulated
// cells whose endurance is the line's nominal value scaled by a lognormal
// factor with sigma cellSigma, then corrected by k pointers. With k = 0
// the result is *weaker* than the nominal profile (the weakest cell kills
// the line); increasing k recovers and then exceeds the nominal budget —
// the classic ECP benefit curve.
func BoostProfile(p *endurance.Profile, cellsPerLine, k int, cellSigma float64, src *xrand.Source) *endurance.Profile {
	if cellsPerLine < 1 {
		panic("ecp: BoostProfile needs at least one cell per line")
	}
	if cellSigma < 0 {
		panic("ecp: BoostProfile needs non-negative cellSigma")
	}
	if src == nil {
		panic("ecp: BoostProfile needs a randomness source")
	}
	lines := make([]int64, p.Lines())
	cells := make([]int64, cellsPerLine)
	for i := range lines {
		nominal := float64(p.LineEndurance(i))
		for c := range cells {
			e := nominal * math.Exp(cellSigma*src.NormFloat64())
			if e < 1 {
				e = 1
			}
			cells[c] = int64(e)
		}
		lines[i] = LineEnduranceWithECP(cells, k)
	}
	return endurance.FromLines(p.LinesPerRegion(), lines)
}
