// io.go gives traces a file representation so workloads can be captured,
// shared, and replayed against different stack configurations. The format
// is line-oriented text, one record per line:
//
//	# comment or blank lines are ignored
//	W 4096
//	R 123
//
// ("W"/"R" followed by a decimal line address.) The format is trivially
// producible from memory-trace converters; cmd/tracegen writes it and
// cmd/replay consumes it.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode serializes records to w in the text format.
func Encode(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for i, r := range records {
		if r.Line < 0 {
			return fmt.Errorf("trace: record %d has negative address %d", i, r.Line)
		}
		op := "R"
		if r.Op == Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", op, r.Line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format. Comment lines (starting with '#') and
// blank lines are ignored. Parsing is strict about everything else: a
// malformed line aborts with its line number.
func Decode(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want \"W|R <addr>\", got %q", lineNo, text)
		}
		var op Op
		switch fields[0] {
		case "W", "w":
			op = Write
		case "R", "r":
			op = Read
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		addr, err := strconv.Atoi(fields[1])
		if err != nil || addr < 0 {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		out = append(out, Record{Op: op, Line: addr})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
