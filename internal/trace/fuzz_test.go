package trace

import (
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary text at the trace parser: it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// records (round-trip stability).
func FuzzDecode(f *testing.F) {
	f.Add("W 5\nR 7\n")
	f.Add("# comment\n\nw 0\n")
	f.Add("X 5\n")
	f.Add("W -3\n")
	f.Add("W 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := Decode(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var b strings.Builder
		if err := Encode(&b, records); err != nil {
			t.Fatalf("accepted records failed to encode: %v", err)
		}
		again, err := Decode(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range again {
			if again[i] != records[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, records[i], again[i])
			}
		}
	})
}
