package trace

import (
	"strings"
	"testing"

	"maxwe/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, err := NewGenerator(1000, OLTPLike(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	records := g.Generate(500)
	var b strings.Builder
	if err := Encode(&b, records); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], records[i])
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\nW 5\n   \nr 7\n# trailing\n"
	got, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0] != (Record{Op: Write, Line: 5}) {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1] != (Record{Op: Read, Line: 7}) {
		t.Fatalf("record 1 = %+v", got[1])
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"X 5\n",
		"W\n",
		"W 5 6\n",
		"W -1\n",
		"W five\n",
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed input %q accepted", c)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("error %v does not cite the line number", err)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	got, err := Decode(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty input produced records")
	}
}

func TestEncodeRejectsNegative(t *testing.T) {
	var b strings.Builder
	if err := Encode(&b, []Record{{Op: Write, Line: -3}}); err == nil {
		t.Fatal("negative address accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, strings.NewReader("").UnreadByte() // any non-nil error
}

func TestEncodePropagatesWriteError(t *testing.T) {
	// A writer that always fails must surface an error (possibly at
	// flush time for small payloads, so use enough records to overflow
	// the bufio buffer or rely on Flush).
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{Op: Write, Line: i}
	}
	if err := Encode(failWriter{}, recs); err == nil {
		t.Fatal("write error swallowed")
	}
}
