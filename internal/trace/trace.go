// Package trace generates synthetic memory reference traces for the
// non-adversarial experiments and examples: mixes of sequential,
// uniformly random and Zipf-distributed accesses with a configurable
// write ratio. The paper's NVMsim generates requests directly from attack
// models; trace provides the benign counterpart so examples can contrast
// normal workloads against attacks.
package trace

import (
	"fmt"

	"maxwe/internal/xrand"
)

// Op is a memory operation kind.
type Op int

const (
	// Read is a load; reads do not wear NVM cells.
	Read Op = iota
	// Write is a store.
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Record is one trace entry.
type Record struct {
	Op   Op
	Line int
}

// Mix describes a synthetic workload as proportions of address patterns.
// The proportions are weights; they need not sum to 1.
type Mix struct {
	// Sequential weight: addresses sweep the space in order.
	Sequential float64
	// Random weight: addresses are uniformly random.
	Random float64
	// Zipf weight: addresses follow a Zipf(ZipfS) popularity law.
	Zipf float64
	// ZipfS is the Zipf exponent (used only when Zipf > 0).
	ZipfS float64
	// WriteRatio is the fraction of operations that are writes, in [0,1].
	WriteRatio float64
}

// Validate reports whether the mix is usable.
func (m Mix) Validate() error {
	if m.Sequential < 0 || m.Random < 0 || m.Zipf < 0 {
		return fmt.Errorf("trace: negative pattern weight in %+v", m)
	}
	if m.Sequential+m.Random+m.Zipf <= 0 {
		return fmt.Errorf("trace: all pattern weights zero")
	}
	if m.WriteRatio < 0 || m.WriteRatio > 1 {
		return fmt.Errorf("trace: write ratio %v outside [0,1]", m.WriteRatio)
	}
	if m.Zipf > 0 && m.ZipfS < 0 {
		return fmt.Errorf("trace: negative Zipf exponent %v", m.ZipfS)
	}
	return nil
}

// OLTPLike returns a typical transactional mix: mostly Zipf-skewed with a
// moderate write ratio.
func OLTPLike() Mix {
	return Mix{Zipf: 0.8, Random: 0.2, ZipfS: 1.1, WriteRatio: 0.4}
}

// StreamingLike returns a scan-heavy mix.
func StreamingLike() Mix {
	return Mix{Sequential: 0.9, Random: 0.1, WriteRatio: 0.5}
}

// Generator produces trace records over a line address space.
type Generator struct {
	mix     Mix
	lines   int
	seqNext int
	zipf    *xrand.Zipf
	perm    []int
	chooser *xrand.WeightedChooser
	src     *xrand.Source
}

// NewGenerator builds a generator over lines addresses with the given mix
// and randomness source.
func NewGenerator(lines int, mix Mix, src *xrand.Source) (*Generator, error) {
	if lines <= 0 {
		return nil, fmt.Errorf("trace: lines must be positive, got %d", lines)
	}
	if src == nil {
		return nil, fmt.Errorf("trace: nil randomness source")
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		mix:     mix,
		lines:   lines,
		chooser: xrand.NewWeightedChooser([]float64{mix.Sequential, mix.Random, mix.Zipf}),
		src:     src,
	}
	if mix.Zipf > 0 {
		g.zipf = xrand.NewZipf(lines, mix.ZipfS)
		g.perm = src.Perm(lines)
	}
	return g, nil
}

// Next returns the next trace record.
func (g *Generator) Next() Record {
	var line int
	switch g.chooser.Draw(g.src) {
	case 0: // sequential
		line = g.seqNext
		g.seqNext++
		if g.seqNext == g.lines {
			g.seqNext = 0
		}
	case 1: // random
		line = g.src.Intn(g.lines)
	default: // zipf
		line = g.perm[g.zipf.Draw(g.src)]
	}
	op := Read
	if g.src.Float64() < g.mix.WriteRatio {
		op = Write
	}
	return Record{Op: op, Line: line}
}

// Generate returns n records.
func (g *Generator) Generate(n int) []Record {
	if n < 0 {
		panic("trace: Generate needs non-negative n")
	}
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
