package trace

import (
	"testing"

	"maxwe/internal/xrand"
)

func TestMixValidate(t *testing.T) {
	good := []Mix{
		{Sequential: 1},
		{Random: 1, WriteRatio: 1},
		{Zipf: 1, ZipfS: 1.2, WriteRatio: 0.5},
		OLTPLike(),
		StreamingLike(),
	}
	for i, m := range good {
		if err := m.Validate(); err != nil {
			t.Fatalf("good mix %d rejected: %v", i, err)
		}
	}
	bad := []Mix{
		{},
		{Sequential: -1, Random: 2},
		{Random: 1, WriteRatio: 1.5},
		{Random: 1, WriteRatio: -0.1},
		{Zipf: 1, ZipfS: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad mix %d accepted", i)
		}
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(0, OLTPLike(), xrand.New(1)); err == nil {
		t.Fatal("zero lines accepted")
	}
	if _, err := NewGenerator(10, OLTPLike(), nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewGenerator(10, Mix{}, xrand.New(1)); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestSequentialMixSweeps(t *testing.T) {
	g, err := NewGenerator(8, Mix{Sequential: 1, WriteRatio: 1}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			r := g.Next()
			if r.Line != i {
				t.Fatalf("sequential line = %d, want %d", r.Line, i)
			}
			if r.Op != Write {
				t.Fatal("WriteRatio=1 produced a read")
			}
		}
	}
}

func TestWriteRatio(t *testing.T) {
	g, err := NewGenerator(100, Mix{Random: 1, WriteRatio: 0.3}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Op == Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("write fraction = %v, want ~0.3", frac)
	}
}

func TestZipfMixSkews(t *testing.T) {
	g, err := NewGenerator(1000, Mix{Zipf: 1, ZipfS: 1.3, WriteRatio: 1}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Next().Line]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/50 {
		t.Fatalf("hottest line only %d/%d writes; Zipf skew missing", max, n)
	}
}

func TestGenerate(t *testing.T) {
	g, err := NewGenerator(16, StreamingLike(), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Generate(100)
	if len(recs) != 100 {
		t.Fatalf("Generate returned %d records", len(recs))
	}
	for _, r := range recs {
		if r.Line < 0 || r.Line >= 16 {
			t.Fatalf("record line %d out of range", r.Line)
		}
	}
	if len(g.Generate(0)) != 0 {
		t.Fatal("Generate(0) not empty")
	}
}

func TestGeneratePanics(t *testing.T) {
	g, _ := NewGenerator(4, StreamingLike(), xrand.New(6))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Generate(-1)
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(64, OLTPLike(), xrand.New(7))
	b, _ := NewGenerator(64, OLTPLike(), xrand.New(7))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}
