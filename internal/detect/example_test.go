package detect_test

import (
	"fmt"

	"maxwe/internal/attack"
	"maxwe/internal/detect"
)

// Feed a uniform sweep to the monitor: the first completed window is
// flagged as uaa-like.
func ExampleMonitor() {
	m, err := detect.NewMonitor(detect.Config{WindowSize: 256})
	if err != nil {
		fmt.Println(err)
		return
	}
	a := attack.NewUAA()
	for i := 0; i < 256; i++ {
		if v, done := m.Observe(a.Next(1 << 16)); done {
			fmt.Println("verdict:", v)
		}
	}
	// Output:
	// verdict: uaa-like
}
