package detect

import (
	"testing"

	"maxwe/internal/attack"
	"maxwe/internal/xrand"
)

func mustMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDetectsUAA(t *testing.T) {
	m := mustMonitor(t, Config{})
	a := attack.NewUAA()
	const space = 1 << 16
	for i := 0; i < 3000; i++ {
		if v, done := m.Observe(a.Next(space)); done && v != UAALike {
			t.Fatalf("window %d verdict %v, want uaa-like", m.Windows(), v)
		}
	}
	if m.Windows() == 0 {
		t.Fatal("no window completed")
	}
	if m.Verdict() != UAALike {
		t.Fatalf("final verdict %v", m.Verdict())
	}
}

func TestDetectsHammer(t *testing.T) {
	m := mustMonitor(t, Config{})
	a := attack.DefaultBPA(xrand.New(1))
	for i := 0; i < 3000; i++ {
		m.Observe(a.Next(1 << 16))
	}
	if m.Verdict() != HammerLike {
		t.Fatalf("BPA verdict %v, want hammer-like", m.Verdict())
	}

	m2 := mustMonitor(t, Config{})
	rep := attack.NewRepeated(42)
	for i := 0; i < 3000; i++ {
		m2.Observe(rep.Next(1 << 16))
	}
	if m2.Verdict() != HammerLike {
		t.Fatalf("repeated-address verdict %v, want hammer-like", m2.Verdict())
	}
}

func TestBenignZipfNotFlagged(t *testing.T) {
	m := mustMonitor(t, Config{})
	a := attack.NewHotCold(1<<16, 1.1, xrand.New(2))
	for i := 0; i < 20000; i++ {
		m.Observe(a.Next(1 << 16))
	}
	if m.Windows() < 10 {
		t.Fatalf("only %d windows completed", m.Windows())
	}
	if rate := m.FlaggedRate(); rate > 0.05 {
		t.Fatalf("benign Zipf flagged in %.0f%% of windows", rate*100)
	}
}

func TestBenignRandomNotFlagged(t *testing.T) {
	m := mustMonitor(t, Config{})
	a := attack.NewRandomUniform(xrand.New(3))
	for i := 0; i < 20000; i++ {
		m.Observe(a.Next(1 << 16))
	}
	if rate := m.FlaggedRate(); rate > 0.05 {
		t.Fatalf("uniform-random stream flagged in %.0f%% of windows", rate*100)
	}
}

func TestDetectionLatencyOneWindow(t *testing.T) {
	m := mustMonitor(t, Config{WindowSize: 256})
	a := attack.NewUAA()
	for i := 1; i <= 256; i++ {
		v, done := m.Observe(a.Next(1 << 12))
		if done {
			if i != 256 {
				t.Fatalf("window completed at write %d", i)
			}
			if v != UAALike {
				t.Fatalf("first-window verdict %v", v)
			}
			return
		}
	}
	t.Fatal("window never completed")
}

func TestVerdictString(t *testing.T) {
	if Benign.String() != "benign" || UAALike.String() != "uaa-like" ||
		HammerLike.String() != "hammer-like" {
		t.Fatal("verdict strings wrong")
	}
	if Verdict(99).String() != "verdict(99)" {
		t.Fatal("unknown verdict string wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{WindowSize: 1},
		{SequentialThreshold: 1.5},
		{SequentialThreshold: -0.1, WindowSize: 10},
		{ConcentrationK: -1},
		{ConcentrationThreshold: 2},
	}
	for i, c := range bad {
		if _, err := NewMonitor(c); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
	// Defaults applied for zero values.
	m := mustMonitor(t, Config{})
	if m.cfg.WindowSize != 1024 || m.cfg.ConcentrationK != 32 {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
}

func TestTopK(t *testing.T) {
	counts := map[int]int{1: 10, 2: 5, 3: 20, 4: 1}
	if got := topK(counts, 2); got != 30 {
		t.Fatalf("topK(2) = %d, want 30", got)
	}
	if got := topK(counts, 10); got != 36 {
		t.Fatalf("topK(all) = %d, want 36", got)
	}
}

func TestFlaggedRateBeforeWindows(t *testing.T) {
	m := mustMonitor(t, Config{})
	if m.FlaggedRate() != 0 {
		t.Fatal("flagged rate nonzero before any window")
	}
}
