// Package detect implements an online write-pattern monitor — a natural
// extension of the paper's threat analysis. The memory controller
// observes the logical write stream and classifies it:
//
//   - UAA-like: long sequential sweeps covering the whole space (the
//     paper's uniform address attack has a perfectly sequential
//     signature);
//   - hammer-like: a tiny set of addresses absorbing most writes (the
//     repeated-address and birthday-paradox attacks);
//   - benign: everything else (locality-rich workloads are neither
//     mostly-sequential nor concentrated on a handful of lines once a
//     DRAM buffer has absorbed the hottest traffic).
//
// Detection is windowed: the monitor keeps the last WindowSize addresses
// and evaluates two statistics per window — the sequential-successor rate
// and the top-K concentration. The paper's defense (Max-WE) is static; a
// detector enables complementary dynamic responses such as write
// throttling, which the example in examples/attackstudy discusses.
package detect

import "fmt"

// Verdict classifies a write-stream window.
type Verdict int

const (
	// Benign means no attack signature crossed its threshold.
	Benign Verdict = iota
	// UAALike means the window is dominated by sequential sweeps.
	UAALike
	// HammerLike means a few addresses dominate the window.
	HammerLike
)

// String returns the verdict name used in reports.
func (v Verdict) String() string {
	switch v {
	case Benign:
		return "benign"
	case UAALike:
		return "uaa-like"
	case HammerLike:
		return "hammer-like"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Config tunes the monitor. Zero values select the defaults.
type Config struct {
	// WindowSize is the number of recent writes per evaluation window
	// (default 1024).
	WindowSize int
	// SequentialThreshold flags UAA when the fraction of writes whose
	// address is exactly predecessor+1 exceeds it (default 0.9).
	SequentialThreshold float64
	// ConcentrationK and ConcentrationThreshold flag hammering when the
	// K most frequent addresses absorb more than the threshold fraction
	// of the window (defaults 32 and 0.8).
	ConcentrationK         int
	ConcentrationThreshold float64
}

func (c *Config) setDefaults() {
	if c.WindowSize == 0 {
		c.WindowSize = 1024
	}
	if c.SequentialThreshold == 0 {
		c.SequentialThreshold = 0.9
	}
	if c.ConcentrationK == 0 {
		c.ConcentrationK = 32
	}
	if c.ConcentrationThreshold == 0 {
		c.ConcentrationThreshold = 0.8
	}
}

func (c Config) validate() error {
	switch {
	case c.WindowSize < 2:
		return fmt.Errorf("detect: window size %d too small", c.WindowSize)
	case c.SequentialThreshold <= 0 || c.SequentialThreshold > 1:
		return fmt.Errorf("detect: sequential threshold %v outside (0,1]", c.SequentialThreshold)
	case c.ConcentrationK < 1:
		return fmt.Errorf("detect: concentration K %d must be positive", c.ConcentrationK)
	case c.ConcentrationThreshold <= 0 || c.ConcentrationThreshold > 1:
		return fmt.Errorf("detect: concentration threshold %v outside (0,1]", c.ConcentrationThreshold)
	}
	return nil
}

// Monitor observes a write-address stream and produces a verdict per
// window.
type Monitor struct {
	cfg Config

	prev       int
	havePrev   bool
	sequential int
	counts     map[int]int
	seen       int

	verdict      Verdict
	windowsTotal int64
	flagged      int64
}

// NewMonitor builds a monitor. Zero-valued config fields pick defaults.
func NewMonitor(cfg Config) (*Monitor, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, counts: make(map[int]int)}, nil
}

// Observe feeds one write address. It returns the verdict of the window
// that this write completed, or (Benign, false) mid-window.
func (m *Monitor) Observe(addr int) (Verdict, bool) {
	if m.havePrev && addr == m.prev+1 {
		m.sequential++
	}
	m.prev = addr
	m.havePrev = true
	m.counts[addr]++
	m.seen++
	if m.seen < m.cfg.WindowSize {
		return Benign, false
	}
	v := m.evaluate()
	m.reset()
	m.verdict = v
	m.windowsTotal++
	if v != Benign {
		m.flagged++
	}
	return v, true
}

func (m *Monitor) evaluate() Verdict {
	window := float64(m.seen)
	if float64(m.sequential)/window >= m.cfg.SequentialThreshold {
		return UAALike
	}
	// Top-K concentration without a full sort: selection over counts.
	top := topK(m.counts, m.cfg.ConcentrationK)
	if float64(top)/window >= m.cfg.ConcentrationThreshold {
		return HammerLike
	}
	return Benign
}

// topK sums the k largest values of counts.
func topK(counts map[int]int, k int) int {
	if len(counts) <= k {
		total := 0
		for _, c := range counts {
			total += c
		}
		return total
	}
	// Maintain a small min-heap-ish slice; k is small (default 32).
	best := make([]int, 0, k)
	for _, c := range counts {
		if len(best) < k {
			best = append(best, c)
			continue
		}
		mi := 0
		for i, b := range best {
			if b < best[mi] {
				mi = i
			}
		}
		if c > best[mi] {
			best[mi] = c
		}
	}
	total := 0
	for _, b := range best {
		total += b
	}
	return total
}

func (m *Monitor) reset() {
	m.sequential = 0
	m.seen = 0
	m.havePrev = false
	for k := range m.counts {
		delete(m.counts, k)
	}
}

// Verdict returns the most recent completed window's verdict.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// FlaggedRate returns the fraction of completed windows flagged as an
// attack (0 before any window completes).
func (m *Monitor) FlaggedRate() float64 {
	if m.windowsTotal == 0 {
		return 0
	}
	return float64(m.flagged) / float64(m.windowsTotal)
}

// Windows returns the number of completed windows.
func (m *Monitor) Windows() int64 { return m.windowsTotal }
