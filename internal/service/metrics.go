// metrics.go aggregates service-wide counters for GET /metrics: job and
// cell lifecycle totals, sweep throughput (cells/sec since daemon start)
// and the fault-injection counters accumulated from completed custom
// cells. The exposition format is the flat "name value" text form
// Prometheus-style scrapers ingest.
package service

import (
	"fmt"
	"io"
	"strings"
	"sync" //lint:allow nondeterminism "metrics are scrape-time observability, never part of job results or checkpoints"
	"time"

	"maxwe/internal/faultinject"
	"maxwe/internal/memo"
	"maxwe/internal/runner"
)

// Metrics is the daemon-wide counter set. All methods are safe for
// concurrent use.
type Metrics struct {
	mu    sync.Mutex
	start time.Time

	jobsSubmitted int64
	jobsDone      int64
	jobsFailed    int64
	jobsCanceled  int64

	cellsCompleted int64
	cellsResumed   int64
	cellsMemoHits  int64
	cellsFailed    int64
	cellRetries    int64

	faults faultinject.Counters
}

// NewMetrics creates a counter set anchored at the current time (the
// denominator of the cells/sec gauge).
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()} //lint:allow nondeterminism "uptime anchor for the cells/sec gauge; exposed only on /metrics, never serialized into results"
}

// onCellEvent folds one sweep progress event into the cell counters.
func (m *Metrics) onCellEvent(ev runner.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Status {
	case runner.StatusDone:
		m.cellsCompleted++
	case runner.StatusCached:
		m.cellsCompleted++
		m.cellsResumed++
	case runner.StatusMemo:
		m.cellsCompleted++
		m.cellsMemoHits++
	case runner.StatusFailed:
		m.cellsFailed++
	case runner.StatusRetry:
		m.cellRetries++
	}
}

// onSubmit counts one accepted job.
func (m *Metrics) onSubmit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted++
}

// onTerminal counts one job reaching a terminal state.
func (m *Metrics) onTerminal(s State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch s {
	case StateDone:
		m.jobsDone++
	case StateFailed:
		m.jobsFailed++
	case StateCanceled:
		m.jobsCanceled++
	}
}

// addFaults folds the fault counters of one completed simulation result
// into the daemon totals.
func (m *Metrics) addFaults(c faultinject.Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults.TransientFaults += c.TransientFaults
	m.faults.Retries += c.Retries
	m.faults.BackoffUnits += c.BackoffUnits
	m.faults.Escalations += c.Escalations
	m.faults.StuckAtFaults += c.StuckAtFaults
	m.faults.MetadataFaults += c.MetadataFaults
	m.faults.MetadataRepairs += c.MetadataRepairs
}

// write renders the counters plus the caller-supplied queue gauges in
// exposition order. cache, when non-nil, appends the memo-cache counter
// block (the manager passes a snapshot when the cluster cache is on).
func (m *Metrics) write(w io.Writer, queued, running int, cache *memo.Stats) error {
	m.mu.Lock()
	uptime := time.Since(m.start).Seconds() //lint:allow nondeterminism "uptime gauge for the text exposition; not part of any result document"
	cellsPerSec := 0.0
	if uptime > 0 {
		cellsPerSec = float64(m.cellsCompleted) / uptime
	}
	lines := []struct {
		name  string
		value string
	}{
		{"nvmd_jobs_queued", fmt.Sprint(queued)},
		{"nvmd_jobs_running", fmt.Sprint(running)},
		{"nvmd_jobs_submitted_total", fmt.Sprint(m.jobsSubmitted)},
		{"nvmd_jobs_done_total", fmt.Sprint(m.jobsDone)},
		{"nvmd_jobs_failed_total", fmt.Sprint(m.jobsFailed)},
		{"nvmd_jobs_canceled_total", fmt.Sprint(m.jobsCanceled)},
		{"nvmd_cells_completed_total", fmt.Sprint(m.cellsCompleted)},
		{"nvmd_cells_resumed_total", fmt.Sprint(m.cellsResumed)},
		{"nvmd_cells_memo_hits_total", fmt.Sprint(m.cellsMemoHits)},
		{"nvmd_cells_failed_total", fmt.Sprint(m.cellsFailed)},
		{"nvmd_cell_retries_total", fmt.Sprint(m.cellRetries)},
		{"nvmd_cells_per_second", fmt.Sprintf("%.6g", cellsPerSec)},
		{"nvmd_fault_transient_total", fmt.Sprint(m.faults.TransientFaults)},
		{"nvmd_fault_retries_total", fmt.Sprint(m.faults.Retries)},
		{"nvmd_fault_backoff_units_total", fmt.Sprint(m.faults.BackoffUnits)},
		{"nvmd_fault_escalations_total", fmt.Sprint(m.faults.Escalations)},
		{"nvmd_fault_stuckat_total", fmt.Sprint(m.faults.StuckAtFaults)},
		{"nvmd_fault_metadata_total", fmt.Sprint(m.faults.MetadataFaults)},
		{"nvmd_fault_metadata_repairs_total", fmt.Sprint(m.faults.MetadataRepairs)},
		{"nvmd_uptime_seconds", fmt.Sprintf("%.3f", uptime)},
	}
	m.mu.Unlock()
	if cache != nil {
		lines = append(lines, []struct {
			name  string
			value string
		}{
			{"nvmd_cache_hits_total", fmt.Sprint(cache.Hits)},
			{"nvmd_cache_mem_hits_total", fmt.Sprint(cache.MemHits)},
			{"nvmd_cache_disk_hits_total", fmt.Sprint(cache.DiskHits)},
			{"nvmd_cache_dedup_hits_total", fmt.Sprint(cache.DedupHits)},
			{"nvmd_cache_misses_total", fmt.Sprint(cache.Misses)},
			{"nvmd_cache_puts_total", fmt.Sprint(cache.Puts)},
			{"nvmd_cache_peer_hits_total", fmt.Sprint(cache.PeerHits)},
			{"nvmd_cache_peer_misses_total", fmt.Sprint(cache.PeerMisses)},
			{"nvmd_cache_peer_bytes_total", fmt.Sprint(cache.PeerBytes)},
			{"nvmd_cache_corrupt_total", fmt.Sprint(cache.Corrupt)},
			{"nvmd_cache_write_errors_total", fmt.Sprint(cache.WriteErrors)},
			{"nvmd_cache_bytes_read_total", fmt.Sprint(cache.BytesRead)},
			{"nvmd_cache_bytes_written_total", fmt.Sprint(cache.BytesWritten)},
			{"nvmd_cache_entries", fmt.Sprint(cache.Entries)},
		}...)
	}

	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.name)
		b.WriteByte(' ')
		b.WriteString(l.value)
		b.WriteByte('\n')
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("service: write metrics: %w", err)
	}
	return nil
}
