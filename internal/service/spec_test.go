package service

import (
	"strings"
	"testing"
)

func TestNormalizeDefaultsAndValidation(t *testing.T) {
	// A bare fig7 spec inherits the paper's full grid.
	norm, err := JobSpec{Kind: KindFig7}.normalize()
	if err != nil {
		t.Fatalf("normalize(fig7): %v", err)
	}
	if len(norm.SWRPercents) != 6 || len(norm.WLs) != 4 {
		t.Fatalf("fig7 defaults = %d percents x %d wls, want 6x4", len(norm.SWRPercents), len(norm.WLs))
	}
	if norm.cellCount() != 24 {
		t.Fatalf("fig7 cellCount = %d, want 24", norm.cellCount())
	}

	bad := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Kind: "fig9"}, "unknown job kind"},
		{"percent range", JobSpec{Kind: KindFig7, SWRPercents: []int{101}}, "out of [0, 100]"},
		{"dup wl", JobSpec{Kind: KindFig7, WLs: []string{"tlsr", "tlsr"}}, "duplicate wear leveler"},
		{"no cells", JobSpec{Kind: KindCells}, "at least one cell"},
		{"empty key", JobSpec{Kind: KindCells, Cells: []CellSpec{{}}}, "empty key"},
		{"dup key", JobSpec{Kind: KindCells, Cells: []CellSpec{{Key: "a"}, {Key: "a"}}}, "duplicate cell key"},
		{"neg parallelism", JobSpec{Kind: KindFig8, Parallelism: -1}, "parallelism"},
		{"bad setup", JobSpec{Kind: KindFig8, Setup: &SetupSpec{VariationQ: 0.5}}, "variation q"},
		{"bad profile", JobSpec{Kind: KindFig8, Setup: &SetupSpec{Profile: "cauchy"}}, "profile"},
	}
	for _, tc := range bad {
		if _, err := tc.spec.normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: normalize() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFingerprintIgnoresRunnerPolicy(t *testing.T) {
	base, err := JobSpec{Kind: KindFig7}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Parallelism, tuned.Retries, tuned.CellTimeoutMS = 8, 3, 5000
	if base.fingerprint() != tuned.fingerprint() {
		t.Fatal("fingerprint changed with runner policy; resumed jobs could not reuse their checkpoints")
	}
	smaller := base
	smaller.Setup = &SetupSpec{Regions: 64}
	smaller, err = smaller.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.fingerprint() == smaller.fingerprint() {
		t.Fatal("fingerprint ignored an experiment-shaping field")
	}
	if !strings.HasPrefix(base.fingerprint(), "nvmd/v1/fig7/") {
		t.Fatalf("fingerprint %q is missing its version prefix", base.fingerprint())
	}
}
