package service

import (
	"maxwe"
	"strings"
	"testing"
)

func TestNormalizeDefaultsAndValidation(t *testing.T) {
	// A bare fig7 spec inherits the paper's full grid.
	norm, err := JobSpec{Kind: KindFig7}.normalize()
	if err != nil {
		t.Fatalf("normalize(fig7): %v", err)
	}
	if len(norm.SWRPercents) != 6 || len(norm.WLs) != 4 {
		t.Fatalf("fig7 defaults = %d percents x %d wls, want 6x4", len(norm.SWRPercents), len(norm.WLs))
	}
	if norm.cellCount() != 24 {
		t.Fatalf("fig7 cellCount = %d, want 24", norm.cellCount())
	}

	bad := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Kind: "fig9"}, "unknown job kind"},
		{"percent range", JobSpec{Kind: KindFig7, SWRPercents: []int{101}}, "out of [0, 100]"},
		{"dup wl", JobSpec{Kind: KindFig7, WLs: []string{"tlsr", "tlsr"}}, "duplicate wear leveler"},
		{"no cells", JobSpec{Kind: KindCells}, "at least one cell"},
		{"empty key", JobSpec{Kind: KindCells, Cells: []CellSpec{{}}}, "empty key"},
		{"dup key", JobSpec{Kind: KindCells, Cells: []CellSpec{{Key: "a"}, {Key: "a"}}}, "duplicate cell key"},
		{"neg parallelism", JobSpec{Kind: KindFig8, Parallelism: -1}, "parallelism"},
		{"bad setup", JobSpec{Kind: KindFig8, Setup: &SetupSpec{VariationQ: 0.5}}, "variation q"},
		{"bad profile", JobSpec{Kind: KindFig8, Setup: &SetupSpec{Profile: "cauchy"}}, "profile"},
	}
	for _, tc := range bad {
		if _, err := tc.spec.normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: normalize() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestFingerprintGolden pins the exact fingerprint bytes of two
// representative specs. These strings name checkpoint directories on
// every nvmd data dir in existence: if this test fails, a wire-format
// change (json tags, field set, canonicalization) has orphaned all
// stored checkpoints. Such a change must be deliberate — review the
// jsonschema golden diff (make lint-schema) and migrate or document the
// breakage before updating these constants.
func TestFingerprintGolden(t *testing.T) {
	fig7, err := JobSpec{Kind: KindFig7, Parallelism: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := JobSpec{Kind: KindCells, Cells: []CellSpec{
		{Key: "paper-default", Config: maxwe.DefaultConfig()},
	}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		name string
		got  string
		want string
	}{
		{"fig7 default grid", fig7.fingerprint(),
			"nvmd/v1/fig7/da261202205384e6fe471eeb30d6c820f939bab197a0044af2fad7ae5a97b202"},
		{"cells paper default", cells.fingerprint(),
			"nvmd/v1/cells/8484f33bf88ccaa872fde54ff633e4f0ce379e79bb7c3c13a3642fa5e0129f16"},
	}
	for _, tc := range golden {
		if tc.got != tc.want {
			t.Errorf("%s fingerprint = %q, want %q (checkpoint-breaking wire change?)", tc.name, tc.got, tc.want)
		}
	}
}

func TestFingerprintIgnoresRunnerPolicy(t *testing.T) {
	base, err := JobSpec{Kind: KindFig7}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Parallelism, tuned.Retries, tuned.CellTimeoutMS = 8, 3, 5000
	if base.fingerprint() != tuned.fingerprint() {
		t.Fatal("fingerprint changed with runner policy; resumed jobs could not reuse their checkpoints")
	}
	federated := base
	federated.Federated = true
	if base.fingerprint() != federated.fingerprint() {
		t.Fatal("fingerprint changed with the federated flag; a federated job's checkpoint could not resume locally (or vice versa)")
	}
	smaller := base
	smaller.Setup = &SetupSpec{Regions: 64}
	smaller, err = smaller.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.fingerprint() == smaller.fingerprint() {
		t.Fatal("fingerprint ignored an experiment-shaping field")
	}
	if !strings.HasPrefix(base.fingerprint(), "nvmd/v1/fig7/") {
		t.Fatalf("fingerprint %q is missing its version prefix", base.fingerprint())
	}
}
