// Unit tests for the client's retry/backoff machinery against injected
// flaky servers: transient 5xx, 429 with Retry-After, hung requests
// (per-attempt timeouts), non-retryable client errors, idempotency-key
// stability across retries, and Wait's poll fallback behavior.
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

// fastRetry is a tight deterministic schedule for tests.
func fastRetry() client.RetryPolicy {
	return client.RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	p := client.RetryPolicy{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // retry 1
		100 * time.Millisecond, // retry 2
		200 * time.Millisecond, // retry 3
		300 * time.Millisecond, // retry 4: capped
		300 * time.Millisecond, // retry 5: stays capped
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// writeStatus serves a minimal JobStatus document.
func writeStatus(w http.ResponseWriter, st service.JobStatus) {
	w.Header().Set("Content-Type", "application/json")
	raw, err := json.Marshal(st)
	if err != nil {
		panic(err)
	}
	_, _ = w.Write(raw)
}

// TestRetriesTransient5xx pins bounded recovery from a server that heals:
// two 503s, then success.
func TestRetriesTransient5xx(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		writeStatus(w, service.JobStatus{ID: "job-000001", State: service.StateQueued})
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	st, err := c.Status(context.Background(), "job-000001", false)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.ID != "job-000001" || hits.Load() != 3 {
		t.Fatalf("status %+v after %d attempts, want success on attempt 3", st, hits.Load())
	}
}

// TestHonorsRetryAfter pins that an explicit server hint stretches the
// backoff: the retry after a 429 + Retry-After: 1 waits at least a
// second, even though the policy's own schedule is milliseconds.
func TestHonorsRetryAfter(t *testing.T) {
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now())
		if len(times) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		writeStatus(w, service.JobStatus{ID: "job-000001"})
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	if _, err := c.Status(context.Background(), "job-000001", false); err != nil {
		t.Fatalf("Status: %v", err)
	}
	if len(times) != 2 {
		t.Fatalf("saw %d attempts, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < time.Second {
		t.Fatalf("retry came after %v, want >= 1s per Retry-After", gap)
	}
}

// TestNoRetryOnClientError pins that 4xx responses are final: one
// attempt, a typed HTTPError, and the conventional message format.
func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error": "service: no such job"}`))
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	_, err := c.Status(context.Background(), "job-000042", false)
	var he *client.HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusNotFound {
		t.Fatalf("error = %v, want *HTTPError 404", err)
	}
	if he.Temporary() {
		t.Fatal("404 must not classify as temporary")
	}
	if !strings.Contains(err.Error(), "(HTTP 404)") || !strings.Contains(err.Error(), "no such job") {
		t.Fatalf("error text = %q, want conventional format", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("saw %d attempts on a 404, want exactly 1", hits.Load())
	}
}

// TestAttemptTimeoutRetries pins the per-attempt timeout: a request that
// hangs is abandoned and retried, and the retry succeeds.
func TestAttemptTimeoutRetries(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			<-r.Context().Done() // hang until the client gives up
			return
		}
		writeStatus(w, service.JobStatus{ID: "job-000001"})
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	c.Retry.RequestTimeout = 50 * time.Millisecond
	st, err := c.Status(context.Background(), "job-000001", false)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.ID != "job-000001" || hits.Load() != 2 {
		t.Fatalf("status %+v after %d attempts, want success on the retry", st, hits.Load())
	}
}

// TestSubmitKeyStableAcrossRetries pins the idempotency contract: every
// attempt of one Submit carries the same non-empty Idempotency-Key, and a
// second Submit draws a fresh one.
func TestSubmitKeyStableAcrossRetries(t *testing.T) {
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		if len(keys) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeStatus(w, service.JobStatus{ID: "job-000001"})
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	if _, err := c.Submit(context.Background(), service.JobSpec{}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Submit(context.Background(), service.JobSpec{}); err != nil {
		t.Fatalf("Submit(second): %v", err)
	}
	if len(keys) != 3 {
		t.Fatalf("saw %d POSTs, want 3 (attempt + retry + second submit)", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("retry key %q != original %q; a retried submit must reuse its key", keys[1], keys[0])
	}
	if keys[2] == keys[0] {
		t.Fatal("a second logical submit reused the first key; it must draw a fresh one")
	}
}

// TestWaitPollFallback pins Wait's degraded mode: with the event stream
// unavailable it polls status (with backoff) until the job is done.
func TestWaitPollFallback(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write([]byte(`{"error": "service: no such job"}`))
			return
		}
		n := int(polls.Add(1))
		st := service.JobStatus{ID: "job-000001", State: service.StateRunning, CellsDone: n, CellsTotal: 5}
		if n >= 5 {
			st.State = service.StateDone
			st.CellsDone = 5
		}
		writeStatus(w, st)
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	st, err := c.Wait(context.Background(), "job-000001")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != service.StateDone || st.CellsDone != 5 {
		t.Fatalf("Wait = %+v, want done with 5 cells", st)
	}
}

// TestWaitReturnsOnCancel pins prompt unwinding: a Wait stuck on a
// never-finishing job returns quickly once its context is canceled.
func TestWaitReturnsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			w.WriteHeader(http.StatusOK)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			<-r.Context().Done() // stream that never delivers
			return
		}
		writeStatus(w, service.JobStatus{ID: "job-000001", State: service.StateRunning})
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := c.Wait(ctx, "job-000001")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Wait took %v to notice cancellation", elapsed)
	}
}

// TestEventsReconnectsWithResumeOffset pins the hardened Events stream:
// a server that drops the NDJSON connection after every few events must
// not silently end the watch — the client reconnects with ?from= and
// the watcher sees every event exactly once, through to the terminal
// state.
func TestEventsReconnectsWithResumeOffset(t *testing.T) {
	const total = 9 // events 0..8; the last is terminal
	makeEvent := func(seq int) service.Event {
		ev := service.Event{Seq: seq, Job: "job-000001", Type: "cell", Status: "done"}
		if seq == total-1 {
			ev.Type, ev.State = "state", service.StateDone
		}
		return ev
	}
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		from := 0
		if s := r.URL.Query().Get("from"); s != "" {
			var err error
			if from, err = strconv.Atoi(s); err != nil {
				t.Errorf("bad from=%q", s)
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		// Serve at most 3 events per connection, then cut the stream
		// abruptly (no terminal state), forcing a resume.
		for i := from; i < from+3 && i < total; i++ {
			if err := enc.Encode(makeEvent(i)); err != nil {
				return
			}
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}))
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = fastRetry()
	var seen []int
	err := c.Events(context.Background(), "job-000001", func(ev service.Event) error {
		seen = append(seen, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(seen) != total {
		t.Fatalf("saw %d events %v, want %d", len(seen), seen, total)
	}
	for i, seq := range seen {
		if seq != i {
			t.Fatalf("event %d has seq %d (events lost or duplicated): %v", i, seq, seen)
		}
	}
	if n := conns.Load(); n < 3 {
		t.Fatalf("server saw %d connections; the drop-every-3 server requires >= 3", n)
	}
}

// TestEventsGivesUpAfterRepeatedSilentDrops pins the failure bound: a
// stream that keeps dropping without delivering anything must surface an
// error after Retry.MaxAttempts consecutive failures, not loop forever —
// that is what lets Wait fall back to polling.
func TestEventsGivesUpAfterRepeatedSilentDrops(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		// Accept and immediately close without a terminal event.
	}))
	defer srv.Close()
	c := client.New(srv.URL)
	c.Retry = fastRetry()
	err := c.Events(context.Background(), "job-000001", func(service.Event) error { return nil })
	if err == nil {
		t.Fatal("Events returned nil for a stream that never progressed")
	}
	if got := conns.Load(); got != int32(fastRetry().MaxAttempts) {
		t.Fatalf("server saw %d connections, want exactly MaxAttempts=%d", got, fastRetry().MaxAttempts)
	}
}

// TestEventsStopsOnNonRetryableError pins that a 404 (no such job) is
// not retried.
func TestEventsStopsOnNonRetryableError(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"service: no such job"}`))
	}))
	defer srv.Close()
	c := client.New(srv.URL)
	c.Retry = fastRetry()
	err := c.Events(context.Background(), "job-000404", func(service.Event) error { return nil })
	if err == nil {
		t.Fatal("Events returned nil for a 404")
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("404 was retried: %d connections", got)
	}
}
