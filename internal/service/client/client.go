// Package client is the thin Go client for the nvmd HTTP API. It
// round-trips exactly the JSON documents internal/service serves —
// JobSpec in, JobStatus/Event/result bytes out — and adds the one
// convenience a CLI needs: Wait, which follows the event stream to a
// terminal state and falls back to polling if the stream breaks (for
// example across a daemon restart).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"maxwe/internal/service"
)

// Client talks to one nvmd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the {"error": "..."} body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// do issues one request and decodes a 2xx JSON body into out (skipped
// when out is nil). Non-2xx responses become errors carrying the server's
// message and status code.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reqBody io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		reqBody = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reqBody)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read %s %s response: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("client: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if rawOut, ok := out.(*[]byte); ok {
		*rawOut = raw
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit submits a job and returns its initial status (including the
// assigned ID).
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches a job's live status. With partial set, the completed
// cell values checkpointed so far are included.
func (c *Client) Status(ctx context.Context, id string, partial bool) (service.JobStatus, error) {
	path := "/v1/jobs/" + id
	if partial {
		path += "?partial=1"
	}
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Jobs lists every job on the daemon.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches the final result document of a done job — the exact
// bytes the daemon persisted.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Metrics fetches the /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw)
	return string(raw), err
}

// Healthz probes the daemon.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Events streams the job's NDJSON progress events, calling fn for each
// one until the stream ends (terminal job state), fn returns an error, or
// ctx is canceled. Returning io.EOF from fn stops the stream cleanly.
func (c *Client) Events(ctx context.Context, id string, fn func(service.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("client: build events request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: events %s: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("client: events %s: %s (HTTP %d)", id, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: events %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: decode event: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: events %s stream: %w", id, err)
	}
	return nil
}

// WaitPollInterval is the fallback polling cadence Wait uses when the
// event stream is unavailable (e.g. the daemon restarted mid-wait).
const WaitPollInterval = 200 * time.Millisecond

// Wait blocks until the job reaches a terminal state and returns its
// final status. It prefers the event stream (no polling) and degrades to
// polling when the stream breaks, so it survives a daemon restart
// mid-job.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	for {
		st, err := c.Status(ctx, id, false)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		// Follow the stream until it ends; errors here mean the daemon
		// went away mid-stream, which polling absorbs.
		_ = c.Events(ctx, id, func(ev service.Event) error {
			if ev.Type == "state" && ev.State.Terminal() {
				return io.EOF
			}
			return nil
		})
		if err := ctx.Err(); err != nil {
			return service.JobStatus{}, fmt.Errorf("client: wait %s: %w", id, err)
		}
		st, err = c.Status(ctx, id, false)
		if err == nil && st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return service.JobStatus{}, fmt.Errorf("client: wait %s: %w", id, ctx.Err())
		case <-time.After(WaitPollInterval):
		}
	}
}
