// Package client is the robust Go client for the nvmd HTTP API. It
// round-trips exactly the JSON documents internal/service serves —
// JobSpec in, JobStatus/Event/result bytes out — and hardens the network
// edge the way the daemon's store hardens the disk edge:
//
//   - every unary request runs under a per-attempt timeout and is retried
//     on transient failure (transport errors, HTTP 5xx, HTTP 429) with
//     capped exponential backoff on a deterministic schedule (no jitter,
//     so a retried interaction is reproducible);
//   - a 429 carrying Retry-After is honored: the client waits at least as
//     long as the server asked before the next attempt, which turns a
//     full job queue into graceful backpressure instead of an error;
//   - Submit sends an Idempotency-Key header (one random token per
//     logical submission, stable across its retries), so a retry whose
//     predecessor actually reached the daemon returns the original job
//     instead of creating a duplicate;
//   - Wait follows the event stream to a terminal state and degrades to
//     polling with capped exponential backoff that resets whenever
//     progress is observed, so it stays responsive on an active job and
//     cheap on a stalled one, and it returns promptly on context
//     cancellation.
package client

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"maxwe/internal/cluster"
	"maxwe/internal/service"
)

// RetryPolicy tunes the client's unary-request retry loop. The zero
// value selects the defaults documented per field.
type RetryPolicy struct {
	// MaxAttempts bounds how many times a request is tried in total
	// (default 4; 1 disables retries). Negative is invalid.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential schedule (default 2s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each individual attempt of a unary request
	// (default 30s; negative disables the per-attempt timeout). The
	// long-lived event stream is exempt — it is bounded by its context.
	RequestTimeout time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return p.MaxBackoff
}

func (p RetryPolicy) timeout() time.Duration {
	switch {
	case p.RequestTimeout < 0:
		return 0
	case p.RequestTimeout == 0:
		return 30 * time.Second
	default:
		return p.RequestTimeout
	}
}

// Backoff returns the deterministic delay before retry number retry
// (1-based): min(BaseBackoff << (retry-1), MaxBackoff). Exported so
// callers (and tests) can reason about the exact schedule.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	d := p.base()
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.max() {
			return p.max()
		}
	}
	if d > p.max() {
		return p.max()
	}
	return d
}

// Client talks to one nvmd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes timeouts and the retry/backoff schedule; the zero value
	// selects the RetryPolicy defaults.
	Retry RetryPolicy
}

// New returns a client for the daemon at baseURL with the default retry
// policy.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// HTTPError is a non-2xx response, carrying the server's message and the
// Retry-After hint when the server sent one.
type HTTPError struct {
	// Method and Path identify the request.
	Method, Path string
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's {"error": ...} body, if any.
	Message string
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

// Error renders the conventional client error string.
func (e *HTTPError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.StatusCode)
	}
	return fmt.Sprintf("client: %s %s: HTTP %d", e.Method, e.Path, e.StatusCode)
}

// Temporary reports whether the response may succeed on retry: server
// errors and explicit backpressure (429) are temporary, client errors are
// not.
func (e *HTTPError) Temporary() bool {
	return e.StatusCode >= 500 || e.StatusCode == http.StatusTooManyRequests
}

// apiError is the {"error": "..."} body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// attempt issues one request. header entries are added to the request.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, header http.Header) error {
	if t := c.Retry.timeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reqBody)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read %s %s response: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		he := &HTTPError{Method: method, Path: path, StatusCode: resp.StatusCode}
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil {
			he.Message = ae.Error
		}
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs >= 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
		return he
	}
	if out == nil {
		return nil
	}
	if rawOut, ok := out.(*[]byte); ok {
		*rawOut = raw
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// retryable classifies an attempt error: transport failures and temporary
// HTTP statuses are worth another attempt, everything else (4xx, decode
// errors) is final.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Temporary()
	}
	// Not an HTTP response at all: the request never completed (connection
	// refused, reset, attempt timeout) — exactly what retries are for.
	return true
}

// retryAfter extracts the server's Retry-After hint from an attempt
// error, 0 when there is none.
func retryAfter(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// do issues a request with retries: up to Retry.MaxAttempts attempts,
// capped exponential backoff between them, honoring Retry-After, stopping
// early when ctx is canceled or the error is not retryable. body is
// marshaled once and replayed per attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any, header http.Header) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	var last error
	for attempt := 1; attempt <= c.Retry.attempts(); attempt++ {
		last = c.attempt(ctx, method, path, raw, out, header)
		if last == nil {
			return nil
		}
		if ctx.Err() != nil || !retryable(last) || attempt == c.Retry.attempts() {
			return last
		}
		wait := c.Retry.Backoff(attempt)
		if ra := retryAfter(last); ra > wait {
			wait = ra
		}
		select {
		case <-ctx.Done():
			return last
		case <-time.After(wait):
		}
	}
	return last
}

// newIdempotencyKey draws the random token that makes a retried Submit
// safe. Randomness (rather than hashing the spec) is deliberate: two
// intentional submissions of the same spec are distinct jobs.
func newIdempotencyKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("client: idempotency key: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Submit submits a job and returns its initial status (including the
// assigned ID). The submission carries one idempotency key across all its
// retries, so an attempt whose response was lost is not duplicated.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	key, err := newIdempotencyKey()
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st, http.Header{"Idempotency-Key": {key}})
	return st, err
}

// SubmitFederated submits a job with the federated flag set, asking a
// coordinator daemon to shard the job's cells across its worker cluster.
// The flag is runner policy: against a daemon with no cluster the job
// runs locally, and either way the result bytes are identical, so
// callers lose nothing by asking.
func (c *Client) SubmitFederated(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	spec.Federated = true
	return c.Submit(ctx, spec)
}

// Workers lists the workers registered with a coordinator daemon
// (GET /v1/cluster/workers).
func (c *Client) Workers(ctx context.Context) ([]cluster.WorkerStatus, error) {
	var out []cluster.WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster/workers", nil, &out, nil)
	return out, err
}

// ClusterStats fetches a coordinator daemon's scheduler counters
// (GET /v1/cluster/stats).
func (c *Client) ClusterStats(ctx context.Context) (cluster.Stats, error) {
	var out cluster.Stats
	err := c.do(ctx, http.MethodGet, "/v1/cluster/stats", nil, &out, nil)
	return out, err
}

// Status fetches a job's live status. With partial set, the completed
// cell values checkpointed so far are included.
func (c *Client) Status(ctx context.Context, id string, partial bool) (service.JobStatus, error) {
	path := "/v1/jobs/" + id
	if partial {
		path += "?partial=1"
	}
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st, nil)
	return st, err
}

// Jobs lists every job on the daemon.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out, nil)
	return out, err
}

// Result fetches the final result document of a done job — the exact
// bytes the daemon persisted.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw, nil)
	return raw, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st, nil)
	return st, err
}

// CacheStats fetches the cluster-wide result-cache counters.
func (c *Client) CacheStats(ctx context.Context) (service.CacheStatus, error) {
	var cs service.CacheStatus
	err := c.do(ctx, http.MethodGet, "/v1/cache/stats", nil, &cs, nil)
	return cs, err
}

// Metrics fetches the /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw, nil)
	return string(raw), err
}

// Healthz probes the daemon.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, nil)
}

// Events streams the job's NDJSON progress events, calling fn for each
// one until the job reaches a terminal state, fn returns an error, or ctx
// is canceled. Returning io.EOF from fn stops the stream cleanly.
//
// The stream is hardened for long-lived watchers: a dropped connection
// (proxy timeout, daemon restart, network blip) reconnects with a
// ?from= resume offset instead of silently ending, so fn sees every
// event exactly once per daemon lifetime. Reconnection gives up after
// Retry.MaxAttempts consecutive attempts that deliver no events (the
// counter resets on any delivered event), so a permanently gone daemon
// surfaces as an error rather than an infinite loop. One caveat is
// inherited from the server: the event log is in-memory, so after a
// daemon restart sequence numbers restart too and the fresh history is
// replayed — fn must tolerate a Seq that jumps backward across a
// reconnect (terminal detection does: terminal states are sticky).
func (c *Client) Events(ctx context.Context, id string, fn func(service.Event) error) error {
	from := 0
	failures := 0
	for {
		progressed := false
		sawTerminal := false
		fatal, err := c.streamEventsOnce(ctx, id, from, func(ev service.Event) error {
			progressed = true
			from = ev.Seq + 1
			if ev.Type == "state" && ev.State.Terminal() {
				sawTerminal = true
			}
			return fn(ev)
		})
		if fatal {
			if errors.Is(err, io.EOF) {
				return nil // fn asked to stop
			}
			return err
		}
		if sawTerminal {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("client: events %s: %w", id, err)
		}
		if progressed {
			failures = 0
		} else {
			failures++
		}
		if failures >= c.Retry.attempts() {
			return fmt.Errorf("client: events %s: stream dropped %d times with no progress: %w", id, failures, err)
		}
		wait := c.Retry.Backoff(failures + 1)
		if progressed {
			// The daemon was just talking to us; come straight back.
			wait = c.Retry.base()
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: events %s: %w", id, ctx.Err())
		case <-time.After(wait):
		}
	}
}

// streamEventsOnce follows one NDJSON connection from sequence offset
// from. fatal=true means the loop must stop and surface err (a non-2xx
// the server meant, or fn's own error); fatal=false classifies err as a
// dropped stream worth resuming — including a clean server close before
// the job finished, which is what a drained daemon produces.
func (c *Client) streamEventsOnce(ctx context.Context, id string, from int, deliver func(service.Event) error) (fatal bool, err error) {
	path := "/v1/jobs/" + id + "/events"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return true, fmt.Errorf("client: build events request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, fmt.Errorf("client: events %s: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		he := &HTTPError{Method: http.MethodGet, Path: path, StatusCode: resp.StatusCode}
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil {
			he.Message = ae.Error
		}
		return !he.Temporary(), he
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A cut connection can surface its last buffered fragment as a
			// truncated line; resume and let the server resend it whole.
			return false, fmt.Errorf("client: events %s: truncated event line: %w", id, err)
		}
		if err := deliver(ev); err != nil {
			return true, err
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("client: events %s stream: %w", id, err)
	}
	return false, nil // clean close; the caller decides via sawTerminal
}

// Wait poll backoff bounds: the fallback poll starts at WaitBaseBackoff
// after a silent check and doubles up to WaitMaxBackoff; any observed
// progress (state change or newly completed cells) resets it to the base,
// so an active job is polled eagerly and a stalled one cheaply.
const (
	// WaitBaseBackoff is the initial (and post-progress) poll delay.
	WaitBaseBackoff = 100 * time.Millisecond
	// WaitMaxBackoff caps the poll delay while nothing changes.
	WaitMaxBackoff = 2 * time.Second
)

// Wait blocks until the job reaches a terminal state and returns its
// final status. It prefers the event stream (no polling) and degrades to
// polling with capped exponential backoff when the stream breaks, so it
// survives a daemon restart mid-job; progress observed in a poll resets
// the backoff. It returns promptly when ctx is canceled.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	backoff := WaitBaseBackoff
	lastState := service.State("")
	lastDone := -1
	for {
		st, err := c.Status(ctx, id, false)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if st.State != lastState || st.CellsDone > lastDone {
			lastState, lastDone = st.State, st.CellsDone
			backoff = WaitBaseBackoff
		}
		// Follow the stream until it ends; errors here mean the daemon
		// went away mid-stream, which the poll loop absorbs.
		_ = c.Events(ctx, id, func(ev service.Event) error {
			if ev.Type == "state" && ev.State.Terminal() {
				return io.EOF
			}
			return nil
		})
		if err := ctx.Err(); err != nil {
			return service.JobStatus{}, fmt.Errorf("client: wait %s: %w", id, err)
		}
		st, err = c.Status(ctx, id, false)
		if err == nil {
			if st.State.Terminal() {
				return st, nil
			}
			if st.State != lastState || st.CellsDone > lastDone {
				lastState, lastDone = st.State, st.CellsDone
				backoff = WaitBaseBackoff
			}
		}
		select {
		case <-ctx.Done():
			return service.JobStatus{}, fmt.Errorf("client: wait %s: %w", id, ctx.Err())
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > WaitMaxBackoff {
			backoff = WaitMaxBackoff
		}
	}
}
