// job.go holds the in-memory job record and the documents the API serves
// for it: JobStatus (live progress, partial results) and JobResult (the
// final report-formatted output). JobResult is built purely from the
// sweep's completed cell values — never from run-dependent bookkeeping
// like resume counts or timing — so an interrupted-and-resumed job
// serializes byte-identically to an uninterrupted one.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync" //lint:allow nondeterminism "job records are mutated by HTTP handlers and the worker pool; results are built only from completed cell values"

	"maxwe"
	"maxwe/internal/experiments"
	"maxwe/internal/report"
	"maxwe/internal/runner"
)

// State is a job lifecycle state.
type State string

// Job lifecycle states. Queued and running jobs survive a daemon restart
// (they resume from their checkpoint); done, failed and canceled are
// terminal and persisted.
const (
	// StateQueued means the job waits for a job worker.
	StateQueued State = "queued"
	// StateRunning means the job's sweep is executing.
	StateRunning State = "running"
	// StateDone means the sweep completed and the result is available.
	StateDone State = "done"
	// StateFailed means the sweep infrastructure errored (not a cell
	// failure — failed cells are recorded inside a done result).
	StateFailed State = "failed"
	// StateCanceled means the job was canceled through the API.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the live view of a job served by GET /v1/jobs/{id}.
type JobStatus struct {
	// ID is the job identifier assigned at submission.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Spec is the normalized job specification.
	Spec JobSpec `json:"spec"`
	// CellsTotal is the number of sweep cells the job expands to;
	// CellsDone counts completed ones (checkpoint-resumed included) and
	// CellsFailed the ones whose final attempt errored.
	CellsTotal  int `json:"cells_total"`
	CellsDone   int `json:"cells_done"`
	CellsFailed int `json:"cells_failed"`
	// Resumed counts cells satisfied from the checkpoint instead of
	// recomputed, this daemon lifetime.
	Resumed int `json:"resumed"`
	// Error carries the infrastructure failure of a failed job.
	Error string `json:"error,omitempty"`
	// Partial maps completed cell keys to their checkpointed raw values.
	// Populated on request (GET /v1/jobs/{id}?partial=1) from the job's
	// checkpoint file.
	Partial map[string]json.RawMessage `json:"partial,omitempty"`
}

// JobResult is the final output served by GET /v1/jobs/{id}/result. It
// contains the completed rows, the per-cell failures, and the same
// report-formatted renderings cmd/figures prints.
type JobResult struct {
	// ID and Kind identify the job that produced the result.
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Fig7 holds the completed Figure 7 rows in the paper's order (fig7
	// jobs).
	Fig7 []experiments.Fig7Row `json:"fig7,omitempty"`
	// Fig8 holds the completed Figure 8 rows, and Gmeans the per-scheme
	// geometric means over them (fig8 jobs).
	Fig8   []experiments.Fig8Row `json:"fig8,omitempty"`
	Gmeans map[string]float64    `json:"gmeans,omitempty"`
	// Cells maps cell keys to full simulation results (cells jobs).
	Cells map[string]maxwe.Result `json:"cells,omitempty"`
	// Failed maps cell keys to the error message of their final attempt.
	Failed map[string]string `json:"failed,omitempty"`
	// Table and CSV are the report-formatted renderings of the rows.
	Table string `json:"table"`
	CSV   string `json:"csv"`
}

// job is the manager's in-memory record of one submitted job.
type job struct {
	id          string
	spec        JobSpec // normalized
	fingerprint string
	cellsTotal  int
	events      *eventLog

	mu          sync.Mutex
	state       State
	err         string
	cellsDone   int
	cellsFailed int
	resumed     int
	// cancelRequested distinguishes an API cancel (terminal) from a
	// daemon shutdown drain (job re-queues on restart).
	cancelRequested bool
	cancel          context.CancelFunc
	// result holds the marshaled JobResult once the job is done.
	result []byte
}

func newJob(id string, spec JobSpec) *job {
	return &job{
		id:          id,
		spec:        spec,
		fingerprint: spec.fingerprint(),
		cellsTotal:  spec.cellCount(),
		events:      newEventLog(),
		state:       StateQueued,
	}
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		CellsTotal:  j.cellsTotal,
		CellsDone:   j.cellsDone,
		CellsFailed: j.cellsFailed,
		Resumed:     j.resumed,
		Error:       j.err,
	}
}

// setState transitions the job and emits a state event; terminal states
// complete the event stream.
func (j *job) setState(s State, errMsg string) {
	j.mu.Lock()
	j.state = s
	j.err = errMsg
	done, total := j.cellsDone, j.cellsTotal
	j.mu.Unlock()
	j.events.append(Event{
		Job: j.id, Type: "state", State: s, Error: errMsg,
		CellsDone: done, CellsTotal: total,
	})
	if s.Terminal() {
		j.events.finish()
	}
}

// onRunnerEvent adapts one sweep progress event into counters, metrics
// and the job's event stream. The runner serializes Progress calls, so no
// extra locking discipline is needed beyond the job mutex.
func (j *job) onRunnerEvent(m *Metrics) func(runner.Event) {
	return func(ev runner.Event) {
		j.mu.Lock()
		switch ev.Status {
		case runner.StatusDone:
			j.cellsDone++
		case runner.StatusCached:
			j.cellsDone++
			j.resumed++
		case runner.StatusMemo:
			// A memo hit completes the cell exactly like a computation —
			// the result and checkpoint bytes are identical — it was just
			// served from the content-addressed cache.
			j.cellsDone++
		case runner.StatusFailed:
			j.cellsFailed++
		}
		done, total := j.cellsDone, j.cellsTotal
		j.mu.Unlock()
		m.onCellEvent(ev)
		j.events.append(Event{
			Job: j.id, Type: "cell", Cell: ev.Key,
			Status: ev.Status.String(), Attempt: ev.Attempt, Error: ev.Err,
			CellsDone: done, CellsTotal: total,
		})
	}
}

// baseResult starts the final document for the job's kind. Everything
// added to it derives from cell values alone, so resumed and
// uninterrupted runs marshal byte-identically.
func baseResult(j *job, failed map[string]string) JobResult {
	res := JobResult{ID: j.id, Kind: j.spec.Kind}
	if len(failed) > 0 {
		res.Failed = failed
	}
	return res
}

// resultFig7 renders a fig7 job's rows.
func resultFig7(j *job, rows []experiments.Fig7Row, rep runner.Report[experiments.Fig7Row]) JobResult {
	res := baseResult(j, rep.Failed)
	res.Fig7 = rows
	t := report.NewTable("Figure 7 — normalized lifetime under BPA vs SWR percentage",
		"wear leveling", "swr %", "normalized lifetime")
	for _, r := range rows {
		t.AddRow(r.WL, r.SWRPercent, r.Normalized)
	}
	res.Table = t.String()
	res.CSV = t.CSV()
	return res
}

// resultFig8 renders a fig8 job's rows and geometric means.
func resultFig8(j *job, rows []experiments.Fig8Row, gmeans map[string]float64, rep runner.Report[experiments.Fig8Row]) JobResult {
	res := baseResult(j, rep.Failed)
	res.Fig8 = rows
	res.Gmeans = gmeans
	t := report.NewTable("Figure 8 — spare-scheme comparison under BPA",
		"wear leveling", "scheme", "normalized lifetime")
	for _, r := range rows {
		t.AddRow(r.WL, r.Scheme, r.Normalized)
	}
	for _, scheme := range experiments.SchemeNames() {
		if g, ok := gmeans[scheme]; ok {
			t.AddRow("gmean", scheme, g)
		}
	}
	res.Table = t.String()
	res.CSV = t.CSV()
	return res
}

// resultCells renders a cells job's per-cell simulation results in key
// order.
func resultCells(j *job, rep runner.Report[maxwe.Result]) JobResult {
	res := baseResult(j, rep.Failed)
	res.Cells = rep.Results
	t := report.NewTable("Custom cells — lifetime per configuration",
		"cell", "normalized lifetime", "user writes", "device writes", "worn lines", "spares used")
	keys := make([]string, 0, len(rep.Results))
	for k := range rep.Results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := rep.Results[k]
		t.AddRow(k, r.NormalizedLifetime, r.UserWrites, r.DeviceWrites, r.WornLines, r.SparesUsed)
	}
	res.Table = t.String()
	res.CSV = t.CSV()
	return res
}

// marshalResult produces the canonical bytes of a result document (the
// exact bytes persisted and served).
func marshalResult(res JobResult) ([]byte, error) {
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("service: marshal result for %s: %w", res.ID, err)
	}
	return append(raw, '\n'), nil
}
