// Integration tests for the nvmd service: client/handler round trip over
// httptest, cancellation mid-job, the restart-resume byte-identity
// guarantee, and corrupt-checkpoint quarantine.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maxwe"
	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

// newManager builds a started manager over a fresh temp data dir.
func newManager(t *testing.T, dir string, workers int) *service.Manager {
	t.Helper()
	m, err := service.NewManager(service.Config{DataDir: dir, JobWorkers: workers})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// tinyFig7 is a seconds-scale Figure 7 grid: 2 percents x 1 leveler.
func tinyFig7() service.JobSpec {
	return service.JobSpec{
		Kind: service.KindFig7,
		Setup: &service.SetupSpec{
			Regions: 64, LinesPerRegion: 8, MeanEndurance: 200,
		},
		SWRPercents: []int{0, 90},
		WLs:         []string{"tlsr"},
		Parallelism: 2,
	}
}

// boundedCell builds one custom cell that runs exactly writes user writes
// on a device too strong to fail first, so its duration is predictable.
func boundedCell(key string, writes int64) service.CellSpec {
	return service.CellSpec{
		Key: key,
		Config: maxwe.Config{
			Regions: 64, LinesPerRegion: 16, MeanEndurance: 1e9,
			VariationQ: 2, LinearProfile: true,
			Scheme: "none", Attack: "uaa", Psi: 32,
			MaxUserWrites: writes, Seed: 7,
		},
	}
}

// waitState polls until the job reaches a terminal state or the deadline.
func waitState(t testing.TB, m *service.Manager, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id, false)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return service.JobStatus{}
}

// TestHTTPRoundTrip drives submit -> events -> status -> result -> cancel
// errors -> metrics entirely through the HTTP API and the thin client.
func TestHTTPRoundTrip(t *testing.T) {
	m := newManager(t, t.TempDir(), 2)
	m.Start()
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}

	st, err := c.Submit(ctx, tinyFig7())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.CellsTotal != 2 {
		t.Fatalf("submit status = %+v, want id and 2 cells", st)
	}

	// The event stream must replay history and follow to the terminal
	// state, with contiguous sequence numbers.
	var events []service.Event
	err = c.Events(ctx, st.ID, func(ev service.Event) error {
		events = append(events, ev)
		if ev.Type == "state" && ev.State.Terminal() {
			return io.EOF
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("event stream was empty")
	}
	doneCells := 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d, want contiguous", i, ev.Seq)
		}
		if ev.Type == "cell" && ev.Status == "done" {
			doneCells++
		}
	}
	if doneCells != 2 {
		t.Fatalf("saw %d done cell events, want 2", doneCells)
	}
	last := events[len(events)-1]
	if last.State != service.StateDone {
		t.Fatalf("final event state = %s, want done", last.State)
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != service.StateDone || final.CellsDone != 2 {
		t.Fatalf("final status = %+v, want done with 2 cells", final)
	}

	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var res service.JobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	if res.ID != st.ID || res.Kind != service.KindFig7 || len(res.Fig7) != 2 {
		t.Fatalf("result = id %s kind %s rows %d, want %s fig7 2", res.ID, res.Kind, len(res.Fig7), st.ID)
	}
	if !strings.Contains(res.Table, "Figure 7") || res.CSV == "" {
		t.Fatal("result is missing its report renderings")
	}

	// A finished job cannot be canceled (409) and unknown jobs are 404.
	if _, err := c.Cancel(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("Cancel(done) = %v, want HTTP 409", err)
	}
	if _, err := c.Status(ctx, "job-999999", false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Status(unknown) = %v, want HTTP 404", err)
	}
	if _, err := c.Submit(ctx, service.JobSpec{Kind: "nope"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("Submit(bad kind) = %v, want HTTP 400", err)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("Jobs = %v (%v), want the one job", jobs, err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"nvmd_jobs_submitted_total 1",
		"nvmd_jobs_done_total 1",
		"nvmd_cells_completed_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestCancelMidJob cancels a running unbounded cell through the API and
// verifies the job lands in canceled with no result available.
func TestCancelMidJob(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, 1)
	m.Start()
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()

	// MaxUserWrites 0 on an unkillable device: runs until interrupted.
	spec := service.JobSpec{
		Kind:  service.KindCells,
		Cells: []service.CellSpec{boundedCell("forever", 0)},
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Follow events until the cell actually starts, then cancel.
	err = c.Events(ctx, st.ID, func(ev service.Event) error {
		if ev.Type == "cell" && ev.Status == "start" {
			return io.EOF
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if _, err := c.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("Result(canceled) = %v, want HTTP 409", err)
	}

	// The cancellation must be durable: a fresh manager over the same
	// data dir must not re-run the job.
	m.Close()
	srv.Close()
	m2 := newManager(t, dir, 1)
	defer m2.Close()
	st2, err := m2.Status(st.ID, false)
	if err != nil {
		t.Fatalf("Status after reload: %v", err)
	}
	if st2.State != service.StateCanceled {
		t.Fatalf("reloaded state = %s, want canceled", st2.State)
	}
}

// TestRestartResumeByteIdentical is the PR's core guarantee: a daemon
// killed mid-sweep resumes the job from its checkpoint on restart and the
// final result document is byte-identical to an uninterrupted run.
func TestRestartResumeByteIdentical(t *testing.T) {
	spec := service.JobSpec{
		Kind: service.KindCells,
		Cells: []service.CellSpec{
			boundedCell("fast", 100_000),     // ~1ms: done before the drain
			boundedCell("slow-a", 6_000_000), // ~40ms each: drained mid-flight
			boundedCell("slow-b", 6_000_000),
			boundedCell("slow-c", 6_000_000),
		},
		Parallelism: 1,
	}

	// Reference: the same spec run uninterrupted.
	ref := newManager(t, t.TempDir(), 1)
	defer ref.Close()
	ref.Start()
	refSt, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(ref): %v", err)
	}
	if st := waitState(t, ref, refSt.ID); st.State != service.StateDone {
		t.Fatalf("reference job ended %s: %s", st.State, st.Error)
	}
	want, err := ref.Result(refSt.ID)
	if err != nil {
		t.Fatalf("Result(ref): %v", err)
	}

	// Interrupted run: drain the daemon once the first cell is
	// checkpointed, while the slow cells are still outstanding.
	dir := t.TempDir()
	m1 := newManager(t, dir, 1)
	m1.Start()
	st1, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ckpt := filepath.Join(dir, st1.ID+".ckpt.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("first cell never reached the checkpoint")
		}
		st, err := m1.Status(st1.ID, false)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.State.Terminal() {
			t.Fatalf("job finished (%s) before the drain; slow cells too fast", st.State)
		}
		if _, statErr := os.Stat(ckpt); st.CellsDone >= 1 && statErr == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close() // SIGTERM equivalent: drain, keep the checkpoint

	st, err := m1.Status(st1.ID, false)
	if err != nil {
		t.Fatalf("Status after drain: %v", err)
	}
	if st.State != service.StateQueued {
		t.Fatalf("drained job state = %s, want queued (resumable)", st.State)
	}

	// Restart over the same data dir: the job re-queues, replays the
	// checkpointed cells, and completes.
	m2 := newManager(t, dir, 1)
	defer m2.Close()
	m2.Start()
	final := waitState(t, m2, st1.ID)
	if final.State != service.StateDone {
		t.Fatalf("resumed job ended %s: %s", final.State, final.Error)
	}
	if final.Resumed == 0 {
		t.Fatal("resumed job recomputed every cell; expected checkpoint hits")
	}
	got, err := m2.Result(st1.ID)
	if err != nil {
		t.Fatalf("Result(resumed): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestCorruptCheckpointQuarantine verifies the daemon survives a mangled
// checkpoint: the file is quarantined and the sweep restarts from scratch.
func TestCorruptCheckpointQuarantine(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, 1)
	defer m.Close()

	// Submit before Start so the checkpoint can be corrupted before any
	// worker touches the job.
	st, err := m.Submit(service.JobSpec{
		Kind:  service.KindCells,
		Cells: []service.CellSpec{boundedCell("only", 100_000)},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ckpt := filepath.Join(dir, st.ID+".ckpt.json")
	if err := os.WriteFile(ckpt, []byte("{this is not a checkpoint"), 0o644); err != nil {
		t.Fatalf("plant corrupt checkpoint: %v", err)
	}

	m.Start()
	final := waitState(t, m, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job ended %s (%s), want done after quarantine", final.State, final.Error)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestPartialResults checks GET /v1/jobs/{id}?partial=1 exposes the
// checkpointed cells of a finished job's sibling mid-run and, trivially,
// that a done job serves no stale partial map after checkpoint cleanup.
func TestPartialResults(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	m.Start()
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()

	spec := service.JobSpec{
		Kind: service.KindCells,
		Cells: []service.CellSpec{
			boundedCell("fast", 100_000),
			boundedCell("slow", 0), // runs until canceled
		},
		Parallelism: 1,
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Once the fast cell is done it is in the checkpoint; partial status
	// must carry it while the slow cell still runs.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("fast cell never showed up in partial results")
		}
		got, err := c.Status(ctx, st.ID, true)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if _, ok := got.Partial["fast"]; ok {
			var res maxwe.Result
			if err := json.Unmarshal(got.Partial["fast"], &res); err != nil {
				t.Fatalf("partial cell value does not parse: %v", err)
			}
			if res.UserWrites != 100_000 {
				t.Fatalf("partial cell UserWrites = %d, want 100000", res.UserWrites)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
