// Chaos harness for the durable store: a seeded matrix of injected disk
// crash points (torn write, failed fsync, pre-rename crash, ENOSPC — via
// internal/diskfault) driven through a live Manager, each followed by a
// restart on the same data dir and a byte-identity check of the final
// result against an uninterrupted run. It generalizes
// TestRestartResumeByteIdentical from one handcrafted corruption to the
// full crash-point space, and proves its own teeth by showing a writer
// with the broken rename-before-fsync ordering fails the same check.
//
// Full matrix: go test -run 'TestChaos' ./internal/service/ (make chaos).
// Smoke subset: add -short (make chaos-smoke): first and last crash point
// per class.
package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"maxwe/internal/atomicio"
	"maxwe/internal/diskfault"
	"maxwe/internal/service"
)

// chaosSpec is the small deterministic two-cell workload every chaos run
// uses. Parallelism 1 keeps the durable-write sequence identical across
// runs, so a write index names the same crash point in every plan.
func chaosSpec() service.JobSpec {
	return service.JobSpec{
		Kind: service.KindCells,
		Cells: []service.CellSpec{
			boundedCell("cell-a", 100_000),
			boundedCell("cell-b", 150_000),
		},
		Parallelism: 1,
	}
}

// chaosManager builds a manager over dir writing through fs.
func chaosManager(t *testing.T, dir string, fs atomicio.FS) *service.Manager {
	t.Helper()
	m, err := service.NewManager(service.Config{DataDir: dir, JobWorkers: 1, FS: fs})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// chaosReference runs chaosSpec uninterrupted and returns the result
// document every chaos run must recover to, byte for byte.
func chaosReference(t *testing.T) []byte {
	t.Helper()
	m := newManager(t, t.TempDir(), 1)
	defer m.Close()
	m.Start()
	st, err := m.Submit(chaosSpec())
	if err != nil {
		t.Fatalf("Submit(reference): %v", err)
	}
	if fin := waitState(t, m, st.ID); fin.State != service.StateDone {
		t.Fatalf("reference job ended %s: %s", fin.State, fin.Error)
	}
	raw, err := m.Result(st.ID)
	if err != nil {
		t.Fatalf("Result(reference): %v", err)
	}
	return raw
}

// countDurableWrites measures how many durable writes one uninterrupted
// chaosSpec job issues — the size of the crash-point space the matrix
// enumerates. With Parallelism 1 the sequence is spec, one checkpoint per
// cell, result, state.
func countDurableWrites(t *testing.T) int {
	t.Helper()
	counter, err := diskfault.New(nil, diskfault.Config{WriteIndex: -1})
	if err != nil {
		t.Fatalf("New(counting): %v", err)
	}
	m := chaosManager(t, t.TempDir(), counter)
	defer m.Close()
	m.Start()
	st, err := m.Submit(chaosSpec())
	if err != nil {
		t.Fatalf("Submit(counting): %v", err)
	}
	if fin := waitState(t, m, st.ID); fin.State != service.StateDone {
		t.Fatalf("counting job ended %s: %s", fin.State, fin.Error)
	}
	w := counter.Writes()
	if want := len(chaosSpec().Cells) + 3; w != want {
		t.Fatalf("counting pass saw %d durable writes, want %d (spec + ckpt/cell + result + state)", w, want)
	}
	return w
}

// waitTerminal is waitState without the test failure on timeout/err, for
// paths where hanging or erroring is a recovery outcome to report.
func waitTerminal(m *service.Manager, id string) (service.JobStatus, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id, false)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return service.JobStatus{}, errors.New("job did not reach a terminal state in time")
}

// chaosRecover is one chaos run: drive chaosSpec into the crash point cfg
// describes (through wrap, when the run models a broken writer), then
// restart a clean manager on the same data dir and return the recovered
// result document. Every recovery failure comes back as an error rather
// than a test failure so the bite test can assert the harness DOES fail
// on a broken writer.
func chaosRecover(t *testing.T, cfg diskfault.Config, wrap func(atomicio.FS) atomicio.FS) ([]byte, error) {
	t.Helper()
	dir := t.TempDir()
	ffs, err := diskfault.New(nil, cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	var storeFS atomicio.FS = ffs
	if wrap != nil {
		storeFS = wrap(ffs)
	}

	m1 := chaosManager(t, dir, storeFS)
	m1.Start()
	st, submitErr := m1.Submit(chaosSpec())
	if submitErr == nil {
		// The injected fault fails the job in memory (its terminal state
		// cannot be persisted through a crashed filesystem); wait for that
		// so the checkpoint sequence is complete before the "reboot".
		if _, err := waitTerminal(m1, st.ID); err != nil {
			m1.Close()
			t.Fatalf("pre-crash job: %v", err)
		}
	}
	m1.Close()
	if !ffs.Counters().Any() {
		t.Fatalf("plan %+v never fired; the crash point does not exist", cfg)
	}

	// Reboot: a fresh manager over the same data dir on the real
	// filesystem, exactly like the daemon restarting after power loss.
	m2, err := service.NewManager(service.Config{DataDir: dir, JobWorkers: 1})
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	defer m2.Close()
	m2.Start()
	id := st.ID
	if submitErr != nil {
		// The crash landed before the spec was durable, so the submission
		// itself failed: the client's contract is to retry it.
		st2, err := m2.Submit(chaosSpec())
		if err != nil {
			return nil, fmt.Errorf("resubmit: %w", err)
		}
		id = st2.ID
	}
	fin, err := waitTerminal(m2, id)
	if err != nil {
		return nil, fmt.Errorf("recovered job: %w", err)
	}
	if fin.State != service.StateDone {
		return nil, fmt.Errorf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	raw, err := m2.Result(id)
	if err != nil {
		return nil, fmt.Errorf("result after recovery: %w", err)
	}
	return raw, nil
}

// TestChaosCrashMatrix is the acceptance matrix: every fault class at
// every durable-write index of the workload, each with a full crash, must
// recover on restart to the byte-identical uninterrupted result. -short
// keeps the first and last index per class (make chaos-smoke).
func TestChaosCrashMatrix(t *testing.T) {
	want := chaosReference(t)
	writes := countDurableWrites(t)

	indexes := make([]int, 0, writes)
	if testing.Short() {
		indexes = append(indexes, 0, writes-1)
	} else {
		for i := 0; i < writes; i++ {
			indexes = append(indexes, i)
		}
	}
	for ci, class := range diskfault.Classes() {
		for _, idx := range indexes {
			cfg := diskfault.Config{
				Seed:       uint64(ci*100 + idx + 1),
				WriteIndex: idx,
				Class:      class,
				Crash:      true,
			}
			t.Run(fmt.Sprintf("%s/write-%d", class, idx), func(t *testing.T) {
				got, err := chaosRecover(t, cfg, nil)
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered result differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- recovered ---\n%s", want, got)
				}
			})
		}
	}
}

// TestChaosHarnessBitesBrokenWriter proves the matrix has teeth: the same
// recovery procedure run against a writer that renames before fsync
// (diskfault.NoSyncFS) must FAIL, because the crash tears the committed
// spec file out from under the restarted manager. A harness that passes
// both the correct and the broken discipline would be vacuous.
func TestChaosHarnessBitesBrokenWriter(t *testing.T) {
	want := chaosReference(t)
	for _, seed := range []uint64{1, 2, 3} {
		cfg := diskfault.Config{
			Seed: seed,
			// Index 1: the spec has been committed (rename done, never
			// synced) and the first checkpoint write is in flight.
			WriteIndex: 1,
			Class:      diskfault.ClassPreRenameCrash,
			Crash:      true,
		}
		got, err := chaosRecover(t, cfg, diskfault.NoSyncFS)
		if err == nil && bytes.Equal(got, want) {
			t.Fatalf("seed %d: broken write order recovered byte-identically; the harness has no teeth", seed)
		}
		t.Logf("seed %d: harness correctly rejected the broken writer: %v", seed, err)
	}
}
