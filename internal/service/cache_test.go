// Cache integration tests: the cluster-wide memo cache shared across
// jobs, its /v1/cache/stats endpoint, and the byte-identity of cached
// results against a cache-off daemon.
package service_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

// newCachedManager builds a started manager whose result cache lives
// under the data dir, the way cmd/nvmd -cache wires it.
func newCachedManager(t *testing.T, dir string) *service.Manager {
	t.Helper()
	m, err := service.NewManager(service.Config{
		DataDir:  dir,
		CacheDir: filepath.Join(dir, "cache"),
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// resultSansID parses a result document and strips the job ID — the only
// field that legitimately differs between two jobs running the same spec.
func resultSansID(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse result: %v", err)
	}
	delete(doc, "id")
	return doc
}

func TestCacheSharedAcrossJobsAndRestarts(t *testing.T) {
	// Baseline: the same spec on a cache-off daemon.
	off := newManager(t, t.TempDir(), 1)
	off.Start()
	stOff, err := off.Submit(tinyFig7())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, off, stOff.ID)
	baseline, err := off.Result(stOff.ID)
	if err != nil {
		t.Fatal(err)
	}
	off.Close()

	dir := t.TempDir()
	m := newCachedManager(t, dir)
	m.Start()

	st1, err := m.Submit(tinyFig7())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st1.ID)
	res1, err := m.Result(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Cold cached run: byte-identical to the cache-off daemon (same job
	// ID on both fresh stores).
	if string(baseline) != string(res1) {
		t.Fatalf("cold cached result differs from cache-off:\n%s\n%s", baseline, res1)
	}
	cs := m.CacheStats()
	if !cs.Enabled || cs.Stats.Puts != 2 || cs.Stats.Hits != 0 {
		t.Fatalf("stats after cold job = %+v", cs)
	}

	// Second identical job on the same daemon: every cell is a memo hit.
	st2, err := m.Submit(tinyFig7())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st2.ID)
	res2, err := m.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultSansID(t, res1), resultSansID(t, res2)) {
		t.Fatalf("memo-served result differs:\n%s\n%s", res1, res2)
	}
	cs = m.CacheStats()
	if cs.Stats.Hits != 2 || cs.Stats.Puts != 2 {
		t.Fatalf("stats after warm job = %+v", cs)
	}
	metrics, err := m.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nvmd_cells_memo_hits_total 2\n", "nvmd_cache_hits_total 2\n", "nvmd_cache_puts_total 2\n"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	m.Close()

	// A restarted daemon over the same directories serves the third job
	// from the disk tier: zero new computations.
	m2 := newCachedManager(t, dir)
	m2.Start()
	defer m2.Close()
	st3, err := m2.Submit(tinyFig7())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m2, st3.ID)
	res3, err := m2.Result(st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultSansID(t, res1), resultSansID(t, res3)) {
		t.Fatalf("disk-served result differs:\n%s\n%s", res1, res3)
	}
	cs = m2.CacheStats()
	if cs.Stats.DiskHits != 2 || cs.Stats.Puts != 0 {
		t.Fatalf("stats after restart job = %+v", cs)
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	m := newCachedManager(t, t.TempDir())
	m.Start()
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	c := client.New(srv.URL)

	cs, err := c.CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || cs.Dir == "" {
		t.Fatalf("CacheStats = %+v, want enabled with dir", cs)
	}

	off := newManager(t, t.TempDir(), 1)
	off.Start()
	defer off.Close()
	srvOff := httptest.NewServer(service.NewHandler(off))
	defer srvOff.Close()
	csOff, err := client.New(srvOff.URL).CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if csOff.Enabled {
		t.Fatalf("cache-off daemon reports enabled: %+v", csOff)
	}
}
