// server.go is the HTTP face of the manager: a pure-stdlib net/http mux
// implementing the v1 job API. Endpoints:
//
//	POST   /v1/jobs              submit a JobSpec, returns JobStatus (201)
//	GET    /v1/jobs              list every job's status
//	GET    /v1/jobs/{id}         status (+ ?partial=1 for checkpointed cells)
//	GET    /v1/jobs/{id}/events  NDJSON progress stream, history then live
//	                             (?from=N resumes after sequence N-1)
//	GET    /v1/jobs/{id}/result  final result document (exact stored bytes)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/cache/stats       cluster-wide result-cache counters
//	GET    /metrics              counter exposition (text)
//	GET    /healthz              liveness probe
//
// Errors are JSON objects {"error": "..."} with conventional status codes
// (400 invalid spec, 404 unknown job, 409 wrong state, 429 + Retry-After
// when the bounded queue is full, 503 draining).
//
// POST /v1/jobs honors an optional Idempotency-Key header: retrying a
// submission with the same key returns the job the first attempt created
// instead of a duplicate, which is what lets the client retry a Submit
// whose response was lost on the wire.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// MaxSpecBytes bounds the request body of POST /v1/jobs; a spec larger
// than this is rejected rather than buffered.
const MaxSpecBytes = 8 << 20

// NewHandler returns the HTTP API over m.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: decode spec: %w", err))
			return
		}
		st, err := m.SubmitIdempotent(spec, r.Header.Get("Idempotency-Key"))
		if err != nil {
			if errors.Is(err, ErrQueueFull) {
				// Graceful degradation: the backlog is full but the daemon is
				// healthy. Tell the client when to come back.
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, submitCode(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"), r.URL.Query().Get("partial") != "")
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		log, err := m.Events(r.PathValue("id"))
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		streamEvents(w, r, m, log)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		raw, err := m.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(raw); err != nil {
			return // client went away mid-body; nothing to repair
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, errCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.CacheStats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		text, err := m.MetricsSnapshot()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := fmt.Fprint(w, text); err != nil {
			return // client went away
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// streamEvents writes the job's event history as NDJSON, flushing per
// line, then follows the log live until the job reaches a terminal state,
// the client disconnects, or the daemon drains. An optional ?from=N
// query resumes mid-history — a reconnecting watcher passes the sequence
// number after the last event it saw. from is clamped to the current log
// length: the log is in-memory and restarts from zero with the daemon,
// so an offset from a previous daemon lifetime must replay the fresh
// history rather than skip it.
func streamEvents(w http.ResponseWriter, r *http.Request, m *Manager, log *eventLog) {
	next := 0
	if s := r.URL.Query().Get("from"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad from=%q: want a non-negative integer", s))
			return
		}
		next = n
		if have := log.len(); next > have {
			next = have
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, terminal, wake := log.since(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-m.Done():
			return
		}
	}
}

// writeJSON emits v as an indented JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: marshal response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(raw, '\n')); err != nil {
		return // client went away mid-body
	}
}

// writeError emits the canonical error body.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	raw, mErr := json.Marshal(body)
	if mErr != nil {
		// A map of two strings always marshals.
		panic(fmt.Errorf("service: marshal error body: %w", mErr))
	}
	if _, err := w.Write(append(raw, '\n')); err != nil {
		return // client went away
	}
}

// errCode maps manager errors to HTTP status codes.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotFinished), errors.Is(err, ErrTerminal):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// submitCode maps Submit errors: a full backlog is 429 (retryable, paired
// with Retry-After), draining is 503, anything else is an invalid spec.
func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
