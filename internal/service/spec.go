// spec.go defines the job specification the nvmd HTTP API accepts: which
// sweep to run (a Figure 7 grid, the Figure 8 matrix, or a custom list of
// fully described simulation cells), at what scale, and under what runner
// policy (parallelism, retries, per-cell deadline). Specs are normalized
// to a canonical form at submission so that the same experiment always
// produces the same checkpoint fingerprint — the property that lets a
// restarted daemon resume a half-finished job bit-identically.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"maxwe"
	"maxwe/internal/experiments"
)

// Job kinds accepted by the service.
const (
	// KindFig7 sweeps the paper's Figure 7 grid (wear levelers × SWR
	// percents under BPA).
	KindFig7 = "fig7"
	// KindFig8 runs the paper's Figure 8 matrix (wear levelers × spare
	// schemes under BPA) plus the per-scheme geometric means.
	KindFig8 = "fig8"
	// KindCells runs a custom list of fully described simulation cells,
	// each one complete maxwe.Config (fault plan included).
	KindCells = "cells"
)

// JobSpec describes one experiment job as submitted to POST /v1/jobs.
type JobSpec struct {
	// Kind selects the experiment shape: KindFig7, KindFig8 or KindCells.
	Kind string `json:"kind"`
	// Setup overrides the experiment scale for fig7/fig8 jobs; nil keeps
	// the paper's committed default scale. Ignored by cells jobs.
	Setup *SetupSpec `json:"setup,omitempty"`
	// SWRPercents is the Figure 7 x axis; nil selects the paper's
	// {0, 20, 60, 80, 90, 100}. Fig7 jobs only.
	SWRPercents []int `json:"swr_percents,omitempty"`
	// WLs lists the wear-leveling substrates of a fig7 job; nil selects
	// the paper's four.
	WLs []string `json:"wls,omitempty"`
	// Cells is the cell list of a cells job. Each cell carries a complete
	// simulation configuration, fault-plan options included.
	Cells []CellSpec `json:"cells,omitempty"`
	// Parallelism bounds how many cells of this job run concurrently on
	// the worker pool (0 = one worker per CPU, 1 = sequential). Results
	// are identical at every setting.
	Parallelism int `json:"parallelism,omitempty"`
	// Retries is how many additional deterministic attempts a failed cell
	// gets before its error is recorded.
	Retries int `json:"retries,omitempty"`
	// CellTimeoutMS bounds each cell attempt in milliseconds (0 = none).
	CellTimeoutMS int64 `json:"cell_timeout_ms,omitempty"`
	// Federated asks the daemon to dispatch this job's cells across its
	// worker cluster instead of computing them in-process. It is runner
	// policy, not experiment content: a daemon without a cluster (or
	// without Config.Dispatcher) runs the job locally, and the merged
	// result is byte-identical either way, so the flag is excluded from
	// the checkpoint fingerprint like Parallelism.
	Federated bool `json:"federated,omitempty"`
}

// SetupSpec is the JSON shape of experiments.Setup for fig7/fig8 jobs.
// Zero fields inherit the paper's default scale, so a tiny spec like
// {"regions": 64} is valid.
type SetupSpec struct {
	// Regions and LinesPerRegion fix the device geometry.
	Regions        int `json:"regions,omitempty"`
	LinesPerRegion int `json:"lines_per_region,omitempty"`
	// MeanEndurance is the scaled mean write budget per line.
	MeanEndurance float64 `json:"mean_endurance,omitempty"`
	// Profile names the endurance distribution: "linear" (default),
	// "power-law" or "lognormal".
	Profile string `json:"profile,omitempty"`
	// VariationQ is the max/min endurance ratio (paper: 50).
	VariationQ float64 `json:"variation_q,omitempty"`
	// Psi is the wear-leveling remap period in writes.
	Psi int `json:"psi,omitempty"`
	// Seed drives every random choice of the experiment.
	Seed uint64 `json:"seed,omitempty"`
}

// CellSpec is one custom simulation cell of a cells job.
type CellSpec struct {
	// Key names the cell in checkpoints, events and results. It must be
	// unique within the job and stable across resubmissions.
	Key string `json:"key"`
	// Config is the complete simulated system, including the optional
	// fault-injection plan and retry policy.
	Config maxwe.Config `json:"config"`
}

// setup resolves the spec's scale against the paper defaults.
func (s *SetupSpec) setup() (experiments.Setup, error) {
	out := experiments.DefaultSetup()
	if s == nil {
		return out, nil
	}
	kind, err := experiments.ParseProfileKind(s.Profile)
	if err != nil {
		return out, fmt.Errorf("service: setup: %w", err)
	}
	out.ProfileKind = kind
	if s.Regions != 0 {
		out.Regions = s.Regions
	}
	if s.LinesPerRegion != 0 {
		out.LinesPerRegion = s.LinesPerRegion
	}
	if s.MeanEndurance != 0 {
		out.MeanEndurance = s.MeanEndurance
	}
	if s.VariationQ != 0 {
		out.VariationQ = s.VariationQ
	}
	if s.Psi != 0 {
		out.Psi = s.Psi
	}
	if s.Seed != 0 {
		out.Seed = s.Seed
	}
	if out.Regions <= 0 || out.LinesPerRegion <= 0 {
		return out, fmt.Errorf("service: setup: geometry %dx%d must be positive",
			out.Regions, out.LinesPerRegion)
	}
	if out.MeanEndurance <= 0 {
		return out, fmt.Errorf("service: setup: mean endurance %v must be positive", out.MeanEndurance)
	}
	if out.VariationQ < 1 {
		return out, fmt.Errorf("service: setup: variation q %v must be >= 1", out.VariationQ)
	}
	if out.Psi <= 0 {
		return out, fmt.Errorf("service: setup: psi %d must be positive", out.Psi)
	}
	return out, nil
}

// normalize validates the spec and returns its canonical form: kind
// checked, grid axes defaulted to the paper's, and runner policy bounds
// enforced. Two specs that describe the same experiment normalize to the
// same value, which is what the checkpoint fingerprint hashes.
func (s JobSpec) normalize() (JobSpec, error) {
	switch s.Kind {
	case KindFig7:
		if len(s.SWRPercents) == 0 {
			s.SWRPercents = experiments.Fig7DefaultPercents()
		}
		for _, pct := range s.SWRPercents {
			if pct < 0 || pct > 100 {
				return s, fmt.Errorf("service: fig7 SWR percent %d out of [0, 100]", pct)
			}
		}
		if len(s.WLs) == 0 {
			s.WLs = experiments.WLNames()
		}
		seen := map[string]bool{}
		for _, wl := range s.WLs {
			if seen[wl] {
				return s, fmt.Errorf("service: duplicate wear leveler %q", wl)
			}
			seen[wl] = true
		}
		s.Cells = nil
	case KindFig8:
		s.SWRPercents, s.WLs, s.Cells = nil, nil, nil
	case KindCells:
		if len(s.Cells) == 0 {
			return s, fmt.Errorf("service: cells job needs at least one cell")
		}
		s.SWRPercents, s.WLs, s.Setup = nil, nil, nil
		seen := map[string]bool{}
		for i, c := range s.Cells {
			if c.Key == "" {
				return s, fmt.Errorf("service: cell %d has an empty key", i)
			}
			if seen[c.Key] {
				return s, fmt.Errorf("service: duplicate cell key %q", c.Key)
			}
			seen[c.Key] = true
		}
	default:
		return s, fmt.Errorf("service: unknown job kind %q (want %s, %s or %s)",
			s.Kind, KindFig7, KindFig8, KindCells)
	}
	if s.Kind != KindCells {
		if _, err := s.Setup.setup(); err != nil {
			return s, err
		}
	}
	if s.Parallelism < 0 {
		return s, fmt.Errorf("service: parallelism %d must be >= 0", s.Parallelism)
	}
	if s.Retries < 0 {
		return s, fmt.Errorf("service: retries %d must be >= 0", s.Retries)
	}
	if s.CellTimeoutMS < 0 {
		return s, fmt.Errorf("service: cell timeout %dms must be >= 0", s.CellTimeoutMS)
	}
	return s, nil
}

// cellCount returns how many sweep cells the normalized spec expands to.
func (s JobSpec) cellCount() int {
	switch s.Kind {
	case KindFig7:
		return len(s.SWRPercents) * len(s.WLs)
	case KindFig8:
		return len(experiments.WLNames()) * len(experiments.SchemeNames())
	default:
		return len(s.Cells)
	}
}

// cellTimeout converts the millisecond JSON field to a duration.
func (s JobSpec) cellTimeout() time.Duration {
	return time.Duration(s.CellTimeoutMS) * time.Millisecond
}

// fingerprint derives the checkpoint fingerprint of a normalized spec:
// a hash over the canonical JSON of everything that determines the cell
// values. Runner policy (parallelism, retries, timeout) is deliberately
// excluded — it cannot change results, and a resumed job may legitimately
// run under different worker counts.
func (s JobSpec) fingerprint() string {
	canon := s
	canon.Parallelism, canon.Retries, canon.CellTimeoutMS = 0, 0, 0
	canon.Federated = false
	raw, err := json.Marshal(canon)
	if err != nil {
		// Every field is a plain value; this is unreachable.
		panic(fmt.Errorf("service: marshal spec: %w", err))
	}
	sum := sha256.Sum256(raw)
	return "nvmd/v1/" + s.Kind + "/" + hex.EncodeToString(sum[:])
}
