// events.go is the per-job progress fan-out: every state change of a job
// and every runner cell event is appended to an in-memory log that any
// number of NDJSON subscribers replay from the start and then follow
// live. The log is append-only and broadcast with a closed-channel wake,
// so slow readers never block the job and a reader that connects late
// still sees the full history of the current daemon lifetime.
package service

import "sync" //lint:allow nondeterminism "event fan-out is daemon plumbing; determinism is owned by the job payloads, not the broadcast"

// Event is one progress record on a job's event stream, serialized as one
// NDJSON line by GET /v1/jobs/{id}/events.
type Event struct {
	// Seq numbers events within the job, from 0, with no gaps.
	Seq int `json:"seq"`
	// Job is the job ID the event belongs to.
	Job string `json:"job"`
	// Type is "state" for job lifecycle transitions, "cell" for sweep
	// cell progress, and "checkpoint" for checkpoint-maintenance notices
	// (e.g. a corrupt file quarantined on resume).
	Type string `json:"type"`
	// State carries the new job state for "state" events.
	State State `json:"state,omitempty"`
	// Cell names the sweep cell for "cell" events.
	Cell string `json:"cell,omitempty"`
	// Status is the cell transition: "start", "done", "retry", "failed"
	// or "cached" (satisfied from a checkpoint on resume).
	Status string `json:"status,omitempty"`
	// Attempt is the 1-based attempt number for cell events (0 for
	// "cached").
	Attempt int `json:"attempt,omitempty"`
	// Error carries the failure message of "retry"/"failed" cell events
	// and of terminal "failed" state events.
	Error string `json:"error,omitempty"`
	// CellsDone and CellsTotal snapshot the job's progress counters at
	// the time of the event.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
}

// eventLog is an append-only broadcast log of one job's events.
type eventLog struct {
	mu sync.Mutex
	// events holds the full history for the current daemon lifetime.
	events []Event
	// terminal is set once the job reached a final state: subscribers
	// drain the history and stop instead of waiting for more.
	terminal bool
	// wake is closed (and replaced) on every append so blocked
	// subscribers re-check the log.
	wake chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append stamps the next sequence number on ev and wakes subscribers.
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// finish marks the stream complete. Subscribers that drained the history
// return instead of blocking.
func (l *eventLog) finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.terminal = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// len reports the current history length (the next sequence number).
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// since returns the events from index from onward, whether the stream is
// complete, and a channel that closes on the next append — the subscriber
// loop: emit evs; if terminal and none pending, stop; else wait on wake.
func (l *eventLog) since(from int) (evs []Event, terminal bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.events) {
		evs = l.events[from:]
	}
	return evs, l.terminal, l.wake
}
