// Robustness tests for the store and network edges: checkpoint
// quarantine failure paths, graceful ENOSPC degradation, queue-full
// backpressure (429 + Retry-After end-to-end), and submit idempotency
// across a lost response.
package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"maxwe/internal/atomicio"
	"maxwe/internal/diskfault"
	"maxwe/internal/service"
	"maxwe/internal/service/client"
)

// renameBlockFS delegates to the real filesystem but refuses renames onto
// targets with the given suffix — the "quarantine rename fails" disk.
type renameBlockFS struct {
	atomicio.FS
	blockSuffix string
}

func (f renameBlockFS) Rename(oldpath, newpath string) error {
	if strings.HasSuffix(newpath, f.blockSuffix) {
		return errors.New("injected: rename blocked")
	}
	return f.FS.Rename(oldpath, newpath)
}

// corruptReadFS serves fixed bytes for one path no matter what is on
// disk, counting the reads — it models a checkpoint that stays corrupt
// even after quarantine, to pin the one-retry-then-fail sequence.
type corruptReadFS struct {
	atomicio.FS
	path  string
	data  []byte
	reads atomic.Int32
}

func (f *corruptReadFS) ReadFile(path string) ([]byte, error) {
	if path == f.path {
		f.reads.Add(1)
		return f.data, nil
	}
	return f.FS.ReadFile(path)
}

// plantCorruptCheckpoint submits a one-cell job on a stopped manager and
// writes garbage where its checkpoint will be read.
func plantCorruptCheckpoint(t *testing.T, m *service.Manager, dir string) (id, ckpt string) {
	t.Helper()
	st, err := m.Submit(service.JobSpec{
		Kind:  service.KindCells,
		Cells: []service.CellSpec{boundedCell("only", 100_000)},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ckpt = filepath.Join(dir, st.ID+".ckpt.json")
	if err := os.WriteFile(ckpt, []byte("{this is not a checkpoint"), 0o644); err != nil {
		t.Fatalf("plant corrupt checkpoint: %v", err)
	}
	return st.ID, ckpt
}

// TestQuarantineRenameFails pins the quarantine failure path: when the
// .corrupt rename itself fails, the job fails with the corruption error
// instead of looping or silently succeeding.
func TestQuarantineRenameFails(t *testing.T) {
	dir := t.TempDir()
	m, err := service.NewManager(service.Config{
		DataDir: dir, JobWorkers: 1,
		FS: renameBlockFS{FS: atomicio.OS, blockSuffix: ".corrupt"},
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	id, ckpt := plantCorruptCheckpoint(t, m, dir)

	m.Start()
	final := waitState(t, m, id)
	if final.State != service.StateFailed {
		t.Fatalf("job ended %s, want failed when quarantine cannot rename", final.State)
	}
	if !strings.Contains(final.Error, "corrupt") {
		t.Fatalf("job error = %q, want the corruption surfaced", final.Error)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("quarantine file exists despite blocked rename: %v", err)
	}
}

// TestQuarantineOneRetryThenFail pins the retry budget: a checkpoint that
// reads corrupt again after a successful quarantine fails the job after
// exactly one re-sweep — two checkpoint reads, no infinite loop.
func TestQuarantineOneRetryThenFail(t *testing.T) {
	dir := t.TempDir()
	// The FS needs the checkpoint path before the manager assigns the job
	// ID; a fresh data dir always starts at job-000001.
	evil := &corruptReadFS{
		FS:   atomicio.OS,
		path: filepath.Join(dir, "job-000001.ckpt.json"),
		data: []byte("{still not a checkpoint"),
	}
	m, err := service.NewManager(service.Config{DataDir: dir, JobWorkers: 1, FS: evil})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	id, ckpt := plantCorruptCheckpoint(t, m, dir)
	if id != "job-000001" {
		t.Fatalf("job ID = %s, want job-000001", id)
	}

	m.Start()
	final := waitState(t, m, id)
	if final.State != service.StateFailed {
		t.Fatalf("job ended %s, want failed after one quarantine retry", final.State)
	}
	if !strings.Contains(final.Error, "corrupt") {
		t.Fatalf("job error = %q, want the corruption surfaced", final.Error)
	}
	if got := evil.reads.Load(); got != 2 {
		t.Fatalf("checkpoint read %d times, want exactly 2 (original + one retry)", got)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Fatalf("first quarantine did not happen: %v", err)
	}
}

// TestNoSpaceFailsJobGracefully injects ENOSPC (no crash) into the result
// write: the job must fail with the I/O error, durably, leaving no
// partial result document behind.
func TestNoSpaceFailsJobGracefully(t *testing.T) {
	dir := t.TempDir()
	// Write index 3 is the result write of the two-cell chaos workload
	// (spec, ckpt, ckpt, result, state), pinned by countDurableWrites.
	ffs, err := diskfault.New(nil, diskfault.Config{Seed: 42, WriteIndex: 3, Class: diskfault.ClassNoSpace})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := chaosManager(t, dir, ffs)
	m.Start()
	st, err := m.Submit(chaosSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, m, st.ID)
	m.Close()
	if final.State != service.StateFailed {
		t.Fatalf("job ended %s, want failed on ENOSPC", final.State)
	}
	if !strings.Contains(final.Error, "no space") {
		t.Fatalf("job error = %q, want the ENOSPC surfaced", final.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID+".result.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial result document exists after failed write: %v", err)
	}

	// The failure is durable: a restart reports it instead of re-running.
	m2 := newManager(t, dir, 1)
	defer m2.Close()
	st2, err := m2.Status(st.ID, false)
	if err != nil {
		t.Fatalf("Status after restart: %v", err)
	}
	if st2.State != service.StateFailed {
		t.Fatalf("restarted state = %s, want the durable failure", st2.State)
	}
}

// TestQueueFullBackpressure drives the bounded queue to saturation
// end-to-end: the daemon answers 429 with Retry-After, and a retrying
// client outlasts the backpressure once the queue drains.
func TestQueueFullBackpressure(t *testing.T) {
	m, err := service.NewManager(service.Config{DataDir: t.TempDir(), JobWorkers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	m.Start()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	ctx := context.Background()

	// Fill the daemon: one unbounded job occupies the worker, one more
	// saturates the depth-1 queue.
	blocker := service.JobSpec{Kind: service.KindCells,
		Cells: []service.CellSpec{boundedCell("forever", 0)}}
	quick := service.JobSpec{Kind: service.KindCells,
		Cells: []service.CellSpec{boundedCell("quick", 100_000)}}

	one := client.New(srv.URL)
	one.Retry.MaxAttempts = 1
	blockSt, err := one.Submit(ctx, blocker)
	if err != nil {
		t.Fatalf("Submit(blocker): %v", err)
	}
	// The worker must have taken the blocker off the queue before the
	// filler lands, or the filler itself sees a full queue.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := one.Status(ctx, blockSt.ID, false)
		if err != nil {
			t.Fatalf("Status(blocker): %v", err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := one.Submit(ctx, quick); err != nil {
		t.Fatalf("Submit(filler): %v", err)
	}

	// A non-retrying submit sees the backpressure as a typed 429 carrying
	// the server's Retry-After hint.
	_, err = one.Submit(ctx, quick)
	var he *client.HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("Submit(full) = %v, want *client.HTTPError", err)
	}
	if he.StatusCode != http.StatusTooManyRequests || he.RetryAfter != time.Second {
		t.Fatalf("HTTPError = %+v, want 429 with Retry-After 1s", he)
	}
	if !he.Temporary() {
		t.Fatal("429 must classify as temporary (retryable)")
	}

	// A retrying client survives: the blocker is canceled while the
	// client backs off (it honors the 1s Retry-After), the queue drains,
	// and the retried attempt is accepted.
	time.AfterFunc(100*time.Millisecond, func() {
		_, _ = one.Cancel(ctx, blockSt.ID)
	})
	retrying := client.New(srv.URL)
	retrying.Retry = client.RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond}
	st, err := retrying.Submit(ctx, quick)
	if err != nil {
		t.Fatalf("retrying Submit did not outlast the backpressure: %v", err)
	}
	if st.ID == "" {
		t.Fatal("retried submit returned no job")
	}
}

// TestSubmitIdempotentAcrossLostResponse is the duplicate-submission
// guard: the first POST reaches the daemon but its response is destroyed
// in flight; the client's retry carries the same Idempotency-Key, so the
// daemon returns the original job instead of creating a second one.
func TestSubmitIdempotentAcrossLostResponse(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	defer m.Close()
	m.Start()
	inner := service.NewHandler(m)

	var posts atomic.Int32
	lossy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && posts.Add(1) == 1 {
			// Deliver the request, lose the response.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(lossy)
	defer srv.Close()

	c := client.New(srv.URL)
	c.Retry = client.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	st, err := c.Submit(context.Background(), chaosSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if posts.Load() != 2 {
		t.Fatalf("saw %d POSTs, want the lost attempt plus one retry", posts.Load())
	}
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("daemon holds %d jobs after retried submit, want exactly 1", len(jobs))
	}
	if jobs[0].ID != st.ID {
		t.Fatalf("retry returned job %s, want the original %s", st.ID, jobs[0].ID)
	}
}
